#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"k", "error"});
  t.AddRow({"2", "0.5"});
  t.AddRow({"10", "12.25"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("k   error"), std::string::npos);
  EXPECT_NE(text.find("10  12.25"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormats) {
  TablePrinter t({"a", "b"});
  t.AddNumericRow({1.0, 0.333333333});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToCsv().find("0.3333"), std::string::npos);
}

}  // namespace
}  // namespace rankhow
