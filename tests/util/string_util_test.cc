#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitTest, SingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e-3 "), -1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--k=5", "--name", "test", "--verbose"};
  FlagParser parser(5, const_cast<char**>(argv));
  EXPECT_EQ(parser.GetInt("k", 1, "top k"), 5);
  EXPECT_EQ(parser.GetString("name", "", "label"), "test");
  EXPECT_TRUE(parser.GetBool("verbose", false, "chatty"));
  EXPECT_DOUBLE_EQ(parser.GetDouble("eps", 0.5, "gap"), 0.5);
  EXPECT_TRUE(parser.Finish());
}

}  // namespace
}  // namespace rankhow
