#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace rankhow {
namespace {

/// argv builder that owns its storage.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(FlagParserTest, EqualsSyntax) {
  Argv args({"prog", "--n=42", "--rate=0.5", "--name=abc", "--verbose=true"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("n", 0, ""), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0, ""), 0.5);
  EXPECT_EQ(flags.GetString("name", "", ""), "abc");
  EXPECT_TRUE(flags.GetBool("verbose", false, ""));
  EXPECT_TRUE(flags.Finish());
}

TEST(FlagParserTest, SpaceSyntax) {
  Argv args({"prog", "--n", "7", "--name", "xyz"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("n", 0, ""), 7);
  EXPECT_EQ(flags.GetString("name", "", ""), "xyz");
  EXPECT_TRUE(flags.Finish());
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  Argv args({"prog"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("n", 13, ""), 13);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 2.5, ""), 2.5);
  EXPECT_EQ(flags.GetString("name", "dflt", ""), "dflt");
  EXPECT_FALSE(flags.GetBool("verbose", false, ""));
  EXPECT_TRUE(flags.Finish());
}

TEST(FlagParserTest, BoolSpellings) {
  Argv args({"prog", "--a=1", "--b=false", "--c=True", "--d=0"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.GetBool("a", false, ""));
  EXPECT_FALSE(flags.GetBool("b", true, ""));
  EXPECT_TRUE(flags.GetBool("c", false, ""));
  EXPECT_FALSE(flags.GetBool("d", true, ""));
  EXPECT_TRUE(flags.Finish());
}

TEST(FlagParserTest, BareBoolFlagMeansTrue) {
  Argv args({"prog", "--verbose"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.GetBool("verbose", false, ""));
  EXPECT_TRUE(flags.Finish());
}

TEST(FlagParserTest, HelpRequestsExit) {
  Argv args({"prog", "--help"});
  FlagParser flags(args.argc(), args.argv());
  flags.GetInt("n", 1, "a number");
  ::testing::internal::CaptureStderr();
  bool proceed = flags.Finish();
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(proceed);
  EXPECT_NE(out.find("--n"), std::string::npos);
  EXPECT_NE(out.find("a number"), std::string::npos);
}

TEST(FlagParserDeathTest, UnknownFlagExitsWithDiagnostic) {
  // Typo safety is deliberately fatal in the harness flag parser.
  Argv args({"prog", "--typo=3"});
  FlagParser flags(args.argc(), args.argv());
  flags.GetInt("n", 1, "");
  EXPECT_EXIT(flags.Finish(), ::testing::ExitedWithCode(2), "typo");
}

TEST(FlagParserTest, NegativeNumbersParse) {
  Argv args({"prog", "--offset=-5", "--shift=-0.25"});
  FlagParser flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("offset", 0, ""), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("shift", 0, ""), -0.25);
  EXPECT_TRUE(flags.Finish());
}

}  // namespace
}  // namespace rankhow
