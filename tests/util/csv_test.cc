#include "util/csv.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto t = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][2], "6");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto t = ParseCsv("name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "Doe, John");
  EXPECT_EQ(t->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, HandlesCrLfAndMissingFinalNewline) {
  auto t = ParseCsv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][1], "4");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto t = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(t.ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto t = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(t.ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, SkipsBlankLines) {
  auto t = ParseCsv("a,b\n1,2\n\n3,4\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows.size(), 2u);
}

}  // namespace
}  // namespace rankhow
