#include "util/random.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowIsUniformish) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - 1000);
    EXPECT_LT(c, kDraws / 10 + 1000);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0;
  double sum2 = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.02);
}

TEST(RngTest, SimplexPointSumsToOne) {
  Rng rng(5);
  for (int m : {1, 2, 5, 27}) {
    auto w = rng.NextSimplexPoint(m);
    ASSERT_EQ(static_cast<int>(w.size()), m);
    double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (double wi : w) EXPECT_GE(wi, 0.0);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= v == -2;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, JumpIsDeterministicAndMovesTheStream) {
  Rng a(77);
  Rng b(77);
  a.Jump();
  b.Jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  // A jumped stream does not replay the unjumped one.
  Rng c(77);
  Rng d(77);
  c.Jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c.Next() == d.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, JumpDoesNotConsumeParentDraws) {
  Rng a(31);
  Rng b(31);
  (void)a.SplitStream(5);  // const: must leave the parent untouched
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SplitStreamsAreDisjointAndDeterministic) {
  Rng base(2024);
  // Deterministic: same parent state + id -> same stream.
  Rng s2a = base.SplitStream(2);
  Rng s2b = base.SplitStream(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s2a.Next(), s2b.Next());
  // Pairwise disjoint-looking across workers and vs the parent.
  constexpr int kWorkers = 4;
  constexpr int kDraws = 256;
  std::vector<std::vector<uint64_t>> draws(kWorkers + 1);
  for (int w = 0; w < kWorkers; ++w) {
    Rng s = base.SplitStream(w);
    for (int i = 0; i < kDraws; ++i) draws[w].push_back(s.Next());
  }
  for (int i = 0; i < kDraws; ++i) draws[kWorkers].push_back(base.Next());
  for (int x = 0; x <= kWorkers; ++x) {
    for (int y = x + 1; y <= kWorkers; ++y) {
      int same = 0;
      for (int i = 0; i < kDraws; ++i) same += draws[x][i] == draws[y][i];
      EXPECT_LT(same, 3) << "streams " << x << " and " << y << " overlap";
    }
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(123);
  b.Next();  // advance to match the fork call
  int same = 0;
  for (int i = 0; i < 64; ++i) same += forked.Next() == b.Next();
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace rankhow
