#include "util/status.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::Invalid("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kNumerical, StatusCode::kInfeasible,
        StatusCode::kUnbounded, StatusCode::kUnimplemented,
        StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::Invalid("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  RH_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainViaAssign(int x) {
  RH_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  auto ok = ChainViaAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);

  auto err = ChainViaAssign(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rankhow
