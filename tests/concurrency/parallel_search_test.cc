// Determinism/equivalence suite for the parallel search engine: on
// randomized instances, num_threads ∈ {1, 2, 8} must prove the *same*
// optimum on both exact paths (the indicator MILP and the spatial
// subdivision) — thread count buys wall-clock, never changes the answer —
// and the SYM-GD portfolio must never do worse than its own single
// ordinal-regression seed. Carries the ctest label `tsan`; see
// thread_pool_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "core/seeding.h"
#include "core/sym_gd.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

/// Solves one instance at every thread count and checks all runs prove the
/// same optimum. `pure_milp` turns off the true-error primal heuristic and
/// presolve: those inject incumbents under the ε-tie semantics, which can
/// legitimately *beat* the (ε₂, ε₁)-gap MILP optimum, and which of those
/// bonus incumbents gets discovered depends on the explored node set — a
/// schedule artifact, not an invariant. What IS invariant: the pure MILP
/// optimum, the spatial (true-semantics) optimum, and the sound band
/// between them (next test).
long CheckThreadCountInvariance(SolveStrategy strategy, uint64_t seed,
                                int n, int m, int k, bool pure_milp,
                                const std::vector<int>& thread_counts = {
                                    1, 2, 8}) {
  Rng rng(seed);
  Dataset data = RandomDataset(rng, n, m);
  Ranking given = RandomRanking(rng, n, k);

  long reference_error = -1;
  for (int threads : thread_counts) {
    RankHowOptions options;
    options.eps = TestEps();
    options.strategy = strategy;
    options.num_threads = threads;
    if (pure_milp) {
      options.use_primal_heuristic = false;
      options.use_presolve = false;
    }
    RankHow solver(data, given, options);
    auto result = solver.Solve();
    EXPECT_TRUE(result.ok())
        << SolveStrategyName(strategy) << " seed=" << seed
        << " threads=" << threads << ": " << result.status().ToString();
    if (!result.ok()) return -1;
    EXPECT_TRUE(result->proven_optimal)
        << SolveStrategyName(strategy) << " seed=" << seed
        << " threads=" << threads;
    EXPECT_EQ(result->bound, result->claimed_error);
    EXPECT_TRUE(result->verification.has_value());
    if (result->verification.has_value()) {
      EXPECT_TRUE(result->verification->consistent);
    }
    if (reference_error < 0) {
      reference_error = result->error;
    } else {
      EXPECT_EQ(result->error, reference_error)
          << SolveStrategyName(strategy) << " seed=" << seed
          << " threads=" << threads
          << ": parallel run proved a different optimum";
    }
  }
  return reference_error;
}

TEST(ParallelSearchTest, MilpProvenOptimumIsThreadCountInvariant) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    CheckThreadCountInvariance(SolveStrategy::kIndicatorMilp, seed,
                               /*n=*/12, /*m=*/3, /*k=*/6,
                               /*pure_milp=*/true);
  }
}

TEST(ParallelSearchTest, SpatialProvenOptimumIsThreadCountInvariant) {
  // The spatial search optimizes the true ε-tie objective directly, so its
  // proven optimum is invariant with every feature on.
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    CheckThreadCountInvariance(SolveStrategy::kSpatial, seed,
                               /*n=*/14, /*m=*/3, /*k=*/7,
                               /*pure_milp=*/false);
  }
}

TEST(ParallelSearchTest, SatProvenOptimumIsThreadCountInvariant) {
  // The one strategy the original suite skipped: SAT binary search proves
  // the same (ε₂, ε₁)-gap optimum as the pure MILP, one feasibility MILP
  // per probe. Probes re-run whole search trees, so the instances stay
  // small and the thread sweep stops at 2 workers.
  for (uint64_t seed : {31u, 32u, 33u}) {
    CheckThreadCountInvariance(SolveStrategy::kSatBinarySearch, seed,
                               /*n=*/10, /*m=*/3, /*k=*/5,
                               /*pure_milp=*/true, /*thread_counts=*/{1, 2});
  }
}

TEST(ParallelSearchTest, MilpHeuristicIncumbentsStayInTheSoundBand) {
  // Full-featured MILP runs may return schedule-dependent bonus incumbents
  // (true-error candidates better than the gap-relaxation optimum), but
  // every one must land in [spatial true optimum, pure MILP optimum] — a
  // violation on either side means a lost or unsound incumbent install.
  for (uint64_t seed : {13u, 14u}) {
    Rng rng(seed);
    Dataset data = RandomDataset(rng, 12, 3);
    Ranking given = RandomRanking(rng, 12, 6);

    RankHowOptions pure;
    pure.eps = TestEps();
    pure.strategy = SolveStrategy::kIndicatorMilp;
    pure.use_primal_heuristic = false;
    pure.use_presolve = false;
    auto milp_opt = RankHow(data, given, pure).Solve();
    ASSERT_TRUE(milp_opt.ok()) << milp_opt.status().ToString();
    ASSERT_TRUE(milp_opt->proven_optimal);

    RankHowOptions spatial;
    spatial.eps = TestEps();
    spatial.strategy = SolveStrategy::kSpatial;
    auto true_opt = RankHow(data, given, spatial).Solve();
    ASSERT_TRUE(true_opt.ok()) << true_opt.status().ToString();
    ASSERT_TRUE(true_opt->proven_optimal);
    ASSERT_LE(true_opt->error, milp_opt->error)
        << "the ε-tie optimum can never exceed the gap-relaxation optimum";

    for (int threads : {1, 2, 8}) {
      RankHowOptions options;
      options.eps = TestEps();
      options.strategy = SolveStrategy::kIndicatorMilp;
      options.num_threads = threads;
      RankHow solver(data, given, options);
      auto result = solver.Solve();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->proven_optimal) << "threads=" << threads;
      EXPECT_GE(result->error, true_opt->error)
          << "seed=" << seed << " threads=" << threads
          << ": incumbent below the true optimum (unsound install)";
      EXPECT_LE(result->error, milp_opt->error)
          << "seed=" << seed << " threads=" << threads
          << ": worse than the MILP optimum despite a completed search "
             "(lost incumbent)";
    }
  }
}

TEST(ParallelSearchTest, MilpHonorsConstraintsAcrossThreadCounts) {
  // Side constraints exercise the incumbent-rejection paths under
  // concurrency. Pure MILP (no heuristic/presolve) so the optimum value
  // is the strict invariant — see CheckThreadCountInvariance.
  Rng rng(31);
  Dataset data = RandomDataset(rng, 10, 3);
  Ranking given = RandomRanking(rng, 10, 5);
  long reference_error = -1;
  for (int threads : {1, 2, 8}) {
    RankHowOptions options;
    options.eps = TestEps();
    options.strategy = SolveStrategy::kIndicatorMilp;
    options.num_threads = threads;
    options.use_primal_heuristic = false;
    options.use_presolve = false;
    RankHow solver(data, given, options);
    solver.problem().constraints.AddMinWeight(0, 0.2, "A0");
    solver.problem().constraints.AddMaxWeight(1, 0.6, "A1");
    auto result = solver.Solve();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->proven_optimal);
    EXPECT_GE(result->function.weights[0], 0.2 - 1e-6);
    EXPECT_LE(result->function.weights[1], 0.6 + 1e-6);
    if (reference_error < 0) {
      reference_error = result->error;
    } else {
      EXPECT_EQ(result->error, reference_error) << "threads=" << threads;
    }
  }
}

TEST(ParallelSearchTest, BudgetedParallelRunStaysSound) {
  // Under a node cap the parallel search may return an unproven incumbent;
  // its bound must still be a valid lower bound (i.e. <= the true optimum
  // proven by an unlimited run).
  Rng rng(41);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 6);
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kIndicatorMilp;
  RankHow reference_solver(data, given, options);
  auto reference = reference_solver.Solve();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->proven_optimal);

  options.num_threads = 4;
  options.max_nodes = 5;
  options.use_presolve = false;
  RankHow budgeted_solver(data, given, options);
  auto budgeted = budgeted_solver.Solve();
  if (!budgeted.ok()) {
    // A 5-node budget may legitimately end with no incumbent at all.
    EXPECT_EQ(budgeted.status().code(), StatusCode::kResourceExhausted);
    return;
  }
  EXPECT_LE(budgeted->bound, reference->error);
  EXPECT_GE(budgeted->error, reference->error);
}

TEST(PortfolioTest, PortfolioNeverLosesToItsOwnOrdinalSeed) {
  for (uint64_t seed : {51u, 52u}) {
    Rng rng(seed);
    Dataset data = RandomDataset(rng, 16, 3);
    Ranking given = RandomRanking(rng, 16, 8);

    SymGdOptions options;
    options.cell_size = 0.2;
    options.solver.eps = TestEps();
    options.num_seeds = 4;
    options.solver.num_threads = 2;
    SymGd symgd(data, given, options);

    auto ordinal = OrdinalRegressionSeed(data, given, options.solver.eps.eps1);
    ASSERT_TRUE(ordinal.ok()) << ordinal.status().ToString();
    auto single = symgd.Run(*ordinal);
    ASSERT_TRUE(single.ok()) << single.status().ToString();

    auto portfolio = symgd.RunPortfolio();
    ASSERT_TRUE(portfolio.ok()) << portfolio.status().ToString();
    // The portfolio includes the ordinal seed, so with no time budget its
    // winner is at least as good as the single-seed descent.
    EXPECT_LE(portfolio->error, single->error) << "seed=" << seed;
    ASSERT_EQ(static_cast<int>(portfolio->portfolio.size()), 4);
    ASSERT_GE(portfolio->winning_seed, 0);
    ASSERT_LT(portfolio->winning_seed, 4);
    EXPECT_EQ(portfolio->portfolio[portfolio->winning_seed].error,
              portfolio->error);
    EXPECT_EQ(portfolio->portfolio[0].seed_name, "ordinal");
    for (const SeedRun& run : portfolio->portfolio) {
      if (run.error >= 0) {
        EXPECT_EQ(static_cast<int>(run.error_trajectory.size()),
                  run.iterations);
      }
    }
  }
}

TEST(PortfolioTest, SingleAttributeDatasetTerminates) {
  // m == 1: the simplex is the single point {1}, so every random draw is a
  // duplicate — seed construction must accept duplicates after a bounded
  // number of rejections instead of spinning forever.
  Rng rng(71);
  Dataset data = RandomDataset(rng, 8, 1);
  Ranking given = RandomRanking(rng, 8, 4);
  std::vector<PortfolioSeed> seeds =
      BuildPortfolioSeeds(data, given, 1e-6, 4, 17);
  ASSERT_EQ(static_cast<int>(seeds.size()), 4);

  SymGdOptions options;
  options.cell_size = 0.2;
  options.solver.eps = TestEps();
  options.num_seeds = 3;
  options.solver.num_threads = 2;
  SymGd symgd(data, given, options);
  auto result = symgd.RunPortfolio();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->error, 0);
}

TEST(PortfolioTest, PortfolioIsDeterministic) {
  Rng rng(61);
  Dataset data = RandomDataset(rng, 14, 3);
  Ranking given = RandomRanking(rng, 14, 7);
  SymGdOptions options;
  options.cell_size = 0.2;
  options.solver.eps = TestEps();
  options.num_seeds = 5;
  options.solver.num_threads = 3;
  long first_error = -1;
  for (int run = 0; run < 2; ++run) {
    SymGd symgd(data, given, options);
    auto result = symgd.RunPortfolio();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (first_error < 0) {
      first_error = result->error;
    } else {
      EXPECT_EQ(result->error, first_error);
    }
    // Seed construction itself is schedule-independent.
    ASSERT_EQ(static_cast<int>(result->portfolio.size()), 5);
    EXPECT_EQ(result->portfolio[0].seed_name, "ordinal");
  }
}

}  // namespace
}  // namespace rankhow
