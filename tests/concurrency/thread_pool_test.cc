// The execution substrate of the parallel search engine: fixed-size pool,
// task-group completion tracking, cooperative cancellation, and the
// coordinator/frontier primitives the searches share. This binary carries
// the ctest label `tsan` — run it under -DRANKHOW_SANITIZE=thread (preset
// `tsan`) to gate on data races.

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/search_coordinator.h"

namespace rankhow {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilSlowTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 6; ++i) {
    group.Spawn([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 6);
}

TEST(ThreadPoolTest, CancellationIsVisibleToTasks) {
  ThreadPool pool(2);
  std::atomic<int> observed_cancel{0};
  TaskGroup group(&pool);
  group.Cancel();
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&group, &observed_cancel] {
      if (group.cancelled()) observed_cancel.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(observed_cancel.load(), 8);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
}

TEST(SearchCoordinatorTest, InstallsOnlyImprovements) {
  SearchCoordinator coordinator(/*time_limit_seconds=*/0,
                                /*improvement_tol=*/0.0);
  EXPECT_FALSE(std::isfinite(coordinator.best_objective()));
  EXPECT_TRUE(coordinator.OfferIncumbent(5.0, {5.0}));
  EXPECT_FALSE(coordinator.OfferIncumbent(5.0, {5.5}));  // equal: rejected
  EXPECT_FALSE(coordinator.OfferIncumbent(7.0, {7.0}));
  EXPECT_TRUE(coordinator.OfferIncumbent(3.0, {3.0}));
  EXPECT_EQ(coordinator.best_objective(), 3.0);
  EXPECT_EQ(coordinator.incumbent_values(), std::vector<double>{3.0});
  EXPECT_EQ(coordinator.incumbent_updates(), 2);
}

TEST(SearchCoordinatorTest, ConcurrentOffersKeepTheMinimum) {
  SearchCoordinator coordinator(0, 0.0);
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int t = 0; t < 4; ++t) {
    group.Spawn([&coordinator, t] {
      for (int i = 100; i >= 1; --i) {
        double objective = static_cast<double>(i * 4 + t);
        coordinator.OfferIncumbent(objective,
                                   {objective});
      }
    });
  }
  group.Wait();
  // The global minimum across all threads' sequences is 1*4+0 = 4.
  EXPECT_EQ(coordinator.best_objective(), 4.0);
  EXPECT_EQ(coordinator.incumbent_values(), std::vector<double>{4.0});
}

TEST(SearchCoordinatorTest, FirstErrorWins) {
  SearchCoordinator coordinator(0, 0.0);
  EXPECT_FALSE(coordinator.StopRequested());
  coordinator.ReportError(Status::Invalid("first"));
  coordinator.ReportError(Status::Internal("second"));
  EXPECT_TRUE(coordinator.StopRequested());
  EXPECT_TRUE(coordinator.has_error());
  EXPECT_EQ(coordinator.first_error().code(), StatusCode::kInvalidArgument);
}

struct TestNode {
  double bound = 0;
  double frontier_bound() const { return bound; }
};
struct TestNodeOrder {
  bool operator()(const TestNode& a, const TestNode& b) const {
    return a.bound > b.bound;
  }
};

TEST(ShardedFrontierTest, DrainsEverythingAcrossWorkers) {
  ShardedFrontier<TestNode, TestNodeOrder> frontier(4);
  constexpr int kNodes = 500;
  for (int i = 0; i < kNodes; ++i) {
    frontier.Push(TestNode{static_cast<double>(i)});
  }
  std::atomic<int> popped{0};
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int t = 0; t < 4; ++t) {
    group.Spawn([&frontier, &popped] {
      while (auto node = frontier.Pop()) {
        popped.fetch_add(1);
        frontier.Done();
      }
    });
  }
  group.Wait();
  EXPECT_EQ(popped.load(), kNodes);
  EXPECT_TRUE(frontier.Empty());
}

TEST(ShardedFrontierTest, BusyWorkerCanRepopulateAnEmptyFrontier) {
  // One worker holds the only node and spawns children after a delay; the
  // waiting workers must not conclude "exhausted" while it is busy.
  ShardedFrontier<TestNode, TestNodeOrder> frontier(2);
  frontier.Push(TestNode{0});
  std::atomic<int> popped{0};
  ThreadPool pool(3);
  TaskGroup group(&pool);
  for (int t = 0; t < 3; ++t) {
    group.Spawn([&frontier, &popped] {
      while (auto node = frontier.Pop()) {
        int n = popped.fetch_add(1);
        if (n == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          frontier.Push(TestNode{1});
          frontier.Push(TestNode{2});
        }
        frontier.Done();
      }
    });
  }
  group.Wait();
  EXPECT_EQ(popped.load(), 3);
}

TEST(ShardedFrontierTest, StopShortCircuitsPops) {
  ShardedFrontier<TestNode, TestNodeOrder> frontier(2);
  frontier.Push(TestNode{1});
  frontier.RequestStop();
  EXPECT_FALSE(frontier.Pop().has_value());
  // Pushes after stop stay visible to the bound accounting.
  frontier.Push(TestNode{0.5});
  EXPECT_EQ(frontier.MinBound(), 0.5);
}

TEST(ShardedFrontierTest, SingleShardPopsInBestFirstOrder) {
  ShardedFrontier<TestNode, TestNodeOrder> frontier(1);
  for (double b : {3.0, 1.0, 2.0, 0.5}) frontier.Push(TestNode{b});
  std::vector<double> order;
  while (auto node = frontier.Pop()) {
    order.push_back(node->bound);
    frontier.Done();
  }
  EXPECT_EQ(order, (std::vector<double>{0.5, 1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace rankhow
