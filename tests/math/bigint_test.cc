#include "math/bigint.h"
#include <cmath>

#include <cstdint>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ((-zero).ToString(), "0");
  EXPECT_EQ(zero.BitLength(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    int64_t{-987654321012345678}, INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    int64_t back = 0;
    ASSERT_TRUE(b.FitsInt64(&back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(BigIntTest, StringRoundTrip) {
  const char* kValues[] = {"0", "1", "-1", "4294967296", "-4294967297",
                           "123456789012345678901234567890"};
  for (const char* s : kValues) {
    EXPECT_EQ(BigInt::FromString(s).ToString(), s);
  }
}

TEST(BigIntTest, AdditionMatchesInt64) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t a = rng.NextInt(-1000000000, 1000000000);
    int64_t b = rng.NextInt(-1000000000, 1000000000);
    int64_t sum = 0;
    ASSERT_TRUE((BigInt(a) + BigInt(b)).FitsInt64(&sum));
    EXPECT_EQ(sum, a + b);
  }
}

TEST(BigIntTest, MultiplicationMatchesInt64) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    int64_t a = rng.NextInt(-3000000000LL, 3000000000LL);
    int64_t b = rng.NextInt(-3000000, 3000000);
    int64_t prod = 0;
    ASSERT_TRUE((BigInt(a) * BigInt(b)).FitsInt64(&prod));
    EXPECT_EQ(prod, a * b);
  }
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt a = BigInt::FromString("123456789012345678901234567890");
  BigInt b = BigInt::FromString("-98765432109876543210");
  EXPECT_EQ((a * b).ToString(),
            "-12193263113702179522496570642237463801111263526900");
}

TEST(BigIntTest, DivModMatchesInt64) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t a = rng.NextInt(-1000000000000LL, 1000000000000LL);
    int64_t b = rng.NextInt(-100000, 100000);
    if (b == 0) continue;
    auto dm = BigInt(a).DivMod(BigInt(b));
    int64_t q = 0;
    int64_t r = 0;
    ASSERT_TRUE(dm.quotient.FitsInt64(&q));
    ASSERT_TRUE(dm.remainder.FitsInt64(&r));
    EXPECT_EQ(q, a / b) << a << "/" << b;
    EXPECT_EQ(r, a % b) << a << "%" << b;
  }
}

TEST(BigIntTest, DivModIdentityOnLargeValues) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt(static_cast<int64_t>(rng.Next() >> 1));
    a = a * BigInt(static_cast<int64_t>(rng.Next() >> 1)) +
        BigInt(rng.NextInt(-5, 5));
    BigInt b = BigInt(static_cast<int64_t>(rng.Next() >> 20) + 1);
    auto dm = a.DivMod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder.Abs(), b.Abs());
  }
}

TEST(BigIntTest, ShiftsAreInverse) {
  BigInt v = BigInt::FromString("987654321098765432109876543210");
  for (int bits : {1, 31, 32, 33, 64, 100}) {
    EXPECT_EQ(v.ShiftLeft(bits).ShiftRight(bits), v) << bits;
  }
}

TEST(BigIntTest, ShiftLeftMultipliesByPowerOfTwo) {
  EXPECT_EQ(BigInt(3).ShiftLeft(10), BigInt(3 * 1024));
  EXPECT_EQ(BigInt(-3).ShiftLeft(2), BigInt(-12));
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> sorted = {
      BigInt::FromString("-100000000000000000000"), BigInt(-5), BigInt(0),
      BigInt(7), BigInt::FromString("100000000000000000000")};
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = 0; j < sorted.size(); ++j) {
      EXPECT_EQ(sorted[i].Compare(sorted[j]) < 0, i < j);
      EXPECT_EQ(sorted[i] == sorted[j], i == j);
    }
  }
}

TEST(BigIntTest, GcdMatchesEuclid) {
  Rng rng(5);
  auto gcd64 = [](int64_t a, int64_t b) {
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b != 0) {
      int64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  for (int i = 0; i < 500; ++i) {
    int64_t a = rng.NextInt(-1000000, 1000000);
    int64_t b = rng.NextInt(-1000000, 1000000);
    int64_t g = 0;
    ASSERT_TRUE(BigInt::Gcd(BigInt(a), BigInt(b)).FitsInt64(&g));
    EXPECT_EQ(g, gcd64(a, b)) << a << "," << b;
  }
}

TEST(BigIntTest, GcdWithZero) {
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(-42)), BigInt(42));
  EXPECT_EQ(BigInt::Gcd(BigInt(42), BigInt(0)), BigInt(42));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
}

TEST(BigIntTest, CountTrailingZeros) {
  EXPECT_EQ(BigInt(1).CountTrailingZeros(), 0);
  EXPECT_EQ(BigInt(8).CountTrailingZeros(), 3);
  EXPECT_EQ(BigInt(1).ShiftLeft(100).CountTrailingZeros(), 100);
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(123456).ToDouble(), 123456.0);
  BigInt big = BigInt(1).ShiftLeft(100);
  EXPECT_DOUBLE_EQ(big.ToDouble(), std::ldexp(1.0, 100));
  EXPECT_DOUBLE_EQ((-big).ToDouble(), -std::ldexp(1.0, 100));
}

TEST(BigIntTest, FitsInt64Boundaries) {
  int64_t out = 0;
  EXPECT_TRUE(BigInt(INT64_MAX).FitsInt64(&out));
  EXPECT_TRUE(BigInt(INT64_MIN).FitsInt64(&out));
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).FitsInt64(&out));
  EXPECT_FALSE((BigInt(INT64_MIN) - BigInt(1)).FitsInt64(&out));
}

// Property sweep: ring axioms on random values.
class BigIntPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntPropertyTest, RingAxioms) {
  Rng rng(GetParam());
  auto random_big = [&rng]() {
    BigInt v(static_cast<int64_t>(rng.Next()));
    if (rng.NextBelow(2)) v = v * BigInt(static_cast<int64_t>(rng.Next() >> 8));
    return v;
  };
  BigInt a = random_big();
  BigInt b = random_big();
  BigInt c = random_big();
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, BigInt(0));
  EXPECT_EQ(a + (-a), BigInt(0));
  EXPECT_EQ(a * BigInt(1), a);
  EXPECT_EQ(a * BigInt(0), BigInt(0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace rankhow
