#include "math/rational.h"
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(RationalTest, NormalizesToLowestTerms) {
  Rational r(6, -8);
  EXPECT_EQ(r.ToString(), "-3/4");
  EXPECT_EQ(Rational(0, 5).ToString(), "0");
  EXPECT_EQ(Rational(10, 5).ToString(), "2");
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 3);
  Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(RationalTest, FromDoubleIsExact) {
  // 0.1 as a double is 3602879701896397 / 2^55.
  Rational r = Rational::FromDouble(0.1);
  EXPECT_EQ(r.num().ToString(), "3602879701896397");
  EXPECT_EQ(r.den(), BigInt(1).ShiftLeft(55));
  EXPECT_DOUBLE_EQ(r.ToDouble(), 0.1);
}

TEST(RationalTest, ComparisonAvoidsFloatPitfalls) {
  Rational sum = Rational::FromDouble(0.1) + Rational::FromDouble(0.2);
  EXPECT_NE(sum, Rational::FromDouble(0.3));
  EXPECT_GT(sum, Rational::FromDouble(0.3));  // 0.1+0.2 is slightly above
}

TEST(RationalTest, ToDoubleOnExtremeMagnitudes) {
  Rational big(BigInt(1).ShiftLeft(700), BigInt(1));
  EXPECT_DOUBLE_EQ(big.ToDouble(), std::ldexp(1.0, 700));
  Rational tiny(BigInt(1), BigInt(1).ShiftLeft(700));
  EXPECT_DOUBLE_EQ(tiny.ToDouble(), std::ldexp(1.0, -700));
  Rational ratio(BigInt(3).ShiftLeft(600), BigInt(2).ShiftLeft(600));
  EXPECT_DOUBLE_EQ(ratio.ToDouble(), 1.5);
}

class RationalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  Rng rng(GetParam());
  auto random_rational = [&rng]() {
    int64_t num = rng.NextInt(-1000, 1000);
    int64_t den = rng.NextInt(1, 1000);
    return Rational(num, den);
  };
  Rational a = random_rational();
  Rational b = random_rational();
  Rational c = random_rational();
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Rational(0));
  if (!b.is_zero()) {
    EXPECT_EQ(a / b * b, a);
  }
  // Compare matches cross-multiplication in double space.
  EXPECT_EQ(a.Compare(b) < 0, a.ToDouble() < b.ToDouble() - 1e-15 ||
                                  (a != b && a.ToDouble() <= b.ToDouble()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace rankhow
