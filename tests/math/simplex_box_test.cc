#include "math/simplex_box.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(WeightBoxTest, FullSimplexIntersects) {
  WeightBox box = WeightBox::FullSimplex(5);
  EXPECT_TRUE(box.IntersectsSimplex());
  EXPECT_EQ(box.dim(), 5);
}

TEST(WeightBoxTest, CellAroundClampsToUnitBox) {
  WeightBox box = WeightBox::CellAround({0.05, 0.95, 0.0}, 0.2);
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 0.15);
  EXPECT_DOUBLE_EQ(box.lo[1], 0.85);
  EXPECT_DOUBLE_EQ(box.hi[1], 1.0);
  EXPECT_DOUBLE_EQ(box.lo[2], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[2], 0.1);
}

TEST(WeightBoxTest, DetectsEmptyIntersection) {
  // All upper bounds tiny: cannot reach sum 1.
  WeightBox box;
  box.lo = {0.0, 0.0};
  box.hi = {0.3, 0.3};
  EXPECT_FALSE(box.IntersectsSimplex());
  // Lower bounds exceed 1.
  box.lo = {0.7, 0.7};
  box.hi = {1.0, 1.0};
  EXPECT_FALSE(box.IntersectsSimplex());
}

TEST(DotRangeTest, FullSimplexIsMinMaxOfCoefficients) {
  std::vector<double> d = {3.0, -1.5, 0.25};
  DotRange r = DotRangeOnFullSimplex(d);
  EXPECT_DOUBLE_EQ(r.min, -1.5);
  EXPECT_DOUBLE_EQ(r.max, 3.0);
  auto via_box = DotRangeOnSimplexBox(d, WeightBox::FullSimplex(3));
  ASSERT_TRUE(via_box.ok());
  EXPECT_DOUBLE_EQ(via_box->min, -1.5);
  EXPECT_DOUBLE_EQ(via_box->max, 3.0);
}

TEST(DotRangeTest, RespectsBoxBounds) {
  // w1 in [0.4, 1], w2 in [0, 0.6]; d = (0, 1):
  // min at w2 = 0 (w1=1), max at w2 = 0.6 (w1=0.4).
  WeightBox box;
  box.lo = {0.4, 0.0};
  box.hi = {1.0, 0.6};
  auto r = DotRangeOnSimplexBox({0.0, 1.0}, box);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->min, 0.0);
  EXPECT_DOUBLE_EQ(r->max, 0.6);
}

TEST(DotRangeTest, InfeasibleBoxFails) {
  WeightBox box;
  box.lo = {0.0, 0.0};
  box.hi = {0.2, 0.2};
  EXPECT_FALSE(DotRangeOnSimplexBox({1.0, 2.0}, box).ok());
}

TEST(AnyPointTest, ReturnsInteriorFeasiblePoint) {
  WeightBox box;
  box.lo = {0.1, 0.2, 0.0};
  box.hi = {0.5, 0.6, 0.4};
  auto w = AnyPointOnSimplexBox(box);
  ASSERT_TRUE(w.ok());
  double sum = std::accumulate(w->begin(), w->end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(box.Contains(*w, 1e-9));
}

// Property: the greedy exact range bounds every sampled feasible point, and
// is attained (within tolerance) by some sampled point when sampling densely.
class DotRangePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DotRangePropertyTest, BoundsAllSimplexPoints) {
  Rng rng(GetParam());
  int m = static_cast<int>(rng.NextInt(2, 6));
  std::vector<double> d(m);
  for (double& v : d) v = rng.NextGaussian();

  std::vector<double> center = rng.NextSimplexPoint(m);
  double cell = rng.NextUniform(0.05, 0.8);
  WeightBox box = WeightBox::CellAround(center, cell);
  auto range = DotRangeOnSimplexBox(d, box);
  ASSERT_TRUE(range.ok());
  EXPECT_LE(range->min, range->max + 1e-12);

  double seen_min = 1e18;
  double seen_max = -1e18;
  for (int trial = 0; trial < 2000; ++trial) {
    // Rejection-sample a point in box ∩ simplex via projection.
    std::vector<double> w = rng.NextSimplexPoint(m);
    // Blend toward the center to stay in the box more often.
    double alpha = rng.NextDouble();
    for (int i = 0; i < m; ++i) w[i] = alpha * w[i] + (1 - alpha) * center[i];
    if (!box.Contains(w, 0.0)) continue;
    double dot = 0;
    for (int i = 0; i < m; ++i) dot += d[i] * w[i];
    EXPECT_GE(dot, range->min - 1e-9);
    EXPECT_LE(dot, range->max + 1e-9);
    seen_min = std::min(seen_min, dot);
    seen_max = std::max(seen_max, dot);
  }
  // The greedy endpoints are exact optima; sampled extremes can't beat them.
  if (seen_min < 1e17) {
    EXPECT_GE(seen_min, range->min - 1e-9);
    EXPECT_LE(seen_max, range->max + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DotRangePropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
