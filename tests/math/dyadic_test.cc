#include "math/dyadic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(DyadicTest, FromDoubleRoundTripsExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.5, 0.1, 3.141592653589793, 1e-300,
                   -1e300, 2.2250738585072014e-308}) {
    EXPECT_EQ(Dyadic::FromDouble(v).ToDouble(), v) << v;
  }
}

TEST(DyadicTest, ExactAdditionDetectsDoubleRounding) {
  // In doubles, 0.1 + 0.2 != 0.3; in exact arithmetic the converted values
  // must reproduce the double discrepancy precisely.
  Dyadic a = Dyadic::FromDouble(0.1);
  Dyadic b = Dyadic::FromDouble(0.2);
  Dyadic c = Dyadic::FromDouble(0.3);
  EXPECT_NE((a + b).Compare(c), 0);         // exact: 0.1+0.2 != 0.3
  EXPECT_EQ((a + b).ToDouble(), 0.1 + 0.2); // rounding matches IEEE
}

TEST(DyadicTest, SignsAndComparison) {
  Dyadic neg = Dyadic::FromDouble(-2.5);
  Dyadic pos = Dyadic::FromDouble(1.25);
  EXPECT_EQ(neg.sign(), -1);
  EXPECT_EQ(pos.sign(), 1);
  EXPECT_EQ(Dyadic().sign(), 0);
  EXPECT_LT(neg, pos);
  EXPECT_GT(pos, neg);
  EXPECT_EQ(neg.Abs(), Dyadic::FromDouble(2.5));
}

TEST(DyadicTest, MultiplicationIsExact) {
  Dyadic a = Dyadic::FromDouble(0.1);
  // 0.1 * 3 computed exactly differs from the double 0.30000000000000004
  // by less than one ulp of the double result but is NOT equal to it.
  Dyadic three(3);
  Dyadic exact = a * three;
  EXPECT_NE(exact.Compare(Dyadic::FromDouble(0.1 * 3)), 0);
  EXPECT_NEAR(exact.ToDouble(), 0.3, 1e-16);
}

TEST(DyadicTest, NormalizationKeepsMantissaOdd) {
  Dyadic v(BigInt(40), 0);  // 40 = 5 * 2^3
  EXPECT_EQ(v.mantissa(), BigInt(5));
  EXPECT_EQ(v.exponent(), 3);
  EXPECT_DOUBLE_EQ(v.ToDouble(), 40.0);
}

TEST(DyadicTest, ZeroHandling) {
  Dyadic z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ((z + z).sign(), 0);
  EXPECT_TRUE((Dyadic(5) - Dyadic(5)).is_zero());
  EXPECT_TRUE((z * Dyadic(7)).is_zero());
}

class DyadicPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DyadicPropertyTest, FieldLikeAxiomsOnRandomDoubles) {
  Rng rng(GetParam());
  double da = rng.NextGaussian() * std::pow(10, rng.NextInt(-8, 8));
  double db = rng.NextGaussian() * std::pow(10, rng.NextInt(-8, 8));
  double dc = rng.NextGaussian();
  Dyadic a = Dyadic::FromDouble(da);
  Dyadic b = Dyadic::FromDouble(db);
  Dyadic c = Dyadic::FromDouble(dc);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_TRUE((a - a).is_zero());
  // Comparison agrees with double comparison (doubles convert exactly).
  EXPECT_EQ(a.Compare(b), da < db ? -1 : (da > db ? 1 : 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DyadicPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace rankhow
