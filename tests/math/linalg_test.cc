#include "math/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(SolveLinearSystemTest, Solves2x2) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, DetectsSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(SolveLinearSystemTest, NeedsPivoting) {
  // Zero on the initial diagonal requires row exchange.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  auto x = SolveLinearSystem(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  Rng rng(1);
  const int n = 50;
  const int p = 3;
  std::vector<double> beta_true = {0.5, -1.25, 2.0};
  Matrix x(n, p);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double yi = 0;
    for (int j = 0; j < p; ++j) {
      x.at(i, j) = rng.NextGaussian();
      yi += x.at(i, j) * beta_true[j];
    }
    y[i] = yi;
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  for (int j = 0; j < p; ++j) EXPECT_NEAR((*beta)[j], beta_true[j], 1e-9);
}

TEST(LeastSquaresTest, RidgeFallbackOnCollinearColumns) {
  Matrix x(4, 2);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = i + 1.0;
    x.at(i, 1) = 2.0 * (i + 1.0);  // perfectly collinear
  }
  auto beta = LeastSquares(x, {1, 2, 3, 4});
  ASSERT_TRUE(beta.ok());  // ridge makes it solvable
  // Fitted values should still reproduce y.
  auto fitted = x.Times(*beta);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(fitted[i], i + 1.0, 1e-3);
}

TEST(NnlsTest, ClampsNegativeSolution) {
  // Unconstrained optimum has a negative coefficient; NNLS must return 0.
  Matrix x(3, 2);
  x.at(0, 0) = 1;
  x.at(0, 1) = 0;
  x.at(1, 0) = 0;
  x.at(1, 1) = 1;
  x.at(2, 0) = 1;
  x.at(2, 1) = 1;
  std::vector<double> y = {-1.0, 2.0, 1.0};
  auto beta = NonNegativeLeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_GE((*beta)[0], 0.0);
  EXPECT_GE((*beta)[1], 0.0);
  EXPECT_EQ((*beta)[0], 0.0);
  EXPECT_NEAR((*beta)[1], 1.5, 1e-9);
}

TEST(NnlsTest, MatchesOlsWhenOlsIsNonNegative) {
  Rng rng(2);
  const int n = 40;
  const int p = 4;
  std::vector<double> beta_true = {0.3, 0.7, 0.1, 1.4};
  Matrix x(n, p);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double yi = 0;
    for (int j = 0; j < p; ++j) {
      x.at(i, j) = std::abs(rng.NextGaussian());
      yi += x.at(i, j) * beta_true[j];
    }
    y[i] = yi;
  }
  auto nnls = NonNegativeLeastSquares(x, y);
  ASSERT_TRUE(nnls.ok());
  for (int j = 0; j < p; ++j) EXPECT_NEAR((*nnls)[j], beta_true[j], 1e-6);
}

// Property: NNLS satisfies KKT conditions — beta >= 0, gradient >= -tol,
// and complementary slackness.
class NnlsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NnlsPropertyTest, KktConditionsHold) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(5, 30));
  int p = static_cast<int>(rng.NextInt(1, 6));
  Matrix x(n, p);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) x.at(i, j) = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  auto beta = NonNegativeLeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  std::vector<double> resid = x.Times(*beta);
  for (int i = 0; i < n; ++i) resid[i] = y[i] - resid[i];
  std::vector<double> grad = x.TransposeTimes(resid);  // = -∇(0.5||..||²)
  for (int j = 0; j < p; ++j) {
    EXPECT_GE((*beta)[j], 0.0);
    EXPECT_LE(grad[j], 1e-6) << "negative gradient would allow improvement";
    if ((*beta)[j] > 1e-8) {
      EXPECT_NEAR(grad[j], 0.0, 1e-6) << "active coefficient not stationary";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
