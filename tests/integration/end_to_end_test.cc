/// End-to-end integration tests: the full pipeline from data generation
/// through seeding, exact solving, SYM-GD, competitors, and exact
/// verification — the same paths the benchmark harnesses exercise.

#include <gtest/gtest.h>

#include "baselines/adarank.h"
#include "baselines/linear_regression.h"
#include "baselines/ordinal_regression.h"
#include "baselines/sampling.h"
#include "core/rankhow.h"
#include "core/seeding.h"
#include "core/sym_gd.h"
#include "data/csrankings.h"
#include "data/derived.h"
#include "data/nba.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"

namespace rankhow {
namespace {

EpsilonConfig NbaEps() {
  // The paper's NBA settings (normalized data): ε = 5e-5, ε1 = 1e-4, ε2 = 0.
  EpsilonConfig eps;
  eps.tie_eps = 5e-5;
  eps.eps1 = 1e-4;
  eps.eps2 = 0.0;
  return eps;
}

TEST(EndToEndTest, MvpCaseStudyPipeline) {
  // Scaled-down Sec. VI-B: simulate seasons, hold the MVP vote, solve OPT
  // over the vote receivers, verify, then explore with a constraint.
  NbaData nba = GenerateNba({.num_tuples = 3000, .seed = 42});
  MvpVoteResult mvp = SimulateMvpVote(nba, 100, 7);
  ASSERT_GE(mvp.ranking.k(), 5);

  Dataset voted = mvp.voted_table;
  voted.NormalizeMinMax();
  RankHowOptions options;
  options.eps = NbaEps();
  // Enough for a good incumbent on this m=8 instance; proving optimality
  // can take much longer and is exercised by bench_case_study_mvp instead.
  options.time_limit_seconds = 15;
  RankHow solver(voted, mvp.ranking, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->verification.has_value());
  EXPECT_TRUE(result->verification->consistent);
  // The panel votes are driven by MP·PER which correlates with the stats:
  // a small per-tuple error is expected.
  EXPECT_LE(result->error, 3 * mvp.ranking.k());

  // Example-1-style exploration: demand scoring weight on PTS.
  int pts = *voted.AttributeIndex("PTS");
  RankHow constrained(voted, mvp.ranking, options);
  constrained.problem().constraints.AddMinWeight(pts, 0.1, "pts>=0.1");
  auto constrained_result = constrained.Solve();
  ASSERT_TRUE(constrained_result.ok())
      << constrained_result.status().ToString();
  EXPECT_GE(constrained_result->function.weights[pts], 0.1 - 1e-6);
  // Adding a constraint can only worsen the *optimum*. Within a time budget
  // both solves return heuristic incumbents, so the clean inequality is only
  // guaranteed between proven optima; the always-sound relation is against
  // the unconstrained proven lower bound.
  EXPECT_GE(constrained_result->error, result->bound);
  if (result->proven_optimal && constrained_result->proven_optimal) {
    EXPECT_GE(constrained_result->error, result->error);
  }
}

TEST(EndToEndTest, SymGdWithOrdinalSeedOnCsRankings) {
  CsRankingsData cs = GenerateCsRankings({.num_institutions = 150,
                                          .num_areas = 8, .seed = 3});
  Dataset data = cs.table;
  data.NormalizeMinMax();
  Ranking given = Ranking::FromScores(cs.default_scores, 10);

  auto seed = OrdinalRegressionSeed(data, given, 1e-4);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();

  SymGdOptions options;
  options.cell_size = 0.2;
  options.adaptive = true;
  options.time_budget_seconds = 15;
  options.solver.eps = NbaEps();
  SymGd symgd(data, given, options);
  auto result = symgd.Run(*seed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  long seed_error = PositionError(data, given, *seed, NbaEps().tie_eps);
  EXPECT_LE(result->error, seed_error);
}

TEST(EndToEndTest, RankHowBeatsAllCompetitorsOnSyntheticOpt) {
  // The Fig-3 "big picture" shape in miniature: the exact solver's verified
  // error lower-bounds every competitor.
  SyntheticSpec spec;
  spec.num_tuples = 60;
  spec.num_attributes = 4;
  spec.distribution = SyntheticDistribution::kAntiCorrelated;
  spec.seed = 11;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 6);

  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = 30;
  RankHow solver(data, given, options);
  auto exact = solver.Solve();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_TRUE(exact->proven_optimal);

  auto lin = FitLinearRegression(data, given);
  ASSERT_TRUE(lin.ok());
  EXPECT_LE(exact->error,
            PositionError(data, given, lin->weights, eps.tie_eps));

  auto ord = FitOrdinalRegression(data, given);
  ASSERT_TRUE(ord.ok());
  EXPECT_LE(exact->error,
            PositionError(data, given, ord->weights, eps.tie_eps));

  auto ada = FitAdaRank(data, given);
  ASSERT_TRUE(ada.ok());
  EXPECT_LE(exact->error,
            PositionError(data, given, ada->weights, eps.tie_eps));

  SamplingOptions sampling;
  sampling.time_budget_seconds = 0.2;
  sampling.seed = 5;
  auto smp = RunSampling(data, given, sampling);
  ASSERT_TRUE(smp.ok());
  EXPECT_LE(exact->error, smp->error);
}

TEST(EndToEndTest, DerivedAttributesNeverHurtTheOptimum) {
  // Sec. VI-F: augmenting with A_i^2 can only improve (more attributes =
  // supersets of feasible functions; RankHow error is non-increasing in m).
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 2;
  spec.seed = 9;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 4, 5);

  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  RankHowOptions options;
  options.eps = eps;

  RankHow plain(data, given, options);
  auto base = plain.Solve();
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  Dataset augmented = WithDerivedAttributes(data, {.squares = true});
  RankHow extended(augmented, given, options);
  auto aug = extended.Solve();
  ASSERT_TRUE(aug.ok()) << aug.status().ToString();
  EXPECT_LE(aug->error, base->error);
}

TEST(EndToEndTest, PositionWindowFitsMidRankingSlice) {
  // Sec. I: a university ranked 50th wants a function fit to positions
  // 30-50 only.
  SyntheticSpec spec;
  spec.num_tuples = 80;
  spec.num_attributes = 3;
  spec.seed = 13;
  Dataset data = GenerateSynthetic(spec);
  Ranking full = Ranking::FromScores(data.Scores({0.5, 0.3, 0.2}), 60, 0.0);
  auto window = full.Window(30, 40);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  ASSERT_GE(window->k(), 5);

  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = 30;
  RankHow solver(data, *window, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The slice is linearly realizable (it came from a linear function).
  EXPECT_EQ(result->error, 0);
}

}  // namespace
}  // namespace rankhow
