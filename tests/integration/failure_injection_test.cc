// Failure injection: adversarial, degenerate, and malformed inputs must
// produce crisp Status errors or well-defined results — never silent
// garbage. Each test documents the contract the public API keeps when the
// world misbehaves.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baselines/ordinal_regression.h"
#include "core/rankhow.h"
#include "core/sym_gd.h"
#include "data/dataset.h"
#include "util/csv.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset TwoByTwo(double a00, double a01, double a10, double a11) {
  Dataset d({"A", "B"}, 2);
  d.set_value(0, 0, a00);
  d.set_value(0, 1, a01);
  d.set_value(1, 0, a10);
  d.set_value(1, 1, a11);
  return d;
}

TEST(FailureInjectionTest, NanAttributeValueRejected) {
  Dataset d = TwoByTwo(1, 2, std::nan(""), 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, InfiniteAttributeValueRejected) {
  Dataset d = TwoByTwo(1, 2, std::numeric_limits<double>::infinity(), 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  EXPECT_FALSE(solver.Solve().ok());
}

TEST(FailureInjectionTest, EpsilonOrderingViolationRejected) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps.tie_eps = 1e-3;  // tie_eps >= eps1 breaks Lemma 2/3 ordering
  options.eps.eps1 = 1e-6;
  options.eps.eps2 = 0.0;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, DatasetRankingSizeMismatchRejected) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2, kUnranked});  // 3 tuples vs 2
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  EXPECT_FALSE(solver.Solve().ok());
}

TEST(FailureInjectionTest, PositionConstraintOnUnknownTupleRejected) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  solver.problem().position_constraints.push_back({99, 1, 1});
  EXPECT_FALSE(solver.Solve().ok());
}

TEST(FailureInjectionTest, EmptyPositionRangeRejected) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  solver.problem().position_constraints.push_back({0, 3, 2});  // max < min
  EXPECT_FALSE(solver.Solve().ok());
}

TEST(FailureInjectionTest, SelfOrderConstraintRejected) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  solver.problem().order_constraints.push_back({1, 1});
  EXPECT_FALSE(solver.Solve().ok());
}

// Contradictory weight predicates must surface kInfeasible on every
// strategy, not hang or fabricate a function.
class InfeasiblePredicateTest
    : public ::testing::TestWithParam<SolveStrategy> {};

TEST_P(InfeasiblePredicateTest, ReportsInfeasible) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = GetParam();
  options.use_presolve = false;
  RankHow solver(d, given, options);
  solver.problem().constraints.AddMinWeight(0, 0.7);
  solver.problem().constraints.AddMinWeight(1, 0.7);  // sums past 1
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, InfeasiblePredicateTest,
    ::testing::Values(SolveStrategy::kIndicatorMilp, SolveStrategy::kSpatial,
                      SolveStrategy::kSatBinarySearch),
    [](const ::testing::TestParamInfo<SolveStrategy>& info) {
      switch (info.param) {
        case SolveStrategy::kIndicatorMilp:
          return "IndicatorMilp";
        case SolveStrategy::kSpatial:
          return "Spatial";
        case SolveStrategy::kSatBinarySearch:
          return "SatBinarySearch";
        default:
          return "Other";
      }
    });

// Contradictory order constraints (a > b and b > a) are detected as
// infeasible by every strategy.
TEST(FailureInjectionTest, ContradictoryOrderConstraintsInfeasible) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  for (SolveStrategy strategy :
       {SolveStrategy::kIndicatorMilp, SolveStrategy::kSpatial}) {
    RankHowOptions options;
    options.eps = TestEps();
    options.strategy = strategy;
    options.use_presolve = false;
    RankHow solver(d, given, options);
    solver.problem().order_constraints.push_back({0, 1});
    solver.problem().order_constraints.push_back({1, 0});
    auto result = solver.Solve();
    ASSERT_FALSE(result.ok()) << SolveStrategyName(strategy);
    EXPECT_EQ(result.status().code(), StatusCode::kInfeasible)
        << SolveStrategyName(strategy);
  }
}

// A dataset where every tuple is identical: every weight vector scores all
// tuples equally, everything ties at position 1. The optimum is the exact
// error of that all-tied ranking — finite, computable, no crash.
TEST(FailureInjectionTest, AllIdenticalTuples) {
  Dataset d({"A", "B"}, 4);
  for (int t = 0; t < 4; ++t) {
    d.set_value(t, 0, 3.0);
    d.set_value(t, 1, 7.0);
  }
  Ranking given = MustCreate({1, 2, 3, 4});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // All four tie at 1: per-tuple errors |1-1|+|1-2|+|1-3|+|1-4| = 6.
  EXPECT_EQ(result->error, 6);
  EXPECT_TRUE(result->proven_optimal);
}

// A single attribute (m = 1): the simplex degenerates to the point w = (1).
TEST(FailureInjectionTest, SingleAttributeDegenerateSimplex) {
  Dataset d({"A"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(1, 0, 2);
  d.set_value(2, 0, 1);
  Ranking given = MustCreate({1, 2, 3});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_DOUBLE_EQ(result->function.weights[0], 1.0);
}

// Data at wildly mismatched magnitudes (1e-8 vs 1e8 columns): the solver
// must either return a verified answer or flag it, never an unverified lie.
TEST(FailureInjectionTest, ExtremeMagnitudeColumnsStayVerified) {
  Dataset d({"tiny", "huge"}, 4);
  double tiny[] = {4e-8, 3e-8, 2e-8, 1e-8};
  double huge[] = {1e8, 2e8, 3e8, 4e8};
  for (int t = 0; t < 4; ++t) {
    d.set_value(t, 0, tiny[t]);
    d.set_value(t, 1, huge[t]);
  }
  Ranking given = MustCreate({1, 2, 3, 4});
  RankHowOptions options;
  options.eps.tie_eps = 5e-3;
  options.eps.eps1 = 1e-2;
  options.eps.eps2 = 0.0;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->verification.has_value());
  // The exact (rational-arithmetic) error is authoritative; the claim must
  // match it or be flagged inconsistent.
  if (result->verification->consistent) {
    EXPECT_EQ(result->error, result->verification->exact_error);
  } else {
    EXPECT_NE(result->claimed_error, result->verification->exact_error);
  }
}

// k == n: every tuple is ranked; dominance fixing has no ⊥ tail to exploit.
TEST(FailureInjectionTest, FullRankingKEqualsN) {
  Dataset d({"A", "B"}, 5);
  double a[] = {5, 4, 3, 2, 1};
  double b[] = {1, 2, 3, 4, 5};
  for (int t = 0; t < 5; ++t) {
    d.set_value(t, 0, a[t]);
    d.set_value(t, 1, b[t]);
  }
  Ranking given = MustCreate({1, 2, 3, 4, 5});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
}

// An entirely tied given ranking [1,1,1] is valid and trivially realized by
// any weight vector only when tuples tie; with distinct tuples the optimum
// must pay for the forced strict order.
TEST(FailureInjectionTest, AllTiedGivenRanking) {
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 2);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 3);
  Ranking given = MustCreate({1, 1, 1});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Any distinct-score outcome displaces two tuples by >= 1 each; ties can
  // realize it exactly when a weight vector equalizes the three scores
  // within tie_eps (w = (0.5, 0.5) scores all three at 2).
  EXPECT_LE(result->error, 2);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(FailureInjectionTest, SymGdRejectsBadCellSize) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  SymGdOptions options;
  options.solver.eps = TestEps();
  options.cell_size = 0.0;  // must be in (0, 2)
  SymGd symgd(d, given, options);
  EXPECT_FALSE(symgd.Run({0.5, 0.5}).ok());
  options.cell_size = 2.5;
  SymGd symgd2(d, given, options);
  EXPECT_FALSE(symgd2.Run({0.5, 0.5}).ok());
}

TEST(FailureInjectionTest, SymGdRejectsOffSimplexSeed) {
  Dataset d = TwoByTwo(1, 2, 2, 1);
  Ranking given = MustCreate({1, 2});
  SymGdOptions options;
  options.solver.eps = TestEps();
  SymGd symgd(d, given, options);
  EXPECT_FALSE(symgd.Run({0.9, 0.9}).ok());   // sums to 1.8
  EXPECT_FALSE(symgd.Run({-0.2, 1.2}).ok());  // negative weight
}

TEST(FailureInjectionTest, OrdinalRegressionRequiresUntiedRanking) {
  // Srinivasan's LP (the original, without our tie extension) rejects tied
  // given rankings; with ties allowed it must succeed.
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 2);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 3);
  Ranking tied = MustCreate({1, 1, 3});
  OrdinalRegressionOptions options;
  options.support_ties = false;
  EXPECT_FALSE(FitOrdinalRegression(d, tied, options).ok());
  options.support_ties = true;
  EXPECT_TRUE(FitOrdinalRegression(d, tied, options).ok());
}

TEST(FailureInjectionTest, MalformedCsvRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());     // arity mismatch
  EXPECT_FALSE(ParseCsv("a,b\n\"1,2\n").ok());     // unterminated quote
  EXPECT_FALSE(ReadCsvFile("/nonexistent/x.csv").ok());
}

TEST(FailureInjectionTest, TimeLimitZeroPointZeroOneStillReturns) {
  // A pathologically small budget must still produce a structured outcome:
  // either an incumbent (unproven) or a clean resource-exhausted error.
  Dataset d({"A", "B", "C"}, 40);
  Rng rng(5);
  for (int t = 0; t < 40; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  std::vector<double> scores(40);
  for (int t = 0; t < 40; ++t) {
    scores[t] = d.value(t, 0) * d.value(t, 0) + 0.3 * d.value(t, 2);
  }
  Ranking given = Ranking::FromScores(scores, 10, 0.0);
  RankHowOptions options;
  options.eps = TestEps();
  options.time_limit_seconds = 0.01;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  if (result.ok()) {
    EXPECT_GE(result->error, 0);
    ASSERT_TRUE(result->verification.has_value());
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace rankhow
