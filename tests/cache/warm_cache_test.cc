// The persistent warm-start cache suite: on-disk round-trips with the
// journal's torn-tail/CRC-corruption tolerance, the fingerprint soundness
// rule (exact match may seed a tighten-only bound under the semantics
// check; ANY mismatch demotes to a revalidation candidate and NEVER
// surfaces a bound), canonical fingerprint invariance, and end-to-end
// SolveSession draws — a second session over the identical problem must
// report the identical proven error while drawing warm state, and a
// constraint-edited session must see demotions only.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_session.h"
#include "core/warm_cache.h"
#include "util/random.h"

namespace rankhow {
namespace {

/// A self-deleting scratch directory for cache files.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/rankhow_cache_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    ::remove((path + "/warm.cache").c_str());
    ::rmdir(path.c_str());
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

WarmCacheOptions SyncOptions() {
  WarmCacheOptions options;
  options.synchronous_appends = true;  // tests reopen right after publishing
  return options;
}

WarmCache::Entry MakeEntry(uint64_t dfp, uint64_t pfp, long error,
                           std::vector<double> weights,
                           bool true_semantics = true) {
  WarmCache::Entry e;
  e.fp.dataset_fp = dfp;
  e.fp.problem_fp = pfp;
  e.true_semantics = true_semantics;
  e.error = error;
  e.weights = std::move(weights);
  return e;
}

TEST(WarmCacheTest, RoundTripsAcrossReopen) {
  TempDir dir;
  {
    auto cache = WarmCache::Open(dir.path, SyncOptions());
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    (*cache)->Publish(MakeEntry(0x11, 0xaa, 3, {0.25, 0.75}));
    (*cache)->Publish(MakeEntry(0x11, 0xbb, 5, {1.0 / 3.0, 2.0 / 3.0}));
  }
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  WarmCacheStats stats = (*cache)->Stats();
  EXPECT_EQ(stats.loaded, 2);
  EXPECT_EQ(stats.skipped, 0);
  EXPECT_EQ(stats.truncated, 0);
  EXPECT_EQ(stats.entries, 2);

  WarmCache::Draw draw = (*cache)->DrawFor({0x11, 0xaa}, /*gap_semantics=*/true);
  ASSERT_EQ(draw.exact.size(), 1u);
  EXPECT_EQ(draw.exact[0].error, 3);
  // %.17g framing: the awkward binary fraction round-trips bit-exactly.
  ASSERT_EQ(draw.candidates.size(), 1u);
  EXPECT_EQ(draw.candidates[0][0], 1.0 / 3.0);
  EXPECT_EQ(draw.bound, 3);
}

TEST(WarmCacheTest, MismatchDemotesToCandidateAndNeverSeedsABound) {
  // The soundness negative test: a same-dataset entry whose problem
  // fingerprint mismatches the draw is handed out as a revalidation
  // candidate with its recorded error DISCARDED — Draw::bound must stay -1
  // no matter how good the stale entry's error looks.
  TempDir dir;
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  (*cache)->Publish(MakeEntry(0x11, 0xaa, /*error=*/0, {0.5, 0.5}));

  WarmCache::Draw draw = (*cache)->DrawFor({0x11, 0xdead}, true);
  EXPECT_TRUE(draw.exact.empty());
  ASSERT_EQ(draw.candidates.size(), 1u);
  EXPECT_EQ(draw.candidates[0], (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(draw.bound, -1)
      << "a fingerprint-mismatched entry seeded a bound (UNSOUND)";
  EXPECT_EQ((*cache)->Stats().demotions, 1);
  EXPECT_EQ((*cache)->Stats().hits, 0);
  EXPECT_EQ((*cache)->Stats().misses, 1);
}

TEST(WarmCacheTest, OtherDatasetsNeverSurface) {
  // Entries over a different dataset are not even dimension-compatible:
  // they must not appear as candidates either.
  TempDir dir;
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  (*cache)->Publish(MakeEntry(0x11, 0xaa, 2, {0.5, 0.5}));

  WarmCache::Draw draw = (*cache)->DrawFor({0x22, 0xaa}, true);
  EXPECT_TRUE(draw.exact.empty());
  EXPECT_TRUE(draw.candidates.empty());
  EXPECT_EQ(draw.bound, -1);
}

TEST(WarmCacheTest, SemanticsGateTheBoundButNotTheWarmStart) {
  // A gap-semantics entry (MILP/SAT) proves the (ε₂, ε₁)-gap optimum; that
  // does NOT bound a spatial (true ε-tie) solve, so the draw hands out the
  // weights but no bound. A true-semantics entry bounds both.
  TempDir dir;
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  (*cache)->Publish(
      MakeEntry(0x11, 0xaa, 4, {0.5, 0.5}, /*true_semantics=*/false));

  WarmCache::Draw spatial = (*cache)->DrawFor({0x11, 0xaa}, false);
  ASSERT_EQ(spatial.exact.size(), 1u);
  EXPECT_EQ(spatial.bound, -1)
      << "a gap-semantics entry bounded a true-semantics solve (UNSOUND)";

  WarmCache::Draw gap = (*cache)->DrawFor({0x11, 0xaa}, true);
  EXPECT_EQ(gap.bound, 4);

  (*cache)->Publish(MakeEntry(0x11, 0xaa, 3, {0.25, 0.75}, true));
  spatial = (*cache)->DrawFor({0x11, 0xaa}, false);
  EXPECT_EQ(spatial.bound, 3) << "true semantics bounds either solve kind";
}

TEST(WarmCacheTest, TornTailIsTruncatedAndIntactRecordsSurvive) {
  TempDir dir;
  {
    auto cache = WarmCache::Open(dir.path, SyncOptions());
    ASSERT_TRUE(cache.ok());
    (*cache)->Publish(MakeEntry(0x11, 0xaa, 3, {0.5, 0.5}));
    (*cache)->Publish(MakeEntry(0x11, 0xbb, 4, {0.25, 0.75}));
  }
  const std::string file = dir.path + "/warm.cache";
  // A crash mid-append leaves a partial record with no trailing newline.
  std::string bytes = ReadFile(file);
  WriteFile(file, bytes + "RHW1 00000000 40 win 11 cc");

  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->Stats().loaded, 2);
  EXPECT_EQ((*cache)->Stats().truncated, 1);
  EXPECT_EQ((*cache)->DrawFor({0x11, 0xaa}, true).exact.size(), 1u);
}

TEST(WarmCacheTest, CorruptRecordIsSkippedAndTheRestLoad) {
  TempDir dir;
  {
    auto cache = WarmCache::Open(dir.path, SyncOptions());
    ASSERT_TRUE(cache.ok());
    (*cache)->Publish(MakeEntry(0x11, 0xaa, 3, {0.5, 0.5}));
    (*cache)->Publish(MakeEntry(0x11, 0xbb, 4, {0.25, 0.75}));
    (*cache)->Publish(MakeEntry(0x11, 0xcc, 5, {0.75, 0.25}));
  }
  const std::string file = dir.path + "/warm.cache";
  std::string bytes = ReadFile(file);
  // Flip one payload byte of the middle record; its CRC no longer matches,
  // and line resynchronization must carry the loader to record three.
  const size_t second = bytes.find("RHW1", 1);
  ASSERT_NE(second, std::string::npos);
  const size_t win = bytes.find("win", second);
  ASSERT_NE(win, std::string::npos);
  bytes[win] = 'x';
  WriteFile(file, bytes);

  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->Stats().loaded, 2);
  EXPECT_EQ((*cache)->Stats().skipped, 1);
  EXPECT_EQ((*cache)->DrawFor({0x11, 0xcc}, true).exact.size(), 1u);
}

TEST(WarmCacheTest, PublishDeduplicatesAndRefreshesOnBetterError) {
  TempDir dir;
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  (*cache)->Publish(MakeEntry(0x11, 0xaa, 5, {0.5, 0.5}));
  const uint64_t gen = (*cache)->generation();
  // Identical winner again: no new entry, no generation churn (sessions
  // skip redrawing an unchanged cache on the generation counter).
  (*cache)->Publish(MakeEntry(0x11, 0xaa, 5, {0.5, 0.5}));
  EXPECT_EQ((*cache)->Stats().entries, 1);
  EXPECT_EQ((*cache)->generation(), gen);
  // Same weights, better proven error: refresh in place.
  (*cache)->Publish(MakeEntry(0x11, 0xaa, 2, {0.5, 0.5}));
  EXPECT_EQ((*cache)->Stats().entries, 1);
  EXPECT_GT((*cache)->generation(), gen);
  EXPECT_EQ((*cache)->DrawFor({0x11, 0xaa}, true).bound, 2);
}

TEST(WarmCacheTest, PerKeyCapKeepsTheNewestEntries) {
  TempDir dir;
  WarmCacheOptions options = SyncOptions();
  options.max_entries_per_key = 2;
  auto cache = WarmCache::Open(dir.path, options);
  ASSERT_TRUE(cache.ok());
  for (int i = 0; i < 4; ++i) {
    (*cache)->Publish(MakeEntry(0x11, 0xaa, 4 - i, {0.1 * (i + 1), 0.5}));
  }
  EXPECT_EQ((*cache)->Stats().entries, 2);
  WarmCache::Draw draw = (*cache)->DrawFor({0x11, 0xaa}, true);
  EXPECT_EQ(draw.exact.size(), 2u) << "cap kept the wrong number of entries";
  // The oldest two (errors 4, 3) were evicted; the strongest surviving
  // bound is the max over the retained entries.
  EXPECT_EQ(draw.bound, 2);
}

// ---------------------------------------------------------------------------
// Canonical fingerprint invariance.

TEST(WarmCacheTest, ConstraintHashIsOrderIndependent) {
  WeightConstraintSet forward;
  WeightConstraintSet backward;
  WeightConstraint a;
  a.terms = {{0, 1.0}, {1, -0.5}};
  a.op = RelOp::kGe;
  a.rhs = 0.1;
  a.name = "a";
  WeightConstraint b;
  b.terms = {{1, -0.5}, {0, 1.0}};  // same terms, listed backwards
  b.op = RelOp::kGe;
  b.rhs = 0.1;
  b.name = "b-different-name";  // names affect removal, not the feasible set
  WeightConstraint c;
  c.terms = {{2, 1.0}};
  c.op = RelOp::kLe;
  c.rhs = 0.9;
  c.name = "c";

  forward.Add(a);
  forward.Add(c);
  backward.Add(c);
  backward.Add(b);
  EXPECT_EQ(HashWeightConstraints(forward), HashWeightConstraints(backward));

  WeightConstraint d = c;
  d.rhs = 0.8;
  backward.Add(d);
  EXPECT_NE(HashWeightConstraints(forward), HashWeightConstraints(backward));
}

TEST(WarmCacheTest, EpsilonAndObjectiveChangeTheProblemFingerprint) {
  OptProblem problem;
  problem.eps.eps1 = 1e-6;
  problem.eps.eps2 = 0.0;
  problem.eps.tie_eps = 5e-7;
  const ProblemFingerprint base = FingerprintProblem(7, 13, problem);
  EXPECT_EQ(base, FingerprintProblem(7, 13, problem));

  OptProblem eps_moved = problem;
  eps_moved.eps.eps1 = 2e-6;
  EXPECT_NE(base, FingerprintProblem(7, 13, eps_moved));

  OptProblem objective_moved = problem;
  objective_moved.objective.kind = ObjectiveKind::kInversions;
  EXPECT_NE(base, FingerprintProblem(7, 13, objective_moved));

  OptProblem order_moved = problem;
  order_moved.order_constraints.push_back({1, 2});
  EXPECT_NE(base, FingerprintProblem(7, 13, order_moved));
}

// ---------------------------------------------------------------------------
// End-to-end through SolveSession.

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(WarmCacheSessionTest, RestartWarmSolveMatchesColdExactly) {
  // The acceptance property, in-process: a fresh session over the identical
  // problem and a reopened cache must close with the bit-identical proven
  // error while actually drawing warm state.
  Rng rng(71);
  Dataset data = RandomDataset(rng, 13, 3);
  Ranking given = RandomRanking(rng, 13, 6);
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;

  TempDir dir;
  long cold_error = -1;
  {
    auto cache = WarmCache::Open(dir.path, SyncOptions());
    ASSERT_TRUE(cache.ok());
    SolveSession session(data, given, options);
    session.AttachWarmCache(cache->get());
    auto r = session.Solve();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->proven_optimal);
    cold_error = r->error;
    EXPECT_EQ(session.stats().cache_misses, 1);
    EXPECT_GT(session.stats().cache_publishes, 0);
  }
  // "Restart": a brand-new cache object over the same directory and a
  // brand-new session — nothing carries over but the file.
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  ASSERT_GT((*cache)->Stats().loaded, 0) << "nothing was persisted";
  SolveSession session(data, given, options);
  session.AttachWarmCache(cache->get());
  auto warm = session.Solve();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->proven_optimal);
  EXPECT_EQ(warm->error, cold_error)
      << "restart-warm equivalence broken: warm first solve disagrees";
  EXPECT_EQ(session.stats().cache_hits, 1);
  EXPECT_GT(session.stats().cache_bound_seeds, 0);
  EXPECT_EQ(warm->stats.nodes_explored, 0)
      << "an exact-fingerprint winner + bound must close at the root";
}

TEST(WarmCacheSessionTest, EditedProblemDrawsDemotionsAndNeverABound) {
  // The end-to-end negative test: constraint edits change the fingerprint,
  // so the cached winner comes back as a revalidation candidate — the
  // session must report demotions and zero cache bound seeds, and still
  // agree with a cold solve of the edited problem.
  Rng rng(72);
  Dataset data = RandomDataset(rng, 13, 3);
  Ranking given = RandomRanking(rng, 13, 6);
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;

  TempDir dir;
  {
    auto cache = WarmCache::Open(dir.path, SyncOptions());
    ASSERT_TRUE(cache.ok());
    SolveSession session(data, given, options);
    session.AttachWarmCache(cache->get());
    ASSERT_TRUE(session.Solve().ok());
  }
  auto cache = WarmCache::Open(dir.path, SyncOptions());
  ASSERT_TRUE(cache.ok());
  SolveSession session(data, given, options);
  session.AttachWarmCache(cache->get());
  WeightConstraint floor;
  floor.terms = {{0, 1.0}};
  floor.op = RelOp::kGe;
  floor.rhs = 0.25;
  floor.name = "floor0";
  ASSERT_TRUE(session.AddWeightConstraint(floor).ok());
  auto edited = session.Solve();
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();
  EXPECT_TRUE(edited->proven_optimal);
  EXPECT_GT(session.stats().cache_demotions, 0)
      << "the stale winner never surfaced as a candidate";
  EXPECT_EQ(session.stats().cache_bound_seeds, 0)
      << "a mismatched cache entry seeded a bound (UNSOUND)";

  SolveSession cold(data, given, options);
  ASSERT_TRUE(cold.AddWeightConstraint(floor).ok());
  auto cold_result = cold.Solve();
  ASSERT_TRUE(cold_result.ok());
  EXPECT_EQ(edited->error, cold_result->error);
}

TEST(WarmCacheTest, ConcurrentPublishAndDrawIsRaceFree) {
  // The tsan-gate hammer: many threads publishing distinct winners and
  // drawing across several dataset keys while the background writer drains.
  TempDir dir;
  auto opened = WarmCache::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  WarmCache* cache = opened->get();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([cache, t] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t dfp = 0x10 + (i % 3);
        cache->Publish(MakeEntry(dfp, 0x100 * t + i, i % 7,
                                 {0.5 + 0.001 * t, 0.5 - 0.001 * t}));
        WarmCache::Draw draw =
            cache->DrawFor({dfp, 0x100 * t + (i % 5)}, (t + i) % 2 == 0);
        for (const WarmCache::Entry& e : draw.exact) {
          ASSERT_EQ(e.weights.size(), 2u);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  cache->Flush();
  WarmCacheStats stats = cache->Stats();
  EXPECT_EQ(stats.published, 200);
  EXPECT_FALSE(stats.degraded);
  EXPECT_GT(stats.appended, 0);
}

}  // namespace
}  // namespace rankhow
