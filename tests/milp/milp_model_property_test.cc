// Property sweep for the indicator → big-M compilation (the constraint
// form of Equation (2)). Soundness: a compiled row may never cut off an
// assignment that satisfies the logical indicator semantics; at integral
// binaries it must enforce exactly the indicator's implication.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "milp/milp_model.h"
#include "util/random.h"

namespace rankhow {
namespace {

struct RandomIndicatorModel {
  MilpModel model;
  std::vector<int> continuous;
  int binary = -1;
};

RandomIndicatorModel Build(Rng& rng) {
  RandomIndicatorModel out;
  const int num_vars = static_cast<int>(rng.NextInt(1, 4));
  for (int v = 0; v < num_vars; ++v) {
    double lo = rng.NextUniform(-5, 0);
    double hi = lo + rng.NextUniform(0.5, 8);
    out.continuous.push_back(out.model.lp().AddVariable(lo, hi));
  }
  out.binary = out.model.AddBinaryVariable("d");

  const int num_indicators = static_cast<int>(rng.NextInt(1, 3));
  for (int i = 0; i < num_indicators; ++i) {
    LinearExpr expr;
    for (int v : out.continuous) {
      expr.AddTerm(v, rng.NextUniform(-2, 2));
    }
    IndicatorConstraint ind;
    ind.binary_var = out.binary;
    ind.active_value = rng.NextInt(0, 1) == 1;
    ind.expr = expr;
    ind.op = rng.NextInt(0, 1) == 1 ? RelOp::kGe : RelOp::kLe;
    ind.rhs = rng.NextUniform(-4, 4);
    ind.big_m = -1;  // auto-derive from variable bounds
    out.model.AddIndicator(ind);
  }
  return out;
}

std::vector<double> RandomPoint(Rng& rng, const RandomIndicatorModel& m,
                                double binary_value) {
  std::vector<double> x(m.model.lp().num_variables(), 0.0);
  for (int v : m.continuous) {
    const LpVariable& var = m.model.lp().variable(v);
    x[v] = rng.NextUniform(var.lower, var.upper);
  }
  x[m.binary] = binary_value;
  return x;
}

bool LogicallySatisfied(const MilpModel& model, const std::vector<double>& x) {
  for (const IndicatorConstraint& ind : model.indicators()) {
    double b = x[ind.binary_var];
    bool active = std::abs(b - (ind.active_value ? 1.0 : 0.0)) < 1e-9;
    if (!active) continue;
    double lhs = ind.expr.Evaluate(x);
    bool held = ind.op == RelOp::kGe ? lhs >= ind.rhs - 1e-9
                                     : lhs <= ind.rhs + 1e-9;
    if (!held) return false;
  }
  return true;
}

class MilpCompilePropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Big-M soundness: every logically feasible integral assignment satisfies
// every compiled row (the relaxation only ever over-approximates).
TEST_P(MilpCompilePropertyTest, CompiledRowsNeverCutLogicalPoints) {
  Rng rng(GetParam());
  RandomIndicatorModel m = Build(rng);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x =
        RandomPoint(rng, m, rng.NextInt(0, 1) == 1 ? 1.0 : 0.0);
    if (!LogicallySatisfied(m.model, x)) continue;
    for (size_t i = 0; i < m.model.indicators().size(); ++i) {
      auto row = m.model.CompileIndicator(i);
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      double lhs = row->expr.Evaluate(x);
      bool held = row->op == RelOp::kGe ? lhs >= row->rhs - 1e-7
                                        : lhs <= row->rhs + 1e-7;
      EXPECT_TRUE(held) << "compiled row " << i
                        << " cuts a logically feasible point";
    }
  }
}

// At the ACTIVE binary value the compiled row is exactly the indicator's
// inequality: violating points must violate the row too.
TEST_P(MilpCompilePropertyTest, CompiledRowsEnforceAtActiveValue) {
  Rng rng(GetParam() + 4000);
  RandomIndicatorModel m = Build(rng);
  for (int trial = 0; trial < 200; ++trial) {
    for (size_t i = 0; i < m.model.indicators().size(); ++i) {
      const IndicatorConstraint& ind = m.model.indicators()[i];
      std::vector<double> x =
          RandomPoint(rng, m, ind.active_value ? 1.0 : 0.0);
      double lhs = ind.expr.Evaluate(x);
      bool logical = ind.op == RelOp::kGe ? lhs >= ind.rhs - 1e-9
                                          : lhs <= ind.rhs + 1e-9;
      auto row = m.model.CompileIndicator(i);
      ASSERT_TRUE(row.ok());
      double row_lhs = row->expr.Evaluate(x);
      bool row_held = row->op == RelOp::kGe ? row_lhs >= row->rhs - 1e-7
                                            : row_lhs <= row->rhs + 1e-7;
      EXPECT_EQ(row_held, logical)
          << "at the active value the big-M surrogate must coincide with "
             "the indicator inequality";
    }
  }
}

// IndicatorRowViolation agrees in sign with direct row evaluation.
TEST_P(MilpCompilePropertyTest, ViolationSignsConsistent) {
  Rng rng(GetParam() + 9000);
  RandomIndicatorModel m = Build(rng);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> x = RandomPoint(rng, m, rng.NextDouble());
    for (size_t i = 0; i < m.model.indicators().size(); ++i) {
      auto row = m.model.CompileIndicator(i);
      ASSERT_TRUE(row.ok());
      auto v = m.model.IndicatorRowViolation(i, x);
      ASSERT_TRUE(v.ok());
      double lhs = row->expr.Evaluate(x);
      double direct = row->op == RelOp::kGe ? row->rhs - lhs
                                            : lhs - row->rhs;
      EXPECT_NEAR(*v, direct, 1e-7);
    }
  }
}

// IsFeasible on the MILP (logical semantics) equals bounds + rows +
// integrality + LogicallySatisfied, for random points.
TEST_P(MilpCompilePropertyTest, IsFeasibleMatchesLogicalSemantics) {
  Rng rng(GetParam() + 13000);
  RandomIndicatorModel m = Build(rng);
  for (int trial = 0; trial < 200; ++trial) {
    double b = rng.NextInt(0, 2) == 2 ? rng.NextDouble()  // fractional
                                      : static_cast<double>(rng.NextInt(0, 1));
    std::vector<double> x = RandomPoint(rng, m, b);
    bool integral = std::abs(b) < 1e-9 || std::abs(b - 1.0) < 1e-9;
    bool expected = integral && LogicallySatisfied(m.model, x);
    EXPECT_EQ(m.model.IsFeasible(x, 1e-6), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpCompilePropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace rankhow
