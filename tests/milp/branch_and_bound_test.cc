#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

// 0/1 knapsack as MILP: max sum v_i x_i s.t. sum w_i x_i <= C.
struct Knapsack {
  std::vector<double> values;
  std::vector<double> weights;
  double capacity;
};

MilpModel BuildKnapsack(const Knapsack& k) {
  MilpModel m;
  LinearExpr weight;
  LinearExpr value;
  for (size_t i = 0; i < k.values.size(); ++i) {
    int x = m.AddBinaryVariable();
    weight += LinearExpr::Term(x, k.weights[i]);
    value += LinearExpr::Term(x, k.values[i]);
  }
  m.lp().AddConstraint(weight, RelOp::kLe, k.capacity);
  // BranchAndBound is minimization-only: maximize value == minimize -value.
  m.lp().SetObjective(value * -1.0, ObjectiveSense::kMinimize);
  return m;
}

double BruteForceKnapsack(const Knapsack& k) {
  const int n = static_cast<int>(k.values.size());
  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double w = 0;
    double v = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        w += k.weights[i];
        v += k.values[i];
      }
    }
    if (w <= k.capacity) best = std::max(best, v);
  }
  return best;
}

TEST(BranchAndBoundTest, SolvesSmallKnapsack) {
  Knapsack k{{10, 13, 7, 8}, {5, 6, 3, 4}, 10};
  MilpModel m = BuildKnapsack(k);
  auto result = BranchAndBound().Solve(m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, -BruteForceKnapsack(k), 1e-6);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(BranchAndBoundTest, RejectsMaximizationSense) {
  MilpModel m;
  int x = m.AddBinaryVariable();
  m.lp().SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMaximize);
  auto result = BranchAndBound().Solve(m);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BranchAndBoundTest, InfeasibleModelReported) {
  MilpModel m;
  int x = m.AddBinaryVariable();
  m.lp().AddConstraint(LinearExpr::Term(x, 1), RelOp::kGe, 2.0);
  m.lp().SetObjective(LinearExpr::Term(x, 1));
  auto result = BranchAndBound().Solve(m);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(BranchAndBoundTest, IndicatorDrivenChoice) {
  // Choose delta to make x large: delta=1 => x >= 3; delta=0 => x <= 1.
  // max x - 0.5*delta: best is delta=1, x=10 (obj 9.5).
  MilpModel m;
  int x = m.lp().AddVariable(0, 10, "x");
  int d = m.AddBinaryVariable("d");
  m.AddIndicator({d, true, LinearExpr::Term(x, 1), RelOp::kGe, 3.0, -1});
  m.AddIndicator({d, false, LinearExpr::Term(x, 1), RelOp::kLe, 1.0, -1});
  m.lp().SetObjective(LinearExpr::Term(x, -1) + LinearExpr::Term(d, 0.5),
                      ObjectiveSense::kMinimize);
  auto result = BranchAndBound().Solve(m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, -9.5, 1e-6);
  EXPECT_NEAR(result->values[x], 10.0, 1e-6);
  EXPECT_NEAR(result->values[d], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, IntegralObjectiveTightensBound) {
  // Fractional LP bound 2.5 must round up to 3 with integral objective.
  // min x1 + x2 + x3 (binaries) s.t. x1+x2 >= 1.5 is infeasible at ints...
  // use: sum of 5 binaries >= 2.5 -> integral optimum 3.
  MilpModel m;
  LinearExpr sum;
  for (int i = 0; i < 5; ++i) sum += LinearExpr::Term(m.AddBinaryVariable(), 1);
  m.lp().AddConstraint(sum, RelOp::kGe, 2.5);
  m.lp().SetObjective(sum, ObjectiveSense::kMinimize);
  BnbOptions opts;
  opts.objective_is_integral = true;
  auto result = BranchAndBound(opts).Solve(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 3.0, 1e-6);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(BranchAndBoundTest, WarmStartIncumbentPrunes) {
  Knapsack k{{10, 13, 7, 8}, {5, 6, 3, 4}, 10};
  MilpModel m = BuildKnapsack(k);
  // Pass the known optimum (negated for max) as the initial incumbent: the
  // solver should still prove optimality without improving it.
  BnbOptions opts;
  opts.initial_incumbent = -BruteForceKnapsack(k);
  opts.initial_values = std::vector<double>(4, 0.0);
  auto result = BranchAndBound(opts).Solve(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, -BruteForceKnapsack(k), 1e-6);
}

TEST(BranchAndBoundTest, NodeLimitReturnsIncumbentUnproven) {
  Rng rng(7);
  Knapsack k;
  for (int i = 0; i < 14; ++i) {
    k.values.push_back(rng.NextUniform(1, 20));
    k.weights.push_back(rng.NextUniform(1, 10));
  }
  k.capacity = 30;
  MilpModel m = BuildKnapsack(k);
  BnbOptions opts;
  opts.max_nodes = 3;  // far too few to finish
  auto result = BranchAndBound(opts).Solve(m);
  // Either found some incumbent (unproven) or exhausted resources.
  if (result.ok()) {
    EXPECT_LE(result->stats.nodes_explored, 3);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(BranchAndBoundTest, PrimalHeuristicSuppliesIncumbent) {
  Knapsack k{{10, 13, 7, 8}, {5, 6, 3, 4}, 10};
  MilpModel m = BuildKnapsack(k);
  int heuristic_calls = 0;
  BranchAndBound solver;
  solver.SetPrimalHeuristic([&](const std::vector<double>& lp_values)
                                -> std::optional<PrimalCandidate> {
    ++heuristic_calls;
    // Round down: always feasible for knapsack (weights positive).
    std::vector<double> x(lp_values.size());
    double value = 0;
    double weight = 0;
    for (size_t i = 0; i < 4; ++i) {
      x[i] = lp_values[i] > 0.99 ? 1.0 : 0.0;
      weight += x[i] * k.weights[i];
      value += x[i] * k.values[i];
    }
    if (weight > k.capacity) return std::nullopt;
    return PrimalCandidate{-value, x};  // minimization sense
  });
  auto result = solver.Solve(m);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(heuristic_calls, 0);
  EXPECT_NEAR(result->objective, -BruteForceKnapsack(k), 1e-6);
}

// Property sweep: random knapsacks vs brute force.
class BnbKnapsackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnbKnapsackPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.NextInt(3, 10));
  Knapsack k;
  for (int i = 0; i < n; ++i) {
    k.values.push_back(std::round(rng.NextUniform(1, 30)));
    k.weights.push_back(std::round(rng.NextUniform(1, 12)));
  }
  k.capacity = std::round(rng.NextUniform(5, 4.0 * n));
  MilpModel m = BuildKnapsack(k);
  auto result = BranchAndBound().Solve(m);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->objective, -BruteForceKnapsack(k), 1e-6);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_TRUE(m.IsFeasible(result->values, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbKnapsackPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

// Property sweep: random indicator MILPs vs enumeration of binary patterns.
class BnbIndicatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnbIndicatorPropertyTest, MatchesEnumeration) {
  Rng rng(GetParam() + 1000);
  const int nb = static_cast<int>(rng.NextInt(1, 4));
  // One continuous variable x in [0, 10]; each binary adds indicator rows
  // delta=1 => x >= a_i, delta=0 => x <= b_i (a_i > b_i).
  MilpModel m;
  int x = m.lp().AddVariable(0, 10, "x");
  std::vector<double> a(nb);
  std::vector<double> b(nb);
  std::vector<double> cost(nb);
  std::vector<int> deltas(nb);
  for (int i = 0; i < nb; ++i) {
    b[i] = rng.NextUniform(0, 4);
    a[i] = b[i] + rng.NextUniform(0.5, 4);
    cost[i] = rng.NextUniform(-3, 3);
    deltas[i] = m.AddBinaryVariable();
    m.AddIndicator({deltas[i], true, LinearExpr::Term(x, 1), RelOp::kGe,
                    a[i], -1});
    m.AddIndicator({deltas[i], false, LinearExpr::Term(x, 1), RelOp::kLe,
                    b[i], -1});
  }
  LinearExpr obj = LinearExpr::Term(x, -1);  // favor large x
  for (int i = 0; i < nb; ++i) obj += LinearExpr::Term(deltas[i], cost[i]);
  m.lp().SetObjective(obj, ObjectiveSense::kMinimize);

  // Enumerate all binary patterns; for each, x range is
  // [max a_i over active, min b_i over inactive].
  double best = kInfinity;
  for (int mask = 0; mask < (1 << nb); ++mask) {
    double x_lo = 0;
    double x_hi = 10;
    double pattern_cost = 0;
    for (int i = 0; i < nb; ++i) {
      if (mask & (1 << i)) {
        x_lo = std::max(x_lo, a[i]);
        pattern_cost += cost[i];
      } else {
        x_hi = std::min(x_hi, b[i]);
      }
    }
    if (x_lo > x_hi) continue;
    best = std::min(best, -x_hi + pattern_cost);
  }

  auto result = BranchAndBound().Solve(m);
  if (!std::isfinite(best)) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
  } else {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(result->objective, best, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbIndicatorPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

// BnbResult equivalence of the two node-LP engines: the shared warm-started
// IncrementalLp (default) and the legacy per-node cold SimplexSolver must
// prove identical objectives and bounds on random knapsacks.
class WarmColdBnbTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmColdBnbTest, ObjectivesUnchangedByWarmStarts) {
  Rng rng(GetParam() + 500);
  const int n = static_cast<int>(rng.NextInt(4, 10));
  Knapsack k;
  for (int i = 0; i < n; ++i) {
    k.values.push_back(rng.NextUniform(1, 20));
    k.weights.push_back(rng.NextUniform(1, 10));
  }
  k.capacity = rng.NextUniform(5, 25);
  MilpModel m = BuildKnapsack(k);

  double objectives[2];
  double bounds[2];
  int i = 0;
  for (bool warm : {false, true}) {
    BnbOptions options;
    options.use_warm_start = warm;
    auto result = BranchAndBound(options).Solve(m);
    ASSERT_TRUE(result.ok()) << "warm=" << warm << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->proven_optimal) << "warm=" << warm;
    objectives[i] = result->objective;
    bounds[i] = result->best_bound;
    ++i;
  }
  EXPECT_NEAR(objectives[0], objectives[1], 1e-6);
  EXPECT_NEAR(bounds[0], bounds[1], 1e-6);
  EXPECT_NEAR(objectives[0], -BruteForceKnapsack(k), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmColdBnbTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
