#include "milp/milp_model.h"

#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace rankhow {
namespace {

TEST(MilpModelTest, BinaryVariablesHaveUnitBounds) {
  MilpModel m;
  int b = m.AddBinaryVariable("b");
  EXPECT_DOUBLE_EQ(m.lp().variable(b).lower, 0.0);
  EXPECT_DOUBLE_EQ(m.lp().variable(b).upper, 1.0);
  ASSERT_EQ(m.binary_vars().size(), 1u);
  EXPECT_EQ(m.binary_vars()[0], b);
}

TEST(MilpModelTest, RelaxationEnforcesIndicatorAtActiveValue) {
  // x in [0,10]; delta=1 => x >= 7; delta=0 => x <= 2.
  MilpModel m;
  int x = m.lp().AddVariable(0, 10, "x");
  int d = m.AddBinaryVariable("d");
  m.AddIndicator({d, true, LinearExpr::Term(x, 1), RelOp::kGe, 7.0, -1});
  m.AddIndicator({d, false, LinearExpr::Term(x, 1), RelOp::kLe, 2.0, -1});

  auto relaxed = m.BuildRelaxation();
  ASSERT_TRUE(relaxed.ok());

  // Fix delta = 1: min x should be 7.
  LpModel at_one = *relaxed;
  at_one.mutable_variable(d).lower = 1.0;
  at_one.SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMinimize);
  auto sol1 = SimplexSolver().Solve(at_one);
  ASSERT_TRUE(sol1.ok());
  EXPECT_NEAR(sol1->values[x], 7.0, 1e-6);

  // Fix delta = 0: max x should be 2.
  LpModel at_zero = *relaxed;
  at_zero.mutable_variable(d).upper = 0.0;
  at_zero.SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMaximize);
  auto sol0 = SimplexSolver().Solve(at_zero);
  ASSERT_TRUE(sol0.ok());
  EXPECT_NEAR(sol0->values[x], 2.0, 1e-6);
}

TEST(MilpModelTest, ExplicitBigMIsUsed) {
  MilpModel m;
  int x = m.lp().AddVariable(0, 10, "x");
  int d = m.AddBinaryVariable("d");
  // Explicit big-M = 100 (valid; auto would derive ~8).
  m.AddIndicator({d, true, LinearExpr::Term(x, 1), RelOp::kGe, 7.0, 100.0});
  auto relaxed = m.BuildRelaxation();
  ASSERT_TRUE(relaxed.ok());
  // At delta = 0 the row must be inactive: x = 0 feasible.
  std::vector<double> x0 = {0.0, 0.0};
  EXPECT_TRUE(relaxed->IsFeasible(x0, 1e-9));
  // At delta = 1, x = 0 must violate.
  std::vector<double> x1 = {0.0, 1.0};
  EXPECT_FALSE(relaxed->IsFeasible(x1, 1e-9));
}

TEST(MilpModelTest, AutoBigMFailsOnUnboundedExpression) {
  MilpModel m;
  int x = m.lp().AddVariable(0, kInfinity, "x");
  int d = m.AddBinaryVariable("d");
  m.AddIndicator({d, true, LinearExpr::Term(x, 1), RelOp::kLe, 7.0, -1});
  EXPECT_FALSE(m.BuildRelaxation().ok());
}

TEST(MilpModelTest, IsFeasibleChecksIndicatorLogic) {
  MilpModel m;
  int x = m.lp().AddVariable(0, 10, "x");
  int d = m.AddBinaryVariable("d");
  m.AddIndicator({d, true, LinearExpr::Term(x, 1), RelOp::kGe, 7.0, -1});

  EXPECT_TRUE(m.IsFeasible({8.0, 1.0}));
  EXPECT_FALSE(m.IsFeasible({3.0, 1.0}));  // indicator violated
  EXPECT_TRUE(m.IsFeasible({3.0, 0.0}));   // inactive indicator
  EXPECT_FALSE(m.IsFeasible({3.0, 0.5}));  // fractional binary
}

}  // namespace
}  // namespace rankhow
