#include "core/cell_bounds.h"

#include <gtest/gtest.h>

#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

TEST(CellBoundsTest, FullSimplexBoundsAreLoose) {
  Rng rng(2);
  Dataset data({"A", "B"}, 20);
  for (int t = 0; t < 20; ++t) {
    data.set_value(t, 0, rng.NextDouble());
    data.set_value(t, 1, rng.NextDouble());
  }
  Ranking given = Ranking::FromScores(data.Scores({0.5, 0.5}), 5, 0.0);
  auto bounds = ComputeCellErrorBounds(data, given,
                                       WeightBox::FullSimplex(2), 1e-9, 0.0);
  ASSERT_TRUE(bounds.ok());
  EXPECT_GE(bounds->upper, bounds->lower);
  EXPECT_EQ(bounds->lower, 0);  // a perfect function exists in the simplex
}

// Property: every sampled weight vector in the box has error within
// [lower, upper].
class CellBoundsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CellBoundsPropertyTest, BoundsSandwichSampledErrors) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(5, 30));
  int m = static_cast<int>(rng.NextInt(2, 4));
  int k = static_cast<int>(rng.NextInt(1, 5));
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset data(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) data.set_value(t, a, rng.NextUniform(0, 1));
  }
  Ranking given =
      Ranking::FromScores(data.Scores(rng.NextSimplexPoint(m)),
                          std::min(k, n), 0.0);
  std::vector<double> center = rng.NextSimplexPoint(m);
  WeightBox box = WeightBox::CellAround(center, rng.NextUniform(0.05, 0.5));
  double eps1 = 1e-9;
  auto bounds = ComputeCellErrorBounds(data, given, box, eps1, 0.0);
  if (!bounds.ok()) return;  // box missed the simplex

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> w = rng.NextSimplexPoint(m);
    if (!box.Contains(w, 0.0)) continue;
    // Evaluate with the MILP's thresholds: beats iff diff >= eps1. Weight
    // vectors with diffs inside (eps2, eps1) are skipped — the bound is
    // stated for indicator-consistent points.
    long error = 0;
    bool in_gap = false;
    for (int r : given.ranked_tuples()) {
      long beats = 0;
      for (int s = 0; s < n; ++s) {
        if (s == r) continue;
        double diff = 0;
        for (int a = 0; a < m; ++a) {
          diff += w[a] * (data.value(s, a) - data.value(r, a));
        }
        if (diff >= eps1) {
          ++beats;
        } else if (diff > 0.0) {
          in_gap = true;
        }
      }
      error += std::labs(static_cast<long>(given.position(r)) - 1 - beats);
    }
    if (in_gap) continue;
    EXPECT_GE(error, bounds->lower);
    EXPECT_LE(error, bounds->upper);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellBoundsPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
