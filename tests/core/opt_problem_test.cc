#include "core/opt_problem.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "ranking/score_ranking.h"

namespace rankhow {
namespace {

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

TEST(AppendRelativePositionBandTest, BandsMatchExampleOneFormula) {
  // Example 1: "a player ranked i-th must be ranked in range ⌊0.9i⌋ to
  // ⌈1.1i⌉". For i = 1..5: lows ⌊0.9⌋..⌊4.5⌋ = 1(clamped),1,2,3,4; highs
  // ⌈1.1⌉..⌈5.5⌉ = 2,3,4,5,6.
  Ranking given = MustCreate({1, 2, 3, 4, 5, kUnranked});
  std::vector<PositionConstraint> bands;
  ASSERT_TRUE(
      AppendRelativePositionBand(given, 0.9, 1.1, 100, &bands).ok());
  ASSERT_EQ(bands.size(), 5u);
  int expected_lo[] = {1, 1, 2, 3, 4};
  int expected_hi[] = {2, 3, 4, 5, 6};
  for (const PositionConstraint& pc : bands) {
    int i = given.position(pc.tuple);
    EXPECT_EQ(pc.min_position, expected_lo[i - 1]) << "i=" << i;
    EXPECT_EQ(pc.max_position, expected_hi[i - 1]) << "i=" << i;
  }
}

TEST(AppendRelativePositionBandTest, LimitCutsOffDeeperPositions) {
  Ranking given = MustCreate({1, 2, 3, 4, 5});
  std::vector<PositionConstraint> bands;
  ASSERT_TRUE(AppendRelativePositionBand(given, 0.9, 1.1, 3, &bands).ok());
  EXPECT_EQ(bands.size(), 3u);
  for (const PositionConstraint& pc : bands) {
    EXPECT_LE(given.position(pc.tuple), 3);
  }
}

TEST(AppendRelativePositionBandTest, UnrankedTuplesSkipped) {
  Ranking given = MustCreate({1, kUnranked, 2, kUnranked});
  std::vector<PositionConstraint> bands;
  ASSERT_TRUE(
      AppendRelativePositionBand(given, 0.8, 1.2, 100, &bands).ok());
  EXPECT_EQ(bands.size(), 2u);
}

TEST(AppendRelativePositionBandTest, RejectsBadFractions) {
  Ranking given = MustCreate({1, 2});
  std::vector<PositionConstraint> bands;
  EXPECT_FALSE(
      AppendRelativePositionBand(given, 0.0, 1.1, 10, &bands).ok());
  EXPECT_FALSE(
      AppendRelativePositionBand(given, 1.2, 0.9, 10, &bands).ok());
  EXPECT_FALSE(
      AppendRelativePositionBand(given, 0.9, 1.1, 0, &bands).ok());
}

// The bands are honored end to end: with a tight band every ranked tuple
// must stay within ±1 of its given slot, which the solution must respect.
TEST(AppendRelativePositionBandTest, SolverHonorsBands) {
  Dataset d({"A", "B"}, 6);
  double a[] = {6, 5, 4, 3, 2, 1};
  double b[] = {1, 2, 6, 5, 3, 4};
  for (int t = 0; t < 6; ++t) {
    d.set_value(t, 0, a[t]);
    d.set_value(t, 1, b[t]);
  }
  Ranking given = MustCreate({1, 2, 3, 4, kUnranked, kUnranked});
  RankHowOptions options;
  options.eps.tie_eps = 5e-7;
  options.eps.eps1 = 1e-6;
  options.eps.eps2 = 0.0;
  RankHow solver(d, given, options);
  ASSERT_TRUE(AppendRelativePositionBand(
                  given, 0.75, 1.25, 4,
                  &solver.problem().position_constraints)
                  .ok());
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<int> positions =
      ScoreRankPositionsOf(d.Scores(result->function.weights),
                           given.ranked_tuples(), options.eps.tie_eps);
  for (size_t i = 0; i < given.ranked_tuples().size(); ++i) {
    int t = given.ranked_tuples()[i];
    int p = given.position(t);
    EXPECT_GE(positions[i], std::max(1, static_cast<int>(0.75 * p)));
    EXPECT_LE(positions[i], static_cast<int>(std::ceil(1.25 * p)));
  }
}

TEST(OptProblemValidateTest, AcceptsWellFormedProblem) {
  Dataset d({"A"}, 2);
  d.set_value(0, 0, 2);
  d.set_value(1, 0, 1);
  Ranking given = MustCreate({1, 2});
  OptProblem problem;
  problem.data = &d;
  problem.given = &given;
  problem.eps.tie_eps = 5e-7;
  problem.eps.eps1 = 1e-6;
  problem.eps.eps2 = 0.0;
  EXPECT_TRUE(problem.Validate().ok());
}

TEST(OptProblemValidateTest, RejectsMissingPieces) {
  OptProblem problem;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(OptProblemValidateTest, RejectsNegativePenalties) {
  Dataset d({"A"}, 2);
  d.set_value(0, 0, 2);
  d.set_value(1, 0, 1);
  Ranking given = MustCreate({1, 2});
  OptProblem problem;
  problem.data = &d;
  problem.given = &given;
  problem.eps.tie_eps = 5e-7;
  problem.eps.eps1 = 1e-6;
  problem.eps.eps2 = 0.0;
  problem.objective.kind = ObjectiveKind::kWeightedPositionError;
  problem.objective.penalties = {0, 3, -1};
  EXPECT_FALSE(problem.Validate().ok());
}

}  // namespace
}  // namespace rankhow
