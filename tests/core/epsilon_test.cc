#include "core/epsilon.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "util/random.h"

namespace rankhow {
namespace {

TEST(DeriveEpsilonsTest, SatisfiesLemmaOrdering) {
  for (double tie_eps : {0.0, 1e-6, 5e-5, 1e-2}) {
    for (double tau : {1e-10, 1e-6, 1e-4}) {
      EpsilonConfig eps = DeriveEpsilons(tie_eps, tau);
      EXPECT_TRUE(eps.Valid()) << "tie_eps=" << tie_eps << " tau=" << tau;
      // Lemma 2: eps1 − eps2 = τ + τ⁺ > 2τ in exact arithmetic; computing
      // the gap in doubles suffers catastrophic cancellation around
      // tie_eps, so allow a relative slack of a few ulps of tie_eps.
      double slack = 4 * std::max(tie_eps, tau) * 1e-15;
      EXPECT_GE(eps.eps1 - eps.eps2, 2 * tau - slack);
      // Lemma 3: eps2 >= tie_eps - tau.
      EXPECT_GE(eps.eps2, tie_eps - tau - 1e-18);
    }
  }
}

TEST(TauSearchTest, FindsThresholdWithSyntheticOracle) {
  // Oracle: verification passes iff tau >= tau_star.
  const double tau_star = 3.7e-6;
  int probes = 0;
  auto oracle = [&](const EpsilonConfig& eps) -> Result<bool> {
    ++probes;
    double tau = eps.eps1 - eps.tie_eps;  // recover tau (≈ tau_plus)
    return tau >= tau_star;
  };
  TauSearchOptions options;
  options.max_steps = 24;
  auto result = FindPrecisionTolerance(1e-4, oracle, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->tau, tau_star * 0.999);
  EXPECT_LE(result->tau, tau_star * 4);  // geometric search converges close
  EXPECT_EQ(result->probes, probes);
  EXPECT_TRUE(result->eps.Valid());
}

TEST(TauSearchTest, FailsWhenNothingVerifies) {
  auto oracle = [](const EpsilonConfig&) -> Result<bool> { return false; };
  auto result = FindPrecisionTolerance(1e-4, oracle);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumerical);
}

TEST(TauSearchTest, EndToEndWithRankHow) {
  // A small instance; the probe actually runs the solver and the exact
  // verifier, mirroring Sec. V-A's procedure.
  Rng rng(9);
  Dataset data({"A", "B"}, 10);
  for (int t = 0; t < 10; ++t) {
    data.set_value(t, 0, rng.NextUniform(0, 1));
    data.set_value(t, 1, rng.NextUniform(0, 1));
  }
  Ranking given = Ranking::FromScores(data.Scores({0.4, 0.6}), 4, 0.0);

  auto probe = [&](const EpsilonConfig& eps) -> Result<bool> {
    RankHowOptions options;
    options.eps = eps;
    RankHow solver(data, given, options);
    auto result = solver.Solve();
    if (!result.ok()) return result.status();
    return result->verification->consistent;
  };
  TauSearchOptions options;
  options.tau_min = 1e-10;
  options.tau_max = 1e-3;
  options.max_steps = 6;
  auto result = FindPrecisionTolerance(0.0, probe, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->probes, 1);
}

}  // namespace
}  // namespace rankhow
