#include "core/spatial_bnb.h"

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

OptProblem MakeProblem(const Dataset& data, const Ranking& given) {
  OptProblem problem;
  problem.data = &data;
  problem.given = &given;
  problem.eps = TestEps();
  return problem;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

TEST(SpatialBnbTest, PerfectLinearRankingProvedOptimal) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attributes = 3;
  spec.seed = 7;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.6, 0.3, 0.1}), 8, 0.0);
  OptProblem problem = MakeProblem(data, given);

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_EQ(result->bound, 0);
  // The returned weights really do reproduce the ranking.
  EXPECT_EQ(PositionError(data, given, result->weights, TestEps().tie_eps),
            0);
}

TEST(SpatialBnbTest, DominatedTopTupleForcesErrorTwo) {
  // s = (2,2) strictly dominates r = (1,1); ranking r first is impossible:
  // under every simplex weight f(s) > f(r), so rho(r) >= 2 and rho(s) = 1,
  // total error exactly 2.
  Dataset data({"A", "B"}, 2);
  data.set_value(0, 0, 1);
  data.set_value(0, 1, 1);
  data.set_value(1, 0, 2);
  data.set_value(1, 1, 2);
  Ranking given = MustCreate({1, 2});
  OptProblem problem = MakeProblem(data, given);

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 2);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(SpatialBnbTest, WarmStartZeroClosesInstantly) {
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 3;
  spec.seed = 21;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> truth = {0.2, 0.5, 0.3};
  Ranking given = Ranking::FromScores(data.Scores(truth), 6, 0.0);
  OptProblem problem = MakeProblem(data, given);

  SpatialBnbOptions options;
  options.initial_weights = truth;
  SpatialBnb solver(problem, options);
  auto result = solver.Solve(WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  // lb(root) = 0 >= incumbent 0: the very first pop terminates the search.
  EXPECT_LE(result->stats.boxes_explored, 1);
}

TEST(SpatialBnbTest, MinWeightConstraintShrinksTheBox) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 3;
  spec.seed = 4;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.9, 0.05, 0.05}), 5, 0.0);
  OptProblem problem = MakeProblem(data, given);
  problem.constraints.AddMinWeight(1, 0.4, "w1>=0.4");

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_GE(result->weights[1], 0.4 - 1e-9);
}

TEST(SpatialBnbTest, GroupBoundGeneralRowIsRespected) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 4;
  spec.seed = 5;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.4, 0.3, 0.2, 0.1}), 5,
                                      0.0);
  OptProblem problem = MakeProblem(data, given);
  // General (multi-term) row: exercises the per-box LP feasibility path.
  problem.constraints.AddGroupBound({0, 1}, RelOp::kLe, 0.3, "w0+w1<=0.3");

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_LE(result->weights[0] + result->weights[1], 0.3 + 1e-7);
}

TEST(SpatialBnbTest, ContradictoryOrderConstraintsAreInfeasible) {
  Dataset data({"A", "B"}, 2);
  data.set_value(0, 0, 1);
  data.set_value(0, 1, 0);
  data.set_value(1, 0, 0);
  data.set_value(1, 1, 1);
  Ranking given = MustCreate({1, 2});
  OptProblem problem = MakeProblem(data, given);
  problem.order_constraints.push_back({0, 1});
  problem.order_constraints.push_back({1, 0});

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SpatialBnbTest, PositionConstraintPrunesAndHolds) {
  SyntheticSpec spec;
  spec.num_tuples = 25;
  spec.num_attributes = 3;
  spec.seed = 13;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.5, 0.25, 0.25}), 6, 0.0);
  OptProblem problem = MakeProblem(data, given);
  // The given #1 must stay within the top 2 positions.
  int top = given.ranked_tuples().front();
  problem.position_constraints.push_back({top, 1, 2});

  SpatialBnb solver(problem, SpatialBnbOptions{});
  auto result = solver.Solve(WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<int> pos =
      ScoreRankPositionsOf(data.Scores(result->weights), {top},
                           TestEps().tie_eps);
  EXPECT_LE(pos[0], 2);
}

TEST(SpatialBnbTest, TimeLimitReportsUnproven) {
  SyntheticSpec spec;
  spec.num_tuples = 120;
  spec.num_attributes = 5;
  spec.distribution = SyntheticDistribution::kAntiCorrelated;
  spec.seed = 2;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 4, 12);
  OptProblem problem = MakeProblem(data, given);

  SpatialBnbOptions options;
  options.max_boxes = 50;  // far too few to finish
  SpatialBnb solver(problem, options);
  auto result = solver.Solve(WeightBox::FullSimplex(5));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->proven_optimal);
  EXPECT_LE(result->bound, result->error);
}

/// Cross-validation sweep: on random small instances the spatial optimum
/// must (a) be proven, (b) match the exhaustive sampling floor, and (c)
/// never exceed the indicator-MILP optimum (the MILP's (ε₂,ε₁]-gap
/// semantics exclude a sliver of weight space, so its optimum can only be
/// equal or worse).
class SpatialVsMilpTest
    : public ::testing::TestWithParam<std::tuple<int, SyntheticDistribution>> {
};

TEST_P(SpatialVsMilpTest, AgreesWithIndicatorMilp) {
  auto [seed, distribution] = GetParam();
  SyntheticSpec spec;
  spec.num_tuples = 24;
  spec.num_attributes = 3;
  spec.distribution = distribution;
  spec.seed = static_cast<uint64_t>(seed);
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 5);
  OptProblem problem = MakeProblem(data, given);

  SpatialBnb spatial(problem, SpatialBnbOptions{});
  auto s = spatial.Solve(WeightBox::FullSimplex(3));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE(s->proven_optimal);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kIndicatorMilp;
  options.time_limit_seconds = 30;
  RankHow milp(data, given, options);
  auto m = milp.Solve();
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_TRUE(m->proven_optimal);

  EXPECT_LE(s->error, m->error);
  // The gap sliver has measure ~eps1; on generic data both optima coincide.
  EXPECT_GE(s->error, m->error - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialVsMilpTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(SyntheticDistribution::kUniform,
                                         SyntheticDistribution::kCorrelated,
                                         SyntheticDistribution::
                                             kAntiCorrelated)));

}  // namespace
}  // namespace rankhow
