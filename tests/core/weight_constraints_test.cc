#include "core/weight_constraints.h"

#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace rankhow {
namespace {

TEST(WeightConstraintSetTest, BuildersAndSatisfaction) {
  WeightConstraintSet set;
  set.AddMinWeight(0, 0.1, "pts_min");
  set.AddMaxWeight(1, 0.5);
  set.AddGroupBound({1, 2}, RelOp::kLe, 0.6, "defense");
  EXPECT_EQ(set.size(), 3u);

  EXPECT_TRUE(set.IsSatisfied({0.4, 0.3, 0.3}));
  EXPECT_FALSE(set.IsSatisfied({0.05, 0.5, 0.45}));  // w0 below 0.1
  EXPECT_FALSE(set.IsSatisfied({0.3, 0.6, 0.1}));    // w1 above 0.5
  EXPECT_FALSE(set.IsSatisfied({0.2, 0.5, 0.3}));    // group sum 0.8 > 0.6
}

TEST(WeightConstraintSetTest, TightenBoxUsesSingleVariableRows) {
  WeightConstraintSet set;
  set.AddMinWeight(0, 0.2);
  set.AddMaxWeight(0, 0.7);
  set.AddGroupBound({0, 1}, RelOp::kLe, 0.5);  // multi-var: ignored for box
  WeightBox box = set.TightenBox(WeightBox::FullSimplex(2));
  EXPECT_DOUBLE_EQ(box.lo[0], 0.2);
  EXPECT_DOUBLE_EQ(box.hi[0], 0.7);
  EXPECT_DOUBLE_EQ(box.lo[1], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[1], 1.0);
}

TEST(WeightConstraintSetTest, TightenBoxHandlesNegatedCoefficients) {
  WeightConstraintSet set;
  // -2*w0 <= -0.4  <=>  w0 >= 0.2.
  set.Add(WeightConstraint{{{0, -2.0}}, RelOp::kLe, -0.4, ""});
  WeightBox box = set.TightenBox(WeightBox::FullSimplex(1));
  EXPECT_DOUBLE_EQ(box.lo[0], 0.2);
}

TEST(WeightConstraintSetTest, AppendToRestrictsLp) {
  WeightConstraintSet set;
  set.AddMinWeight(1, 0.6);
  LpModel lp;
  std::vector<int> vars = {lp.AddVariable(0, 1), lp.AddVariable(0, 1)};
  LinearExpr sum = LinearExpr::Term(vars[0], 1) + LinearExpr::Term(vars[1], 1);
  lp.AddConstraint(sum, RelOp::kEq, 1);
  set.AppendTo(&lp, vars);
  lp.SetObjective(LinearExpr::Term(vars[1], 1), ObjectiveSense::kMinimize);
  auto sol = SimplexSolver().Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->values[vars[1]], 0.6, 1e-9);  // forced up by the min
}

TEST(WeightConstraintSetTest, EqualityConstraint) {
  WeightConstraintSet set;
  set.Add(WeightConstraint{{{0, 1.0}}, RelOp::kEq, 0.25, ""});
  EXPECT_TRUE(set.IsSatisfied({0.25, 0.75}));
  EXPECT_FALSE(set.IsSatisfied({0.3, 0.7}));
  WeightBox box = set.TightenBox(WeightBox::FullSimplex(2));
  EXPECT_DOUBLE_EQ(box.lo[0], 0.25);
  EXPECT_DOUBLE_EQ(box.hi[0], 0.25);
}

}  // namespace
}  // namespace rankhow
