// Property sweeps for SYM-GD (Section IV): the descent invariants that must
// hold on any instance, checked over randomized instances and seeds.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "core/sym_gd.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

struct Instance {
  Dataset data;
  Ranking given;
};

Instance RandomInstance(Rng& rng, int n, int m, int k) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  // Non-linear generating function, as in Sec. VI-F.
  std::vector<double> scores(n);
  for (int t = 0; t < n; ++t) {
    double s = 0;
    for (int a = 0; a < m; ++a) s += std::pow(d.value(t, a), 3);
    scores[t] = s;
  }
  Ranking given = Ranking::FromScores(scores, k, 0.0);
  return {std::move(d), std::move(given)};
}

class SymGdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The error of the kept iterate never increases along the trajectory
// prefix-minimum — Algorithm 1 only moves to a cell optimum at least as
// good as the current point (solve() includes the seed in its cell).
TEST_P(SymGdPropertyTest, KeptErrorIsMonotoneNonIncreasing) {
  Rng rng(GetParam());
  Instance inst = RandomInstance(rng, static_cast<int>(rng.NextInt(10, 30)),
                                 static_cast<int>(rng.NextInt(2, 4)),
                                 static_cast<int>(rng.NextInt(2, 6)));
  SymGdOptions options;
  options.cell_size = 0.2;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  std::vector<double> seed =
      rng.NextSimplexPoint(inst.data.num_attributes());
  auto result = symgd.Run(seed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  long best_so_far = result->error_trajectory.empty()
                         ? result->error
                         : result->error_trajectory.front();
  for (long e : result->error_trajectory) {
    best_so_far = std::min(best_so_far, e);
  }
  EXPECT_EQ(result->error, best_so_far)
      << "returned error is not the best visited";
  // The final error can never beat the proven global optimum.
  RankHowOptions global_options;
  global_options.eps = TestEps();
  RankHow global(inst.data, inst.given, global_options);
  auto optimum = global.Solve();
  ASSERT_TRUE(optimum.ok()) << optimum.status().ToString();
  if (optimum->proven_optimal) {
    EXPECT_GE(result->error, optimum->error);
  }
}

// With a cell spanning the whole weight space, the first SYM-GD step IS the
// global solve: the result must equal the proven global optimum.
TEST_P(SymGdPropertyTest, FullSimplexCellMatchesGlobalOptimum) {
  Rng rng(GetParam() + 500);
  Instance inst = RandomInstance(rng, static_cast<int>(rng.NextInt(8, 16)),
                                 static_cast<int>(rng.NextInt(2, 4)),
                                 static_cast<int>(rng.NextInt(2, 4)));
  SymGdOptions options;
  options.cell_size = 1.999;  // cell covers the entire simplex
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  std::vector<double> seed =
      rng.NextSimplexPoint(inst.data.num_attributes());
  auto local = symgd.Run(seed);
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  RankHowOptions global_options;
  global_options.eps = TestEps();
  RankHow global(inst.data, inst.given, global_options);
  auto optimum = global.Solve();
  ASSERT_TRUE(optimum.ok());
  ASSERT_TRUE(optimum->proven_optimal);
  EXPECT_EQ(local->error, optimum->error);
}

// Determinism: identical options and seed produce identical results.
TEST_P(SymGdPropertyTest, DeterministicAcrossRuns) {
  Rng rng(GetParam() + 900);
  Instance inst = RandomInstance(rng, 20, 3, 4);
  SymGdOptions options;
  options.cell_size = 0.15;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  std::vector<double> seed = rng.NextSimplexPoint(3);
  auto a = symgd.Run(seed);
  auto b = symgd.Run(seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->error, b->error);
  EXPECT_EQ(a->iterations, b->iterations);
  EXPECT_EQ(a->error_trajectory, b->error_trajectory);
  EXPECT_EQ(a->function.weights, b->function.weights);
}

// Every iterate stays inside the (clamped) cell around its predecessor:
// |w_i − w_{i-1}|_∞ <= c/2 + float slack. We can observe only the kept
// iterates, whose pairwise step is bounded by the cell geometry.
TEST_P(SymGdPropertyTest, SeedAtSimplexCornerStaysFeasible) {
  Rng rng(GetParam() + 1300);
  Instance inst = RandomInstance(rng, 16, 3, 3);
  SymGdOptions options;
  options.cell_size = 0.1;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  // Corner of the simplex: the cell clamp max(w−c/2, 0)..min(w+c/2, 1)
  // must keep every sub-solve feasible (Σw = 1 intersects the box).
  std::vector<double> corner = {1.0, 0.0, 0.0};
  auto result = symgd.Run(corner);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& w = result->function.weights;
  double sum = 0;
  for (double v : w) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1 + 1e-9);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// The adaptive variant (Algorithm 2) is never worse than the fixed-cell
// variant started from the same seed with the same starting cell — it runs
// Algorithm 1 first and then keeps going with bigger cells.
TEST_P(SymGdPropertyTest, AdaptiveNeverWorseThanFixed) {
  Rng rng(GetParam() + 1700);
  Instance inst = RandomInstance(rng, static_cast<int>(rng.NextInt(10, 24)),
                                 3, static_cast<int>(rng.NextInt(2, 5)));
  std::vector<double> seed = rng.NextSimplexPoint(3);

  SymGdOptions fixed;
  fixed.cell_size = 0.05;
  fixed.adaptive = false;
  fixed.solver.eps = TestEps();
  SymGd fixed_gd(inst.data, inst.given, fixed);
  auto fixed_result = fixed_gd.Run(seed);
  ASSERT_TRUE(fixed_result.ok());

  SymGdOptions adaptive = fixed;
  adaptive.adaptive = true;
  adaptive.time_budget_seconds = 10;  // Algorithm 2 needs a t_total
  SymGd adaptive_gd(inst.data, inst.given, adaptive);
  auto adaptive_result = adaptive_gd.Run(seed);
  ASSERT_TRUE(adaptive_result.ok());

  EXPECT_LE(adaptive_result->error, fixed_result->error);
  EXPECT_GE(adaptive_result->final_cell_size,
            fixed_result->final_cell_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymGdPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace rankhow
