// Cross-checks the three exact solve strategies against each other:
// the Equation-(2) indicator MILP, the weight-space spatial subdivision,
// and the Section III-A satisfiability binary search ("SMT theorem provers
// like Z3 can be used if we convert the optimization problem to a series of
// satisfiability problems, performing binary search"). All three must prove
// the same optimal error on instances small enough for each to finish.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

TEST(SolveStrategyNameTest, AllValuesNamed) {
  EXPECT_STREQ(SolveStrategyName(SolveStrategy::kAuto), "auto");
  EXPECT_STREQ(SolveStrategyName(SolveStrategy::kIndicatorMilp),
               "indicator-milp");
  EXPECT_STREQ(SolveStrategyName(SolveStrategy::kSpatial), "spatial");
  EXPECT_STREQ(SolveStrategyName(SolveStrategy::kSatBinarySearch),
               "sat-binary-search");
}

TEST(SatBinarySearchTest, PerfectInstanceProvesZero) {
  // Paper Example 4: a perfect linear function exists, so the very first
  // upper bound is 0 and no probes are needed beyond the warm start.
  Dataset d({"A1", "A2", "A3"}, 3);
  double rows[3][3] = {{3, 2, 8}, {4, 1, 15}, {1, 1, 14}};
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rows[t][a]);
  }
  Ranking given = MustCreate({1, 2, kUnranked});
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_EQ(result->strategy_used, SolveStrategy::kSatBinarySearch);
  ASSERT_TRUE(result->verification.has_value());
  EXPECT_TRUE(result->verification->consistent);
}

TEST(SatBinarySearchTest, PositiveOptimumNeedsInfeasibleProbes) {
  // Identical tuples given distinct positions force error >= 1, so the
  // search must *prove* the probe at E=0 infeasible before settling.
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 5);
  d.set_value(0, 1, 5);
  d.set_value(1, 0, 5);
  d.set_value(1, 1, 5);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  Ranking given = MustCreate({1, 2, 3});
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->error, 1);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_GE(result->sat_probes, 1);
  EXPECT_EQ(result->bound, result->claimed_error);
}

TEST(SatBinarySearchTest, InfeasiblePredicatePropagates) {
  Dataset d({"A", "B"}, 2);
  d.set_value(0, 0, 1);
  d.set_value(0, 1, 0);
  d.set_value(1, 0, 0);
  d.set_value(1, 1, 1);
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  options.use_presolve = false;  // no warm start: force the bootstrap probe
  RankHow solver(d, given, options);
  // w0 >= 0.8 and w1 >= 0.8 cannot hold with w0 + w1 = 1.
  solver.problem().constraints.AddMinWeight(0, 0.8, "w0");
  solver.problem().constraints.AddMinWeight(1, 0.8, "w1");
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SatBinarySearchTest, RespectsWeightConstraints) {
  Dataset d({"A1", "A2"}, 4);
  double a1[] = {4, 3, 2, 1};
  double a2[] = {1, 2, 3, 4};
  for (int t = 0; t < 4; ++t) {
    d.set_value(t, 0, a1[t]);
    d.set_value(t, 1, a2[t]);
  }
  Ranking given = MustCreate({1, 2, 3, 4});
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  RankHow solver(d, given, options);
  solver.problem().constraints.AddMinWeight(1, 0.9, "force_a2");
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_GE(result->function.weights[1], 0.9 - 1e-6);
}

TEST(SatBinarySearchTest, InversionObjective) {
  // Anti-sorted pair: at least one inversion is unavoidable when the data
  // order contradicts the given ranking on every attribute.
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 1);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 2);
  d.set_value(2, 0, 3);
  d.set_value(2, 1, 3);
  Ranking given = MustCreate({1, 2, 3});  // wants the dominated tuple first
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  RankHow sat(d, given, options);
  sat.problem().objective = RankingObjectiveSpec::Inversions();
  auto a = sat.Solve();
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  options.strategy = SolveStrategy::kIndicatorMilp;
  RankHow milp(d, given, options);
  milp.problem().objective = RankingObjectiveSpec::Inversions();
  auto b = milp.Solve();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_TRUE(a->proven_optimal);
  EXPECT_TRUE(b->proven_optimal);
  EXPECT_EQ(a->error, b->error);
  EXPECT_GE(a->error, 1);
}

TEST(SatBinarySearchTest, TinyTimeBudgetStillReturnsVerifiedIncumbent) {
  Rng rng(99);
  Dataset d = RandomDataset(rng, 30, 4);
  std::vector<double> hidden = rng.NextSimplexPoint(4);
  std::vector<double> scores(30);
  for (int t = 0; t < 30; ++t) {
    scores[t] = std::pow(d.value(t, 0), 3) + 0.2 * d.value(t, 1);
  }
  Ranking given = Ranking::FromScores(scores, 8, 0.0);
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSatBinarySearch;
  options.time_limit_seconds = 0.05;  // far too small to prove optimality
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  // Either it got lucky and proved the optimum, or it reports an honest
  // unproven incumbent; both must carry a verified error and a valid bound.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->verification.has_value());
  EXPECT_LE(result->bound, result->claimed_error);
  EXPECT_GE(result->error, 0);
}

// The core property: all three exact strategies prove the same optimum on
// random instances (uniform data, non-linear generating function, random
// k). This is the reproduction's analogue of agreeing with Gurobi.
class StrategyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesProveSameOptimum) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.NextInt(5, 14));
  const int m = static_cast<int>(rng.NextInt(2, 4));
  const int k = static_cast<int>(rng.NextInt(1, std::min(n, 5)));
  Dataset d = RandomDataset(rng, n, m);
  std::vector<double> scores(n);
  for (int t = 0; t < n; ++t) {
    scores[t] = std::pow(d.value(t, 0), 2) +
                (m > 1 ? 0.6 * std::sqrt(d.value(t, 1)) : 0.0);
  }
  Ranking given = Ranking::FromScores(scores, k, 0.0);

  RankHowOptions options;
  options.eps = TestEps();

  long reference = -1;
  for (SolveStrategy strategy :
       {SolveStrategy::kIndicatorMilp, SolveStrategy::kSpatial,
        SolveStrategy::kSatBinarySearch}) {
    options.strategy = strategy;
    RankHow solver(d, given, options);
    auto result = solver.Solve();
    ASSERT_TRUE(result.ok())
        << SolveStrategyName(strategy) << ": " << result.status().ToString();
    EXPECT_TRUE(result->proven_optimal) << SolveStrategyName(strategy);
    EXPECT_EQ(result->strategy_used, strategy);
    ASSERT_TRUE(result->verification.has_value());
    EXPECT_TRUE(result->verification->consistent)
        << SolveStrategyName(strategy) << " claimed "
        << result->claimed_error << " exact "
        << result->verification->exact_error;
    if (reference < 0) {
      reference = result->error;
    } else {
      EXPECT_EQ(result->error, reference)
          << SolveStrategyName(strategy) << " disagrees with indicator-milp";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 25));

// With weight constraints layered on, MILP and SAT binary search must still
// agree (the spatial strategy handles P through per-box LP feasibility and
// is covered by its own module tests; here we stress the two MILP-family
// paths, which share the model builder but search very differently).
class ConstrainedEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ConstrainedEquivalenceTest, MilpAndSatAgreeUnderConstraints) {
  Rng rng(GetParam() + 1000);
  const int n = static_cast<int>(rng.NextInt(5, 12));
  const int m = static_cast<int>(rng.NextInt(3, 5));
  const int k = static_cast<int>(rng.NextInt(2, std::min(n, 5)));
  Dataset d = RandomDataset(rng, n, m);
  std::vector<double> hidden = rng.NextSimplexPoint(m);
  Ranking given = Ranking::FromScores(d.Scores(hidden), k, 0.0);

  RankHowOptions options;
  options.eps = TestEps();

  const int pinned = static_cast<int>(rng.NextInt(0, m - 1));
  const double floor_w = rng.NextUniform(0.05, 0.3);

  long errors[2];
  int i = 0;
  for (SolveStrategy strategy :
       {SolveStrategy::kIndicatorMilp, SolveStrategy::kSatBinarySearch}) {
    options.strategy = strategy;
    RankHow solver(d, given, options);
    solver.problem().constraints.AddMinWeight(pinned, floor_w, "floor");
    auto result = solver.Solve();
    ASSERT_TRUE(result.ok())
        << SolveStrategyName(strategy) << ": " << result.status().ToString();
    EXPECT_TRUE(result->proven_optimal) << SolveStrategyName(strategy);
    EXPECT_GE(result->function.weights[pinned], floor_w - 1e-6);
    errors[i++] = result->error;
  }
  EXPECT_EQ(errors[0], errors[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 15));

// Warm-started incremental node LPs must not change what the exact search
// proves: for every strategy, solving with use_warm_start on and off must
// reach identical objectives, bounds, and optimality claims (the search
// *trajectories* may differ — warm LPs are tighter — but the proven answer
// may not). This is the incremental-LP engine's end-to-end equivalence
// check, complementing tests/lp/incremental_test.cc's per-solve oracle.
class WarmStartEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmStartEquivalenceTest, WarmAndColdProveSameOptimum) {
  Rng rng(GetParam() * 131 + 7);
  const int n = static_cast<int>(rng.NextInt(5, 14));
  const int m = static_cast<int>(rng.NextInt(2, 4));
  const int k = static_cast<int>(rng.NextInt(1, std::min(n, 5)));
  Dataset d = RandomDataset(rng, n, m);
  std::vector<double> scores(n);
  for (int t = 0; t < n; ++t) {
    scores[t] = std::pow(d.value(t, 0), 2) +
                (m > 1 ? 0.5 * d.value(t, 1) : 0.0);
  }
  Ranking given = Ranking::FromScores(scores, k, 0.0);

  RankHowOptions options;
  options.eps = TestEps();
  for (SolveStrategy strategy :
       {SolveStrategy::kIndicatorMilp, SolveStrategy::kSpatial,
        SolveStrategy::kSatBinarySearch}) {
    options.strategy = strategy;
    long errors[2];
    long bounds[2];
    int i = 0;
    for (bool warm : {false, true}) {
      options.use_warm_start = warm;
      RankHow solver(d, given, options);
      auto result = solver.Solve();
      ASSERT_TRUE(result.ok())
          << SolveStrategyName(strategy) << " warm=" << warm << ": "
          << result.status().ToString();
      EXPECT_TRUE(result->proven_optimal)
          << SolveStrategyName(strategy) << " warm=" << warm;
      errors[i] = result->error;
      bounds[i] = result->bound;
      ++i;
    }
    EXPECT_EQ(errors[0], errors[1])
        << SolveStrategyName(strategy) << ": warm starts changed the optimum";
    EXPECT_EQ(bounds[0], bounds[1])
        << SolveStrategyName(strategy) << ": warm starts changed the bound";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

// DESIGN.md's determinism promise, checked at the solver level: repeated
// solves of the same instance produce bit-identical results (weights,
// error, node counts) for every strategy.
class DeterminismTest : public ::testing::TestWithParam<SolveStrategy> {};

TEST_P(DeterminismTest, RepeatSolvesAreBitIdentical) {
  Rng rng(4242);
  Dataset d = RandomDataset(rng, 14, 3);
  std::vector<double> scores(14);
  for (int t = 0; t < 14; ++t) {
    scores[t] = std::pow(d.value(t, 0), 2) + 0.4 * d.value(t, 2);
  }
  Ranking given = Ranking::FromScores(scores, 4, 0.0);
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = GetParam();
  RankHow solver(d, given, options);
  auto a = solver.Solve();
  auto b = solver.Solve();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->function.weights, b->function.weights);
  EXPECT_EQ(a->error, b->error);
  EXPECT_EQ(a->bound, b->bound);
  EXPECT_EQ(a->stats.nodes_explored, b->stats.nodes_explored);
  EXPECT_EQ(a->sat_probes, b->sat_probes);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DeterminismTest,
    ::testing::Values(SolveStrategy::kIndicatorMilp, SolveStrategy::kSpatial,
                      SolveStrategy::kSatBinarySearch),
    [](const ::testing::TestParamInfo<SolveStrategy>& info) {
      switch (info.param) {
        case SolveStrategy::kIndicatorMilp:
          return "IndicatorMilp";
        case SolveStrategy::kSpatial:
          return "Spatial";
        case SolveStrategy::kSatBinarySearch:
          return "SatBinarySearch";
        default:
          return "Other";
      }
    });

}  // namespace
}  // namespace rankhow
