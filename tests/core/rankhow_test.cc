#include "core/rankhow.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

// Paper Example 4/5: R(A1,A2,A3) with r=(3,2,8), s=(4,1,15), t=(1,1,14),
// given ranking [1, 2, ⊥]. The OPT answer is 0 (a perfect linear function
// with small w1, large w2, very small w3 exists).
TEST(RankHowTest, ExampleFourHasPerfectSolution) {
  Dataset d({"A1", "A2", "A3"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 2);
  d.set_value(0, 2, 8);
  d.set_value(1, 0, 4);
  d.set_value(1, 1, 1);
  d.set_value(1, 2, 15);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  d.set_value(2, 2, 14);
  Ranking given = MustCreate({1, 2, kUnranked});

  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  ASSERT_TRUE(result->verification.has_value());
  EXPECT_TRUE(result->verification->consistent);
  // The winning region has small w1, large w2, very small w3 (Example 5).
  const auto& w = result->function.weights;
  EXPECT_GT(w[1], w[0]);
  EXPECT_GT(w[1], w[2]);
}

// Paper Example 3: R = {(1,10000),(2,1000),(5,1),(4,10),(3,100)} ranked
// [1..5]. A perfect linear function exists (e.g. 0.99*A1 + 0.01*A2).
TEST(RankHowTest, ExampleThreePerfectRecovery) {
  Dataset d({"A1", "A2"}, 5);
  double rows[5][2] = {{1, 10000}, {2, 1000}, {5, 1}, {4, 10}, {3, 100}};
  for (int t = 0; t < 5; ++t) {
    d.set_value(t, 0, rows[t][0]);
    d.set_value(t, 1, rows[t][1]);
  }
  Ranking given = MustCreate({1, 2, 3, 4, 5});
  // The function 0.99*A1 + 0.01*A2 gives scores
  // [100.99, 11.98, 4.96, 4.06, 3.97] — a perfect recovery. The attributes
  // span 1..10000, so per Sec. V-A the epsilons must match the data scale
  // (adjacent score gaps here are ~0.09).
  RankHowOptions options;
  options.eps.tie_eps = 5e-4;
  options.eps.eps1 = 1e-3;
  options.eps.eps2 = 0.0;
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(RankHowTest, InfeasibleRankingGetsPositiveError) {
  // Two identical tuples cannot be strictly ordered; with a third tuple
  // dominated by both, ranking [1,2,3] forces at least error... identical
  // tuples always tie (positions equal), so |rho-pi| >= 1 somewhere.
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 5);
  d.set_value(0, 1, 5);
  d.set_value(1, 0, 5);
  d.set_value(1, 1, 5);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  Ranking given = MustCreate({1, 2, 3});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->error, 1);
  EXPECT_TRUE(result->proven_optimal);
}

TEST(RankHowTest, TiedRankingRealizedByIdenticalTuples) {
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 5);
  d.set_value(0, 1, 5);
  d.set_value(1, 0, 5);
  d.set_value(1, 1, 5);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  Ranking given = MustCreate({1, 1, 3});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
}

TEST(RankHowTest, WeightConstraintsRestrictTheOptimum) {
  // A1 alone ranks perfectly; forcing most weight onto A2 breaks it.
  Dataset d({"A1", "A2"}, 4);
  double a1[] = {4, 3, 2, 1};
  double a2[] = {1, 2, 3, 4};  // reversed order
  for (int t = 0; t < 4; ++t) {
    d.set_value(t, 0, a1[t]);
    d.set_value(t, 1, a2[t]);
  }
  Ranking given = MustCreate({1, 2, 3, 4});
  RankHowOptions options;
  options.eps = TestEps();
  {
    RankHow solver(d, given, options);
    auto result = solver.Solve();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->error, 0);
  }
  {
    RankHow solver(d, given, options);
    solver.problem().constraints.AddMinWeight(1, 0.9, "force_a2");
    auto result = solver.Solve();
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->error, 0);
    EXPECT_GE(result->function.weights[1], 0.9 - 1e-6);
  }
}

TEST(RankHowTest, PairwiseOrderConstraint) {
  // Force tuple 1 above tuple 0 even though the given ranking prefers the
  // opposite; the optimum must respect the hard constraint and eat error.
  Dataset d({"A1", "A2"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 1);
  d.set_value(1, 1, 3);
  d.set_value(2, 0, 0.5);
  d.set_value(2, 1, 0.5);
  Ranking given = MustCreate({1, 2, kUnranked});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  solver.problem().order_constraints.push_back({1, 0});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double f0 = d.ScoreOf(0, result->function.weights);
  double f1 = d.ScoreOf(1, result->function.weights);
  EXPECT_GE(f1 - f0, options.eps.eps1 - 1e-9);
  EXPECT_GE(result->error, 2);  // both top tuples displaced by 1
}

TEST(RankHowTest, PositionConstraintPinsWinner) {
  // Tuple 2 beats on A2; pin tuple 0 at position 1 and check it sticks.
  Dataset d({"A1", "A2"}, 3);
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 2);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 3);
  Ranking given = MustCreate({1, 2, 3});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  solver.problem().position_constraints.push_back({0, 1, 1});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto positions = ScoreRankPositionsOf(
      d.Scores(result->function.weights), {0}, options.eps.tie_eps);
  EXPECT_EQ(positions[0], 1);
}

TEST(RankHowTest, MilpConsistentErrorDetectsGap) {
  Dataset d({"A"}, 2);
  d.set_value(0, 0, 1.0);
  d.set_value(1, 0, 1.0 + 5e-7);  // difference inside (eps2, eps1) = (0,1e-6)
  Ranking given = MustCreate({1, 2});
  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  EXPECT_FALSE(solver.MilpConsistentError({1.0}).has_value());
}

TEST(RankHowTest, DisablingFixingGivesSameOptimum) {
  Rng rng(17);
  Dataset d({"A", "B"}, 8);
  for (int t = 0; t < 8; ++t) {
    d.set_value(t, 0, rng.NextUniform(0, 1));
    d.set_value(t, 1, rng.NextUniform(0, 1));
  }
  Ranking given = Ranking::FromScores(d.Scores({0.3, 0.7}), 3, 0.0);
  RankHowOptions options;
  options.eps = TestEps();
  // The fixing toggle is an MILP-path ablation; the spatial strategy uses
  // interval fixing intrinsically (it IS its bound), so pin the strategy.
  options.strategy = SolveStrategy::kIndicatorMilp;
  RankHow with_fixing(d, given, options);
  options.use_indicator_fixing = false;
  RankHow without_fixing(d, given, options);
  auto a = with_fixing.Solve();
  auto b = without_fixing.Solve();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->error, b->error);
  EXPECT_GT(a->num_fixed_indicators, 0);
  EXPECT_EQ(b->num_fixed_indicators, 0);
}

// Property sweep: on random small instances, the proven-optimal RankHow
// error is never beaten by any sampled MILP-consistent weight vector.
class RankHowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankHowPropertyTest, OptimumDominatesSampledWeights) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(4, 12));
  int m = static_cast<int>(rng.NextInt(2, 4));
  int k = static_cast<int>(rng.NextInt(1, std::min(n, 4)));
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  // Ranking from a random non-linear score.
  std::vector<double> true_scores(n);
  for (int t = 0; t < n; ++t) {
    true_scores[t] = std::pow(d.value(t, 0), 2) +
                     (m > 1 ? 0.5 * d.value(t, 1) : 0.0) +
                     0.1 * rng.NextDouble();
  }
  Ranking given = Ranking::FromScores(true_scores, k, 0.0);

  RankHowOptions options;
  options.eps = TestEps();
  RankHow solver(d, given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->proven_optimal);
  ASSERT_TRUE(result->verification->consistent)
      << "claimed " << result->claimed_error << " exact "
      << result->verification->exact_error;

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> w = rng.NextSimplexPoint(m);
    auto err = solver.MilpConsistentError(w);
    if (!err.has_value()) continue;
    EXPECT_LE(result->claimed_error, *err)
        << "sampled weights beat the 'optimal' solution";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankHowPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace rankhow
