#include "core/seeding.h"

#include <numeric>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ranking/score_ranking.h"

namespace rankhow {
namespace {

void ExpectSimplex(const std::vector<double>& w) {
  double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : w) EXPECT_GE(v, 0.0);
}

TEST(ProjectWeightsTest, ClampsAndNormalizes) {
  auto w = ProjectWeightsToSimplex({2.0, -1.0, 2.0});
  ExpectSimplex(w);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.5);
}

TEST(ProjectWeightsTest, AllNonPositiveFallsBackToUniform) {
  auto w = ProjectWeightsToSimplex({-1.0, -2.0});
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

struct Instance {
  Dataset data;
  Ranking given;
};

Instance LinearInstance(uint64_t seed, const std::vector<double>& w_true,
                        int n, int k) {
  SyntheticSpec spec;
  spec.num_tuples = n;
  spec.num_attributes = static_cast<int>(w_true.size());
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores(w_true), k, 0.0);
  return {std::move(data), std::move(given)};
}

TEST(SeedingTest, OrdinalRegressionSeedRecoversLinearRanking) {
  Instance inst = LinearInstance(3, {0.6, 0.3, 0.1}, 100, 8);
  auto seed = OrdinalRegressionSeed(inst.data, inst.given, 1e-6);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  ExpectSimplex(*seed);
  // A linearly-realizable ranking should be (nearly) recovered.
  long error = PositionError(inst.data, inst.given, *seed, 0.0);
  EXPECT_LE(error, 2);
}

TEST(SeedingTest, LinearRegressionSeedIsOnSimplex) {
  Instance inst = LinearInstance(4, {0.2, 0.8}, 60, 5);
  auto seed = LinearRegressionSeed(inst.data, inst.given);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  ExpectSimplex(*seed);
}

TEST(SeedingTest, GridLowerBoundSeedFindsGoodCell) {
  Instance inst = LinearInstance(5, {0.15, 0.85}, 50, 5);
  GridSeedOptions options;
  options.target_cell_size = 0.1;
  options.eps1 = 1e-6;
  auto seed = GridLowerBoundSeed(inst.data, inst.given, options);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  ExpectSimplex(*seed);
  // The chosen cell should land near the true weights: within one cell step
  // of error from optimal (0). Allow a modest slack.
  long error = PositionError(inst.data, inst.given, *seed, 0.0);
  long random_error =
      PositionError(inst.data, inst.given, RandomSeed(2, 1), 0.0);
  EXPECT_LE(error, std::max<long>(random_error, 3));
}

TEST(SeedingTest, RandomSeedDeterministicPerSeed) {
  auto a = RandomSeed(4, 7);
  auto b = RandomSeed(4, 7);
  EXPECT_EQ(a, b);
  ExpectSimplex(a);
}

}  // namespace
}  // namespace rankhow
