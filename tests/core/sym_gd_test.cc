#include "core/sym_gd.h"

#include <gtest/gtest.h>

#include "core/seeding.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

struct Instance {
  Dataset data;
  Ranking given;
};

Instance MakeInstance(uint64_t seed, int n, int m, int k, int exponent) {
  SyntheticSpec spec;
  spec.num_tuples = n;
  spec.num_attributes = m;
  spec.distribution = SyntheticDistribution::kUniform;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, exponent, k);
  return Instance{std::move(data), std::move(given)};
}

TEST(SymGdTest, ImprovesOnRandomSeed) {
  Instance inst = MakeInstance(5, 80, 3, 5, 3);
  std::vector<double> seed = RandomSeed(3, 99);
  long seed_error =
      PositionError(inst.data, inst.given, seed, TestEps().tie_eps);

  SymGdOptions options;
  options.cell_size = 0.3;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  auto result = symgd.Run(seed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->error, seed_error);
  EXPECT_GE(result->iterations, 1);
  // Trajectory is monotonically non-increasing at the accepted steps.
  for (size_t i = 1; i < result->error_trajectory.size(); ++i) {
    EXPECT_LE(result->error_trajectory[i], result->error_trajectory[i - 1] +
                                               0);
  }
}

TEST(SymGdTest, MatchesGlobalOptimumOnEasyInstance) {
  // Linearly-realizable ranking: the global optimum is 0 and a descent from
  // any seed with a reasonably large cell should find it.
  Rng rng(7);
  SyntheticSpec spec;
  spec.num_tuples = 60;
  spec.num_attributes = 3;
  spec.seed = 21;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> w_true = {0.5, 0.3, 0.2};
  Ranking given = Ranking::FromScores(data.Scores(w_true), 5, 0.0);

  SymGdOptions options;
  options.cell_size = 0.4;
  options.adaptive = true;
  options.time_budget_seconds = 30;
  options.solver.eps = TestEps();
  SymGd symgd(data, given, options);
  auto result = symgd.Run(RandomSeed(3, 4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error, 0);
}

TEST(SymGdTest, NeverWorseThanGlobalBound) {
  Instance inst = MakeInstance(11, 40, 3, 4, 4);
  RankHowOptions exact_options;
  exact_options.eps = TestEps();
  RankHow exact(inst.data, inst.given, exact_options);
  auto global = exact.Solve();
  ASSERT_TRUE(global.ok()) << global.status().ToString();

  SymGdOptions options;
  options.cell_size = 0.2;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  auto local = symgd.Run(RandomSeed(3, 123));
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  // Local search can't beat the proven global optimum.
  EXPECT_GE(local->error, global->error);
}

TEST(SymGdTest, AdaptiveGrowsCellWhenStuck) {
  Instance inst = MakeInstance(13, 60, 3, 5, 5);
  SymGdOptions options;
  options.cell_size = 0.01;  // tiny: will converge locally fast
  options.adaptive = true;
  options.time_budget_seconds = 5;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  auto result = symgd.Run(RandomSeed(3, 5));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Either solved to zero, or the cell grew beyond its initial size.
  if (result->error > 0) {
    EXPECT_GT(result->final_cell_size, options.cell_size);
  }
}

TEST(SymGdTest, RespectsProblemConstraints) {
  Instance inst = MakeInstance(3, 50, 3, 4, 2);
  SymGdOptions options;
  options.cell_size = 0.3;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  symgd.problem().constraints.AddMinWeight(2, 0.4, "keep_A3");
  // Seed must satisfy the constraint for the first cell to be feasible.
  auto result = symgd.Run({0.3, 0.3, 0.4});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->function.weights[2], 0.4 - 1e-6);
}

TEST(SymGdTest, RejectsBadSeedArity) {
  Instance inst = MakeInstance(1, 20, 3, 3, 2);
  SymGdOptions options;
  options.solver.eps = TestEps();
  SymGd symgd(inst.data, inst.given, options);
  EXPECT_FALSE(symgd.Run({0.5, 0.5}).ok());
}

}  // namespace
}  // namespace rankhow
