#include "core/indicator_fixing.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

Dataset ExampleFourData() {
  Dataset d({"A1", "A2", "A3"}, 3);
  // r=(3,2,8), s=(4,1,15), t=(1,1,14).
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 2);
  d.set_value(0, 2, 8);
  d.set_value(1, 0, 4);
  d.set_value(1, 1, 1);
  d.set_value(1, 2, 15);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  d.set_value(2, 2, 14);
  return d;
}

TEST(IndicatorFixingTest, DominatedPairIsFixedZero) {
  // s=(4,1,15) dominates t=(1,1,14): delta_ts (t beats s) fixed to 0 —
  // exactly the paper's Example 5 observation that delta_ts "is not
  // visible" in the solution space.
  Dataset d = ExampleFourData();
  auto fixing = ComputeIndicatorFixing(d, {1}, WeightBox::FullSimplex(3),
                                       1e-9, 0.0);
  ASSERT_TRUE(fixing.ok());
  const TupleFixing& group = fixing->groups[0];
  EXPECT_EQ(group.tuple, 1);
  // Pairs: s vs r (free) and s vs t: t never beats s -> fixed zero.
  EXPECT_EQ(group.fixed_zero, 1);
  EXPECT_EQ(group.fixed_one, 0);
  ASSERT_EQ(group.free.size(), 1u);
  EXPECT_EQ(group.free[0].s, 0);  // r may or may not beat s
}

TEST(IndicatorFixingTest, DominatorIsFixedOne) {
  Dataset d({"A", "B"}, 2);
  d.set_value(0, 0, 1);
  d.set_value(0, 1, 1);
  d.set_value(1, 0, 5);
  d.set_value(1, 1, 5);
  // Tuple 1 dominates tuple 0 everywhere: min diff = 4 >= eps1.
  auto fixing = ComputeIndicatorFixing(d, {0}, WeightBox::FullSimplex(2),
                                       1e-9, 0.0);
  ASSERT_TRUE(fixing.ok());
  EXPECT_EQ(fixing->groups[0].fixed_one, 1);
  EXPECT_EQ(fixing->total_free, 0);
}

TEST(IndicatorFixingTest, SmallCellFixesMorePairs) {
  Rng rng(3);
  Dataset d({"A", "B", "C"}, 60);
  for (int t = 0; t < 60; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rng.NextDouble());
  }
  std::vector<int> tuples = {0, 1, 2};
  auto full = ComputeIndicatorFixing(d, tuples, WeightBox::FullSimplex(3),
                                     1e-9, 0.0);
  std::vector<double> center = {0.3, 0.4, 0.3};
  auto cell = ComputeIndicatorFixing(
      d, tuples, WeightBox::CellAround(center, 0.05), 1e-9, 0.0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cell.ok());
  // The SYM-GD effect: a small cell leaves far fewer free indicators.
  EXPECT_LT(cell->total_free, full->total_free);
  EXPECT_LT(cell->total_free, full->total_free / 2);
}

TEST(IndicatorFixingTest, DisabledFixingKeepsAllPairsFree) {
  Dataset d({"A", "B"}, 3);
  for (int t = 0; t < 3; ++t) {
    d.set_value(t, 0, t);
    d.set_value(t, 1, t);
  }
  auto fixing = ComputeIndicatorFixing(d, {0, 1}, WeightBox::FullSimplex(2),
                                       1e-9, 0.0, /*enable_fixing=*/false);
  ASSERT_TRUE(fixing.ok());
  EXPECT_EQ(fixing->total_free, 4);  // 2 groups x 2 other tuples
  EXPECT_EQ(fixing->total_fixed_one + fixing->total_fixed_zero, 0);
}

TEST(IndicatorFixingTest, InfeasibleBoxRejected) {
  Dataset d({"A", "B"}, 2);
  WeightBox box;
  box.lo = {0.0, 0.0};
  box.hi = {0.2, 0.2};
  auto fixing = ComputeIndicatorFixing(d, {0}, box, 1e-9, 0.0);
  EXPECT_FALSE(fixing.ok());
  EXPECT_EQ(fixing.status().code(), StatusCode::kInfeasible);
}

// Property: fixing classifications are consistent with sampled weight
// vectors from the box — a fixed-1 pair beats at every sample, a fixed-0
// pair never does.
class FixingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FixingPropertyTest, ClassificationSoundAgainstSampling) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(4, 20));
  int m = static_cast<int>(rng.NextInt(2, 5));
  double eps1 = 1e-6;
  std::vector<std::string> all_names = {"A", "B", "C", "D", "E"};
  Dataset d(std::vector<std::string>(all_names.begin(), all_names.begin() + m),
            n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 2));
  }
  std::vector<double> center = rng.NextSimplexPoint(m);
  WeightBox box = WeightBox::CellAround(center, rng.NextUniform(0.1, 1.0));
  auto fixing = ComputeIndicatorFixing(d, {0}, box, eps1, 0.0);
  if (!fixing.ok()) return;  // box missed the simplex: nothing to check

  const TupleFixing& group = fixing->groups[0];
  // Reconstruct the classification of each s.
  std::vector<int> cls(n, -2);  // -2 unknown, 1 fixed-one, 0 fixed-zero, -1 free
  for (const FreePair& fp : group.free) cls[fp.s] = -1;
  int ones = group.fixed_one;
  int zeros = group.fixed_zero;
  for (int s = 0; s < n; ++s) {
    if (s == 0 || cls[s] == -1) continue;
    // Not free: decide by range like the implementation would.
    auto range = DotRangeOnSimplexBox(d.DiffVector(s, 0), box);
    ASSERT_TRUE(range.ok());
    if (range->min >= eps1) {
      cls[s] = 1;
      --ones;
    } else {
      cls[s] = 0;
      --zeros;
    }
  }
  EXPECT_EQ(ones, 0);
  EXPECT_EQ(zeros, 0);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> w = rng.NextSimplexPoint(m);
    if (!box.Contains(w, 0.0)) continue;
    for (int s = 0; s < n; ++s) {
      if (s == 0) continue;
      double diff = 0;
      for (int a = 0; a < m; ++a) {
        diff += w[a] * (d.value(s, a) - d.value(0, a));
      }
      if (cls[s] == 1) EXPECT_GE(diff, eps1 - 1e-12);
      if (cls[s] == 0) EXPECT_LE(diff, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixingPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
