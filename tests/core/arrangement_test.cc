#include "core/arrangement.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

Dataset ExampleFourData() {
  // r = (3,2,8), s = (4,1,15), t = (1,1,14) — the instance of Fig. 2.
  Dataset d({"A1", "A2", "A3"}, 3);
  const double rows[3][3] = {{3, 2, 8}, {4, 1, 15}, {1, 1, 14}};
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rows[t][a]);
  }
  return d;
}

double DotDiff(const Dataset& d, int s, int r,
               const std::array<double, 3>& w) {
  double acc = 0;
  for (int a = 0; a < 3; ++a) acc += w[a] * (d.value(s, a) - d.value(r, a));
  return acc;
}

bool OnSimplex(const std::array<double, 3>& w) {
  double sum = 0;
  for (double v : w) {
    if (v < -1e-9 || v > 1 + 1e-9) return false;
    sum += v;
  }
  return std::abs(sum - 1.0) < 1e-9;
}

TEST(TieBoundarySegmentsTest, EndpointsLieOnSimplexAndHyperplane) {
  Dataset d = ExampleFourData();
  auto segments = TieBoundarySegments(d, {0, 1, 2}, 0.0);
  ASSERT_TRUE(segments.ok()) << segments.status().ToString();
  for (const SimplexSegment& seg : *segments) {
    EXPECT_TRUE(OnSimplex(seg.a));
    EXPECT_TRUE(OnSimplex(seg.b));
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, seg.a), seg.level, 1e-9);
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, seg.b), seg.level, 1e-9);
  }
}

TEST(TieBoundarySegmentsTest, ExampleFiveGeometry) {
  // Fig. 2: the boundaries for δ_tr and δ_sr cross the triangle's
  // interior; δ_ts "only intersects with the triangle at corner point
  // (0, 1, 0): s dominates t". With tuples (r, s, t) = (0, 1, 2):
  Dataset d = ExampleFourData();
  auto segments = TieBoundarySegments(d, {0, 1, 2}, 0.0);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);  // (r,s), (r,t), (s,t)
  for (const SimplexSegment& seg : *segments) {
    double length = 0;
    for (int a = 0; a < 3; ++a) length += std::abs(seg.a[a] - seg.b[a]);
    if (seg.s == 1 && seg.r == 2) {
      // d(s,t) = (3, 0, 1): w·d = 0 only at w = (0, 1, 0).
      EXPECT_NEAR(length, 0.0, 1e-9);
      EXPECT_NEAR(seg.a[1], 1.0, 1e-9);
    } else {
      EXPECT_GT(length, 0.01);  // proper interior boundary
    }
  }
}

TEST(TieBoundarySegmentsTest, RejectsWrongDimension) {
  Dataset d({"A", "B"}, 2);
  d.set_value(0, 0, 1);
  d.set_value(0, 1, 2);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 1);
  EXPECT_FALSE(TieBoundarySegments(d, {0, 1}).ok());
}

TEST(TieBoundarySegmentsTest, RejectsBadTupleIds) {
  Dataset d = ExampleFourData();
  EXPECT_FALSE(TieBoundarySegments(d, {0, 9}).ok());
}

TEST(TieBoundarySegmentsTest, LevelShiftsTheBoundary) {
  Dataset d = ExampleFourData();
  const double level = 0.5;
  auto segments = TieBoundarySegments(d, {0, 1}, level);
  ASSERT_TRUE(segments.ok());
  for (const SimplexSegment& seg : *segments) {
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, seg.a), level, 1e-9);
  }
}

// Random-instance property: every reported endpoint satisfies both the
// simplex membership and the hyperplane equation.
class ArrangementPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArrangementPropertyTest, SegmentsAreGeometricallySound) {
  Rng rng(GetParam());
  Dataset d({"A", "B", "C"}, 6);
  for (int t = 0; t < 6; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rng.NextUniform(-2, 2));
  }
  auto segments = TieBoundarySegments(d, {0, 1, 2, 3, 4, 5}, 0.0);
  ASSERT_TRUE(segments.ok());
  for (const SimplexSegment& seg : *segments) {
    EXPECT_TRUE(OnSimplex(seg.a));
    EXPECT_TRUE(OnSimplex(seg.b));
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, seg.a), 0.0, 1e-8);
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, seg.b), 0.0, 1e-8);
  }
}

// The sign of w·d(s,r) is constant within each open cell; crossing a
// segment flips the indicator. Spot-check: midpoints of segments evaluate
// to ~0 while the simplex centroid is off every sampled boundary almost
// surely.
TEST_P(ArrangementPropertyTest, MidpointsSitOnBoundaries) {
  Rng rng(GetParam() + 100);
  Dataset d({"A", "B", "C"}, 4);
  for (int t = 0; t < 4; ++t) {
    for (int a = 0; a < 3; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  auto segments = TieBoundarySegments(d, {0, 1, 2, 3}, 0.0);
  ASSERT_TRUE(segments.ok());
  for (const SimplexSegment& seg : *segments) {
    std::array<double, 3> mid{};
    for (int a = 0; a < 3; ++a) mid[a] = 0.5 * (seg.a[a] + seg.b[a]);
    EXPECT_NEAR(DotDiff(d, seg.s, seg.r, mid), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrangementPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(ErrorFieldTest, GridCoversSimplexAndFindsPerfectRegion) {
  // Example 4 has a perfect scoring function (error 0 region of Fig. 2);
  // a reasonably fine field must sample it.
  Dataset d = ExampleFourData();
  auto ranking = Ranking::Create({1, 2, kUnranked});
  ASSERT_TRUE(ranking.ok());
  auto field = ErrorField(d, *ranking, 40);
  ASSERT_TRUE(field.ok()) << field.status().ToString();
  EXPECT_EQ(field->size(), 41u * 42u / 2u);  // triangular grid
  long best = field->front().error;
  for (const ErrorSample& sample : *field) {
    EXPECT_TRUE(OnSimplex(sample.w));
    best = std::min(best, sample.error);
  }
  EXPECT_EQ(best, 0);
}

TEST(ErrorFieldTest, Validation) {
  Dataset d({"A", "B"}, 2);
  d.set_value(0, 0, 1);
  d.set_value(0, 1, 2);
  d.set_value(1, 0, 2);
  d.set_value(1, 1, 1);
  auto two = Ranking::Create({1, 2});
  ASSERT_TRUE(two.ok());
  EXPECT_FALSE(ErrorField(d, *two, 10).ok());  // m != 3

  Dataset d3 = ExampleFourData();
  auto ranking = Ranking::Create({1, 2, kUnranked});
  ASSERT_TRUE(ranking.ok());
  EXPECT_FALSE(ErrorField(d3, *ranking, 0).ok());  // bad resolution
}

}  // namespace
}  // namespace rankhow
