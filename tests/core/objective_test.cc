#include "ranking/objective.h"

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "data/synthetic.h"
#include "ranking/error_measures.h"
#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

TEST(ObjectiveSpecTest, DefaultIsPlainPositionError) {
  RankingObjectiveSpec spec;
  EXPECT_EQ(spec.kind, ObjectiveKind::kPositionError);
  EXPECT_EQ(spec.PenaltyAt(1), 1);
  EXPECT_EQ(spec.PenaltyAt(100), 1);
}

TEST(ObjectiveSpecTest, TopHeavyPenaltiesDecreaseWithPosition) {
  RankingObjectiveSpec spec = RankingObjectiveSpec::TopHeavy(5);
  EXPECT_EQ(spec.kind, ObjectiveKind::kWeightedPositionError);
  EXPECT_EQ(spec.PenaltyAt(1), 5);
  EXPECT_EQ(spec.PenaltyAt(3), 3);
  EXPECT_EQ(spec.PenaltyAt(5), 1);
  EXPECT_EQ(spec.PenaltyAt(6), 1);  // beyond the vector: default 1
}

TEST(ObjectiveOfTest, PositionErrorMatchesScoreRankingHelper) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 3;
  spec.seed = 5;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 6);
  std::vector<double> w = {0.3, 0.3, 0.4};
  EXPECT_EQ(ObjectiveOf(data, given, w, 5e-7, RankingObjectiveSpec{}),
            PositionError(data, given, w, 5e-7));
}

TEST(ObjectiveOfTest, InversionsMatchKendallTauDistance) {
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 3;
  spec.seed = 8;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 8);
  std::vector<double> w = {0.5, 0.2, 0.3};
  // KendallTauDistance counts pairs (a above b) with position(a) >
  // position(b). With distinct scores (no ε-ties) that is exactly "b
  // strictly beats a", so both measures agree.
  long inv =
      ObjectiveOf(data, given, w, 0.0, RankingObjectiveSpec::Inversions());
  std::vector<int> positions = ScoreRankPositions(data.Scores(w), 0.0);
  EXPECT_EQ(inv, KendallTauDistance(given, positions));
}

TEST(ObjectiveOfTest, WeightedErrorScalesPerPosition) {
  // 3 tuples, identical attribute columns swapped so that w=(1,0) inverts
  // the given ranking completely.
  Dataset data({"A", "B"}, 3);
  double rows[3][2] = {{1, 3}, {2, 2}, {3, 1}};
  for (int t = 0; t < 3; ++t) {
    data.set_value(t, 0, rows[t][0]);
    data.set_value(t, 1, rows[t][1]);
  }
  Ranking given = MustCreate({1, 2, 3});
  std::vector<double> w = {1.0, 0.0};  // scores 1,2,3 → ranking reversed
  // Positions become [3,2,1]: per-tuple |Δ| = [2,0,2].
  EXPECT_EQ(ObjectiveOf(data, given, w, 0.0, RankingObjectiveSpec{}), 4);
  RankingObjectiveSpec top = RankingObjectiveSpec::TopHeavy(3);
  // penalties [_,3,2,1]: 3*2 + 2*0 + 1*2 = 8.
  EXPECT_EQ(ObjectiveOf(data, given, w, 0.0, top), 8);
}

TEST(ObjectiveOfTest, TiedGivenPairsAreNeutralForInversions) {
  Dataset data({"A", "B"}, 3);
  double rows[3][2] = {{1, 3}, {2, 2}, {3, 1}};
  for (int t = 0; t < 3; ++t) {
    data.set_value(t, 0, rows[t][0]);
    data.set_value(t, 1, rows[t][1]);
  }
  // Tuples 0 and 1 tie in the given ranking: their relative order can never
  // count as an inversion.
  auto given = Ranking::Create({1, 1, 3});
  ASSERT_TRUE(given.ok());
  std::vector<double> w = {1.0, 0.0};  // scores 1,2,3
  // Pairs: (0,2) inverted, (1,2) inverted, (0,1) tied-neutral → 2.
  EXPECT_EQ(ObjectiveOf(data, *given, w, 0.0,
                        RankingObjectiveSpec::Inversions()),
            2);
}

TEST(RankHowObjectiveTest, MinimizesInversionsExactly) {
  SyntheticSpec sspec;
  sspec.num_tuples = 25;
  sspec.num_attributes = 3;
  sspec.seed = 19;
  Dataset data = GenerateSynthetic(sspec);
  Ranking given = Ranking::FromScores(data.Scores({0.4, 0.4, 0.2}), 5, 0.0);

  RankHowOptions options;
  options.eps = TestEps();
  options.time_limit_seconds = 30;
  RankHow solver(data, given, options);
  solver.problem().objective = RankingObjectiveSpec::Inversions();
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Realizable ranking: zero inversions achievable and provable.
  EXPECT_EQ(result->error, 0);
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_EQ(result->strategy_used, SolveStrategy::kIndicatorMilp);
  ASSERT_TRUE(result->verification.has_value());
  EXPECT_TRUE(result->verification->consistent);
}

TEST(RankHowObjectiveTest, InversionOptimumLowerBoundsSampledWeights) {
  SyntheticSpec sspec;
  sspec.num_tuples = 16;
  sspec.num_attributes = 3;
  sspec.distribution = SyntheticDistribution::kAntiCorrelated;
  sspec.seed = 23;
  Dataset data = GenerateSynthetic(sspec);
  Ranking given = PowerSumRanking(data, 3, 5);

  RankHowOptions options;
  options.eps = TestEps();
  options.time_limit_seconds = 30;
  RankHow solver(data, given, options);
  solver.problem().objective = RankingObjectiveSpec::Inversions();
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->proven_optimal);

  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> w = rng.NextSimplexPoint(3);
    EXPECT_LE(result->error,
              ObjectiveOf(data, given, w, TestEps().tie_eps,
                          RankingObjectiveSpec::Inversions()))
        << "sampled weights beat the proven optimum";
  }
}

TEST(RankHowObjectiveTest, TopHeavyPenaltyPrefersFixingTheTop) {
  // Construct a case where position error must land somewhere: tuple X is
  // dominated but ranked 1st. Under uniform penalties the optimizer may park
  // the slack anywhere; under top-heavy penalties the top tuple's error
  // costs more, so the weighted optimum is >= the plain optimum and the
  // solver still proves it.
  SyntheticSpec sspec;
  sspec.num_tuples = 20;
  sspec.num_attributes = 3;
  sspec.distribution = SyntheticDistribution::kAntiCorrelated;
  sspec.seed = 31;
  Dataset data = GenerateSynthetic(sspec);
  Ranking given = PowerSumRanking(data, 4, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.time_limit_seconds = 30;

  RankHow plain(data, given, options);
  auto base = plain.Solve();
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(base->proven_optimal);

  RankHow weighted(data, given, options);
  weighted.problem().objective = RankingObjectiveSpec::TopHeavy(given.k());
  auto top = weighted.Solve();
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_TRUE(top->proven_optimal);
  ASSERT_TRUE(top->verification.has_value());
  EXPECT_TRUE(top->verification->consistent);
  // Weighted objective dominates the plain one pointwise (penalties >= 1),
  // so its optimum cannot be smaller.
  EXPECT_GE(top->error, base->error);
}

TEST(RankHowObjectiveTest, SpatialStrategyHandlesWeightedObjective) {
  SyntheticSpec sspec;
  sspec.num_tuples = 30;
  sspec.num_attributes = 3;
  sspec.seed = 41;
  Dataset data = GenerateSynthetic(sspec);
  Ranking given = PowerSumRanking(data, 2, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.time_limit_seconds = 30;
  RankHow solver(data, given, options);
  solver.problem().objective = RankingObjectiveSpec::TopHeavy(given.k());
  auto spatial = solver.Solve();
  ASSERT_TRUE(spatial.ok()) << spatial.status().ToString();
  ASSERT_TRUE(spatial->proven_optimal);

  options.strategy = SolveStrategy::kIndicatorMilp;
  RankHow milp_solver(data, given, options);
  milp_solver.problem().objective = RankingObjectiveSpec::TopHeavy(given.k());
  auto milp = milp_solver.Solve();
  ASSERT_TRUE(milp.ok()) << milp.status().ToString();
  ASSERT_TRUE(milp->proven_optimal);
  EXPECT_LE(spatial->error, milp->error);
  EXPECT_GE(spatial->error, milp->error - 2);
}

}  // namespace
}  // namespace rankhow
