// Randomized session-vs-cold equivalence suite for SolveSession: apply a
// random sequence of constraint/ε edits and assert that the session's
// proven optimum equals a cold RankHow::Solve() of the identical problem at
// every step, at 1 and 4 workers.
//
// Semantics note (mirrors tests/concurrency/parallel_search_test.cc): the
// exact-equality assertion runs on the spatial strategy (its true ε-tie
// optimum is fully invariant) and on the pure indicator MILP (heuristic and
// presolve off — but the session's *pool* can still inject true-error warm
// incumbents, which may legitimately beat the (ε₂, ε₁)-gap optimum). The
// MILP-path test therefore asserts the sound band: spatial optimum <=
// session claimed <= pure-MILP optimum, with exact equality whenever the
// band is a single point (which, at these ε, it almost always is).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "core/solve_session.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

/// A cold solver over exactly the session's current problem state.
Result<RankHowResult> ColdSolve(const SolveSession& session,
                                const RankHowOptions& options) {
  RankHow cold(session.data(), session.given(), options);
  cold.problem() = session.problem();
  cold.problem().data = &session.data();
  cold.problem().given = &session.given();
  return cold.Solve();
}

/// Applies one random edit to the session; returns a description. Edits are
/// chosen to keep the instance feasible: weight floors stay small, ceilings
/// stay above 1/m, removals target previously added names.
std::string RandomEdit(Rng& rng, SolveSession* session, int m,
                       std::vector<std::string>* added, int* name_counter) {
  const int kind = static_cast<int>(rng.NextBelow(10));
  if (kind < 5 || added->empty()) {
    // Add a weight floor/ceiling.
    const int attr = static_cast<int>(rng.NextBelow(m));
    const bool is_min = rng.NextBelow(2) == 0;
    const double bound = is_min ? rng.NextUniform(0.0, 0.12)
                                : rng.NextUniform(0.5, 1.0);
    WeightConstraint c;
    c.terms = {{attr, 1.0}};
    c.op = is_min ? RelOp::kGe : RelOp::kLe;
    c.rhs = bound;
    c.name = "edit" + std::to_string((*name_counter)++);
    (*added).push_back(c.name);
    EXPECT_TRUE(session->AddWeightConstraint(c).ok());
    return (is_min ? "min w" : "max w") + std::to_string(attr);
  }
  if (kind < 7) {
    // Remove a previously added constraint (relaxing edit).
    const size_t i = rng.NextBelow(added->size());
    std::string name = (*added)[i];
    added->erase(added->begin() + i);
    EXPECT_TRUE(session->RemoveWeightConstraint(name).ok());
    return "drop " + name;
  }
  if (kind < 9) {
    // Scale ε₁ (structural edit). tie_eps stays between eps2 and eps1.
    EpsilonConfig eps = session->problem().eps;
    eps.eps1 = rng.NextBelow(2) == 0 ? 2e-6 : 1e-6;
    EXPECT_TRUE(session->SetEpsilon(eps).ok());
    return "eps1";
  }
  // Append an unranked tuple (structural edit).
  std::vector<double> values(m);
  for (int a = 0; a < m; ++a) values[a] = rng.NextUniform(0, 1);
  EXPECT_TRUE(session->AppendTuple(values).ok());
  return "append";
}

TEST(SolveSessionTest, SpatialEqualsColdUnderRandomEdits) {
  // The headline equivalence: full-featured spatial solves, session vs
  // cold, at 1 and 4 workers, over randomized edit sequences.
  for (int threads : {1, 4}) {
    for (uint64_t seed : {41u, 42u, 43u}) {
      Rng rng(seed);
      Dataset data = RandomDataset(rng, 13, 3);
      Ranking given = RandomRanking(rng, 13, 6);

      RankHowOptions options;
      options.eps = TestEps();
      options.strategy = SolveStrategy::kSpatial;
      options.num_threads = threads;

      SolveSession session(data, given, options);
      std::vector<std::string> added;
      int name_counter = 0;
      for (int step = 0; step < 7; ++step) {
        std::string desc = step == 0
                               ? "cold"
                               : RandomEdit(rng, &session, 3, &added,
                                            &name_counter);
        auto sres = session.Solve();
        auto cres = ColdSolve(session, options);
        ASSERT_TRUE(sres.ok()) << "seed=" << seed << " step=" << step
                               << " (" << desc
                               << "): " << sres.status().ToString();
        ASSERT_TRUE(cres.ok()) << "seed=" << seed << " step=" << step
                               << " (" << desc
                               << "): " << cres.status().ToString();
        EXPECT_TRUE(sres->proven_optimal)
            << "seed=" << seed << " step=" << step << " (" << desc << ")";
        EXPECT_TRUE(cres->proven_optimal)
            << "seed=" << seed << " step=" << step << " (" << desc << ")";
        EXPECT_EQ(sres->error, cres->error)
            << "seed=" << seed << " threads=" << threads << " step=" << step
            << " (" << desc << "): session and cold disagree";
      }
      EXPECT_EQ(session.stats().solves, 7);
      EXPECT_GT(session.stats().pool_hits, 0);
    }
  }
}

TEST(SolveSessionTest, MilpStaysInSoundBandUnderRandomEdits) {
  // Pure-MILP session vs cold: the session's pool may inject true-error
  // incumbents the cold pure run has no access to, so assert the sound band
  // [spatial true optimum, pure MILP optimum] instead of blind equality.
  RankHowOptions pure;
  pure.eps = TestEps();
  pure.strategy = SolveStrategy::kIndicatorMilp;
  pure.use_primal_heuristic = false;
  pure.use_presolve = false;

  RankHowOptions spatial = pure;
  spatial.strategy = SolveStrategy::kSpatial;

  for (uint64_t seed : {51u, 52u}) {
    Rng rng(seed);
    Dataset data = RandomDataset(rng, 12, 3);
    Ranking given = RandomRanking(rng, 12, 6);

    SolveSession session(data, given, pure);
    std::vector<std::string> added;
    int name_counter = 0;
    for (int step = 0; step < 5; ++step) {
      if (step > 0) RandomEdit(rng, &session, 3, &added, &name_counter);
      auto sres = session.Solve();
      auto milp = ColdSolve(session, pure);
      auto spat = ColdSolve(session, spatial);
      ASSERT_TRUE(sres.ok()) << sres.status().ToString();
      ASSERT_TRUE(milp.ok()) << milp.status().ToString();
      ASSERT_TRUE(spat.ok()) << spat.status().ToString();
      EXPECT_TRUE(sres->proven_optimal) << "seed=" << seed
                                        << " step=" << step;
      EXPECT_GE(sres->claimed_error, spat->claimed_error)
          << "seed=" << seed << " step=" << step
          << ": session claimed below the true optimum (unsound)";
      EXPECT_LE(sres->claimed_error, milp->claimed_error)
          << "seed=" << seed << " step=" << step
          << ": session claimed above the pure MILP optimum (lost "
             "incumbent)";
    }
  }
}

TEST(SolveSessionTest, ConstraintAddsPatchTheCachedModel) {
  Rng rng(61);
  Dataset data = RandomDataset(rng, 12, 4);
  Ranking given = RandomRanking(rng, 12, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kIndicatorMilp;

  SolveSession session(data, given, options);
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_EQ(session.stats().model_builds, 1);

  WeightConstraint c;
  c.terms = {{0, 1.0}};
  c.op = RelOp::kGe;
  c.rhs = 0.05;
  c.name = "floor0";
  ASSERT_TRUE(session.AddWeightConstraint(c).ok());
  ASSERT_TRUE(session.AddOrderConstraint(given.ranked_tuples()[0],
                                         given.ranked_tuples()[1])
                  .ok());
  auto r = session.Solve();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Both edits were row appends on the cached model — no recompile.
  EXPECT_EQ(session.stats().model_builds, 1);
  EXPECT_EQ(session.stats().model_patches, 2);

  // A removal is structural for the model: next solve recompiles.
  ASSERT_TRUE(session.RemoveWeightConstraint("floor0").ok());
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_EQ(session.stats().model_builds, 2);
}

TEST(SolveSessionTest, EpsilonEditsPatchRhsInPlace) {
  // The ε-edit carry-over bugfix: eps* verbs only move indicator/order-row
  // right-hand sides, so they must patch the compiled model in place — no
  // recompile, warm state intact — while still matching a cold solve of the
  // new thresholds exactly.
  Rng rng(66);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kIndicatorMilp;

  SolveSession session(data, given, options);
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_EQ(session.stats().model_builds, 1);
  EXPECT_EQ(session.stats().eps_patches, 0);

  // Tighten: ε₁ up, ε₂ down. Dataset diffs are O(0.1), so the fixing slack
  // dwarfs the new thresholds and the patch must succeed.
  EpsilonConfig tightened = session.problem().eps;
  tightened.eps1 = 2e-6;
  tightened.eps2 = -1e-7;
  ASSERT_TRUE(session.SetEpsilon(tightened).ok());
  auto after_tighten = session.Solve();
  ASSERT_TRUE(after_tighten.ok()) << after_tighten.status().ToString();
  EXPECT_TRUE(after_tighten->proven_optimal);
  EXPECT_EQ(session.stats().model_builds, 1)
      << "an ε-only tighten recompiled the model (patch regression)";
  EXPECT_EQ(session.stats().eps_patches, 1);

  // Relax back: still rhs-only, still a patch, and the re-solve must agree
  // with a cold solve at the restored thresholds.
  ASSERT_TRUE(session.SetEpsilon(TestEps()).ok());
  auto relaxed = session.Solve();
  auto cold = ColdSolve(session, options);
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(relaxed->proven_optimal);
  EXPECT_EQ(relaxed->error, cold->error);
  EXPECT_EQ(session.stats().model_builds, 1);
  EXPECT_EQ(session.stats().eps_patches, 2);

  // A genuinely structural edit still rebuilds — the patch path must not
  // have eaten the recompile logic.
  ASSERT_TRUE(session.AppendTuple({0.5, 0.5, 0.5}).ok());
  ASSERT_TRUE(session.Solve().ok());
  EXPECT_EQ(session.stats().model_builds, 2);
}

TEST(SolveSessionTest, SessionsShareOneRankingBuffer) {
  // The deep-copy carry-over bugfix: K sessions built from one SharedRanking
  // handle read one physical π buffer; an AppendTuple re-points only the
  // editing session (counted as a ranking fork) and frees the shared
  // snapshot only when the last holder drops it.
  Rng rng(67);
  SharedDataset data(RandomDataset(rng, 12, 3));
  SharedRanking given(RandomRanking(rng, 12, 6));
  std::weak_ptr<const Ranking> observer = given.snapshot();

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;

  {
    SolveSession a(data, SharedRanking(given), options);
    SolveSession b(data, SharedRanking(given), options);
    EXPECT_TRUE(a.shared_given().SharesSnapshotWith(b.shared_given()));
    EXPECT_EQ(&a.given(), &b.given());

    ASSERT_TRUE(a.AppendTuple({0.5, 0.5, 0.5}).ok());
    EXPECT_EQ(a.stats().ranking_forks, 1);
    EXPECT_FALSE(a.shared_given().SharesSnapshotWith(b.shared_given()));
    EXPECT_EQ(b.given().position(0), given.get().position(0));
    EXPECT_EQ(b.stats().ranking_forks, 0);
  }
  EXPECT_FALSE(observer.expired()) << "the local handle still holds it";
  given = SharedRanking();
  EXPECT_TRUE(observer.expired())
      << "last handle dropped; the shared ranking must be freed";
}

TEST(SolveSessionTest, RedundantTighteningClosesAtTheRoot) {
  // A tightening edit that does not change the optimum: the pooled
  // incumbent still meets the seeded bound, so the re-solve must close at
  // the root without exploring a single node/box.
  Rng rng(62);
  Dataset data = RandomDataset(rng, 13, 3);
  Ranking given = RandomRanking(rng, 13, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;

  SolveSession session(data, given, options);
  auto first = session.Solve();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->proven_optimal);

  WeightConstraint noop;  // w0 >= 0 holds everywhere on the simplex
  noop.terms = {{0, 1.0}};
  noop.op = RelOp::kGe;
  noop.rhs = 0.0;
  noop.name = "noop";
  ASSERT_TRUE(session.AddWeightConstraint(noop).ok());
  auto second = session.Solve();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->proven_optimal);
  EXPECT_EQ(second->error, first->error);
  EXPECT_EQ(second->stats.nodes_explored, 0)
      << "bound seed + pool incumbent should close the search at the root";
  EXPECT_GT(session.stats().bound_seeds, 0);
}

TEST(SolveSessionTest, EditValidation) {
  Rng rng(63);
  Dataset data = RandomDataset(rng, 10, 3);
  Ranking given = RandomRanking(rng, 10, 5);
  SolveSession session(data, given, RankHowOptions{});

  EXPECT_EQ(session.RemoveWeightConstraint("nope").code(),
            StatusCode::kNotFound);
  WeightConstraint bad;
  bad.terms = {{7, 1.0}};
  EXPECT_EQ(session.AddWeightConstraint(bad).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.AddOrderConstraint(0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.AppendTuple({1.0}).code(),
            StatusCode::kInvalidArgument);
  EpsilonConfig bad_eps;
  bad_eps.eps1 = 0;
  bad_eps.tie_eps = 1;
  EXPECT_EQ(session.SetEpsilon(bad_eps).code(),
            StatusCode::kInvalidArgument);
}

TEST(SolveSessionTest, RelaxAfterLongTightenWarmStartsFromDominatedEntry) {
  // ROADMAP's incumbent-pool diversity item: a long tighten run used to
  // flush the pool's low-error entries by pure recency, so relaxing back
  // fell to a cold presolve. Dominated-entry eviction keeps the cold
  // optimum w0 as the low-error anchor — it is optimal for a *past*
  // constraint set (the empty one) even while the tighter states dominate
  // it — and the relax re-solve warm-starts from it.
  Rng rng(65);
  Dataset data = RandomDataset(rng, 13, 3);
  Ranking given = RandomRanking(rng, 13, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.incumbent_pool_cap = 3;  // small cap: overflow after a few edits

  SolveSession session(data, given, options);
  auto first = session.Solve();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->proven_optimal);
  const long e0 = first->error;

  // Tighten run: alternate rising floors across attributes so each step's
  // optimum (and pooled winner) keeps moving.
  const std::pair<int, double> floors[] = {
      {0, 0.20}, {1, 0.20}, {2, 0.20}, {0, 0.32}, {1, 0.30}};
  int added = 0;
  for (const auto& [attr, floor] : floors) {
    WeightConstraint c;
    c.terms = {{attr, 1.0}};
    c.op = RelOp::kGe;
    c.rhs = floor;
    c.name = "tighten" + std::to_string(added++);
    ASSERT_TRUE(session.AddWeightConstraint(c).ok());
    auto r = session.Solve();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->proven_optimal);
  }
  ASSERT_GT(session.stats().pool_evictions, 0)
      << "the tighten run never overflowed the cap — tighten harder";
  std::vector<long> pooled = session.incumbent_pool_errors();
  EXPECT_NE(std::find(pooled.begin(), pooled.end(), e0), pooled.end())
      << "the dominated low-error anchor was evicted (recency regression)";

  // Relax everything: revalidation must warm-start from the anchor (no
  // cold presolve fallback on THIS step — mid-tighten fallbacks are legal
  // when a floor knocks out every pooled entry) and the re-solve re-proves
  // the original optimum.
  const int64_t pool_hits = session.stats().pool_hits;
  const int64_t presolves_before_relax = session.stats().presolve_runs;
  for (int i = 0; i < added; ++i) {
    ASSERT_TRUE(
        session.RemoveWeightConstraint("tighten" + std::to_string(i)).ok());
  }
  auto relaxed = session.Solve();
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  EXPECT_TRUE(relaxed->proven_optimal);
  EXPECT_EQ(relaxed->error, e0);
  EXPECT_EQ(session.stats().presolve_runs, presolves_before_relax)
      << "the relax re-solve fell back to a cold multi-start";
  EXPECT_GT(session.stats().pool_hits, pool_hits);
}

TEST(SolveSessionTest, AppendTupleMatchesColdSolve) {
  Rng rng(64);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 6);

  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;

  SolveSession session(data, given, options);
  ASSERT_TRUE(session.Solve().ok());
  for (int i = 0; i < 2; ++i) {
    std::vector<double> values(3);
    for (double& v : values) v = rng.NextUniform(0, 1);
    int id = -1;
    ASSERT_TRUE(session.AppendTuple(values, &id).ok());
    EXPECT_EQ(id, 12 + i);
    auto sres = session.Solve();
    auto cres = ColdSolve(session, options);
    ASSERT_TRUE(sres.ok());
    ASSERT_TRUE(cres.ok());
    EXPECT_TRUE(sres->proven_optimal);
    EXPECT_EQ(sres->error, cres->error);
  }
  EXPECT_EQ(session.data().num_tuples(), 14);
}

}  // namespace
}  // namespace rankhow
