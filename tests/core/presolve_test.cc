#include "core/presolve.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ranking/score_ranking.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

OptProblem MakeProblem(const Dataset& data, const Ranking& given) {
  OptProblem problem;
  problem.data = &data;
  problem.given = &given;
  problem.eps = TestEps();
  return problem;
}

TEST(EvaluateTrueErrorTest, MatchesPositionError) {
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 4;
  spec.seed = 3;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 7);
  OptProblem problem = MakeProblem(data, given);

  std::vector<double> w = {0.25, 0.25, 0.25, 0.25};
  auto err = EvaluateTrueError(problem, w);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, PositionError(data, given, w, TestEps().tie_eps));
}

TEST(EvaluateTrueErrorTest, RejectsPredicateViolation) {
  SyntheticSpec spec;
  spec.num_tuples = 20;
  spec.num_attributes = 3;
  spec.seed = 5;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 4);
  OptProblem problem = MakeProblem(data, given);
  problem.constraints.AddMinWeight(0, 0.5, "w0>=0.5");

  EXPECT_FALSE(EvaluateTrueError(problem, {0.1, 0.5, 0.4}).has_value());
  EXPECT_TRUE(EvaluateTrueError(problem, {0.6, 0.2, 0.2}).has_value());
}

TEST(EvaluateTrueErrorTest, RejectsOrderViolation) {
  Dataset data({"A", "B"}, 2);
  data.set_value(0, 0, 1);
  data.set_value(0, 1, 0);
  data.set_value(1, 0, 0);
  data.set_value(1, 1, 1);
  auto given = Ranking::Create({1, 2});
  ASSERT_TRUE(given.ok());
  OptProblem problem = MakeProblem(data, *given);
  problem.order_constraints.push_back({0, 1});  // tuple 0 must outscore 1

  // w = (0.9, 0.1): f(0)=0.9 > f(1)=0.1 — satisfied.
  EXPECT_TRUE(EvaluateTrueError(problem, {0.9, 0.1}).has_value());
  // w = (0.1, 0.9): violated.
  EXPECT_FALSE(EvaluateTrueError(problem, {0.1, 0.9}).has_value());
}

TEST(EvaluateTrueErrorTest, RejectsPositionViolation) {
  Dataset data({"A", "B"}, 3);
  data.set_value(0, 0, 3);
  data.set_value(0, 1, 0);
  data.set_value(1, 0, 2);
  data.set_value(1, 1, 2);
  data.set_value(2, 0, 0);
  data.set_value(2, 1, 3);
  auto given = Ranking::Create({1, 2, kUnranked});
  ASSERT_TRUE(given.ok());
  OptProblem problem = MakeProblem(data, *given);
  problem.position_constraints.push_back({0, 1, 1});  // tuple 0 must be #1

  // w = (1, 0): scores 3, 2, 0 — tuple 0 first.
  EXPECT_TRUE(EvaluateTrueError(problem, {1.0, 0.0}).has_value());
  // w = (0, 1): scores 0, 2, 3 — tuple 0 last.
  EXPECT_FALSE(EvaluateTrueError(problem, {0.0, 1.0}).has_value());
}

TEST(PresolveTest, FindsPerfectWeightsOnRealizableRanking) {
  SyntheticSpec spec;
  spec.num_tuples = 60;
  spec.num_attributes = 3;
  spec.seed = 11;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.5, 0.3, 0.2}), 6, 0.0);
  OptProblem problem = MakeProblem(data, given);

  auto result = PresolveIncumbent(problem, WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  // Multi-start + refinement reliably lands in the (full-dimensional)
  // zero-error region of a realizable instance.
  EXPECT_EQ(result->error, 0);
  EXPECT_EQ(PositionError(data, given, result->weights, TestEps().tie_eps),
            0);
}

TEST(PresolveTest, StaysInsideTheBox) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 4;
  spec.seed = 9;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 5);
  OptProblem problem = MakeProblem(data, given);

  WeightBox box;
  box.lo = {0.1, 0.0, 0.2, 0.0};
  box.hi = {0.5, 0.3, 0.6, 0.4};
  auto result = PresolveIncumbent(problem, box);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  EXPECT_TRUE(box.Contains(result->weights, 1e-9));
  double sum = 0;
  for (double w : result->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PresolveTest, RespectsPredicate) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 3;
  spec.seed = 2;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 5);
  OptProblem problem = MakeProblem(data, given);
  problem.constraints.AddGroupBound({0, 2}, RelOp::kLe, 0.5, "w0+w2<=0.5");

  auto result = PresolveIncumbent(problem, WeightBox::FullSimplex(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found());
  EXPECT_LE(result->weights[0] + result->weights[2], 0.5 + 1e-7);
}

TEST(PresolveTest, EmptyBoxIsInfeasible) {
  SyntheticSpec spec;
  spec.num_tuples = 10;
  spec.num_attributes = 2;
  spec.seed = 1;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 3);
  OptProblem problem = MakeProblem(data, given);

  WeightBox box;
  box.lo = {0.8, 0.8};  // Σlo > 1: misses the simplex
  box.hi = {1.0, 1.0};
  auto result = PresolveIncumbent(problem, box);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(PresolveTest, DeterministicAcrossRuns) {
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 4;
  spec.seed = 17;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 4, 6);
  OptProblem problem = MakeProblem(data, given);

  PresolveOptions options;
  options.time_budget_seconds = 0;  // no deadline: fully deterministic
  auto a = PresolveIncumbent(problem, WeightBox::FullSimplex(4), options);
  auto b = PresolveIncumbent(problem, WeightBox::FullSimplex(4), options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->found() && b->found());
  EXPECT_EQ(a->error, b->error);
  EXPECT_EQ(a->weights, b->weights);
}

}  // namespace
}  // namespace rankhow
