// RegistryRouter suite (runs under `ctest -L tsan` via the server test
// binary's tsan label):
//
//  * open-by-dataset-id routing: clients bound to different catalog
//    entries prove exactly what a serial single-session replay over the
//    same dataset proves; `open` without an id binds the default.
//  * lazy loading: a registered dataset costs zero loader calls until the
//    first `open` names it, and exactly one while it stays resident.
//  * LRU eviction: loading past max_resident_registries evicts the
//    least-recently-used *zero-client* registry; registries with open
//    clients are never touched, and when every resident registry has
//    clients the open fails with kResourceExhausted instead of blocking.
//  * idle-session LRU: opening past max_open_sessions closes the least
//    recently used idle session (its next command answers kNotFound, the
//    survivors keep solving).
//  * shared-pool equivalence: with cross-client incumbent sharing on,
//    every *proven* optimum is identical to the sharing-off run, and the
//    second client actually draws the first client's published winners.
//  * the router-backed wire protocol: dataset-form opens ack with the
//    bound id, stats aggregates across registries.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "core/solve_session.h"
#include "server/registry_router.h"
#include "server/wire.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

SessionCommand Cmd(SessionCommand::Kind kind, std::string arg = "",
                   double value = 0, int line = 1) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  cmd.line = line;
  return cmd;
}

/// A catalog fixture: `count` independent random datasets ("d0".."dN-1"),
/// each with a per-dataset loader-invocation counter.
struct Catalog {
  std::vector<Dataset> datasets;
  std::vector<Ranking> rankings;
  std::vector<std::shared_ptr<int>> loads;

  explicit Catalog(int count, uint64_t seed = 101, int n = 10, int m = 3,
                   int k = 4) {
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      datasets.push_back(RandomDataset(rng, n, m));
      rankings.push_back(RandomRanking(rng, n, k));
      loads.push_back(std::make_shared<int>(0));
    }
  }

  void Register(RegistryRouter* router) const {
    for (size_t i = 0; i < datasets.size(); ++i) {
      const Dataset& data = datasets[i];
      const Ranking& given = rankings[i];
      std::shared_ptr<int> counter = loads[i];
      ASSERT_TRUE(router
                      ->RegisterDataset(
                          "d" + std::to_string(i),
                          [data, given, counter]()
                              -> Result<RegistryRouter::DatasetBundle> {
                            ++*counter;
                            RegistryRouter::DatasetBundle bundle;
                            bundle.data = SharedDataset(Dataset(data));
                            bundle.given = Ranking(given);
                            bundle.labels =
                                TupleLabels(data.num_tuples());
                            return bundle;
                          })
                      .ok());
    }
  }
};

RouterOptions SmallRouterOptions(int workers = 2) {
  RouterOptions options;
  options.server.solver = SpatialOptions();
  options.server.num_workers = workers;
  return options;
}

struct Slot {
  Result<SessionStepOutcome> outcome = Status::Internal("unset");
};

void SubmitAndWait(RegistryRouter* router, const std::string& client,
                   SessionCommand cmd, Slot* slot) {
  ASSERT_TRUE(router
                  ->Submit(client, std::move(cmd),
                           [slot](const std::string&,
                                  const Result<SessionStepOutcome>& out) {
                             slot->outcome = out;
                           })
                  .ok());
  router->Drain();
}

TEST(RegistryRouterTest, RoutesOpensByDatasetIdAndMatchesSerialReplay) {
  Catalog catalog(2);
  RegistryRouter router(SmallRouterOptions());
  catalog.Register(&router);

  ASSERT_TRUE(router.Open("a", "d0").ok());
  ASSERT_TRUE(router.Open("b", "d1").ok());
  ASSERT_TRUE(router.Open("c", "").ok());  // default = first registered
  EXPECT_EQ(router.ClientDataset("a"), "d0");
  EXPECT_EQ(router.ClientDataset("b"), "d1");
  EXPECT_EQ(router.ClientDataset("c"), "d0");

  EXPECT_EQ(router.Open("x", "nope").code(), StatusCode::kNotFound);
  // Client names are router-global: the same name cannot live twice, even
  // against another dataset.
  EXPECT_EQ(router.Open("a", "d1").code(), StatusCode::kAlreadyExists);

  Slot a, b, c;
  SubmitAndWait(&router, "a", Cmd(SessionCommand::Kind::kSolve), &a);
  SubmitAndWait(&router, "b", Cmd(SessionCommand::Kind::kSolve), &b);
  SubmitAndWait(&router, "c", Cmd(SessionCommand::Kind::kSolve), &c);
  ASSERT_TRUE(a.outcome.ok()) << a.outcome.status().ToString();
  ASSERT_TRUE(b.outcome.ok()) << b.outcome.status().ToString();
  ASSERT_TRUE(c.outcome.ok()) << c.outcome.status().ToString();

  // Per-dataset ground truth: a serial session over the same bundle.
  for (int i = 0; i < 2; ++i) {
    SolveSession replay(Dataset(catalog.datasets[i]),
                        Ranking(catalog.rankings[i]), SpatialOptions());
    auto want = replay.Solve();
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(want->proven_optimal);
    const Slot& got = i == 0 ? a : b;
    EXPECT_TRUE(got.outcome->result.proven_optimal);
    EXPECT_EQ(got.outcome->result.error, want->error)
        << "dataset d" << i << " routed to the wrong registry?";
    if (i == 0) {
      EXPECT_EQ(c.outcome->result.error, want->error)
          << "default-dataset open did not land on d0";
    }
  }

  RegistryRouterStats stats = router.Stats();
  EXPECT_EQ(stats.registered_datasets, 2);
  EXPECT_EQ(stats.resident_registries, 2);
  EXPECT_EQ(stats.open_clients, 3);
  EXPECT_EQ(stats.commands_executed, 3);
}

TEST(RegistryRouterTest, LoadsLazilyOncePerResidence) {
  Catalog catalog(3);
  RegistryRouter router(SmallRouterOptions(1));
  catalog.Register(&router);

  EXPECT_EQ(*catalog.loads[0], 0) << "registration must not load";
  EXPECT_EQ(*catalog.loads[1], 0);
  EXPECT_EQ(router.Stats().resident_registries, 0);

  ASSERT_TRUE(router.Open("a", "d0").ok());
  EXPECT_EQ(*catalog.loads[0], 1);
  ASSERT_TRUE(router.Open("b", "d0").ok());
  EXPECT_EQ(*catalog.loads[0], 1) << "a resident dataset must not reload";
  EXPECT_EQ(*catalog.loads[1], 0) << "d1 was never opened";
  EXPECT_EQ(*catalog.loads[2], 0);
  EXPECT_EQ(router.Stats().resident_registries, 1);
  EXPECT_EQ(router.Stats().datasets_loaded, 1);
}

TEST(RegistryRouterTest, LruEvictsIdleRegistryAndSparesBusyOnes) {
  Catalog catalog(3);
  RouterOptions options = SmallRouterOptions();
  options.max_resident_registries = 2;
  RegistryRouter router(options);
  catalog.Register(&router);

  ASSERT_TRUE(router.Open("a", "d0").ok());
  ASSERT_TRUE(router.Open("b", "d1").ok());
  Slot a, b;
  SubmitAndWait(&router, "a", Cmd(SessionCommand::Kind::kSolve), &a);
  SubmitAndWait(&router, "b", Cmd(SessionCommand::Kind::kSolve), &b);
  ASSERT_TRUE(a.outcome.ok());
  ASSERT_TRUE(b.outcome.ok());

  // Both registries have clients: loading d2 has nothing idle to evict.
  EXPECT_EQ(router.Open("c", "d2").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(*catalog.loads[2], 1)
      << "the load happened before the budget check could see it fail";
  EXPECT_EQ(router.Stats().resident_registries, 2);

  // Freeing d1 (LRU once 'a' is touched again) makes room: d1 is evicted,
  // d0 — busy with an open client — is untouched.
  ASSERT_TRUE(router.Close("b", /*graceful=*/true).ok());
  Slot touch;
  SubmitAndWait(&router, "a", Cmd(SessionCommand::Kind::kSolve), &touch);
  ASSERT_TRUE(touch.outcome.ok());
  ASSERT_TRUE(router.Open("c", "d2").ok());
  RegistryRouterStats stats = router.Stats();
  EXPECT_EQ(stats.resident_registries, 2);
  EXPECT_EQ(stats.registries_evicted, 1);

  // The survivor's client kept its full session state.
  Slot after;
  SubmitAndWait(&router, "a",
                Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.05), &after);
  ASSERT_TRUE(after.outcome.ok()) << after.outcome.status().ToString();
  EXPECT_TRUE(after.outcome->result.proven_optimal);

  // Re-opening the evicted dataset reloads it (the loader runs again).
  ASSERT_TRUE(router.Close("c", /*graceful=*/true).ok());
  ASSERT_TRUE(router.Close("a", /*graceful=*/true).ok());
  ASSERT_TRUE(router.Open("back", "d1").ok());
  EXPECT_EQ(*catalog.loads[1], 2)
      << "an evicted dataset must lazy-load again on its next open";
  EXPECT_EQ(router.Stats().commands_executed, 4)
      << "eviction must not erase executed-command totals";
}

TEST(RegistryRouterTest, IdleSessionLruEvictionFreesTheOldestIdleClient) {
  Catalog catalog(1);
  RouterOptions options = SmallRouterOptions();
  options.max_open_sessions = 2;
  RegistryRouter router(options);
  catalog.Register(&router);

  ASSERT_TRUE(router.Open("a", "d0").ok());
  ASSERT_TRUE(router.Open("b", "d0").ok());
  // Touch 'a' so 'b' becomes the LRU idle session.
  Slot a;
  SubmitAndWait(&router, "a", Cmd(SessionCommand::Kind::kSolve), &a);
  ASSERT_TRUE(a.outcome.ok());

  ASSERT_TRUE(router.Open("c", "d0").ok())
      << "opening at the budget must evict an idle session, not fail";
  RegistryRouterStats stats = router.Stats();
  EXPECT_EQ(stats.open_clients, 2);
  EXPECT_EQ(stats.sessions_evicted, 1);

  // The evicted client is gone; the survivors keep working.
  EXPECT_EQ(router
                .Submit("b", Cmd(SessionCommand::Kind::kSolve),
                        [](const std::string&,
                           const Result<SessionStepOutcome>&) {})
                .code(),
            StatusCode::kNotFound)
      << "the LRU idle session should have been evicted";
  Slot c;
  SubmitAndWait(&router, "c", Cmd(SessionCommand::Kind::kSolve), &c);
  ASSERT_TRUE(c.outcome.ok());
  EXPECT_TRUE(c.outcome->result.proven_optimal);
}

TEST(RegistryRouterTest, SharedPoolProvesIdenticalOptimaAndSeedsSiblings) {
  // The cross-client sharing acceptance property: shared vs per-session
  // pools prove identical optima on every step, and the second client
  // demonstrably draws the first one's published winners.
  Catalog catalog(1, /*seed=*/202, /*n=*/12, /*m=*/3, /*k=*/5);
  const std::vector<SessionCommand> script = {
      Cmd(SessionCommand::Kind::kSolve),
      Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.05),
      Cmd(SessionCommand::Kind::kMaxWeight, "A1", 0.6),
      Cmd(SessionCommand::Kind::kDrop, "min_A0"),
  };

  std::vector<long> errors[2];
  for (int shared = 0; shared < 2; ++shared) {
    RouterOptions options = SmallRouterOptions();
    options.server.share_incumbents = shared == 1;
    RegistryRouter router(options);
    catalog.Register(&router);
    // Client A proves the whole script first, then B replays it — the
    // sequential schedule makes B's draws deterministic.
    for (const char* client : {"alice", "bob"}) {
      ASSERT_TRUE(router.Open(client, "d0").ok());
      for (const SessionCommand& cmd : script) {
        Slot slot;
        SubmitAndWait(&router, client, cmd, &slot);
        ASSERT_TRUE(slot.outcome.ok())
            << slot.outcome.status().ToString();
        ASSERT_TRUE(slot.outcome->result.proven_optimal);
        errors[shared].push_back(slot.outcome->result.error);
      }
    }
    RegistryRouterStats stats = router.Stats();
    if (shared == 1) {
      EXPECT_GT(stats.shared_publishes, 0)
          << "proven winners must flow into the registry pool";
      EXPECT_GT(stats.shared_draws, 0)
          << "bob never drew alice's published winners";
    } else {
      EXPECT_EQ(stats.shared_publishes, 0);
      EXPECT_EQ(stats.shared_draws, 0);
    }
  }
  ASSERT_EQ(errors[0].size(), errors[1].size());
  for (size_t i = 0; i < errors[0].size(); ++i) {
    EXPECT_EQ(errors[0][i], errors[1][i])
        << "step " << i
        << ": cross-client sharing changed a proven optimum (candidates "
           "must never act as bounds)";
  }
}

TEST(RegistryRouterTest, WireProtocolRoutesDatasetOpens) {
  Catalog catalog(2);
  RegistryRouter router(SmallRouterOptions());
  catalog.Register(&router);

  std::istringstream in(
      "open alice d0\n"
      "open bob d1\n"
      "open carol\n"        // default dataset, echoed in the ack
      "open dave nope\n"    // unknown dataset id
      "alice solve\n"
      "bob solve\n"
      "stats\n"
      "close bob\n"
      "quit\n");
  std::ostringstream out;
  ASSERT_TRUE(ServeStream(&router, in, out).ok());
  const std::string output = out.str();

  EXPECT_NE(output.find("ok open alice d0"), std::string::npos) << output;
  EXPECT_NE(output.find("ok open bob d1"), std::string::npos) << output;
  EXPECT_NE(output.find("ok open carol d0"), std::string::npos)
      << "the default dataset must be echoed: " << output;
  EXPECT_NE(output.find("err dave unknown dataset id: nope"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("ok alice line=5"), std::string::npos) << output;
  EXPECT_NE(output.find("ok bob line=6"), std::string::npos) << output;
  EXPECT_NE(output.find("ok stats registries=2 clients=3 datasets=2"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("ok close bob"), std::string::npos) << output;
  EXPECT_EQ(output.rfind("ok quit\n"), output.size() - 8) << output;
}

}  // namespace
}  // namespace rankhow
