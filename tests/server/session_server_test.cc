// The session server suite (runs under `ctest -L tsan` via the tsan CMake
// label):
//
//  * Randomized multi-client equivalence harness: K scripted clients with
//    interleaved edit schedules run concurrently through a SessionRegistry
//    (1 and 4 pool workers) over ONE copy-on-write dataset snapshot; every
//    client's per-step proven optimum must be bit-identical to a serial
//    single-session replay of its script. Concurrency and snapshot sharing
//    must be invisible in the results.
//  * COW lifecycle through the registry: resident dataset copies stay at 1
//    across any number of clients until a structural `append` edit forks,
//    and sibling sessions re-prove bit-identical optima after the fork.
//  * Fuzz-style negative tests for the wire grammar and the script
//    execution layer: truncated lines, unknown verbs, out-of-range eps,
//    duplicate constraint names — Status errors only, and the session
//    keeps solving the exact same problem afterwards (no crashes, no
//    silent state corruption).
//  * Cooperative cancellation: a cancelled client's solve comes back
//    budget-limited with its warm incumbent, siblings unaffected.

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "core/solve_session.h"
#include "server/session_registry.h"
#include "server/wire.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

SessionCommand Cmd(SessionCommand::Kind kind, std::string arg = "",
                   double value = 0, int line = 0) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  cmd.line = line;
  return cmd;
}

/// A random feasible edit schedule: weight floors/ceilings under fresh
/// names, drops of previously added names, ε₁ flips, and tuple appends.
/// Every command is valid by construction (the negative suite covers the
/// invalid ones).
std::vector<SessionCommand> RandomScript(Rng& rng, int m, int steps) {
  std::vector<SessionCommand> script;
  std::vector<std::pair<bool, std::string>> active;  // (is_min, attr name)
  script.push_back(Cmd(SessionCommand::Kind::kSolve, "", 0, 1));
  for (int s = 1; s < steps; ++s) {
    const int line = s + 1;
    const int kind = static_cast<int>(rng.NextBelow(10));
    const std::string attr = "A" + std::to_string(rng.NextBelow(m));
    if (kind < 3) {
      bool have = false;
      for (const auto& [is_min, a] : active) have |= is_min && a == attr;
      if (!have) {
        active.emplace_back(true, attr);
        script.push_back(Cmd(SessionCommand::Kind::kMinWeight, attr,
                             rng.NextUniform(0.0, 0.10), line));
        continue;
      }
    } else if (kind < 5) {
      bool have = false;
      for (const auto& [is_min, a] : active) have |= !is_min && a == attr;
      if (!have) {
        active.emplace_back(false, attr);
        script.push_back(Cmd(SessionCommand::Kind::kMaxWeight, attr,
                             rng.NextUniform(0.55, 1.0), line));
        continue;
      }
    } else if (kind < 7 && !active.empty()) {
      const size_t i = rng.NextBelow(active.size());
      const std::string name =
          (active[i].first ? "min_" : "max_") + active[i].second;
      active.erase(active.begin() + i);
      script.push_back(Cmd(SessionCommand::Kind::kDrop, name, 0, line));
      continue;
    } else if (kind < 9) {
      script.push_back(Cmd(SessionCommand::Kind::kEps1, "",
                           rng.NextBelow(2) == 0 ? 2e-6 : 1e-6, line));
      continue;
    } else {
      std::string values;
      for (int a = 0; a < m; ++a) {
        if (a > 0) values += ' ';
        values += std::to_string(rng.NextUniform(0, 1));
      }
      script.push_back(Cmd(SessionCommand::Kind::kAppend, values, 0, line));
      continue;
    }
    script.push_back(Cmd(SessionCommand::Kind::kSolve, "", 0, line));
  }
  return script;
}

TEST(SessionServerTest, ConcurrentClientsMatchSerialReplay) {
  // The headline harness: K interleaved scripted clients over one shared
  // snapshot vs a serial replay of each script, at 1 and 4 pool workers.
  const int n = 12, m = 3, k = 5, kClients = 4, kSteps = 6;
  for (int workers : {1, 4}) {
    Rng rng(71);
    Dataset data = RandomDataset(rng, n, m);
    Ranking given = RandomRanking(rng, n, k);
    std::vector<std::string> labels = TupleLabels(n);

    std::vector<std::vector<SessionCommand>> scripts;
    for (int c = 0; c < kClients; ++c) {
      scripts.push_back(RandomScript(rng, m, kSteps));
    }

    ServerOptions server_options;
    server_options.solver = SpatialOptions();
    server_options.num_workers = workers;
    // This harness asserts *bit-identical* weights against a serial
    // replay; cross-client sharing keeps every proven error identical but
    // may surface a different optimal weight vector depending on sibling
    // timing, so it stays off here (registry_router_test covers the
    // shared-pool equivalence property on proven optima).
    server_options.share_incumbents = false;
    SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                             labels, server_options);
    auto runs = RunScriptedClients(&registry, scripts, kClients);
    ASSERT_TRUE(runs.ok()) << runs.status().ToString();
    ASSERT_EQ(runs->size(), static_cast<size_t>(kClients));

    for (int c = 0; c < kClients; ++c) {
      const ScriptedClientRun& run = (*runs)[c];
      ASSERT_TRUE(run.status.ok())
          << "workers=" << workers << " client=" << c << ": "
          << run.status.ToString();
      ASSERT_EQ(run.outcomes.size(), scripts[c].size());

      // Serial single-session replay of this client's script, same code
      // path (ExecuteSessionCommand), fresh private snapshot.
      SolveSession replay(Dataset(data), Ranking(given), SpatialOptions());
      for (size_t s = 0; s < scripts[c].size(); ++s) {
        auto expected = ExecuteSessionCommand(&replay, scripts[c][s], labels);
        ASSERT_TRUE(expected.ok())
            << "client=" << c << " step=" << s << ": "
            << expected.status().ToString();
        const RankHowResult& got = run.outcomes[s].result;
        const RankHowResult& want = expected->result;
        EXPECT_TRUE(got.proven_optimal && want.proven_optimal)
            << "workers=" << workers << " client=" << c << " step=" << s;
        EXPECT_EQ(got.error, want.error)
            << "workers=" << workers << " client=" << c << " step=" << s
            << ": concurrent client and serial replay disagree";
        EXPECT_EQ(got.function.weights, want.function.weights)
            << "workers=" << workers << " client=" << c << " step=" << s;
      }
    }
  }
}

TEST(SessionServerTest, ResidentCopiesStayAtOneUntilAForkAndSiblingsHold) {
  // The COW acceptance walk, staged so the snapshot count is observable
  // between phases: 4 clients solving over one dataset = 1 resident copy;
  // one client appends (forks) = 2 copies; siblings re-prove bit-identical
  // optima after the fork.
  Rng rng(81);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 5);
  std::vector<std::string> labels = TupleLabels(12);

  ServerOptions server_options;
  server_options.solver = SpatialOptions();
  server_options.num_workers = 4;
  // Off for the same reason as the equivalence harness: this test asserts
  // weight identity across a sibling's fork.
  server_options.share_incumbents = false;
  SessionRegistry registry(SharedDataset(std::move(data)), std::move(given),
                           labels, server_options);

  struct Slot {
    Result<SessionStepOutcome> outcome = Status::Internal("unset");
  };
  auto submit_solve = [&registry](const std::string& client, Slot* slot) {
    ASSERT_TRUE(registry
                    .Submit(client, Cmd(SessionCommand::Kind::kSolve),
                            [slot](const std::string&,
                                   const Result<SessionStepOutcome>& out) {
                              slot->outcome = out;
                            })
                    .ok());
  };

  std::vector<std::string> names = {"alice", "bob", "carol", "dave"};
  for (const std::string& name : names) {
    ASSERT_TRUE(registry.Open(name).ok());
  }
  std::vector<Slot> first(names.size());
  for (size_t i = 0; i < names.size(); ++i) submit_solve(names[i], &first[i]);
  registry.Drain();

  SessionRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.open_clients, 4);
  EXPECT_EQ(stats.resident_dataset_copies, 1)
      << "4 concurrent sessions over one dataset must hold ONE snapshot";
  EXPECT_EQ(stats.dataset_forks, 0);
  for (size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(first[i].outcome.ok());
    EXPECT_TRUE(first[i].outcome->result.proven_optimal);
    // Same immutable snapshot, same options: all four prove one optimum.
    EXPECT_EQ(first[i].outcome->result.error, first[0].outcome->result.error);
  }

  // dave appends a tuple: his session forks a private copy.
  Slot forked;
  ASSERT_TRUE(registry
                  .Submit("dave",
                          Cmd(SessionCommand::Kind::kAppend, "0.9 0.9 0.9"),
                          [&forked](const std::string&,
                                    const Result<SessionStepOutcome>& out) {
                            forked.outcome = out;
                          })
                  .ok());
  registry.Drain();
  stats = registry.Stats();
  EXPECT_EQ(stats.resident_dataset_copies, 2)
      << "the structural edit must fork exactly one private copy";
  EXPECT_EQ(stats.dataset_forks, 1);
  ASSERT_TRUE(forked.outcome.ok());

  // Siblings re-solve on the untouched snapshot: bit-identical to before.
  std::vector<Slot> second(3);
  for (int i = 0; i < 3; ++i) submit_solve(names[i], &second[i]);
  registry.Drain();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(second[i].outcome.ok());
    EXPECT_EQ(second[i].outcome->result.error, first[i].outcome->result.error)
        << names[i] << "'s results changed across a sibling's fork";
    EXPECT_EQ(second[i].outcome->result.function.weights,
              first[i].outcome->result.function.weights);
  }

  // Closing dave drops the forked copy; the fork counter stays cumulative.
  ASSERT_TRUE(registry.Close("dave").ok());
  EXPECT_EQ(registry.Stats().resident_dataset_copies, 1);
  EXPECT_EQ(registry.Stats().dataset_forks, 1)
      << "closing the forking client must not erase its fork from stats";
}

TEST(SessionServerTest, WireGrammarRejectsMalformedLines) {
  // Parse-level fuzzing: every malformed shape is a Status error with the
  // offending token in the message — never a crash, never a partial parse.
  EXPECT_EQ(ParseWireLine("").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseWireLine("   # comment").status().code(),
            StatusCode::kNotFound);
  for (const char* bad : {
           "open",                      // truncated: no client
           "open a b c",                // too many args
           "close",                     // truncated
           "close a b",                 // close never takes a dataset
           "stats now",                 // arity
           "quit now",                  // arity
           "c0",                        // truncated: client without command
           "c0 frobnicate",             // unknown verb
           "c0 min-weight PTS",         // truncated command
           "c0 min-weight PTS 1.5",     // out-of-range bound
           "c0 min-weight PTS nan",     // non-numeric
           "c0 eps1 huge",              // non-numeric eps
           "c0 order Jokic",            // no '>'
           "c0 append",                 // no values
           "c0 append 0.1 oops",        // non-numeric value
           "c0 solve extra",            // arity
       }) {
    auto parsed = ParseWireLine(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // The happy path still parses.
  auto ok = ParseWireLine("c0 min-weight A0 0.25");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, WireRequest::Kind::kCommand);
  EXPECT_EQ(ok->client, "c0");
  EXPECT_EQ(ok->command.kind, SessionCommand::Kind::kMinWeight);
  // The dataset form of open (routed servers; PROTOCOL.md).
  auto routed = ParseWireLine("open alice nba");
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->kind, WireRequest::Kind::kOpen);
  EXPECT_EQ(routed->client, "alice");
  EXPECT_EQ(routed->dataset, "nba");
  auto plain = ParseWireLine("open alice");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->dataset.empty());
}

TEST(SessionServerTest, BadCommandsErrorAndLeaveTheSessionIntact) {
  // Execution-level fuzzing: each bad command answers a Status error and
  // the session keeps proving the exact same optimum afterwards.
  Rng rng(91);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 5);
  std::vector<std::string> labels = TupleLabels(12);

  ServerOptions server_options;
  server_options.solver = SpatialOptions();
  server_options.num_workers = 1;
  SessionRegistry registry(SharedDataset(std::move(data)), std::move(given),
                           labels, server_options);
  ASSERT_TRUE(registry.Open("c").ok());

  Result<SessionStepOutcome> last = Status::Internal("unset");
  auto run = [&](SessionCommand cmd) {
    last = Status::Internal("unset");
    EXPECT_TRUE(registry
                    .Submit("c", std::move(cmd),
                            [&last](const std::string&,
                                    const Result<SessionStepOutcome>& out) {
                              last = out;
                            })
                    .ok());
    registry.Drain();
  };

  // Baseline: a floor plus a solve.
  run(Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.05, 1));
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  const long baseline_error = last->result.error;
  ASSERT_TRUE(last->result.proven_optimal);

  struct BadCase {
    SessionCommand cmd;
    StatusCode want;
  };
  const BadCase cases[] = {
      // Duplicate constraint name: must drop before re-adding.
      {Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.08, 2),
       StatusCode::kAlreadyExists},
      // Unknown attribute (AttributeIndex reports kNotFound).
      {Cmd(SessionCommand::Kind::kMinWeight, "BOGUS", 0.05, 3),
       StatusCode::kNotFound},
      // Unknown drop name.
      {Cmd(SessionCommand::Kind::kDrop, "min_A2", 0, 4),
       StatusCode::kNotFound},
      // Out-of-range ε edits (pass parsing, fail validation).
      {Cmd(SessionCommand::Kind::kEps1, "", -1.0, 5),
       StatusCode::kInvalidArgument},
      {Cmd(SessionCommand::Kind::kEps2, "", 0.5, 6),
       StatusCode::kInvalidArgument},
      // Unknown labels / self-order.
      {Cmd(SessionCommand::Kind::kOrder, "nope>t1", 0, 7),
       StatusCode::kInvalidArgument},
      {Cmd(SessionCommand::Kind::kOrder, "t1>t1", 0, 8),
       StatusCode::kInvalidArgument},
      // Append arity mismatch (m=3).
      {Cmd(SessionCommand::Kind::kAppend, "0.5", 0, 9),
       StatusCode::kInvalidArgument},
      // Unknown objective.
      {Cmd(SessionCommand::Kind::kObjective, "chaos", 0, 10),
       StatusCode::kInvalidArgument},
  };
  for (const BadCase& bad : cases) {
    run(bad.cmd);
    EXPECT_FALSE(last.ok()) << "command on line " << bad.cmd.line
                            << " was accepted";
    EXPECT_EQ(last.status().code(), bad.want)
        << "line " << bad.cmd.line << ": " << last.status().ToString();
  }

  // The session still proves the baseline problem, unchanged.
  run(Cmd(SessionCommand::Kind::kSolve, "", 0, 11));
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_TRUE(last->result.proven_optimal);
  EXPECT_EQ(last->result.error, baseline_error)
      << "rejected edits corrupted the session state";

  // Exactly one min_A0 exists (the duplicate never stacked): dropping it
  // once succeeds, dropping again is kNotFound.
  run(Cmd(SessionCommand::Kind::kDrop, "min_A0", 0, 12));
  EXPECT_TRUE(last.ok()) << last.status().ToString();
  run(Cmd(SessionCommand::Kind::kDrop, "min_A0", 0, 13));
  EXPECT_EQ(last.status().code(), StatusCode::kNotFound);
}

TEST(SessionServerTest, RegistryValidatesClientLifecycles) {
  Rng rng(92);
  ServerOptions server_options;
  server_options.solver = SpatialOptions();
  server_options.num_workers = 1;
  server_options.max_clients = 2;
  SessionRegistry registry(SharedDataset(RandomDataset(rng, 10, 3)),
                           RandomRanking(rng, 10, 4), TupleLabels(10),
                           server_options);

  EXPECT_EQ(registry.Open("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Open("quit").code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Open("a").ok());
  EXPECT_EQ(registry.Open("a").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(registry.Open("b").ok());
  EXPECT_EQ(registry.Open("c").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(registry.Submit("ghost", Cmd(SessionCommand::Kind::kSolve),
                            nullptr)
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Close("ghost").code(), StatusCode::kNotFound);
  ASSERT_TRUE(registry.Close("a").ok());
  EXPECT_EQ(registry.Stats().open_clients, 1);
  ASSERT_TRUE(registry.Open("c").ok()) << "closing freed a slot";
}

TEST(SessionServerTest, CancelledSolveReturnsBudgetLimitedWithIncumbent) {
  Rng rng(93);
  Dataset data = RandomDataset(rng, 12, 3);
  Ranking given = RandomRanking(rng, 12, 5);

  ServerOptions server_options;
  server_options.solver = SpatialOptions();
  server_options.num_workers = 2;
  SessionRegistry registry(SharedDataset(std::move(data)), std::move(given),
                           TupleLabels(12), server_options);
  ASSERT_TRUE(registry.Open("victim").ok());
  ASSERT_TRUE(registry.Open("bystander").ok());

  struct Slot {
    Result<SessionStepOutcome> outcome = Status::Internal("unset");
  };
  Slot warm, cancelled, bystander;
  auto capture = [](Slot* slot) {
    return [slot](const std::string&,
                  const Result<SessionStepOutcome>& out) {
      slot->outcome = out;
    };
  };

  // Warm the victim (installs a pool incumbent), then cancel it: the next
  // solve must wind down at the root, keeping the warm incumbent but not
  // claiming a proof.
  ASSERT_TRUE(registry
                  .Submit("victim", Cmd(SessionCommand::Kind::kSolve),
                          capture(&warm))
                  .ok());
  registry.Drain();
  ASSERT_TRUE(warm.outcome.ok());
  ASSERT_TRUE(warm.outcome->result.proven_optimal);

  registry.Cancel("victim");
  ASSERT_TRUE(registry
                  .Submit("victim", Cmd(SessionCommand::Kind::kSolve),
                          capture(&cancelled))
                  .ok());
  ASSERT_TRUE(registry
                  .Submit("bystander", Cmd(SessionCommand::Kind::kSolve),
                          capture(&bystander))
                  .ok());
  registry.Drain();

  ASSERT_TRUE(cancelled.outcome.ok())
      << cancelled.outcome.status().ToString();
  EXPECT_FALSE(cancelled.outcome->result.proven_optimal)
      << "a cancelled search must not claim a proof";
  EXPECT_EQ(cancelled.outcome->result.error, warm.outcome->result.error)
      << "the pooled incumbent should survive the cancelled re-solve";

  ASSERT_TRUE(bystander.outcome.ok());
  EXPECT_TRUE(bystander.outcome->result.proven_optimal)
      << "cancelling one client must not leak into siblings";

  // The flag is consumed by the cancelled command: the victim's next
  // solve runs to a proof again (no permanent poisoning).
  Slot after;
  ASSERT_TRUE(registry
                  .Submit("victim", Cmd(SessionCommand::Kind::kSolve),
                          capture(&after))
                  .ok());
  registry.Drain();
  ASSERT_TRUE(after.outcome.ok());
  EXPECT_TRUE(after.outcome->result.proven_optimal)
      << "a one-shot Cancel poisoned every later solve";
}

TEST(SessionServerTest, ServeStreamSpeaksTheLineProtocol) {
  Rng rng(94);
  ServerOptions server_options;
  server_options.solver = SpatialOptions();
  server_options.num_workers = 2;
  SessionRegistry registry(SharedDataset(RandomDataset(rng, 10, 3)),
                           RandomRanking(rng, 10, 4), TupleLabels(10),
                           server_options);

  std::istringstream in(
      "open alice\n"
      "# a comment line\n"
      "alice solve\n"
      "alice min-weight A0 0.05\n"
      "alice frobnicate 1\n"
      "open alice\n"
      "close bob\n"
      "open carol nba\n"
      "quit\n"
      "alice solve\n");  // after quit: never read
  std::ostringstream out;
  ASSERT_TRUE(ServeStream(&registry, in, out).ok());
  const std::string output = out.str();

  EXPECT_NE(output.find("ok open alice"), std::string::npos) << output;
  EXPECT_NE(output.find("ok alice line=3"), std::string::npos) << output;
  EXPECT_NE(output.find("ok alice line=4"), std::string::npos) << output;
  EXPECT_NE(output.find("err - wire line 5"), std::string::npos) << output;
  EXPECT_NE(output.find("err alice client already open"), std::string::npos)
      << output;
  EXPECT_NE(output.find("err bob"), std::string::npos) << output;
  // A single-registry server rejects the dataset form of open.
  EXPECT_NE(output.find("err carol this server serves a single dataset"),
            std::string::npos)
      << output;
  // quit drains before acking, so it is the last line.
  EXPECT_EQ(output.rfind("ok quit\n"), output.size() - 8) << output;
}

}  // namespace
}  // namespace rankhow
