// SessionJournal suite (satellite of the durability PR): property-style
// round-trip tests of the write-ahead journal's framing and read-back.
//
//  * framing round-trip: every record kind (open/close/cmd over the whole
//    command grammar) reads back byte-identical, across fsync policies and
//    segment rotation;
//  * torn final record: a crash mid-append truncates cleanly (the intact
//    prefix replays, `truncated` counts 1);
//  * CRC corruption: a flipped byte drops exactly that record and the
//    framing resynchronizes on the next line (`skipped` counts it);
//  * empty / missing files are empty readbacks, not errors;
//  * duplicate close records fold to a well-defined live-session set;
//  * FormatSessionCommand is the exact inverse of ParseSessionScript
//    (doubles round-trip bit-exactly via %.17g);
//  * DatasetFingerprint separates different datasets/rankings and is
//    stable across loads of the same one.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "ranking/ranking.h"
#include "server/journal.h"
#include "util/random.h"

namespace rankhow {
namespace {

/// A self-deleting scratch directory for journal files.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/rankhow_journal_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    // Best-effort cleanup of the handful of files the tests create.
    for (const std::string& name : cleanup) ::remove(name.c_str());
    ::rmdir(path.c_str());
  }
  std::string File(const std::string& name) {
    const std::string full = path + "/" + name;
    cleanup.push_back(full);
    return full;
  }
  std::vector<std::string> cleanup;
};

SessionCommand Cmd(SessionCommand::Kind kind, std::string arg = "",
                   double value = 0) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  return cmd;
}

/// One of each command kind, with awkward values (negative, tiny,
/// non-terminating binary fractions) to stress the %.17g round-trip.
std::vector<SessionCommand> GrammarSamples() {
  return {
      Cmd(SessionCommand::Kind::kSolve),
      Cmd(SessionCommand::Kind::kMinWeight, "PTS", 0.1),
      Cmd(SessionCommand::Kind::kMaxWeight, "REB", 1.0 / 3.0),
      Cmd(SessionCommand::Kind::kDrop, "min_PTS"),
      Cmd(SessionCommand::Kind::kOrder, "t1>t2"),
      Cmd(SessionCommand::Kind::kEps, "", 5e-7),
      Cmd(SessionCommand::Kind::kEps1, "", 1e-6),
      Cmd(SessionCommand::Kind::kEps2, "", 0.0),
      Cmd(SessionCommand::Kind::kObjective, "topheavy"),
      Cmd(SessionCommand::Kind::kAppend, "0.25 -0.5 0.7500000000000001"),
  };
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(FormatSessionCommandTest, IsTheExactInverseOfTheScriptParser) {
  for (const SessionCommand& cmd : GrammarSamples()) {
    const std::string line = FormatSessionCommand(cmd);
    auto parsed = ParseSessionScript(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), 1u) << line;
    const SessionCommand& back = parsed->front();
    EXPECT_EQ(back.kind, cmd.kind) << line;
    EXPECT_EQ(back.arg, cmd.arg) << line;
    // %.17g preserves the exact double bit pattern.
    EXPECT_EQ(back.value, cmd.value) << line;
  }
}

TEST(JournalTest, RoundTripsEveryRecordKind) {
  TempDir dir;
  const std::string path = dir.File("d.journal");
  JournalOptions options;
  options.fsync_every = 1;  // strict mode exercises the fsync path per record
  auto journal = SessionJournal::Open(path, "d", 0xabcdef12u, options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  (*journal)->LogOpen("alice");
  const std::vector<SessionCommand> commands = GrammarSamples();
  for (const SessionCommand& cmd : commands) {
    (*journal)->LogCommand("alice", cmd);
  }
  (*journal)->LogClose("alice");
  EXPECT_EQ((*journal)->Stats().records_appended,
            static_cast<int64_t>(commands.size()) + 2);
  EXPECT_FALSE((*journal)->Stats().degraded);
  journal->reset();  // close (flushes)

  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->skipped, 0);
  EXPECT_EQ(readback->truncated, 0);
  ASSERT_EQ(readback->records.size(), commands.size() + 2);
  EXPECT_EQ(readback->records.front().kind, JournalRecord::Kind::kOpen);
  EXPECT_EQ(readback->records.front().client, "alice");
  EXPECT_EQ(readback->records.front().dataset, "d");
  EXPECT_EQ(readback->records.front().fingerprint, 0xabcdef12u);
  for (size_t i = 0; i < commands.size(); ++i) {
    const JournalRecord& rec = readback->records[i + 1];
    EXPECT_EQ(rec.kind, JournalRecord::Kind::kCommand);
    EXPECT_EQ(rec.client, "alice");
    EXPECT_EQ(rec.command, FormatSessionCommand(commands[i]));
  }
  EXPECT_EQ(readback->records.back().kind, JournalRecord::Kind::kClose);
}

TEST(JournalTest, MissingAndEmptyFilesAreEmptyReadbacks) {
  TempDir dir;
  auto missing = SessionJournal::Read(dir.File("never-created.journal"));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
  EXPECT_EQ(missing->truncated, 0);
  EXPECT_EQ(missing->skipped, 0);

  const std::string empty = dir.File("empty.journal");
  WriteFile(empty, "");
  auto readback = SessionJournal::Read(empty);
  ASSERT_TRUE(readback.ok());
  EXPECT_TRUE(readback->records.empty());
  EXPECT_EQ(readback->truncated, 0);
  EXPECT_EQ(readback->skipped, 0);
}

TEST(JournalTest, TornFinalRecordTruncatesCleanly) {
  TempDir dir;
  const std::string path = dir.File("torn.journal");
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogOpen("a");
    (*journal)->LogCommand("a", Cmd(SessionCommand::Kind::kSolve));
  }
  // Simulate a crash mid-append: chop the trailing newline plus a few
  // bytes off the last record.
  std::string text = ReadFile(path);
  ASSERT_GT(text.size(), 4u);
  WriteFile(path, text.substr(0, text.size() - 4));

  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->truncated, 1);
  EXPECT_EQ(readback->skipped, 0);
  ASSERT_EQ(readback->records.size(), 1u);  // the intact prefix replays
  EXPECT_EQ(readback->records[0].kind, JournalRecord::Kind::kOpen);
}

TEST(JournalTest, CrcCorruptionDropsOneRecordAndResynchronizes) {
  TempDir dir;
  const std::string path = dir.File("corrupt.journal");
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogOpen("a");
    (*journal)->LogCommand("a", Cmd(SessionCommand::Kind::kMinWeight,
                                    "PTS", 0.1));
    (*journal)->LogClose("a");
  }
  std::string text = ReadFile(path);
  // Flip a payload byte of the middle record (framing is line-based, so
  // records after the corrupt one must still replay).
  const size_t first_nl = text.find('\n');
  const size_t second_nl = text.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  text[second_nl - 2] ^= 0x20;
  WriteFile(path, text);

  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->skipped, 1);
  EXPECT_EQ(readback->truncated, 0);
  ASSERT_EQ(readback->records.size(), 2u);
  EXPECT_EQ(readback->records[0].kind, JournalRecord::Kind::kOpen);
  EXPECT_EQ(readback->records[1].kind, JournalRecord::Kind::kClose);
}

TEST(JournalTest, GarbageLinesAreSkippedNotFatal) {
  TempDir dir;
  const std::string path = dir.File("garbage.journal");
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogOpen("a");
  }
  std::string text = "not a journal line\nRHJ1 zzzz 3 abc\n" +
                     ReadFile(path) + "RHJ1 deadbeef 5 nope\n";
  WriteFile(path, text);
  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->skipped, 3);
  ASSERT_EQ(readback->records.size(), 1u);
  EXPECT_EQ(readback->records[0].kind, JournalRecord::Kind::kOpen);
}

TEST(JournalTest, DuplicateCloseRecordsFoldToAWellDefinedLiveSet) {
  TempDir dir;
  const std::string path = dir.File("dupes.journal");
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogOpen("a");
    (*journal)->LogClose("a");
    (*journal)->LogClose("a");  // duplicate: must be a no-op on fold
    (*journal)->LogClose("b");  // close of a never-opened client: no-op
    (*journal)->LogOpen("c");
    (*journal)->LogCommand("c", Cmd(SessionCommand::Kind::kSolve));
    (*journal)->LogOpen("c");  // re-open resets c's edit script
  }
  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->skipped, 0);
  // Fold exactly the way recovery does.
  std::map<std::string, std::vector<std::string>> live;
  for (const JournalRecord& rec : readback->records) {
    switch (rec.kind) {
      case JournalRecord::Kind::kOpen:
        live[rec.client].clear();
        break;
      case JournalRecord::Kind::kClose:
        live.erase(rec.client);
        break;
      case JournalRecord::Kind::kCommand:
        if (live.count(rec.client) > 0) {
          live[rec.client].push_back(rec.command);
        }
        break;
    }
  }
  ASSERT_EQ(live.size(), 1u);
  ASSERT_EQ(live.count("c"), 1u);
  EXPECT_TRUE(live["c"].empty()) << "re-open must reset the edit script";
}

TEST(JournalTest, RotationSealsSegmentsAndReadsBackInWriteOrder) {
  TempDir dir;
  const std::string path = dir.File("rot.journal");
  dir.File("rot.journal.1");  // register rotated segments for cleanup
  dir.File("rot.journal.2");
  dir.File("rot.journal.3");
  JournalOptions options;
  options.rotate_bytes = 128;  // rotate every couple of records
  const int kRecords = 20;
  {
    auto journal = SessionJournal::Open(path, "d", 1, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < kRecords; ++i) {
      (*journal)->LogCommand("c", Cmd(SessionCommand::Kind::kMinWeight,
                                      "A" + std::to_string(i), i * 0.5));
    }
    EXPECT_GT((*journal)->Stats().rotations, 0);
  }
  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->skipped, 0);
  EXPECT_EQ(readback->truncated, 0);
  ASSERT_EQ(readback->records.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(readback->records[i].command,
              FormatSessionCommand(Cmd(SessionCommand::Kind::kMinWeight,
                                       "A" + std::to_string(i), i * 0.5)))
        << "record " << i << " out of order";
  }
}

TEST(JournalTest, ReopenAppendsAfterAnExistingTail) {
  TempDir dir;
  const std::string path = dir.File("reopen.journal");
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogOpen("a");
  }
  {
    auto journal = SessionJournal::Open(path, "d", 1);
    ASSERT_TRUE(journal.ok());
    (*journal)->LogCommand("a", Cmd(SessionCommand::Kind::kSolve));
  }
  auto readback = SessionJournal::Read(path);
  ASSERT_TRUE(readback.ok());
  ASSERT_EQ(readback->records.size(), 2u);
  EXPECT_EQ(readback->records[0].kind, JournalRecord::Kind::kOpen);
  EXPECT_EQ(readback->records[1].kind, JournalRecord::Kind::kCommand);
}

TEST(JournalTest, RecordingGateSuppressesAppends) {
  TempDir dir;
  const std::string path = dir.File("gate.journal");
  auto journal = SessionJournal::Open(path, "d", 1);
  ASSERT_TRUE(journal.ok());
  (*journal)->set_recording(false);
  (*journal)->LogOpen("a");
  (*journal)->LogCommand("a", Cmd(SessionCommand::Kind::kSolve));
  (*journal)->LogClose("a");
  EXPECT_EQ((*journal)->Stats().records_appended, 0);
  (*journal)->set_recording(true);
  (*journal)->LogOpen("b");
  EXPECT_EQ((*journal)->Stats().records_appended, 1);
}

TEST(DatasetFingerprintTest, SeparatesInstancesAndIsStable) {
  Rng rng(7);
  std::vector<std::string> names = {"A0", "A1"};
  Dataset d1(names, 4);
  for (int t = 0; t < 4; ++t) {
    for (int a = 0; a < 2; ++a) d1.set_value(t, a, rng.NextUniform(0, 1));
  }
  Dataset d2(d1);
  auto ranking = Ranking::Create({1, 2, 3, kUnranked});
  ASSERT_TRUE(ranking.ok());
  const uint64_t f1 = DatasetFingerprint(d1, *ranking);
  EXPECT_EQ(f1, DatasetFingerprint(d2, *ranking)) << "same data, same print";

  Dataset d3(d1);
  d3.set_value(2, 1, d3.value(2, 1) + 1e-9);  // any bit flip must show
  EXPECT_NE(f1, DatasetFingerprint(d3, *ranking));

  auto other = Ranking::Create({2, 1, 3, kUnranked});
  ASSERT_TRUE(other.ok());
  EXPECT_NE(f1, DatasetFingerprint(d1, *other)) << "ranking is identity too";
}

}  // namespace
}  // namespace rankhow
