// Shard-coordinator suite (coord/tsan-labelled; see CMakeLists.txt):
//
//  * ShardMap unit coverage: --workers/--shard-map parsing, fixed pins,
//    sticky round-robin assignment, fall-over without rebinding, and the
//    clean kIoError when nothing is alive.
//  * AggregateFieldLines unit coverage: identity on one line, counters
//    summed, gauges (peaks, _us quantiles, degraded flags) max-merged.
//  * The routing acceptance walk: two in-process workers behind an
//    in-process CoordServer, two clients on different pinned shards, every
//    proven result equal to a serial single-session replay, and each
//    worker demonstrably owning exactly its pinned session.
//  * Health transitions against a fake worker: stop answering probes ->
//    down after the failure threshold; resume -> up on one success.
//  * `open` against an unreachable worker answers a clean `err` line
//    (never a hang) after the dial-probe-reroute loop runs dry.
//  * Scatter-gather arithmetic over real workers: session counters sum,
//    coord_* fields and the per-worker up/down breakdown appear.
//  * The docs/PROTOCOL.md conformance walk (tests/support) replayed
//    through the coordinator — byte-identical behavior to a direct
//    worker, modulo worker-side transport gauges.
//
// SIGKILL-based coordinator failover lives in tests/chaos (chaos label);
// this suite keeps everything in-process so it can run under tsan.

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "coord/coordinator.h"
#include "coord/health.h"
#include "coord/shard_map.h"
#include "core/solve_session.h"
#include "net/dial.h"
#include "net/reactor.h"
#include "net/socket_server.h"
#include "server/registry_router.h"
#include "server/wire.h"
#include "tests/support/protocol_conformance.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

/// One in-process worker: the same router-backed reactor stack
/// `rankhow_cli --listen` runs, serving datasets d0/d1.
struct WorkerFixture {
  std::vector<Dataset> datasets;
  std::vector<Ranking> rankings;
  ServerMetrics metrics;
  std::unique_ptr<RegistryRouter> router;
  std::unique_ptr<ReactorServer> server;
  int port = 0;

  explicit WorkerFixture(uint64_t seed = 401, int n = 8, int k = 3) {
    Rng rng(seed);
    for (int i = 0; i < 2; ++i) {
      datasets.push_back(RandomDataset(rng, n, 3));
      rankings.push_back(RandomRanking(rng, n, k));
    }
    RouterOptions options;
    options.server.solver = SpatialOptions();
    options.server.num_workers = 2;
    router = std::make_unique<RegistryRouter>(options);
    for (int i = 0; i < 2; ++i) {
      const Dataset& data = datasets[i];
      const Ranking& given = rankings[i];
      EXPECT_TRUE(router
                      ->RegisterDataset(
                          "d" + std::to_string(i),
                          [data, given]()
                              -> Result<RegistryRouter::DatasetBundle> {
                            RegistryRouter::DatasetBundle bundle;
                            bundle.data = SharedDataset(Dataset(data));
                            bundle.given = Ranking(given);
                            bundle.labels = TupleLabels(data.num_tuples());
                            return bundle;
                          })
                      .ok());
    }
    ServeStreamOptions serve_options;
    serve_options.connection_scoped_clients = true;
    serve_options.metrics = &metrics;
    ReactorOptions reactor_options;
    reactor_options.metrics = &metrics;
    reactor_options.num_loops = 2;
    server = std::make_unique<ReactorServer>(
        MakeWireReactorCallbacks(router.get(), serve_options),
        reactor_options);
  }

  ~WorkerFixture() {
    if (server != nullptr) server->Stop();
  }

  Status StartTcp() {
    ListenAddress address;
    address.kind = ListenAddress::Kind::kTcp;
    address.host = "127.0.0.1";
    address.port = 0;
    Status started = server->Start(address);
    if (started.ok()) port = server->bound().port;
    return started;
  }

  std::string Spec() const { return "127.0.0.1:" + std::to_string(port); }
};

/// Coordinator over already-started workers, with test-speed health
/// settings. Stops on destruction.
struct CoordFixture {
  std::unique_ptr<CoordServer> coord;
  ListenAddress endpoint;

  Status Start(const std::string& workers_spec,
               const std::string& shard_map_spec,
               int dial_timeout_ms = 2000) {
    auto map = ShardMap::Parse(workers_spec, shard_map_spec);
    if (!map.ok()) return map.status();
    CoordOptions options;
    options.health.interval_ms = 100;
    options.health.timeout_ms = 1000;
    options.health.failure_threshold = 2;
    options.health.dial_timeout_ms = dial_timeout_ms;
    coord = std::make_unique<CoordServer>(*std::move(map), options);
    ListenAddress listen;
    listen.kind = ListenAddress::Kind::kTcp;
    listen.host = "127.0.0.1";
    listen.port = 0;
    Status started = coord->Start(listen);
    if (started.ok()) endpoint = coord->bound();
    return started;
  }

  ~CoordFixture() {
    if (coord != nullptr) coord->Stop();
  }
};

/// "... name=V ..." -> V, or -1 when absent/garbled.
long long ParseField(const std::string& text, const std::string& name) {
  const std::string needle = " " + name + "=";
  size_t at = text.find(needle);
  if (at == std::string::npos) {
    if (text.rfind(name + "=", 0) != 0) return -1;
    at = 0;
  } else {
    at += 1;
  }
  const size_t begin = text.find('=', at) + 1;
  const size_t end = text.find(' ', begin);
  auto value = ParseInt(
      text.substr(begin, end == std::string::npos ? end : end - begin));
  return value.ok() ? static_cast<long long>(*value) : -1;
}

/// A minimal stand-in worker for health tests: answers every text line
/// with a plausible `ok stats` line, until stopped. Restartable on the
/// same port (SO_REUSEADDR), which is how the up-transition is staged.
class FakeWorker {
 public:
  ~FakeWorker() { Stop(); }

  bool Start(int port = 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
               sizeof(sin)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
                      &len) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    port_ = ntohs(sin.sin_port);
    stopping_.store(false);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  void Stop() {
    stopping_.store(true);
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
    for (int fd : conns_) ::close(fd);
    conns_.clear();
  }

  int port() const { return port_; }

 private:
  void AcceptLoop() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      conns_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { Serve(fd); });
    }
  }

  void Serve(int fd) {
    std::string buffer;
    char chunk[256];
    for (;;) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        buffer.erase(0, nl + 1);
        const char reply[] = "ok stats fake=1\n";
        if (::send(fd, reply, sizeof(reply) - 1, MSG_NOSIGNAL) < 0) return;
      }
    }
  }

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::vector<int> conns_;
  std::vector<std::thread> conn_threads_;
};

/// Polls `pred` until it holds or ~`deadline_ms` lapses.
bool WaitFor(const std::function<bool()>& pred, int deadline_ms = 15000) {
  for (int waited = 0; waited < deadline_ms; waited += 20) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

TEST(ShardMapTest, ParsesWorkersAndPins) {
  auto map = ShardMap::Parse("127.0.0.1:9001,127.0.0.1:9002",
                             "nba=127.0.0.1:9001,csr=127.0.0.1:9003");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  // Workers named only in the shard map join the worker list.
  ASSERT_EQ(map->workers().size(), 3u);
  EXPECT_EQ(map->workers()[2].spec, "127.0.0.1:9003");
  EXPECT_EQ(map->num_fixed_shards(), 2);
  EXPECT_EQ(map->PrimaryFor("nba"), 0);
  EXPECT_EQ(map->PrimaryFor("csr"), 2);
  EXPECT_EQ(map->PrimaryFor(""), 0) << "default dataset lives on worker 0";
  EXPECT_EQ(map->PrimaryFor("unassigned"), -1);

  EXPECT_FALSE(ShardMap::Parse("", "").ok()) << "no workers at all";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:1,", "").ok());
  EXPECT_FALSE(ShardMap::Parse("", "nba=127.0.0.1:1,nba=127.0.0.1:2").ok())
      << "duplicate dataset pin";
  EXPECT_FALSE(ShardMap::Parse("", "nba").ok()) << "missing '='";
  EXPECT_FALSE(ShardMap::Parse("notaport", "").ok());
}

TEST(ShardMapTest, RoutingIsStickyAndFallsOverWithoutRebinding) {
  auto map = ShardMap::Parse("h:1,h:2,h:3", "pinned=h:2");
  ASSERT_TRUE(map.ok());
  std::vector<bool> alive = {true, true, true};
  auto is_alive = [&alive](int i) { return alive[static_cast<size_t>(i)]; };

  // Fresh datasets round-robin and stick.
  auto a = map->Route("a", is_alive);
  auto b = map->Route("b", is_alive);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b) << "round-robin assigned two datasets to one worker";
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto again = map->Route("a", is_alive);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *a) << "sticky assignment wandered";
  }
  // Pins always win.
  auto pinned = map->Route("pinned", is_alive);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*pinned, 1);

  // A down primary falls over in list order WITHOUT rebinding: the
  // sticky/fixed assignment survives for when it comes back.
  alive[static_cast<size_t>(*a)] = false;
  auto failed_over = map->Route("a", is_alive);
  ASSERT_TRUE(failed_over.ok());
  EXPECT_NE(*failed_over, *a);
  EXPECT_EQ(map->PrimaryFor("a"), *a) << "fall-over rebound the primary";
  alive[static_cast<size_t>(*a)] = true;
  auto back = map->Route("a", is_alive);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *a) << "primary did not resume after recovery";

  // Nothing alive: a clean error, with the dataset named.
  alive = {false, false, false};
  auto none = map->Route("a", is_alive);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kIoError);
  EXPECT_NE(none.status().message().find("'a'"), std::string::npos)
      << none.status().ToString();
  // A fresh dataset with nothing alive must not get a sticky binding.
  EXPECT_FALSE(map->Route("fresh", is_alive).ok());
  EXPECT_EQ(map->PrimaryFor("fresh"), -1);
}

TEST(AggregateTest, SingleLineIsIdentity) {
  const std::string line =
      "registries=2 clients=3 writes_queued_peak=640 solve.p99_us=1200 "
      "journal_degraded=0 label=text";
  EXPECT_EQ(AggregateFieldLines({line}), line);
}

TEST(AggregateTest, SumsCountersAndMaxMergesGauges) {
  const std::vector<std::string> lines = {
      "clients=2 commands=10 writes_queued_peak=100 solve.p99_us=50 "
      "journal_degraded=0 cache_degraded=1 name=first",
      "clients=3 commands=4 writes_queued_peak=700 solve.p99_us=20 "
      "journal_degraded=1 cache_degraded=0 name=second extra=5"};
  EXPECT_EQ(AggregateFieldLines(lines),
            "clients=5 commands=14 writes_queued_peak=700 solve.p99_us=50 "
            "journal_degraded=1 cache_degraded=1 name=first extra=5");
}

TEST(CoordTest, RoutesByShardMapAndMatchesSerialReplay) {
  WorkerFixture w0(/*seed=*/401);
  WorkerFixture w1(/*seed=*/402);
  Status s0 = w0.StartTcp();
  Status s1 = w1.StartTcp();
  if (!s0.ok() || !s1.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable";
  }
  CoordFixture coord;
  // d0 pinned to worker 0, d1 to worker 1 — distinct datasets on the two
  // workers, so a misrouted open would produce a *different* optimum.
  Status started =
      coord.Start(w0.Spec() + "," + w1.Spec(),
                  "d0=" + w0.Spec() + ",d1=" + w1.Spec());
  ASSERT_TRUE(started.ok()) << started.ToString();

  const std::vector<std::string> script = {
      "solve", "min-weight A0 0.05", "max-weight A1 0.6", "drop min_A0"};
  WorkerFixture* workers[2] = {&w0, &w1};
  LineClient clients[2];
  for (int c = 0; c < 2; ++c) {
    Status connected = clients[c].Connect(coord.endpoint);
    ASSERT_TRUE(connected.ok()) << connected.ToString();
    std::string payload =
        "open c" + std::to_string(c) + " d" + std::to_string(c) + "\n";
    for (const std::string& line : script) {
      payload += "c" + std::to_string(c) + " " + line + "\n";
    }
    ASSERT_TRUE(clients[c].Send(payload));
  }

  for (int c = 0; c < 2; ++c) {
    const std::string name = "c" + std::to_string(c);
    auto ack = clients[c].ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open " + name + " d" + std::to_string(c));

    // Serial ground truth over the dataset the pinned worker serves.
    WorkerFixture& worker = *workers[c];
    SolveSession replay(Dataset(worker.datasets[c]),
                        Ranking(worker.rankings[c]), SpatialOptions());
    auto parsed = ParseSessionScript(
        script[0] + "\n" + script[1] + "\n" + script[2] + "\n" + script[3]);
    ASSERT_TRUE(parsed.ok());
    std::vector<std::string> labels =
        TupleLabels(worker.datasets[c].num_tuples());
    for (size_t s = 0; s < parsed->size(); ++s) {
      auto want = ExecuteSessionCommand(&replay, (*parsed)[s], labels);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(want->result.proven_optimal);
      auto line = clients[c].ReadLine();
      ASSERT_TRUE(line.has_value()) << name << " step " << s;
      const std::string expect_prefix =
          "ok " + name + " line=" + std::to_string(s + 2) +
          " error=" + std::to_string(want->result.error) + " bound=";
      EXPECT_EQ(line->rfind(expect_prefix, 0), 0u)
          << name << " step " << s << ": got '" << *line
          << "', want prefix '" << expect_prefix
          << "' (coordinator result differs from serial replay)";
      EXPECT_NE(line->find("proven=yes"), std::string::npos) << *line;
    }
  }

  // Each worker owns exactly its pinned session: ask them directly.
  for (int w = 0; w < 2; ++w) {
    LineClient direct;
    ASSERT_TRUE(direct.ConnectTcp("127.0.0.1", workers[w]->port));
    ASSERT_TRUE(direct.SendLine("stats"));
    auto stats = direct.ReadLine();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(ParseField(*stats, "clients"), 1)
        << "worker " << w << ": " << *stats
        << " (shard map routed a session to the wrong worker)";
  }

  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(clients[c].SendLine("quit"));
    auto quit = clients[c].ReadLine();
    ASSERT_TRUE(quit.has_value());
    EXPECT_EQ(*quit, "ok quit");
  }
  EXPECT_EQ(coord.coord->counters().sessions_opened, 2);
  EXPECT_EQ(coord.coord->counters().commands_proxied, 8);
}

TEST(CoordTest, HealthMarksWorkersDownThenUpAgain) {
  FakeWorker fake;
  ASSERT_TRUE(fake.Start());
  const int port = fake.port();

  std::vector<WorkerSpec> specs(1);
  specs[0].spec = "127.0.0.1:" + std::to_string(port);
  auto address = ParseListenSpec(specs[0].spec);
  ASSERT_TRUE(address.ok());
  specs[0].address = *address;

  HealthOptions options;
  options.interval_ms = 50;
  options.timeout_ms = 1000;
  options.dial_timeout_ms = 500;
  options.failure_threshold = 2;
  WorkerSupervisor supervisor(std::move(specs), options);
  supervisor.Start();

  // Probes succeed: up, and stays up.
  ASSERT_TRUE(WaitFor([&] { return supervisor.counters().probes >= 2; }));
  EXPECT_TRUE(supervisor.IsAlive(0));
  EXPECT_EQ(supervisor.num_up(), 1);
  EXPECT_EQ(supervisor.counters().down_transitions, 0);

  // Kill the fake: consecutive failures cross the threshold -> down.
  fake.Stop();
  ASSERT_TRUE(WaitFor([&] { return !supervisor.IsAlive(0); }))
      << "worker never marked down after its port closed";
  EXPECT_EQ(supervisor.num_up(), 0);
  EXPECT_GE(supervisor.counters().down_transitions, 1);

  // Resurrect on the same port: one successful probe -> up.
  ASSERT_TRUE(fake.Start(port)) << "could not rebind fake worker port";
  ASSERT_TRUE(WaitFor([&] { return supervisor.IsAlive(0); }))
      << "worker never marked up after resurrection";
  EXPECT_GE(supervisor.counters().up_transitions, 1);

  supervisor.Stop();
  fake.Stop();
}

TEST(CoordTest, OpenAgainstUnreachableWorkerFailsCleanlyNotHangs) {
  // A port with provably nobody behind it: bind, learn, close.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in sin;
  std::memset(&sin, 0, sizeof(sin));
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)),
            0);
  socklen_t len = sizeof(sin);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&sin), &len),
            0);
  const int dead_port = ntohs(sin.sin_port);
  ::close(probe);

  CoordFixture coord;
  Status started = coord.Start("127.0.0.1:" + std::to_string(dead_port), "",
                               /*dial_timeout_ms=*/500);
  ASSERT_TRUE(started.ok()) << started.ToString();

  LineClient client;
  DialOptions dial;
  dial.recv_timeout_s = 30;  // the assertion: an answer well before this
  Status connected = client.Connect(coord.endpoint, dial);
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  ASSERT_TRUE(client.SendLine("open c1 d0"));
  auto response = client.ReadLine();
  ASSERT_TRUE(response.has_value())
      << "coordinator hung or dropped the connection instead of answering";
  EXPECT_EQ(response->rfind("err c1 ", 0), 0u) << *response;
  // The session must not half-exist: the name is free to retry.
  ASSERT_TRUE(client.SendLine("open c1 d0"));
  auto retry = client.ReadLine();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->rfind("err c1 ", 0), 0u) << *retry;
  ASSERT_TRUE(client.SendLine("quit"));
  auto quit = client.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
}

TEST(CoordTest, ScatterGatherSumsWorkerStatsWithBreakdown) {
  WorkerFixture w0(/*seed=*/403);
  WorkerFixture w1(/*seed=*/404);
  Status s0 = w0.StartTcp();
  Status s1 = w1.StartTcp();
  if (!s0.ok() || !s1.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable";
  }
  CoordFixture coord;
  Status started =
      coord.Start(w0.Spec() + "," + w1.Spec(),
                  "d0=" + w0.Spec() + ",d1=" + w1.Spec());
  ASSERT_TRUE(started.ok()) << started.ToString();

  LineClient client;
  Status connected = client.Connect(coord.endpoint);
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  // One session on each worker, through one downstream connection.
  ASSERT_TRUE(client.SendLine("open a d0"));
  auto ack_a = client.ReadLine();
  ASSERT_TRUE(ack_a.has_value());
  EXPECT_EQ(*ack_a, "ok open a d0");
  ASSERT_TRUE(client.SendLine("open b d1"));
  auto ack_b = client.ReadLine();
  ASSERT_TRUE(ack_b.has_value());
  EXPECT_EQ(*ack_b, "ok open b d1");

  // Ground truth, straight from the workers.
  long long want_clients = 0;
  long long want_registries = 0;
  for (WorkerFixture* worker : {&w0, &w1}) {
    LineClient direct;
    ASSERT_TRUE(direct.ConnectTcp("127.0.0.1", worker->port));
    ASSERT_TRUE(direct.SendLine("stats"));
    auto stats = direct.ReadLine();
    ASSERT_TRUE(stats.has_value());
    want_clients += ParseField(*stats, "clients");
    want_registries += ParseField(*stats, "registries");
  }
  EXPECT_EQ(want_clients, 2);

  // The aggregated line: counters sum across the fleet, the coord_*
  // suffix and per-worker breakdown name every worker with its state.
  ASSERT_TRUE(client.SendLine("stats"));
  auto merged = client.ReadLine();
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->rfind("ok stats registries=", 0), 0u) << *merged;
  EXPECT_EQ(ParseField(*merged, "clients"), want_clients) << *merged;
  EXPECT_EQ(ParseField(*merged, "registries"), want_registries) << *merged;
  EXPECT_EQ(ParseField(*merged, "coord_workers"), 2) << *merged;
  EXPECT_EQ(ParseField(*merged, "coord_up"), 2) << *merged;
  EXPECT_EQ(ParseField(*merged, "coord_sessions"), 2) << *merged;
  EXPECT_NE(merged->find(" w0=" + w0.Spec() + ":up"), std::string::npos)
      << *merged;
  EXPECT_NE(merged->find(" w1=" + w1.Spec() + ":up"), std::string::npos)
      << *merged;

  // metrics scatter-gathers through the same path: the aggregate leads
  // with summed connection gauges and keeps the per-verb histograms.
  ASSERT_TRUE(client.SendLine("metrics"));
  auto metrics = client.ReadLine();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->rfind("ok metrics connections=", 0), 0u) << *metrics;
  EXPECT_NE(metrics->find(" stats.count="), std::string::npos) << *metrics;
  EXPECT_NE(metrics->find(" coord_workers=2"), std::string::npos)
      << *metrics;

  ASSERT_TRUE(client.SendLine("quit"));
  auto quit = client.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
}

TEST(CoordTest, ProtocolConformanceWalkPassesThroughTheCoordinator) {
  // The acceptance criterion for transparency: the byte-for-byte verb
  // walk that tests/net runs against a worker directly (the same fixture
  // code) passes against the worker behind the coordinator. Only
  // worker-side transport gauges are relaxed — the coordinator's health
  // probes show up in the worker's connection counts.
  WorkerFixture worker(/*seed=*/302);  // the net suite's walk seed
  Status started_worker = worker.StartTcp();
  if (!started_worker.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable";
  }
  CoordFixture coord;
  Status started = coord.Start(worker.Spec(), "");
  ASSERT_TRUE(started.ok()) << started.ToString();

  conformance::ConformanceOptions options;
  options.exact_transport_gauges = false;
  conformance::RunProtocolVerbWalk(coord.endpoint, options);
}

}  // namespace
}  // namespace rankhow
