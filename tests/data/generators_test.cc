#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/csrankings.h"
#include "data/derived.h"
#include "data/nba.h"
#include "data/synthetic.h"

namespace rankhow {
namespace {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  double mx = std::accumulate(x.begin(), x.end(), 0.0) / x.size();
  double my = std::accumulate(y.begin(), y.end(), 0.0) / y.size();
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(SyntheticTest, ShapesAndRanges) {
  for (auto dist : {SyntheticDistribution::kUniform,
                    SyntheticDistribution::kCorrelated,
                    SyntheticDistribution::kAntiCorrelated}) {
    SyntheticSpec spec;
    spec.num_tuples = 500;
    spec.num_attributes = 4;
    spec.distribution = dist;
    spec.seed = 7;
    Dataset d = GenerateSynthetic(spec);
    EXPECT_EQ(d.num_tuples(), 500);
    EXPECT_EQ(d.num_attributes(), 4);
    for (int a = 0; a < 4; ++a) {
      for (int t = 0; t < 500; ++t) {
        EXPECT_GE(d.value(t, a), 0.0);
        EXPECT_LE(d.value(t, a), 1.0);
      }
    }
  }
}

TEST(SyntheticTest, DistributionsHaveExpectedCorrelationSign) {
  SyntheticSpec spec;
  spec.num_tuples = 4000;
  spec.num_attributes = 4;
  spec.seed = 11;

  spec.distribution = SyntheticDistribution::kCorrelated;
  Dataset corr = GenerateSynthetic(spec);
  EXPECT_GT(PearsonCorrelation(corr.column(0), corr.column(1)), 0.5);

  spec.distribution = SyntheticDistribution::kAntiCorrelated;
  Dataset anti = GenerateSynthetic(spec);
  // Attributes 0 and 1 sit on opposite sides of the anti-correlation.
  EXPECT_LT(PearsonCorrelation(anti.column(0), anti.column(1)), -0.5);
  // Attributes 0 and 2 are on the same side.
  EXPECT_GT(PearsonCorrelation(anti.column(0), anti.column(2)), 0.5);

  spec.distribution = SyntheticDistribution::kUniform;
  Dataset uni = GenerateSynthetic(spec);
  EXPECT_NEAR(PearsonCorrelation(uni.column(0), uni.column(1)), 0.0, 0.08);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attributes = 3;
  spec.seed = 99;
  Dataset a = GenerateSynthetic(spec);
  Dataset b = GenerateSynthetic(spec);
  for (int t = 0; t < 50; ++t) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(a.value(t, c), b.value(t, c));
  }
}

TEST(SyntheticTest, PowerSumRankingUsesNonLinearScore) {
  SyntheticSpec spec;
  spec.num_tuples = 200;
  spec.num_attributes = 3;
  spec.seed = 5;
  Dataset d = GenerateSynthetic(spec);
  Ranking r2 = PowerSumRanking(d, 2, 10);
  Ranking r5 = PowerSumRanking(d, 5, 10);
  EXPECT_GE(r2.k(), 10);
  EXPECT_GE(r5.k(), 10);
  // Higher exponent favors peaky tuples; rankings usually differ.
  auto scores2 = PowerSumScores(d, 2);
  auto scores5 = PowerSumScores(d, 5);
  EXPECT_NE(scores2, scores5);
}

TEST(NbaTest, GeneratesRequestedShape) {
  NbaSpec spec;
  spec.num_tuples = 2000;
  spec.seed = 3;
  NbaData nba = GenerateNba(spec);
  EXPECT_LE(nba.table.num_tuples(), 2000);
  EXPECT_GE(nba.table.num_tuples(), 1900);  // few duplicates at most
  EXPECT_EQ(nba.table.num_attributes(), kNbaNumRankingAttributes);
  EXPECT_EQ(nba.labels.size(), static_cast<size_t>(nba.table.num_tuples()));
  EXPECT_EQ(nba.per.size(), nba.minutes.size());
}

TEST(NbaTest, StatsAreInPlausibleRanges) {
  NbaData nba = GenerateNba({.num_tuples = 3000, .seed = 4});
  auto idx = [&](const char* name) { return *nba.table.AttributeIndex(name); };
  double max_pts = 0;
  double mean_fg = 0;
  for (int t = 0; t < nba.table.num_tuples(); ++t) {
    double pts = nba.table.value(t, idx("PTS"));
    double fg = nba.table.value(t, idx("FG%"));
    EXPECT_GE(pts, 0.0);
    EXPECT_LT(pts, 60.0);
    EXPECT_GE(fg, 0.05);
    EXPECT_LE(fg, 0.95);
    max_pts = std::max(max_pts, pts);
    mean_fg += fg;
  }
  mean_fg /= nba.table.num_tuples();
  EXPECT_GT(max_pts, 25.0);  // stars exist
  EXPECT_GT(mean_fg, 0.35);
  EXPECT_LT(mean_fg, 0.60);
}

TEST(NbaTest, PerFormulaRewardsProductionPenalizesTurnovers) {
  double base = ComputePer(20, 8, 5, 1, 1, 0.5, 0.8, 2, 32);
  EXPECT_GT(base, ComputePer(20, 8, 5, 1, 1, 0.5, 0.8, 5, 32));  // more TOV
  EXPECT_LT(base, ComputePer(25, 8, 5, 1, 1, 0.5, 0.8, 2, 32));  // more PTS
  // Same per-game stats in fewer minutes = higher efficiency.
  EXPECT_LT(base, ComputePer(20, 8, 5, 1, 1, 0.5, 0.8, 2, 26));
}

TEST(NbaTest, PerRankingIsValidAndNonLinear) {
  NbaData nba = GenerateNba({.num_tuples = 1500, .seed = 8});
  Ranking r = NbaPerRanking(nba, 6);
  EXPECT_GE(r.k(), 6);
  // The top PER producer should be a high-usage player.
  int top = r.ranked_tuples()[0];
  EXPECT_GT(nba.table.value(top, 0), 10.0);  // PTS
}

TEST(NbaTest, MvpVoteProtocol) {
  NbaData nba = GenerateNba({.num_tuples = 3000, .seed = 1});
  MvpVoteResult mvp = SimulateMvpVote(nba, 100, 42);
  // Around a dozen players receive votes (paper: 13).
  EXPECT_GE(static_cast<int>(mvp.vote_receivers.size()), 6);
  EXPECT_LE(static_cast<int>(mvp.vote_receivers.size()), 40);
  // Total points = 100 panelists * (10+7+5+3+1).
  int total = std::accumulate(mvp.points.begin(), mvp.points.end(), 0);
  EXPECT_EQ(total, 100 * 26);
  // Ranking positions valid and aligned with point order.
  EXPECT_EQ(mvp.ranking.num_tuples(),
            static_cast<int>(mvp.vote_receivers.size()));
  EXPECT_EQ(mvp.ranking.position(0), 1);
  for (size_t i = 1; i < mvp.points.size(); ++i) {
    EXPECT_LE(mvp.points[i], mvp.points[i - 1]);
  }
  EXPECT_EQ(mvp.voted_table.num_tuples(),
            static_cast<int>(mvp.vote_receivers.size()));
}

TEST(CsRankingsTest, ShapeAndScores) {
  CsRankingsData cs = GenerateCsRankings({.seed = 2});
  EXPECT_EQ(cs.table.num_tuples(), kCsRankingsNumInstitutions);
  EXPECT_EQ(cs.table.num_attributes(), kCsRankingsNumAreas);
  for (int t = 0; t < cs.table.num_tuples(); ++t) {
    EXPECT_GT(cs.default_scores[t], 0.0);
    for (int a = 0; a < cs.table.num_attributes(); ++a) {
      EXPECT_GE(cs.table.value(t, a), 0.0);
    }
  }
  Ranking r = CsRankingsDefaultRanking(cs, 25);
  EXPECT_GE(r.k(), 25);
}

TEST(CsRankingsTest, CountsAreHeavyTailed) {
  CsRankingsData cs = GenerateCsRankings({.seed = 6});
  // Max area production far exceeds the median (heavy tail).
  std::vector<double> totals(cs.table.num_tuples(), 0.0);
  for (int t = 0; t < cs.table.num_tuples(); ++t) {
    for (int a = 0; a < cs.table.num_attributes(); ++a) {
      totals[t] += cs.table.value(t, a);
    }
  }
  std::sort(totals.begin(), totals.end());
  double median = totals[totals.size() / 2];
  EXPECT_GT(totals.back(), 5 * median);
}

TEST(DerivedTest, SquaresColumnsAppended) {
  Dataset d({"X", "Y"}, 2);
  d.set_value(0, 0, 2);
  d.set_value(0, 1, 3);
  d.set_value(1, 0, -1);
  d.set_value(1, 1, 4);
  Dataset aug = WithDerivedAttributes(d, {.squares = true});
  EXPECT_EQ(aug.num_attributes(), 4);
  EXPECT_EQ(aug.attribute_name(2), "X^2");
  EXPECT_DOUBLE_EQ(aug.value(0, 2), 4);
  EXPECT_DOUBLE_EQ(aug.value(1, 2), 1);
}

TEST(DerivedTest, ProductsAndLogs) {
  Dataset d({"X", "Y"}, 1);
  d.set_value(0, 0, 2);
  d.set_value(0, 1, 3);
  Dataset aug = WithDerivedAttributes(
      d, {.squares = false, .pairwise_products = true, .logs = true});
  EXPECT_EQ(aug.num_attributes(), 5);  // X, Y, X*Y, log1p(X), log1p(Y)
  EXPECT_DOUBLE_EQ(aug.value(0, 2), 6);
  EXPECT_DOUBLE_EQ(aug.value(0, 3), std::log1p(2.0));
}

}  // namespace
}  // namespace rankhow
