#include "data/dataset.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

Dataset SmallData() {
  Dataset d({"A1", "A2", "A3"}, 3);
  // r = (3,2,8), s = (4,1,15), t = (1,1,14) — paper Example 4.
  d.set_value(0, 0, 3);
  d.set_value(0, 1, 2);
  d.set_value(0, 2, 8);
  d.set_value(1, 0, 4);
  d.set_value(1, 1, 1);
  d.set_value(1, 2, 15);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  d.set_value(2, 2, 14);
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = SmallData();
  EXPECT_EQ(d.num_tuples(), 3);
  EXPECT_EQ(d.num_attributes(), 3);
  EXPECT_EQ(d.attribute_name(1), "A2");
  EXPECT_DOUBLE_EQ(d.value(1, 2), 15);
  EXPECT_EQ(*d.AttributeIndex("A3"), 2);
  EXPECT_FALSE(d.AttributeIndex("nope").ok());
}

TEST(DatasetTest, DiffVectorMatchesExampleFour) {
  Dataset d = SmallData();
  // delta_sr hyperplane: w1 - w2 + 7 w3 (s - r).
  EXPECT_EQ(d.DiffVector(1, 0), (std::vector<double>{1, -1, 7}));
  // delta_tr: -2w1 - w2 + 6w3.
  EXPECT_EQ(d.DiffVector(2, 0), (std::vector<double>{-2, -1, 6}));
}

TEST(DatasetTest, ScoresAndScoreOfAgree) {
  Dataset d = SmallData();
  std::vector<double> w = {0.2, 0.3, 0.5};
  auto scores = d.Scores(w);
  for (int t = 0; t < d.num_tuples(); ++t) {
    EXPECT_DOUBLE_EQ(scores[t], d.ScoreOf(t, w));
  }
}

TEST(DatasetTest, DominatesDetectsStrictDominance) {
  Dataset d({"A", "B"}, 3);
  d.set_value(0, 0, 5);
  d.set_value(0, 1, 5);
  d.set_value(1, 0, 3);
  d.set_value(1, 1, 5);
  d.set_value(2, 0, 5);
  d.set_value(2, 1, 5);
  EXPECT_TRUE(d.Dominates(0, 1));
  EXPECT_FALSE(d.Dominates(1, 0));
  EXPECT_FALSE(d.Dominates(0, 2));  // equal on all attrs: not strict
}

TEST(DatasetTest, NegateColumn) {
  Dataset d = SmallData();
  d.NegateColumn(0);
  EXPECT_DOUBLE_EQ(d.value(0, 0), -3);
}

TEST(DatasetTest, NormalizeMinMax) {
  Dataset d({"A", "C"}, 3);
  d.set_value(0, 0, 10);
  d.set_value(1, 0, 20);
  d.set_value(2, 0, 30);
  for (int t = 0; t < 3; ++t) d.set_value(t, 1, 7);  // constant column
  auto ranges = d.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(d.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d.value(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(d.value(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.value(1, 1), 0.0);  // constant maps to 0
  EXPECT_EQ(ranges[0], (std::pair<double, double>{10, 30}));
}

TEST(DatasetTest, SelectTuplesAndAttributes) {
  Dataset d = SmallData();
  Dataset sub = d.SelectTuples({2, 0});
  EXPECT_EQ(sub.num_tuples(), 2);
  EXPECT_DOUBLE_EQ(sub.value(0, 2), 14);
  EXPECT_DOUBLE_EQ(sub.value(1, 0), 3);
  Dataset cols = d.SelectAttributes({2, 0});
  EXPECT_EQ(cols.num_attributes(), 2);
  EXPECT_EQ(cols.attribute_name(0), "A3");
  EXPECT_DOUBLE_EQ(cols.value(1, 0), 15);
}

TEST(DatasetTest, DropDuplicateTuples) {
  Dataset d({"A"}, 4);
  d.set_value(0, 0, 1);
  d.set_value(1, 0, 2);
  d.set_value(2, 0, 1);  // duplicate of tuple 0
  d.set_value(3, 0, 3);
  auto keep = d.DropDuplicateTuples();
  EXPECT_EQ(keep, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(d.num_tuples(), 3);
  EXPECT_DOUBLE_EQ(d.value(2, 0), 3);
}

TEST(DatasetTest, FromCsvParsesNumericTable) {
  CsvTable csv;
  csv.header = {"x", "y"};
  csv.rows = {{"1.5", "2"}, {"-3", "4.25"}};
  auto d = Dataset::FromCsv(csv);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_tuples(), 2);
  EXPECT_DOUBLE_EQ(d->value(1, 1), 4.25);
}

TEST(DatasetTest, FromCsvRejectsNonNumeric) {
  CsvTable csv;
  csv.header = {"x"};
  csv.rows = {{"abc"}};
  EXPECT_FALSE(Dataset::FromCsv(csv).ok());
}

TEST(DatasetTest, AddColumn) {
  Dataset d = SmallData();
  int idx = d.AddColumn("A4", {1, 2, 3});
  EXPECT_EQ(idx, 3);
  EXPECT_DOUBLE_EQ(d.value(2, 3), 3);
}

}  // namespace
}  // namespace rankhow
