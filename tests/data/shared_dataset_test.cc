// COW correctness for SharedDataset (the session server's dataset layer):
// handles share one physical snapshot until a mutation forks, sole owners
// mutate in place, sibling handles observe bit-identical data across a
// fork, and the snapshot is freed exactly when the last handle drops
// (asserted through a weak_ptr; the asan preset run in scripts/check.sh
// would flag a leak or use-after-free on top).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/shared_dataset.h"

namespace rankhow {
namespace {

Dataset SmallDataset() {
  Dataset d({"A", "B"}, 3);
  for (int t = 0; t < 3; ++t) {
    d.set_value(t, 0, 1.0 * t);
    d.set_value(t, 1, 10.0 * t);
  }
  return d;
}

TEST(SharedDatasetTest, HandleCopiesShareOneSnapshot) {
  SharedDataset a(SmallDataset());
  SharedDataset b = a;
  SharedDataset c = b;
  EXPECT_TRUE(a.SharesSnapshotWith(b));
  EXPECT_TRUE(b.SharesSnapshotWith(c));
  EXPECT_EQ(a.snapshot_id(), c.snapshot_id());
  EXPECT_TRUE(a.shared());
  EXPECT_EQ(&a.get(), &b.get());
}

TEST(SharedDatasetTest, SoleOwnerAppendsInPlaceWithoutForking) {
  SharedDataset a(SmallDataset());
  const void* before = a.snapshot_id();
  EXPECT_EQ(a.AppendTuple({3.0, 30.0}), 3);
  EXPECT_EQ(a.snapshot_id(), before) << "sole owner must not copy";
  EXPECT_EQ(a.forks(), 0);
  EXPECT_EQ(a.get().num_tuples(), 4);
}

TEST(SharedDatasetTest, AppendOnSharedSnapshotForksAndLeavesSiblingsIntact) {
  SharedDataset a(SmallDataset());
  SharedDataset b = a;
  std::vector<double> b_column_before = b.get().column(0);

  EXPECT_EQ(a.AppendTuple({3.0, 30.0}), 3);
  EXPECT_EQ(a.forks(), 1);
  EXPECT_FALSE(a.SharesSnapshotWith(b));
  EXPECT_EQ(a.get().num_tuples(), 4);

  // The sibling's snapshot is untouched, bit for bit.
  EXPECT_EQ(b.get().num_tuples(), 3);
  EXPECT_EQ(b.get().column(0), b_column_before);
  EXPECT_FALSE(b.shared()) << "b is now sole owner of the old snapshot";

  // The forked copy carries the pre-fork rows exactly.
  for (int t = 0; t < 3; ++t) {
    for (int attr = 0; attr < 2; ++attr) {
      EXPECT_EQ(a.get().value(t, attr), b.get().value(t, attr));
    }
  }
}

TEST(SharedDatasetTest, RefcountDropFreesTheSnapshot) {
  std::weak_ptr<const Dataset> observer;
  {
    SharedDataset a(SmallDataset());
    observer = a.snapshot();
    {
      SharedDataset b = a;
      EXPECT_FALSE(observer.expired());
    }
    EXPECT_FALSE(observer.expired()) << "a still holds the snapshot";
  }
  EXPECT_TRUE(observer.expired())
      << "last handle dropped; the snapshot must be freed";
}

// --- Per-column COW (Dataset columns are themselves refcounted) ---

TEST(SharedDatasetTest, NegateColumnForksOnlyTheTouchedColumn) {
  SharedDataset a(SmallDataset());
  SharedDataset b = a;
  const void* col0_before = a.get().column_id(0);
  const void* col1_before = a.get().column_id(1);

  a.NegateColumn(1);

  // The snapshot forked (shallow O(m) shell copy)…
  EXPECT_EQ(a.forks(), 1);
  EXPECT_FALSE(a.SharesSnapshotWith(b));
  // …but only the negated column's buffer was deep-copied; column 0 is
  // still physically shared with the sibling.
  EXPECT_EQ(a.get().column_id(0), col0_before);
  EXPECT_EQ(b.get().column_id(0), col0_before);
  EXPECT_NE(a.get().column_id(1), col1_before);
  EXPECT_EQ(b.get().column_id(1), col1_before);

  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(a.get().value(t, 1), -b.get().value(t, 1));
    EXPECT_EQ(a.get().value(t, 0), b.get().value(t, 0));
  }
}

TEST(SharedDatasetTest, AppendForkUnsharesEveryColumnItTouches) {
  SharedDataset a(SmallDataset());
  SharedDataset b = a;
  std::vector<double> b_col0_before = b.get().column(0);
  std::vector<double> b_col1_before = b.get().column(1);

  a.AppendTuple({3.0, 30.0});

  // AppendTuple writes every column, so the fork unshares them all.
  EXPECT_NE(a.get().column_id(0), b.get().column_id(0));
  EXPECT_NE(a.get().column_id(1), b.get().column_id(1));
  // The sibling's buffers are bit-identical to their pre-fork state.
  EXPECT_EQ(b.get().column(0), b_col0_before);
  EXPECT_EQ(b.get().column(1), b_col1_before);
  EXPECT_EQ(a.get().num_tuples(), 4);
  EXPECT_EQ(b.get().num_tuples(), 3);
}

TEST(SharedDatasetTest, ColumnBufferFreedWhenLastSharerDrops) {
  std::weak_ptr<const std::vector<double>> col0;
  std::weak_ptr<const std::vector<double>> col1;
  {
    SharedDataset a(SmallDataset());
    col0 = a.get().column_handle(0);
    col1 = a.get().column_handle(1);
    {
      SharedDataset b = a;
      a.NegateColumn(1);
      // a re-pointed column 1 to a fresh buffer; b still holds the
      // original, so it stays alive.
      EXPECT_FALSE(col1.expired());
    }
    // b dropped: the pre-negation column-1 buffer has no owner left, while
    // column 0 is still shared into a's snapshot.
    EXPECT_TRUE(col1.expired());
    EXPECT_FALSE(col0.expired());
  }
  EXPECT_TRUE(col0.expired())
      << "last handle dropped; every column buffer must be freed";
}

TEST(SharedDatasetTest, SelectAttributesSharesColumnBuffers) {
  Dataset d = SmallDataset();
  const void* col1 = d.column_id(1);
  Dataset proj = d.SelectAttributes({1});
  EXPECT_EQ(proj.column_id(0), col1) << "projection must not copy buffers";
  // Mutating the projection unshares its column; the original is untouched.
  proj.set_value(0, 0, 99.0);
  EXPECT_NE(proj.column_id(0), col1);
  EXPECT_EQ(d.value(0, 1), 0.0);
}

TEST(SharedDatasetTest, ForkDropsTheOldSnapshotWhenSiblingsVanish) {
  SharedDataset a(SmallDataset());
  std::weak_ptr<const Dataset> original = a.snapshot();
  {
    SharedDataset b = a;
    a.AppendTuple({3.0, 30.0});  // a forks; b keeps the original
    EXPECT_FALSE(original.expired());
  }
  // b died; the pre-fork snapshot had no other owner left.
  EXPECT_TRUE(original.expired());
  EXPECT_FALSE(a.snapshot() == nullptr);
}

}  // namespace
}  // namespace rankhow
