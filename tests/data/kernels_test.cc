// Kernel-vs-scalar equivalence for the batched scoring layer (data/kernels.h).
// The kernels' contract is not "close": scores must be BIT-identical to the
// scalar per-tuple loops (same per-tuple accumulation order over attributes),
// rank positions and dominance verdicts must match exactly — including at
// block boundaries and for ties sitting right at tie_eps — and the parallel
// path must produce the same bits at any worker count (1/2/8; the tsan label
// on data_tests races this under the sanitizer).

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/kernels.h"
#include "ranking/verifier.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace rankhow {
namespace {

/// Random dataset with deliberate tie structure: blocks of duplicated rows
/// (score difference exactly 0) and, when the weight vector is known,
/// rows nudged on one attribute by tie_eps / w[a] — putting the score
/// difference AT the tie tolerance up to rounding, i.e. inside the
/// certified uncertainty band, so the fused kernel's exact-fallback path is
/// exercised and not just the certain fast path.
Dataset TieHeavyDataset(int n, int m, uint64_t seed, double tie_eps,
                        const std::vector<double>* w = nullptr) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    if (t > 0 && rng.NextDouble() < 0.25) {
      int src = static_cast<int>(rng.Next() % t);
      for (int a = 0; a < m; ++a) d.set_value(t, a, d.value(src, a));
      if (rng.NextDouble() < 0.5) {
        int a = static_cast<int>(rng.Next() % m);
        const double unit = w != nullptr ? tie_eps / (*w)[a] : tie_eps;
        // Mostly dead-on ε (ambiguous under rounding); sometimes scaled off
        // it, creating certain pairs right next to the band.
        const double factor =
            rng.NextDouble() < 0.7 ? 1.0 : rng.NextUniform(0.0, 2.0);
        d.set_value(t, a, d.value(t, a) + unit * factor);
      }
    } else {
      for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextDouble());
    }
  }
  return d;
}

std::vector<double> RandomSimplexWeights(int m, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(m);
  double sum = 0;
  for (double& v : w) {
    v = rng.NextDouble();
    sum += v;
  }
  for (double& v : w) v /= sum;
  return w;
}

/// The pre-kernel scalar reference: per-tuple attribute-order accumulation
/// (exactly Dataset::ScoreOf) with the certified (m+3)·u·Σ|term| bound.
void ScalarScoresWithErr(const Dataset& data, const std::vector<double>& w,
                         std::vector<double>* scores,
                         std::vector<double>* err) {
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  const double u = std::ldexp(1.0, -53);
  scores->assign(n, 0.0);
  err->assign(n, 0.0);
  for (int t = 0; t < n; ++t) {
    double sum = 0;
    double abs_sum = 0;
    for (int a = 0; a < m; ++a) {
      double term = w[a] * data.value(t, a);
      sum += term;
      abs_sum += std::abs(term);
    }
    (*scores)[t] = sum;
    (*err)[t] = (m + 3) * u * abs_sum;
  }
}

/// The pre-kernel scalar verifier loop, kept verbatim as the reference the
/// fused kernel must reproduce pair for pair.
std::vector<int> ScalarExactPositions(const Dataset& data,
                                      const std::vector<double>& w,
                                      const std::vector<int>& tuples,
                                      double tie_eps, long* exact_used_out,
                                      long* total_out) {
  std::vector<double> scores;
  std::vector<double> err;
  ScalarScoresWithErr(data, w, &scores, &err);
  const int n = data.num_tuples();
  long exact_used = 0;
  long total = 0;
  std::vector<int> positions;
  for (int r : tuples) {
    int beats = 0;
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      ++total;
      double diff = scores[s] - scores[r];
      double band = err[s] + err[r];
      if (diff - tie_eps > band) {
        ++beats;
      } else if (diff - tie_eps < -band) {
        // certainly does not beat
      } else {
        ++exact_used;
        if (ExactScoreDiffSign(data, w, s, r, tie_eps) > 0) ++beats;
      }
    }
    positions.push_back(beats + 1);
  }
  if (exact_used_out != nullptr) *exact_used_out = exact_used;
  if (total_out != nullptr) *total_out = total;
  return positions;
}

// Sizes chosen to straddle the kernel block size (2048): partial single
// block, exact block, one element over, and a couple of full blocks plus
// spill.
const int kBoundarySizes[] = {1, 2, 7, 2047, 2048, 2049, 4097};

TEST(KernelsTest, BatchScoresBitIdenticalToScoreOf) {
  for (int n : kBoundarySizes) {
    Dataset d = TieHeavyDataset(n, 4, /*seed=*/n, /*tie_eps=*/1e-9);
    std::vector<double> w = RandomSimplexWeights(4, /*seed=*/n + 1);
    std::vector<double> batched(n);
    kernels::BatchScores(d, w, batched.data());
    for (int t = 0; t < n; ++t) {
      // EXPECT_EQ, not NEAR: the accumulation order per tuple is identical,
      // so the bits must be.
      EXPECT_EQ(batched[t], d.ScoreOf(t, w)) << "n=" << n << " t=" << t;
    }
  }
}

TEST(KernelsTest, BatchScoresSkipsZeroWeightColumnsWithoutChangingBits) {
  const int n = 4097;
  Dataset d = TieHeavyDataset(n, 5, /*seed=*/7, /*tie_eps=*/1e-9);
  std::vector<double> w = RandomSimplexWeights(5, /*seed=*/8);
  w[1] = 0.0;
  w[3] = 0.0;
  std::vector<double> batched(n);
  kernels::BatchScores(d, w, batched.data());
  for (int t = 0; t < n; ++t) {
    EXPECT_EQ(batched[t], d.ScoreOf(t, w)) << "t=" << t;
  }
}

TEST(KernelsTest, BatchScoresWithErrorBoundMatchesScalarReference) {
  for (int n : kBoundarySizes) {
    Dataset d = TieHeavyDataset(n, 3, /*seed=*/100 + n, /*tie_eps=*/1e-9);
    std::vector<double> w = RandomSimplexWeights(3, /*seed=*/n);
    std::vector<double> ref_scores;
    std::vector<double> ref_err;
    ScalarScoresWithErr(d, w, &ref_scores, &ref_err);
    std::vector<double> scores(n);
    std::vector<double> err(n);
    kernels::BatchScoresWithErrorBound(d, w, scores.data(), err.data());
    for (int t = 0; t < n; ++t) {
      EXPECT_EQ(scores[t], ref_scores[t]) << "n=" << n << " t=" << t;
      EXPECT_EQ(err[t], ref_err[t]) << "n=" << n << " t=" << t;
    }
  }
}

TEST(KernelsTest, BatchDiffAgainstMatchesDiffVector) {
  const int n = 2049;
  const int m = 4;
  Dataset d = TieHeavyDataset(n, m, /*seed=*/21, /*tie_eps=*/1e-9);
  const int pivot = 1234;
  std::vector<double> out(static_cast<size_t>(n) * m);
  kernels::BatchDiffAgainst(d, pivot, out.data());
  std::vector<double> ref(m);
  for (int s = 0; s < n; ++s) {
    d.DiffVectorInto(s, pivot, ref.data());
    for (int a = 0; a < m; ++a) {
      EXPECT_EQ(out[static_cast<size_t>(s) * m + a], ref[a])
          << "s=" << s << " a=" << a;
    }
  }
}

TEST(KernelsTest, DiffVectorIntoMatchesDiffVector) {
  Dataset d = TieHeavyDataset(64, 5, /*seed=*/3, /*tie_eps=*/1e-9);
  std::vector<double> buf(5);
  for (int s = 0; s < 64; s += 7) {
    for (int r = 0; r < 64; r += 11) {
      d.DiffVectorInto(s, r, buf.data());
      EXPECT_EQ(buf, d.DiffVector(s, r)) << "s=" << s << " r=" << r;
    }
  }
}

TEST(KernelsTest, DiffRangeAgainstMatchesScalarMinMax) {
  for (int n : kBoundarySizes) {
    const int m = 4;
    Dataset d = TieHeavyDataset(n, m, /*seed=*/300 + n, /*tie_eps=*/1e-9);
    const int pivot = n / 2;
    std::vector<double> lo(n);
    std::vector<double> hi(n);
    kernels::DiffRangeAgainst(d, pivot, lo.data(), hi.data());
    for (int s = 0; s < n; ++s) {
      double rlo = d.value(s, 0) - d.value(pivot, 0);
      double rhi = rlo;
      for (int a = 1; a < m; ++a) {
        double v = d.value(s, a) - d.value(pivot, a);
        rlo = std::min(rlo, v);
        rhi = std::max(rhi, v);
      }
      EXPECT_EQ(lo[s], rlo) << "n=" << n << " s=" << s;
      EXPECT_EQ(hi[s], rhi) << "n=" << n << " s=" << s;
    }
  }
}

TEST(KernelsTest, DominanceScanMatchesDominates) {
  for (int n : kBoundarySizes) {
    Dataset d = TieHeavyDataset(n, 3, /*seed=*/500 + n, /*tie_eps=*/1e-9);
    const int pivot = n - 1;
    std::vector<unsigned char> out(n);
    kernels::DominanceScan(d, pivot, out.data());
    for (int s = 0; s < n; ++s) {
      const bool expected = s == pivot ? false : d.Dominates(s, pivot);
      EXPECT_EQ(out[s] != 0, expected) << "n=" << n << " s=" << s;
    }
  }
}

TEST(KernelsTest, FusedExactRankPositionsMatchesScalarVerifierExactly) {
  // tie_eps = 0 makes every exact-duplicate pair ambiguous (x = 0 inside
  // the band); tie_eps = 1e-9 relies on the weight-aware nudges that park
  // score differences at ε up to rounding.
  for (double tie_eps : {0.0, 1e-9}) {
  for (int n : kBoundarySizes) {
    std::vector<double> w = RandomSimplexWeights(4, /*seed=*/n * 3 + 1);
    Dataset d = TieHeavyDataset(n, 4, /*seed=*/900 + n, tie_eps, &w);
    // Two pivot-set sizes: small k (linear path) and large k (sorted path).
    for (int k : {1, std::min(n, 3), n}) {
      std::vector<int> tuples;
      for (int i = 0; i < k; ++i) tuples.push_back((i * 13) % n);
      long ref_exact = 0;
      long ref_total = 0;
      std::vector<int> ref =
          ScalarExactPositions(d, w, tuples, tie_eps, &ref_exact, &ref_total);
      kernels::ExactRankScratch scratch;
      std::vector<int> got;
      long got_exact = 0;
      long got_total = 0;
      kernels::FusedExactRankPositions(
          d, w, tuples, tie_eps,
          [&](int s, int r) { return ExactScoreDiffSign(d, w, s, r, tie_eps); },
          &scratch, &got, &got_exact, &got_total);
      EXPECT_EQ(got, ref) << "n=" << n << " k=" << k;
      EXPECT_EQ(got_exact, ref_exact) << "n=" << n << " k=" << k;
      EXPECT_EQ(got_total, ref_total) << "n=" << n << " k=" << k;
      if (n >= 2047 && k == n) {
        EXPECT_GT(got_exact, 0)
            << "tie-heavy data must exercise the exact fallback (n=" << n
            << " k=" << k << " eps=" << tie_eps << ")";
      }
    }
  }
  }
}

TEST(KernelsTest, VerifierWrapperUsesTheFusedKernel) {
  const double tie_eps = 1e-9;
  Dataset d = TieHeavyDataset(2049, 3, /*seed=*/77, tie_eps);
  std::vector<double> w = RandomSimplexWeights(3, /*seed=*/78);
  std::vector<int> tuples = {0, 17, 2048, 1024, 33};
  long ref_exact = 0;
  long ref_total = 0;
  std::vector<int> ref =
      ScalarExactPositions(d, w, tuples, tie_eps, &ref_exact, &ref_total);
  long got_exact = 0;
  long got_total = 0;
  std::vector<int> got = ExactScoreRankPositionsOf(d, w, tuples, tie_eps,
                                                   &got_exact, &got_total);
  EXPECT_EQ(got, ref);
  EXPECT_EQ(got_exact, ref_exact);
  EXPECT_EQ(got_total, ref_total);
}

// Parallel path: bit-identical results at every worker count. n is above
// kParallelMinTuples so the pool actually engages; the tsan label on
// data_tests runs this under the race detector.
TEST(KernelsTest, ParallelKernelsBitIdenticalAcrossWorkerCounts) {
  const int n = kernels::kParallelMinTuples + 4097;  // > threshold, odd spill
  const int m = 4;
  const double tie_eps = 1e-9;
  Dataset d = TieHeavyDataset(n, m, /*seed=*/42, tie_eps);
  std::vector<double> w = RandomSimplexWeights(m, /*seed=*/43);

  std::vector<double> serial_scores(n);
  std::vector<double> serial_err(n);
  kernels::BatchScoresWithErrorBound(d, w, serial_scores.data(),
                                     serial_err.data());
  std::vector<double> serial_lo(n);
  std::vector<double> serial_hi(n);
  kernels::DiffRangeAgainst(d, 5, serial_lo.data(), serial_hi.data());
  std::vector<unsigned char> serial_dom(n);
  kernels::DominanceScan(d, 5, serial_dom.data());

  std::vector<int> tuples;
  for (int i = 0; i < 64; ++i) tuples.push_back((i * 511) % n);
  kernels::ExactRankScratch scratch;
  std::vector<int> serial_pos;
  long serial_exact = 0;
  auto exact_sign = [&](int s, int r) {
    return ExactScoreDiffSign(d, w, s, r, tie_eps);
  };
  kernels::FusedExactRankPositions(d, w, tuples, tie_eps, exact_sign, &scratch,
                                   &serial_pos, &serial_exact, nullptr);

  for (int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    std::vector<double> scores(n);
    std::vector<double> err(n);
    kernels::BatchScoresWithErrorBound(d, w, scores.data(), err.data(), &pool);
    EXPECT_EQ(std::memcmp(scores.data(), serial_scores.data(),
                          n * sizeof(double)),
              0)
        << "workers=" << workers;
    EXPECT_EQ(std::memcmp(err.data(), serial_err.data(), n * sizeof(double)),
              0)
        << "workers=" << workers;

    std::vector<double> lo(n);
    std::vector<double> hi(n);
    kernels::DiffRangeAgainst(d, 5, lo.data(), hi.data(), &pool);
    EXPECT_EQ(
        std::memcmp(lo.data(), serial_lo.data(), n * sizeof(double)), 0)
        << "workers=" << workers;
    EXPECT_EQ(
        std::memcmp(hi.data(), serial_hi.data(), n * sizeof(double)), 0)
        << "workers=" << workers;

    std::vector<unsigned char> dom(n);
    kernels::DominanceScan(d, 5, dom.data(), &pool);
    EXPECT_EQ(std::memcmp(dom.data(), serial_dom.data(), n), 0)
        << "workers=" << workers;

    kernels::ExactRankScratch pscratch;
    std::vector<int> pos;
    long exact = 0;
    kernels::FusedExactRankPositions(d, w, tuples, tie_eps, exact_sign,
                                     &pscratch, &pos, &exact, nullptr, &pool);
    EXPECT_EQ(pos, serial_pos) << "workers=" << workers;
    EXPECT_EQ(exact, serial_exact) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace rankhow
