#include <gtest/gtest.h>

#include "baselines/linear_regression.h"
#include "baselines/ordinal_regression.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

// Paper Example 3: linear regression on
// R = {(1,10000),(2,1000),(5,1),(4,10),(3,100)} with rank vector [1..5]
// produces the ranking [1,2,5,4,3] — position error 4 — even though a
// perfect linear scoring function exists.
TEST(LinearRegressionTest, ExampleThreeFailureMode) {
  Dataset d({"A1", "A2"}, 5);
  double rows[5][2] = {{1, 10000}, {2, 1000}, {5, 1}, {4, 10}, {3, 100}};
  for (int t = 0; t < 5; ++t) {
    d.set_value(t, 0, rows[t][0]);
    d.set_value(t, 1, rows[t][1]);
  }
  Ranking given = MustCreate({1, 2, 3, 4, 5});

  auto fit = FitLinearRegression(d, given);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  long error = PositionError(d, given, fit->weights, 0.0);
  EXPECT_EQ(error, 4) << "w = [" << fit->weights[0] << ", "
                      << fit->weights[1] << "]";

  // The non-negative variant fails the same way (paper: [1,2,5,4,3] again).
  LinearRegressionOptions nn;
  nn.non_negative = true;
  auto nn_fit = FitLinearRegression(d, given, nn);
  ASSERT_TRUE(nn_fit.ok()) << nn_fit.status().ToString();
  EXPECT_EQ(PositionError(d, given, nn_fit->weights, 0.0), 4);
}

TEST(LinearRegressionTest, RecoversCleanLinearRanking) {
  SyntheticSpec spec;
  spec.num_tuples = 120;
  spec.num_attributes = 3;
  spec.seed = 5;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> w_true = {0.2, 0.5, 0.3};
  // Rank ALL tuples so the labels carry full information.
  Ranking given = Ranking::FromScores(data.Scores(w_true), 120, 0.0);
  auto fit = FitLinearRegression(data, given);
  ASSERT_TRUE(fit.ok());
  // Rank positions are a non-linear monotone transform of the true score,
  // so OLS recovers the ordering only approximately — the paper's core
  // point. Allow a small per-tuple slip (120 ranked tuples).
  EXPECT_LE(PositionError(data, given, fit->weights, 0.0), 30);
}

TEST(LinearRegressionTest, NonNegativeVariantHasNonNegativeWeights) {
  SyntheticSpec spec;
  spec.num_tuples = 40;
  spec.num_attributes = 4;
  spec.seed = 6;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.column(0), 10, 0.0);
  LinearRegressionOptions options;
  options.non_negative = true;
  auto fit = FitLinearRegression(data, given, options);
  ASSERT_TRUE(fit.ok());
  for (double w : fit->weights) EXPECT_GE(w, 0.0);
}

TEST(OrdinalRegressionTest, RecoversLinearRankingExactly) {
  SyntheticSpec spec;
  spec.num_tuples = 80;
  spec.num_attributes = 3;
  spec.seed = 7;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> w_true = {0.6, 0.1, 0.3};
  Ranking given = Ranking::FromScores(data.Scores(w_true), 10, 0.0);
  auto fit = FitOrdinalRegression(data, given);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(fit->exact_lp);
  EXPECT_NEAR(fit->penalty, 0.0, 1e-6);  // realizable: zero slack
  EXPECT_LE(PositionError(data, given, fit->weights, 0.0), 1);
}

TEST(OrdinalRegressionTest, OriginalFormulationRejectsTies) {
  Dataset d({"A", "B"}, 3);
  for (int t = 0; t < 3; ++t) {
    d.set_value(t, 0, 3 - t);
    d.set_value(t, 1, t);
  }
  Ranking given = MustCreate({1, 1, 3});
  OrdinalRegressionOptions options;
  options.support_ties = false;  // Srinivasan's original
  auto fit = FitOrdinalRegression(d, given, options);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

TEST(OrdinalRegressionTest, TieExtensionHandlesTiedRanking) {
  Dataset d({"A", "B"}, 4);
  // Tuples 0,1 symmetric; a tie is realizable at w = (0.5, 0.5).
  d.set_value(0, 0, 2);
  d.set_value(0, 1, 4);
  d.set_value(1, 0, 4);
  d.set_value(1, 1, 2);
  d.set_value(2, 0, 1);
  d.set_value(2, 1, 1);
  d.set_value(3, 0, 0);
  d.set_value(3, 1, 0);
  Ranking given = MustCreate({1, 1, 3, kUnranked});
  auto fit = FitOrdinalRegression(d, given);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->penalty, 0.0, 1e-9);
  EXPECT_NEAR(fit->weights[0], 0.5, 1e-6);
}

TEST(OrdinalRegressionTest, SubgradientPathKicksInOnLargeInput) {
  SyntheticSpec spec;
  spec.num_tuples = 3000;
  spec.num_attributes = 3;
  spec.seed = 8;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> w_true = {0.5, 0.25, 0.25};
  Ranking given = Ranking::FromScores(data.Scores(w_true), 5, 0.0);
  OrdinalRegressionOptions options;
  options.max_lp_pairs = 100;  // force the subgradient path
  auto fit = FitOrdinalRegression(data, given, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(fit->exact_lp);
  // Should still land near a good ranking function.
  EXPECT_LE(PositionError(data, given, fit->weights, 0.0), 50);
}

// Property: ordinal regression's LP penalty is zero iff the pairs are
// realizable, and its weights always lie on the simplex.
class OrdinalRegressionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrdinalRegressionPropertyTest, WeightsOnSimplexAndPenaltySane) {
  Rng rng(GetParam());
  SyntheticSpec spec;
  spec.num_tuples = static_cast<int>(rng.NextInt(10, 60));
  spec.num_attributes = static_cast<int>(rng.NextInt(2, 5));
  spec.seed = GetParam();
  Dataset data = GenerateSynthetic(spec);
  int k = static_cast<int>(rng.NextInt(2, 8));
  Ranking given = Ranking::FromScores(
      data.Scores(rng.NextSimplexPoint(spec.num_attributes)),
      std::min(k, spec.num_tuples), 0.0);
  auto fit = FitOrdinalRegression(data, given);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  double sum = 0;
  for (double w : fit->weights) {
    EXPECT_GE(w, -1e-9);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GE(fit->penalty, -1e-9);
  // The generating weights realize the ranking, so the optimum penalty is 0.
  EXPECT_NEAR(fit->penalty, 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrdinalRegressionPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace rankhow
