#include "baselines/tree.h"

#include <gtest/gtest.h>

#include "core/rankhow.h"
#include "util/random.h"

namespace rankhow {
namespace {

Dataset SmallRandom(uint64_t seed, int n, int m) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

TEST(TreeBaselineTest, CompletesTinyInstance) {
  Dataset d = SmallRandom(1, 4, 2);
  Ranking given = Ranking::FromScores(d.Scores({0.7, 0.3}), 2, 0.0);
  TreeOptions options;
  options.eps1 = 1e-6;
  options.tie_eps = 5e-7;
  auto result = RunTreeBaseline(d, given, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->error, 0);  // realizable ranking
  EXPECT_GT(result->lp_calls, 0);
  EXPECT_GT(result->leaves_reached, 0);
}

TEST(TreeBaselineTest, BudgetLimitedRunReturnsSomething) {
  Dataset d = SmallRandom(2, 12, 3);
  Ranking given = Ranking::FromScores(d.Scores({0.4, 0.3, 0.3}), 5, 0.0);
  TreeOptions options;
  options.eps1 = 1e-6;
  options.max_lp_calls = 200;  // nowhere near full enumeration
  auto result = RunTreeBaseline(d, given, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completed);
  EXPECT_GE(result->error, 0);
  EXPECT_LE(result->lp_calls, 210);
}

TEST(TreeBaselineTest, DominancePruningShrinksPairList) {
  Dataset d = SmallRandom(3, 8, 2);
  Ranking given = Ranking::FromScores(d.Scores({0.5, 0.5}), 3, 0.0);
  TreeOptions plain;
  plain.eps1 = 1e-6;
  plain.max_lp_calls = 500;
  TreeOptions pruned = plain;
  pruned.use_dominance_pruning = true;
  auto a = RunTreeBaseline(d, given, plain);
  auto b = RunTreeBaseline(d, given, pruned);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // With pruning the tree is shallower: it either completes or reaches
  // leaves with fewer LP calls. When both complete, the enumerated optimum
  // (the leaf objective) must agree; the sampled witnesses may differ.
  if (a->completed && b->completed) {
    EXPECT_LE(b->lp_calls, a->lp_calls);
    EXPECT_EQ(a->best_leaf_error, b->best_leaf_error);
  }
}

// The headline agreement property: on instances small enough for TREE to
// complete, the TREE optimum equals RankHow's proven optimum.
class TreeVsRankHowTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeVsRankHowTest, AgreeOnTinyInstances) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(3, 6));
  int m = 2;
  int k = static_cast<int>(rng.NextInt(1, 3));
  Dataset d = SmallRandom(GetParam() * 7 + 1, n, m);
  Ranking given =
      Ranking::FromScores(d.Scores(rng.NextSimplexPoint(m)), k, 0.0);

  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;

  TreeOptions tree_options;
  tree_options.eps1 = eps.eps1;
  tree_options.eps2 = eps.eps2;
  tree_options.tie_eps = eps.tie_eps;
  tree_options.use_dominance_pruning = true;
  tree_options.max_lp_calls = 2000000;
  auto tree = RunTreeBaseline(d, given, tree_options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  if (!tree->completed) return;  // too big to enumerate; skip

  RankHowOptions options;
  options.eps = eps;
  RankHow solver(d, given, options);
  auto exact = solver.Solve();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_TRUE(exact->proven_optimal);

  EXPECT_EQ(tree->best_leaf_error, exact->claimed_error)
      << "TREE enumerated a different optimum than branch-and-bound";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeVsRankHowTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace rankhow
