#include <gtest/gtest.h>

#include "baselines/adarank.h"
#include "baselines/sampling.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"

namespace rankhow {
namespace {

TEST(AdaRankTest, PicksThePerfectSingleAttribute) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attributes = 3;
  spec.seed = 3;
  Dataset data = GenerateSynthetic(spec);
  // The given ranking IS attribute 1's ordering.
  Ranking given = Ranking::FromScores(data.column(1), 8, 0.0);
  auto fit = FitAdaRank(data, given);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_FALSE(fit->selected_attributes.empty());
  EXPECT_EQ(fit->selected_attributes[0], 1);
  // Weight mass concentrates on the winning attribute.
  EXPECT_GT(fit->weights[1], fit->weights[0]);
  EXPECT_GT(fit->weights[1], fit->weights[2]);
  EXPECT_LE(PositionError(data, given, fit->weights, 0.0), 1);
}

TEST(AdaRankTest, DegenerateRepetitionOnDominantAttribute) {
  // The paper's observed failure mode: one attribute strongly correlated
  // with the ranking is selected round after round.
  SyntheticSpec spec;
  spec.num_tuples = 80;
  spec.num_attributes = 4;
  spec.seed = 4;
  Dataset data = GenerateSynthetic(spec);
  std::vector<double> w = {0.9, 0.05, 0.03, 0.02};
  Ranking given = Ranking::FromScores(data.Scores(w), 10, 0.0);
  AdaRankOptions options;
  options.rounds = 20;
  auto fit = FitAdaRank(data, given, options);
  ASSERT_TRUE(fit.ok());
  int first = fit->selected_attributes.empty()
                  ? -1
                  : fit->selected_attributes[0];
  int repeats = 0;
  for (int a : fit->selected_attributes) repeats += a == first;
  EXPECT_GE(repeats * 2, static_cast<int>(fit->selected_attributes.size()))
      << "expected the dominant attribute to be picked most rounds";
}

TEST(AdaRankTest, WeightsNonNegative) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 5;
  spec.seed = 5;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(PowerSumScores(data, 3), 6, 0.0);
  auto fit = FitAdaRank(data, given);
  ASSERT_TRUE(fit.ok());
  for (double w : fit->weights) EXPECT_GE(w, 0.0);
}

TEST(AdaRankTest, RejectsBadInputs) {
  Dataset d({"A"}, 2);
  auto given = Ranking::Create({1, 2});
  ASSERT_TRUE(given.ok());
  AdaRankOptions options;
  options.rounds = 0;
  EXPECT_FALSE(FitAdaRank(d, *given, options).ok());
}

TEST(SamplingTest, FindsPerfectFunctionOnEasyInstance) {
  SyntheticSpec spec;
  spec.num_tuples = 30;
  spec.num_attributes = 2;
  spec.seed = 6;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.Scores({0.5, 0.5}), 3, 0.0);
  SamplingOptions options;
  options.time_budget_seconds = 2.0;
  options.seed = 1;
  auto fit = RunSampling(data, given, options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->error, 0);
  EXPECT_GT(fit->samples_drawn, 0);
}

TEST(SamplingTest, RespectsConstraints) {
  SyntheticSpec spec;
  spec.num_tuples = 20;
  spec.num_attributes = 3;
  spec.seed = 7;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(data.column(0), 3, 0.0);
  WeightConstraintSet constraints;
  constraints.AddMinWeight(2, 0.5);
  SamplingOptions options;
  options.time_budget_seconds = 0.5;
  options.constraints = &constraints;
  options.seed = 2;
  auto fit = RunSampling(data, given, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_GE(fit->weights[2], 0.5);
  EXPECT_LE(fit->samples_evaluated, fit->samples_drawn);
}

TEST(SamplingTest, SampleCapRespected) {
  SyntheticSpec spec;
  spec.num_tuples = 10;
  spec.num_attributes = 2;
  spec.seed = 8;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = Ranking::FromScores(PowerSumScores(data, 5), 3, 0.0);
  SamplingOptions options;
  options.time_budget_seconds = 30;
  options.max_samples = 25;
  options.seed = 3;
  auto fit = RunSampling(data, given, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->samples_drawn, 25);
}

TEST(SamplingTest, RejectsNoBudget) {
  Dataset d({"A"}, 2);
  auto given = Ranking::Create({1, 2});
  ASSERT_TRUE(given.ok());
  SamplingOptions options;
  options.time_budget_seconds = 0;
  options.max_samples = 0;
  EXPECT_FALSE(RunSampling(d, *given, options).ok());
}

}  // namespace
}  // namespace rankhow
