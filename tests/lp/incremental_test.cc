// Warm-vs-cold equivalence for the incremental LP engine: after any
// sequence of bound flips, row additions, and row (de)activations, a
// warm-started IncrementalLp::Solve must reach the same objective as a
// cold SimplexSolver solve of the equivalent LpModel. SimplexSolver is the
// oracle here (see DESIGN.md "Incremental LP architecture").

#include "lp/incremental.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace rankhow {
namespace {

constexpr double kObjTol = 1e-5;

// A mirrored instance: the IncrementalLp under test plus the plain LpModel
// data needed to rebuild the equivalent cold model at any point.
struct Mirror {
  LpModel base;                    // variables + objective (bounds mutable)
  std::vector<LpConstraint> rows;  // all rows ever added
  std::vector<bool> active;
};

LpModel BuildCold(const Mirror& m) {
  LpModel cold;
  for (int j = 0; j < m.base.num_variables(); ++j) {
    const LpVariable& v = m.base.variable(j);
    cold.AddVariable(v.lower, v.upper, v.name);
  }
  cold.SetObjective(m.base.objective(), m.base.sense());
  for (size_t i = 0; i < m.rows.size(); ++i) {
    if (m.active[i]) {
      cold.AddConstraint(m.rows[i].expr, m.rows[i].op, m.rows[i].rhs);
    }
  }
  return cold;
}

// Compares a warm incremental solve against the cold oracle on the current
// mirrored state. Both must agree on feasibility; objectives must match.
void ExpectAgreement(IncrementalLp& inc, const Mirror& m,
                     const std::string& context) {
  auto warm = inc.Solve();
  auto cold = SimplexSolver().Solve(BuildCold(m));
  if (cold.ok()) {
    ASSERT_TRUE(warm.ok()) << context
                           << ": warm failed: " << warm.status().ToString()
                           << " but cold found " << cold->objective;
    EXPECT_NEAR(warm->objective, cold->objective, kObjTol) << context;
  } else if (cold.status().code() == StatusCode::kInfeasible) {
    ASSERT_FALSE(warm.ok()) << context << ": warm found " << warm->objective
                            << " but cold is infeasible";
    EXPECT_EQ(warm.status().code(), StatusCode::kInfeasible) << context;
  } else if (cold.status().code() == StatusCode::kUnbounded) {
    ASSERT_FALSE(warm.ok()) << context << ": warm found " << warm->objective
                            << " but cold is unbounded";
    EXPECT_EQ(warm.status().code(), StatusCode::kUnbounded) << context;
  }
  // Other oracle outcomes (numerical, iteration caps) make no claim.
}

TEST(IncrementalLpTest, MatchesColdOnTextbookInstance) {
  // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2, 6).
  LpModel m;
  int x = m.AddVariable(0, kInfinity, "x");
  int y = m.AddVariable(0, kInfinity, "y");
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kLe, 4);
  m.AddConstraint(LinearExpr::Term(y, 2), RelOp::kLe, 12);
  m.AddConstraint(LinearExpr::Term(x, 3) + LinearExpr::Term(y, 2),
                  RelOp::kLe, 18);
  m.SetObjective(LinearExpr::Term(x, 3) + LinearExpr::Term(y, 5),
                 ObjectiveSense::kMaximize);
  IncrementalLp inc(m);
  auto sol = inc.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 36.0, 1e-6);
  EXPECT_NEAR(sol->values[x], 2.0, 1e-6);
  EXPECT_NEAR(sol->values[y], 6.0, 1e-6);
}

TEST(IncrementalLpTest, BoundFlipResolvesDually) {
  // Fix a variable the optimum uses, re-solve warm, then un-fix: both
  // resolves must agree with cold solves, and the warm path must not
  // restart from scratch (second solve is counted warm).
  LpModel m;
  int x = m.AddVariable(0, 10, "x");
  int y = m.AddVariable(0, 10, "y");
  m.AddConstraint(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 1),
                  RelOp::kLe, 12);
  m.SetObjective(LinearExpr::Term(x, -2) + LinearExpr::Term(y, -1));
  IncrementalLp inc(m);
  auto first = inc.Solve();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NEAR(first->objective, -22.0, 1e-6);  // x=10, y=2

  inc.SetVariableBounds(x, 3, 3);
  auto fixed = inc.Solve();
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  EXPECT_NEAR(fixed->objective, -15.0, 1e-6);  // x=3, y=9

  inc.SetVariableBounds(x, 0, 10);
  auto relaxed = inc.Solve();
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  EXPECT_NEAR(relaxed->objective, -22.0, 1e-6);
  EXPECT_EQ(inc.stats().cold_solves, 1);
  EXPECT_EQ(inc.stats().warm_solves, 2);
}

TEST(IncrementalLpTest, RowAdditionAndDeactivation) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity, "x");
  int y = m.AddVariable(0, kInfinity, "y");
  m.AddConstraint(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 1),
                  RelOp::kLe, 10);
  m.SetObjective(LinearExpr::Term(x, -1) + LinearExpr::Term(y, -1));
  IncrementalLp inc(m);
  auto base = inc.Solve();
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(base->objective, -10.0, 1e-6);

  int cut = inc.AddRow(LinearExpr::Term(x, 1), RelOp::kLe, 2.0);
  auto cut_sol = inc.Solve();
  ASSERT_TRUE(cut_sol.ok());
  EXPECT_NEAR(cut_sol->objective, -10.0, 1e-6);  // y picks up the slack
  EXPECT_LE(cut_sol->values[x], 2.0 + 1e-6);

  int cut2 = inc.AddRow(LinearExpr::Term(y, 1), RelOp::kLe, 3.0);
  auto both = inc.Solve();
  ASSERT_TRUE(both.ok());
  EXPECT_NEAR(both->objective, -5.0, 1e-6);

  inc.SetRowActive(cut, false);
  auto reopened = inc.Solve();
  ASSERT_TRUE(reopened.ok());
  EXPECT_NEAR(reopened->objective, -10.0, 1e-6);

  inc.SetRowActive(cut, true);
  inc.SetRowActive(cut2, false);
  auto swapped = inc.Solve();
  ASSERT_TRUE(swapped.ok());
  EXPECT_NEAR(swapped->objective, -10.0, 1e-6);
}

TEST(IncrementalLpTest, DetectsInfeasibilityAfterTightening) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity, "x");
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kGe, 5);
  m.SetObjective(LinearExpr::Term(x, 1));
  IncrementalLp inc(m);
  auto ok = inc.Solve();
  ASSERT_TRUE(ok.ok());
  EXPECT_NEAR(ok->objective, 5.0, 1e-6);

  inc.SetVariableBounds(x, 0, 3);
  auto bad = inc.Solve();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInfeasible);

  inc.SetVariableBounds(x, 0, kInfinity);
  auto again = inc.Solve();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_NEAR(again->objective, 5.0, 1e-6);
}

TEST(IncrementalLpTest, BasisExportImportRoundTrips) {
  LpModel m;
  int x = m.AddVariable(0, 4, "x");
  int y = m.AddVariable(0, 4, "y");
  m.AddConstraint(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 2),
                  RelOp::kLe, 6);
  m.SetObjective(LinearExpr::Term(x, -3) + LinearExpr::Term(y, -2));
  IncrementalLp inc(m);
  auto sol = inc.Solve();
  ASSERT_TRUE(sol.ok());
  LpBasis basis = inc.ExportBasis();

  // Perturb the instance away from that basis, then restore and re-import:
  // the solve from the imported basis must match the original optimum.
  inc.SetVariableBounds(x, 0, 0);
  ASSERT_TRUE(inc.Solve().ok());
  inc.SetVariableBounds(x, 0, 4);
  auto back = inc.Solve(&basis);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->objective, sol->objective, 1e-6);
}

// The core randomized property: 100+ random models, each mutated through a
// random trajectory of bound flips / fixings / row additions /
// deactivations, warm-resolved at every step and checked against a cold
// SimplexSolver solve of the equivalent model.
class IncrementalEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalEquivalenceTest, WarmMatchesColdThroughMutations) {
  Rng rng(GetParam() * 7919 + 17);
  const int n = static_cast<int>(rng.NextInt(2, 8));
  const int base_rows = static_cast<int>(rng.NextInt(1, 10));

  Mirror mirror;
  std::vector<int> vars(n);
  for (int j = 0; j < n; ++j) {
    double lo = rng.NextUniform(-2, 1);
    double hi = lo + rng.NextUniform(0.1, 4);
    if (rng.NextDouble() < 0.15) lo = -kInfinity;  // one-sided
    vars[j] = mirror.base.AddVariable(lo, hi);
  }
  LinearExpr obj;
  for (int j = 0; j < n; ++j) {
    obj += LinearExpr::Term(vars[j], rng.NextGaussian());
  }
  const bool maximize = rng.NextDouble() < 0.5;
  mirror.base.SetObjective(obj, maximize ? ObjectiveSense::kMaximize
                                         : ObjectiveSense::kMinimize);

  auto random_row = [&]() {
    LpConstraint c;
    for (int j = 0; j < n; ++j) {
      if (rng.NextDouble() < 0.7) {
        c.expr += LinearExpr::Term(vars[j], rng.NextGaussian());
      }
    }
    double roll = rng.NextDouble();
    c.op = roll < 0.45 ? RelOp::kLe : roll < 0.9 ? RelOp::kGe : RelOp::kEq;
    c.rhs = rng.NextGaussian();
    return c;
  };
  for (int i = 0; i < base_rows; ++i) {
    mirror.rows.push_back(random_row());
    mirror.active.push_back(true);
  }

  LpModel seed = BuildCold(mirror);
  IncrementalLp inc(seed);
  ExpectAgreement(inc, mirror, "initial solve");

  const int steps = static_cast<int>(rng.NextInt(4, 10));
  for (int s = 0; s < steps; ++s) {
    double roll = rng.NextDouble();
    std::string context = "step " + std::to_string(s);
    if (roll < 0.40) {
      // Bound mutation: tighten, relax, or fix a variable.
      int j = static_cast<int>(rng.NextBelow(n));
      double kind = rng.NextDouble();
      double lo, hi;
      if (kind < 0.3) {
        lo = hi = rng.NextUniform(-1, 1);  // fix (a B&B branching decision)
      } else {
        lo = rng.NextUniform(-3, 1);
        hi = lo + rng.NextUniform(0.1, 5);
      }
      mirror.base.mutable_variable(vars[j]).lower = lo;
      mirror.base.mutable_variable(vars[j]).upper = hi;
      inc.SetVariableBounds(vars[j], lo, hi);
      context += " (bounds)";
    } else if (roll < 0.70) {
      // Lazy separation: a new row arrives.
      LpConstraint c = random_row();
      mirror.rows.push_back(c);
      mirror.active.push_back(true);
      inc.AddRow(c.expr, c.op, c.rhs);
      context += " (add row)";
    } else {
      // Toggle one row's activation (node-to-node delta undo/redo).
      size_t i = rng.NextBelow(mirror.rows.size());
      mirror.active[i] = !mirror.active[i];
      inc.SetRowActive(static_cast<int>(i), mirror.active[i]);
      context += " (toggle row)";
    }
    ExpectAgreement(inc, mirror, context);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 120));

}  // namespace
}  // namespace rankhow
