#include "lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "util/random.h"

namespace rankhow {
namespace {

// Classic textbook LP: max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18.
// Optimum (2, 6) with objective 36.
TEST(SimplexTest, TextbookMaximization) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity, "x");
  int y = m.AddVariable(0, kInfinity, "y");
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kLe, 4);
  m.AddConstraint(LinearExpr::Term(y, 2), RelOp::kLe, 12);
  m.AddConstraint(LinearExpr::Term(x, 3) + LinearExpr::Term(y, 2),
                  RelOp::kLe, 18);
  m.SetObjective(LinearExpr::Term(x, 3) + LinearExpr::Term(y, 5),
                 ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 36.0, 1e-6);
  EXPECT_NEAR(sol->values[x], 2.0, 1e-6);
  EXPECT_NEAR(sol->values[y], 6.0, 1e-6);
}

TEST(SimplexTest, MinimizationWithEqualityAndGe) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2  ->  x=8, y=2, obj=12.
  LpModel m;
  int x = m.AddVariable(3, kInfinity, "x");
  int y = m.AddVariable(2, kInfinity, "y");
  m.AddConstraint(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 1),
                  RelOp::kEq, 10);
  m.SetObjective(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 2));
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 12.0, 1e-6);
  EXPECT_NEAR(sol->values[x], 8.0, 1e-6);
  EXPECT_NEAR(sol->values[y], 2.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity);
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kGe, 5);
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kLe, 3);
  m.SetObjective(LinearExpr::Term(x, 1));
  auto sol = SimplexSolver().Solve(m);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity);
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kGe, 1);
  m.SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, HandlesUpperBoundedVariables) {
  // max x + y with x in [0, 2], y in [0, 3] -> 5.
  LpModel m;
  int x = m.AddVariable(0, 2);
  int y = m.AddVariable(0, 3);
  m.SetObjective(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 1),
                 ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 5.0, 1e-6);
}

TEST(SimplexTest, HandlesFreeVariables) {
  // min x s.t. x >= -7 as a row (variable itself unbounded) -> -7.
  LpModel m;
  int x = m.AddVariable(-kInfinity, kInfinity, "free");
  m.AddConstraint(LinearExpr::Term(x, 1), RelOp::kGe, -7);
  m.SetObjective(LinearExpr::Term(x, 1));
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -7.0, 1e-6);
  EXPECT_NEAR(sol->values[x], -7.0, 1e-6);
}

TEST(SimplexTest, HandlesNegativeUpperBoundOnlyVariable) {
  // Variable with (-inf, -2]: max x -> -2.
  LpModel m;
  int x = m.AddVariable(-kInfinity, -2);
  m.SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->values[x], -2.0, 1e-6);
}

TEST(SimplexTest, FixedVariable) {
  LpModel m;
  int x = m.AddVariable(2.5, 2.5, "fixed");
  int y = m.AddVariable(0, kInfinity);
  m.AddConstraint(LinearExpr::Term(x, 1) + LinearExpr::Term(y, 1),
                  RelOp::kLe, 10);
  m.SetObjective(LinearExpr::Term(y, 1), ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->values[x], 2.5, 1e-6);
  EXPECT_NEAR(sol->objective, 7.5, 1e-6);
}

TEST(SimplexTest, ExpressionConstantsFoldIntoRhs) {
  // (x + 5) <= 7  ->  x <= 2.
  LpModel m;
  int x = m.AddVariable(0, kInfinity);
  LinearExpr lhs = LinearExpr::Term(x, 1);
  lhs.AddConstant(5);
  m.AddConstraint(lhs, RelOp::kLe, 7);
  m.SetObjective(LinearExpr::Term(x, 1), ObjectiveSense::kMaximize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->values[x], 2.0, 1e-6);
}

TEST(SimplexTest, ObjectiveConstantIncluded) {
  LpModel m;
  int x = m.AddVariable(0, 1);
  LinearExpr obj = LinearExpr::Term(x, 1);
  obj.AddConstant(100);
  m.SetObjective(obj, ObjectiveSense::kMinimize);
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 100.0, 1e-6);
}

TEST(SimplexTest, EmptyModelWithConstantObjective) {
  LpModel m;
  m.SetObjective(LinearExpr(42.0));
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->objective, 42.0);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Beale-style degenerate LP (rhs of 0 on two rows invites cycling under
  // naive pricing). Optimum: x1 = x3 = 1, x2 = x4 = 0, objective -0.77
  // (second row gives x1 <= 24*x2 + x3; raising x2 never pays off at +150).
  LpModel m;
  int x1 = m.AddVariable(0, kInfinity);
  int x2 = m.AddVariable(0, kInfinity);
  int x3 = m.AddVariable(0, kInfinity);
  int x4 = m.AddVariable(0, kInfinity);
  LinearExpr r1 = LinearExpr::Term(x1, 0.25) - LinearExpr::Term(x2, 8) -
                  LinearExpr::Term(x3, 1) + LinearExpr::Term(x4, 9);
  LinearExpr r2 = LinearExpr::Term(x1, 0.5) - LinearExpr::Term(x2, 12) -
                  LinearExpr::Term(x3, 0.5) + LinearExpr::Term(x4, 3);
  LinearExpr r3 = LinearExpr::Term(x3, 1);
  m.AddConstraint(r1, RelOp::kLe, 0);
  m.AddConstraint(r2, RelOp::kLe, 0);
  m.AddConstraint(r3, RelOp::kLe, 1);
  m.SetObjective(LinearExpr::Term(x1, -0.75) + LinearExpr::Term(x2, 150) +
                 LinearExpr::Term(x3, -0.02) + LinearExpr::Term(x4, 6));
  auto sol = SimplexSolver().Solve(m);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -0.77, 1e-6);
  EXPECT_TRUE(m.IsFeasible(sol->values, 1e-6));
}

TEST(SimplexTest, FindFeasiblePointOnSimplexConstraints) {
  LpModel m;
  std::vector<int> w(4);
  LinearExpr sum;
  for (int i = 0; i < 4; ++i) {
    w[i] = m.AddVariable(0, 1);
    sum += LinearExpr::Term(w[i], 1);
  }
  m.AddConstraint(sum, RelOp::kEq, 1);
  m.AddConstraint(LinearExpr::Term(w[0], 1), RelOp::kGe, 0.3);
  auto pt = SimplexSolver().FindFeasiblePoint(m);
  ASSERT_TRUE(pt.ok());
  EXPECT_GE((*pt)[0], 0.3 - 1e-9);
  double total = 0;
  for (double v : *pt) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Property test: on random feasible bounded LPs, the solver returns a point
// that is (a) feasible and (b) at least as good as many random feasible
// points (checks optimality direction without a reference solver).
class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  Rng rng(GetParam());
  const int m_dim = static_cast<int>(rng.NextInt(2, 6));

  LpModel model;
  LinearExpr sum;
  std::vector<int> vars(m_dim);
  for (int i = 0; i < m_dim; ++i) {
    vars[i] = model.AddVariable(0, 1);
    sum += LinearExpr::Term(vars[i], 1);
  }
  model.AddConstraint(sum, RelOp::kEq, 1);  // simplex: always feasible
  // A few random halfspace cuts through the simplex centroid (keeps the
  // centroid feasible, so the LP stays feasible).
  std::vector<std::vector<double>> cuts;
  int n_cuts = static_cast<int>(rng.NextInt(0, 4));
  for (int c = 0; c < n_cuts; ++c) {
    std::vector<double> a(m_dim);
    LinearExpr e;
    double centroid_lhs = 0;
    for (int i = 0; i < m_dim; ++i) {
      a[i] = rng.NextGaussian();
      e += LinearExpr::Term(vars[i], a[i]);
      centroid_lhs += a[i] / m_dim;
    }
    model.AddConstraint(e, RelOp::kLe, centroid_lhs + 0.1);
    cuts.push_back(a);
  }
  std::vector<double> obj(m_dim);
  LinearExpr objective;
  for (int i = 0; i < m_dim; ++i) {
    obj[i] = rng.NextGaussian();
    objective += LinearExpr::Term(vars[i], obj[i]);
  }
  model.SetObjective(objective, ObjectiveSense::kMinimize);

  auto sol = SimplexSolver().Solve(model);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_TRUE(model.IsFeasible(sol->values, 1e-6));

  // No random feasible point may beat the reported optimum.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> w = rng.NextSimplexPoint(m_dim);
    bool ok = true;
    for (size_t c = 0; c < cuts.size(); ++c) {
      double lhs = 0;
      double centroid_lhs = 0;
      for (int i = 0; i < m_dim; ++i) {
        lhs += cuts[c][i] * w[i];
        centroid_lhs += cuts[c][i] / m_dim;
      }
      if (lhs > centroid_lhs + 0.1) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double value = 0;
    for (int i = 0; i < m_dim; ++i) value += obj[i] * w[i];
    EXPECT_GE(value, sol->objective - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace rankhow
