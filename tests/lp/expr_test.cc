#include "lp/expr.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(LinearExprTest, MergesDuplicateTerms) {
  LinearExpr e;
  e.AddTerm(2, 1.5).AddTerm(0, 1.0).AddTerm(2, 0.5);
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 1.0);
  EXPECT_EQ(e.terms()[1].first, 2);
  EXPECT_DOUBLE_EQ(e.terms()[1].second, 2.0);
}

TEST(LinearExprTest, DropsCancelledTerms) {
  LinearExpr e = LinearExpr::Term(1, 2.0) - LinearExpr::Term(1, 2.0);
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.CoeffOf(1), 0.0);
}

TEST(LinearExprTest, ArithmeticAndEvaluate) {
  LinearExpr a = LinearExpr::Term(0, 1.0) + LinearExpr::Term(1, 2.0);
  LinearExpr b = LinearExpr::Term(1, -1.0);
  b.AddConstant(3.0);
  LinearExpr c = a + b;  // x0 + x1 + 3
  std::vector<double> x = {2.0, 5.0};
  EXPECT_DOUBLE_EQ(c.Evaluate(x), 10.0);
  EXPECT_DOUBLE_EQ((c * 2.0).Evaluate(x), 20.0);
  EXPECT_DOUBLE_EQ((a - a).Evaluate(x), 0.0);
}

TEST(LinearExprTest, ScaleByZeroClearsTerms) {
  LinearExpr a = LinearExpr::Term(0, 1.0);
  a.AddConstant(4.0);
  LinearExpr z = a * 0.0;
  EXPECT_TRUE(z.empty());
  EXPECT_DOUBLE_EQ(z.constant(), 0.0);
}

TEST(LinearExprTest, ToStringReadable) {
  LinearExpr e = LinearExpr::Term(1, 0.3) - LinearExpr::Term(4, 0.7);
  std::string s = e.ToString();
  EXPECT_NE(s.find("0.3*x1"), std::string::npos);
  EXPECT_NE(s.find("- 0.7*x4"), std::string::npos);
}

TEST(RelOpTest, Names) {
  EXPECT_STREQ(RelOpToString(RelOp::kLe), "<=");
  EXPECT_STREQ(RelOpToString(RelOp::kGe), ">=");
  EXPECT_STREQ(RelOpToString(RelOp::kEq), "=");
}

}  // namespace
}  // namespace rankhow
