#include "app/cli_driver.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

CsvTable MiniCsv() {
  CsvTable csv;
  csv.header = {"name", "rank", "PTS", "REB", "TOV"};
  csv.rows = {
      {"Jokic", "1", "24.5", "11.8", "3.0"},
      {"Embiid", "2", "33.1", "10.2", "3.4"},
      {"Tatum", "3", "30.1", "8.8", "2.9"},
      {"Bench1", "-", "12.0", "5.0", "1.0"},
      {"Bench2", "na", "9.5", "3.2", "0.8"},
  };
  return csv;
}

TEST(AssembleCliProblemTest, RankColumnAndIdColumn) {
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  EXPECT_EQ(problem->data.num_tuples(), 5);
  EXPECT_EQ(problem->data.num_attributes(), 3);  // PTS, REB, TOV
  EXPECT_EQ(problem->given.k(), 3);
  EXPECT_EQ(problem->given.position(0), 1);
  EXPECT_EQ(problem->given.position(3), kUnranked);
  EXPECT_EQ(problem->labels[0], "Jokic");
  EXPECT_EQ(problem->labels[4], "Bench2");
}

TEST(AssembleCliProblemTest, ExplicitAttributeSubset) {
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  spec.attributes = {"PTS", "REB"};
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(problem->data.num_attributes(), 2);
  EXPECT_EQ(problem->data.attribute_name(0), "PTS");
  EXPECT_EQ(problem->data.attribute_name(1), "REB");
}

TEST(AssembleCliProblemTest, ImplicitRowOrderRanking) {
  CsvTable csv = MiniCsv();
  CliDataSpec spec;
  spec.id_column = "name";
  spec.attributes = {"PTS", "REB"};  // leave "rank" out of the attributes
  spec.k = 2;
  auto problem = AssembleCliProblem(csv, spec);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  EXPECT_EQ(problem->given.k(), 2);
  EXPECT_EQ(problem->given.position(0), 1);
  EXPECT_EQ(problem->given.position(1), 2);
  EXPECT_EQ(problem->given.position(2), kUnranked);
}

TEST(AssembleCliProblemTest, NegateUndesirableAttribute) {
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  spec.negate = {"TOV"};
  spec.normalize = false;
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok());
  auto tov = problem->data.AttributeIndex("TOV");
  ASSERT_TRUE(tov.ok());
  EXPECT_DOUBLE_EQ(problem->data.value(0, *tov), -3.0);
}

TEST(AssembleCliProblemTest, NormalizationRescalesToUnitRange) {
  CliDataSpec spec;
  spec.rank_column = "rank";
  spec.id_column = "name";
  spec.normalize = true;
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok());
  auto pts = problem->data.AttributeIndex("PTS");
  ASSERT_TRUE(pts.ok());
  double lo = 1e9, hi = -1e9;
  for (int t = 0; t < problem->data.num_tuples(); ++t) {
    lo = std::min(lo, problem->data.value(t, *pts));
    hi = std::max(hi, problem->data.value(t, *pts));
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(AssembleCliProblemTest, DropDuplicatesKeepsRanksAligned) {
  CsvTable csv;
  csv.header = {"name", "rank", "A", "B"};
  csv.rows = {
      {"x", "1", "5", "2"},
      {"y", "2", "3", "1"},
      {"b1", "-", "1", "0"},
      {"b2", "na", "1", "0"},  // duplicate of b1 on all attributes
  };
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  spec.drop_duplicates = true;
  auto problem = AssembleCliProblem(csv, spec);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  EXPECT_EQ(problem->data.num_tuples(), 3);
  EXPECT_EQ(problem->labels.size(), 3u);
  EXPECT_EQ(problem->labels[2], "b1");
  EXPECT_EQ(problem->given.position(0), 1);
  EXPECT_EQ(problem->given.position(1), 2);
  EXPECT_EQ(problem->given.position(2), kUnranked);
}

TEST(AssembleCliProblemTest, DropDuplicatesOfRankedTupleCanBreakRanking) {
  // Removing a *ranked* duplicate leaves its position unfilled; with only
  // two tuples left, position 3 is unachievable and assembly must say so
  // rather than hand the solver an impossible instance.
  CsvTable csv;
  csv.header = {"name", "rank", "A"};
  csv.rows = {
      {"x", "1", "5"},
      {"x_clone", "2", "5"},
      {"y", "3", "1"},
  };
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  spec.drop_duplicates = true;
  spec.offset_ranking = true;
  auto problem = AssembleCliProblem(csv, spec);
  ASSERT_FALSE(problem.ok());
  EXPECT_EQ(problem.status().code(), StatusCode::kInvalidArgument);
}

TEST(AssembleCliProblemTest, ErrorOnUnknownColumns) {
  CliDataSpec spec;
  spec.rank_column = "nope";
  EXPECT_FALSE(AssembleCliProblem(MiniCsv(), spec).ok());
  spec = CliDataSpec();
  spec.id_column = "nope";
  EXPECT_FALSE(AssembleCliProblem(MiniCsv(), spec).ok());
  spec = CliDataSpec();
  spec.attributes = {"nope"};
  EXPECT_FALSE(AssembleCliProblem(MiniCsv(), spec).ok());
}

TEST(AssembleCliProblemTest, ErrorOnNonNumericCell) {
  CsvTable csv = MiniCsv();
  csv.rows[1][2] = "abc";
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  auto problem = AssembleCliProblem(csv, spec);
  ASSERT_FALSE(problem.ok());
  EXPECT_EQ(problem.status().code(), StatusCode::kInvalidArgument);
}

TEST(AssembleCliProblemTest, ErrorOnBadRankValue) {
  CsvTable csv = MiniCsv();
  csv.rows[0][1] = "-3";
  CliDataSpec spec;
  spec.rank_column = "rank";
  EXPECT_FALSE(AssembleCliProblem(csv, spec).ok());
}

TEST(AssembleCliProblemTest, ErrorOnInvalidRankingUnderStrictValidation) {
  CsvTable csv = MiniCsv();
  csv.rows[0][1] = "2";  // nobody at position 1 now
  csv.rows[1][1] = "3";
  csv.rows[2][1] = "4";
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  EXPECT_FALSE(AssembleCliProblem(csv, spec).ok());
  spec.offset_ranking = true;  // ... but fine as an offset ranking
  auto problem = AssembleCliProblem(csv, spec);
  EXPECT_TRUE(problem.ok()) << problem.status().ToString();
}

TEST(AssembleCliProblemTest, ErrorOnBadK) {
  CliDataSpec spec;
  spec.attributes = {"PTS"};
  spec.k = 99;
  EXPECT_FALSE(AssembleCliProblem(MiniCsv(), spec).ok());
  spec.k = 0;
  EXPECT_FALSE(AssembleCliProblem(MiniCsv(), spec).ok());
}

TEST(AssembleCliProblemTest, ErrorOnEmptyCsv) {
  CsvTable csv;
  csv.header = {"A"};
  EXPECT_FALSE(AssembleCliProblem(csv, CliDataSpec()).ok());
}

TEST(ApplyWeightBoundsTest, ParsesMultipleEntries) {
  Dataset d({"PTS", "REB", "AST"}, 1);
  WeightConstraintSet constraints;
  Status st =
      ApplyWeightBounds(d, "PTS:0.1, AST:0.05", true, &constraints);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(constraints.size(), 2u);
  EXPECT_TRUE(constraints.IsSatisfied({0.2, 0.7, 0.1}));
  EXPECT_FALSE(constraints.IsSatisfied({0.05, 0.85, 0.1}));
}

TEST(ApplyWeightBoundsTest, MaxBound) {
  Dataset d({"PTS", "REB"}, 1);
  WeightConstraintSet constraints;
  ASSERT_TRUE(ApplyWeightBounds(d, "REB:0.4", false, &constraints).ok());
  EXPECT_TRUE(constraints.IsSatisfied({0.7, 0.3}));
  EXPECT_FALSE(constraints.IsSatisfied({0.4, 0.6}));
}

TEST(ApplyWeightBoundsTest, EmptySpecIsNoop) {
  Dataset d({"A"}, 1);
  WeightConstraintSet constraints;
  ASSERT_TRUE(ApplyWeightBounds(d, "  ", true, &constraints).ok());
  EXPECT_TRUE(constraints.empty());
}

TEST(ApplyWeightBoundsTest, Errors) {
  Dataset d({"A", "B"}, 1);
  WeightConstraintSet constraints;
  EXPECT_FALSE(ApplyWeightBounds(d, "A", true, &constraints).ok());
  EXPECT_FALSE(ApplyWeightBounds(d, "C:0.1", true, &constraints).ok());
  EXPECT_FALSE(ApplyWeightBounds(d, "A:1.5", true, &constraints).ok());
  EXPECT_FALSE(ApplyWeightBounds(d, "A:xyz", true, &constraints).ok());
}

TEST(ApplyOrderConstraintsTest, ResolvesLabels) {
  std::vector<std::string> labels = {"Jokic", "Tatum", "Embiid"};
  std::vector<PairwiseOrderConstraint> out;
  Status st =
      ApplyOrderConstraints(labels, "Jokic>Tatum, Embiid>Jokic", &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].above, 0);
  EXPECT_EQ(out[0].below, 1);
  EXPECT_EQ(out[1].above, 2);
  EXPECT_EQ(out[1].below, 0);
}

TEST(ApplyOrderConstraintsTest, Errors) {
  std::vector<std::string> labels = {"a", "b"};
  std::vector<PairwiseOrderConstraint> out;
  EXPECT_FALSE(ApplyOrderConstraints(labels, "a>c", &out).ok());
  EXPECT_FALSE(ApplyOrderConstraints(labels, "a", &out).ok());
  EXPECT_FALSE(ApplyOrderConstraints(labels, "a>a", &out).ok());
  EXPECT_TRUE(ApplyOrderConstraints(labels, "", &out).ok());
}

TEST(ParseStrategyTest, AllSpellings) {
  EXPECT_EQ(*ParseStrategy("auto"), SolveStrategy::kAuto);
  EXPECT_EQ(*ParseStrategy("MILP"), SolveStrategy::kIndicatorMilp);
  EXPECT_EQ(*ParseStrategy("indicator-milp"), SolveStrategy::kIndicatorMilp);
  EXPECT_EQ(*ParseStrategy("spatial"), SolveStrategy::kSpatial);
  EXPECT_EQ(*ParseStrategy("sat"), SolveStrategy::kSatBinarySearch);
  EXPECT_EQ(*ParseStrategy(" Sat-Binary-Search "),
            SolveStrategy::kSatBinarySearch);
  EXPECT_FALSE(ParseStrategy("gurobi").ok());
}

TEST(ParseObjectiveSpecTest, AllKinds) {
  auto pos = ParseObjectiveSpec("position", 5);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->kind, ObjectiveKind::kPositionError);
  auto heavy = ParseObjectiveSpec("topheavy", 5);
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy->kind, ObjectiveKind::kWeightedPositionError);
  EXPECT_EQ(heavy->PenaltyAt(1), 5);
  EXPECT_EQ(heavy->PenaltyAt(5), 1);
  auto inv = ParseObjectiveSpec("inversions", 5);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->kind, ObjectiveKind::kInversions);
  EXPECT_FALSE(ParseObjectiveSpec("ndcg", 5).ok());
}

TEST(StrictFlagValidationTest, PositiveCountAndTimeLimit) {
  EXPECT_EQ(*ParsePositiveCount("seeds", "8"), 8);
  EXPECT_EQ(*ParsePositiveCount("seeds", " 1 "), 1);
  EXPECT_FALSE(ParsePositiveCount("seeds", "0").ok());
  EXPECT_FALSE(ParsePositiveCount("seeds", "-3").ok());
  EXPECT_FALSE(ParsePositiveCount("seeds", "banana").ok());
  EXPECT_FALSE(ParsePositiveCount("seeds", "3.5").ok());
  EXPECT_FALSE(ParsePositiveCount("seeds", "").ok());

  EXPECT_EQ(*ParseTimeLimit("30"), 30.0);
  EXPECT_EQ(*ParseTimeLimit("0"), 0.0);
  EXPECT_EQ(*ParseTimeLimit("1.5"), 1.5);
  EXPECT_FALSE(ParseTimeLimit("-5").ok());
  EXPECT_FALSE(ParseTimeLimit("inf").ok());
  EXPECT_FALSE(ParseTimeLimit("abc").ok());
  EXPECT_FALSE(ParseTimeLimit("").ok());
}

TEST(SessionScriptTest, ParsesEveryCommandKind) {
  auto script = ParseSessionScript(
      "# comment\n"
      "\n"
      "solve\n"
      "min-weight PTS 0.1   # trailing comment\n"
      "max-weight REB 0.4\n"
      "drop min_PTS\n"
      "order Jokic>Tatum\n"
      "eps 5e-5\n"
      "eps1 1e-4\n"
      "eps2 0\n"
      "objective topheavy\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 9u);
  EXPECT_EQ((*script)[0].kind, SessionCommand::Kind::kSolve);
  EXPECT_EQ((*script)[0].line, 3);
  EXPECT_EQ((*script)[1].kind, SessionCommand::Kind::kMinWeight);
  EXPECT_EQ((*script)[1].arg, "PTS");
  EXPECT_DOUBLE_EQ((*script)[1].value, 0.1);
  EXPECT_EQ((*script)[2].kind, SessionCommand::Kind::kMaxWeight);
  EXPECT_EQ((*script)[3].kind, SessionCommand::Kind::kDrop);
  EXPECT_EQ((*script)[3].arg, "min_PTS");
  EXPECT_EQ((*script)[4].kind, SessionCommand::Kind::kOrder);
  EXPECT_EQ((*script)[4].arg, "Jokic>Tatum");
  EXPECT_EQ((*script)[5].kind, SessionCommand::Kind::kEps);
  EXPECT_EQ((*script)[6].kind, SessionCommand::Kind::kEps1);
  EXPECT_EQ((*script)[7].kind, SessionCommand::Kind::kEps2);
  EXPECT_EQ((*script)[8].kind, SessionCommand::Kind::kObjective);
  EXPECT_EQ((*script)[8].arg, "topheavy");
}

TEST(SessionScriptTest, RejectsBadLinesWithLineNumbers) {
  auto unknown = ParseSessionScript("solve\nfrobnicate X\n");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseSessionScript("min-weight PTS\n").ok());       // arity
  EXPECT_FALSE(ParseSessionScript("min-weight PTS 1.5\n").ok());   // range
  EXPECT_FALSE(ParseSessionScript("order Jokic\n").ok());          // no '>'
  EXPECT_FALSE(ParseSessionScript("eps1 huge\n").ok());            // number
  EXPECT_FALSE(ParseSessionScript("solve now\n").ok());            // arity
}

TEST(SessionScriptTest, RunsAgainstASession) {
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok());

  RankHowOptions options;
  options.eps.tie_eps = 5e-5;
  options.eps.eps1 = 1e-4;
  options.eps.eps2 = 0.0;
  SolveSession session(problem->data, problem->given, options);

  auto script = ParseSessionScript(
      "solve\n"
      "min-weight PTS 0.2\n"
      "order Jokic>Tatum\n"
      "drop min_PTS\n");
  ASSERT_TRUE(script.ok());
  auto outcomes = RunSessionScript(&session, *script, problem->labels);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 4u);
  for (const SessionStepOutcome& step : *outcomes) {
    EXPECT_TRUE(step.result.proven_optimal);
  }
  EXPECT_EQ(session.stats().solves, 4);
  EXPECT_EQ(session.problem().constraints.size(), 0u);  // dropped again
  EXPECT_EQ(session.problem().order_constraints.size(), 1u);

  // Unknown labels/constraints surface the script line.
  auto bad = ParseSessionScript("drop nothing_here\n");
  ASSERT_TRUE(bad.ok());
  auto fail = RunSessionScript(&session, *bad, problem->labels);
  EXPECT_FALSE(fail.ok());
  EXPECT_NE(fail.status().message().find("line 1"), std::string::npos);
}

// End-to-end: assemble from CSV and solve, mirroring the tool's main path.
TEST(CliDriverIntegrationTest, AssembleAndSolve) {
  CliDataSpec spec;
  spec.id_column = "name";
  spec.rank_column = "rank";
  auto problem = AssembleCliProblem(MiniCsv(), spec);
  ASSERT_TRUE(problem.ok());
  RankHowOptions options;
  options.eps.tie_eps = 5e-5;
  options.eps.eps1 = 1e-4;
  options.eps.eps2 = 0.0;
  RankHow solver(problem->data, problem->given, options);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_GE(result->error, 0);
}

}  // namespace
}  // namespace rankhow
