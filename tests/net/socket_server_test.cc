// Reactor transport suite (tsan/net-labelled; see CMakeLists.txt):
//
//  * ParseListenSpec unit coverage (unix:/tcp:/bare forms, bad ports).
//  * The acceptance walk over real loopback TCP: two concurrent
//    connections open sessions against *different dataset ids* on one
//    router-backed server and replay scripted edits; every proven result
//    must equal a serial single-session replay of the same script.
//  * A Unix-domain round-trip of the complete documented verb set — every
//    verb in docs/PROTOCOL.md (including metrics, deadline, and frame)
//    answers the documented ok/err shape over a real socket.
//  * Binary-framing equivalence: the same script over a `frame binary`
//    connection produces results byte-identical to serial replay (framing
//    changes the envelope, never the grammar).
//  * Wire + frame fuzz over real sockets: truncated text lines, truncated
//    binary length prefixes, text bytes on a binary connection (the
//    mode-switch-mid-stream corruption), and connections dropped mid-solve
//    must each abort-close exactly one connection, leaving sibling
//    sessions intact and freeing the victim's client names.
//  * Backpressure chaos: a deliberately stalled reader (tiny SO_SNDBUF +
//    tiny --max-conn-buffer) is abort-closed when its write queue
//    overflows, without delaying a sibling's solve.
//  * A many-idle-connections smoke proving one process multiplexes
//    hundreds of parked connections over a fixed thread set.
//
// Tests skip cleanly (GTEST_SKIP) where the socket family is unavailable.

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "core/solve_session.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/socket_server.h"
#include "server/registry_router.h"
#include "server/wire.h"
#include "tests/support/protocol_conformance.h"
#include "util/histogram.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

/// A blocking test client over one socket speaking both framings, with a
/// receive timeout so a server bug can never hang the suite.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept { *this = std::move(other); }
  WireClient& operator=(WireClient&& other) noexcept {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    return *this;
  }

  /// rcvbuf > 0 pins SO_RCVBUF before connect (disables autotuning — the
  /// backpressure test needs a client that genuinely cannot absorb data).
  bool ConnectTcp(const std::string& host, int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf));
    }
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      return false;
    }
    return SetTimeout();
  }

  bool ConnectUnix(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sun.sun_path)) return false;
    std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      return false;
    }
    return SetTimeout();
  }

  bool Send(const std::string& text) {
    const char* p = text.data();
    size_t left = text.size();
    while (left > 0) {
      ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  }

  /// One binary frame: 4-byte big-endian length + payload.
  bool SendFrame(const std::string& payload) {
    std::string framed;
    EncodeFrame(FrameMode::kBinary, payload, &framed);
    return Send(framed);
  }

  /// One response line (without the newline); nullopt on EOF/timeout.
  std::optional<std::string> ReadLine() {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!Fill()) return std::nullopt;
    }
  }

  /// One binary frame's payload; nullopt on EOF/timeout/oversized length.
  std::optional<std::string> ReadFrame() {
    while (buffer_.size() < 4) {
      if (!Fill()) return std::nullopt;
    }
    const auto* b = reinterpret_cast<const unsigned char*>(buffer_.data());
    const size_t len = (static_cast<size_t>(b[0]) << 24) |
                       (static_cast<size_t>(b[1]) << 16) |
                       (static_cast<size_t>(b[2]) << 8) |
                       static_cast<size_t>(b[3]);
    if (len > kMaxFrameBytes) return std::nullopt;
    while (buffer_.size() < 4 + len) {
      if (!Fill()) return std::nullopt;
    }
    std::string payload = buffer_.substr(4, len);
    buffer_.erase(0, 4 + len);
    return payload;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  bool connected() const { return fd_ >= 0; }

 private:
  bool Fill() {
    char chunk[1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  bool SetTimeout() {
    timeval tv;
    tv.tv_sec = 60;  // generous: solves on a loaded 1-core box are slow
    tv.tv_usec = 0;
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// A two-dataset router-backed reactor stack for the transport tests.
/// Member order is destruction order in reverse: metrics outlives the
/// router, which outlives the server — teardown callbacks running inside
/// ReactorServer::Stop touch both.
struct ServerFixture {
  std::vector<Dataset> datasets;
  std::vector<Ranking> rankings;
  ServerMetrics metrics;
  std::unique_ptr<RegistryRouter> router;
  std::unique_ptr<ReactorServer> server;

  explicit ServerFixture(uint64_t seed = 301, int n = 10, int k = 4,
                         ReactorOptions reactor_options = ReactorOptions()) {
    Rng rng(seed);
    for (int i = 0; i < 2; ++i) {
      datasets.push_back(RandomDataset(rng, n, 3));
      rankings.push_back(RandomRanking(rng, n, k));
    }
    RouterOptions options;
    options.server.solver = SpatialOptions();
    options.server.num_workers = 2;
    router = std::make_unique<RegistryRouter>(options);
    for (int i = 0; i < 2; ++i) {
      const Dataset& data = datasets[i];
      const Ranking& given = rankings[i];
      EXPECT_TRUE(router
                      ->RegisterDataset(
                          "d" + std::to_string(i),
                          [data, given]()
                              -> Result<RegistryRouter::DatasetBundle> {
                            RegistryRouter::DatasetBundle bundle;
                            bundle.data = SharedDataset(Dataset(data));
                            bundle.given = Ranking(given);
                            bundle.labels =
                                TupleLabels(data.num_tuples());
                            return bundle;
                          })
                      .ok());
    }
    ServeStreamOptions serve_options;
    serve_options.connection_scoped_clients = true;
    serve_options.metrics = &metrics;
    reactor_options.metrics = &metrics;
    if (reactor_options.num_loops == 0) {
      // Two loops even on a 1-core CI box, so cross-loop paths (the
      // round-robin accept handoff, per-loop deadline sweeps) get
      // exercised everywhere.
      reactor_options.num_loops = 2;
    }
    server = std::make_unique<ReactorServer>(
        MakeWireReactorCallbacks(router.get(), serve_options),
        reactor_options);
  }

  ~ServerFixture() {
    // Stop the transport before the router: connection teardowns hold raw
    // router pointers.
    if (server != nullptr) server->Stop();
  }

  Status StartTcp(int* port) {
    ListenAddress address;
    address.kind = ListenAddress::Kind::kTcp;
    address.host = "127.0.0.1";
    address.port = 0;
    Status started = server->Start(address);
    if (started.ok()) *port = server->bound().port;
    return started;
  }
};

/// Polls a predicate over fresh `stats` connections until it holds or the
/// deadline lapses — connection teardown runs on the reactor's ops thread,
/// so gauges update asynchronously to client-side observations.
bool PollStats(int port,
               const std::function<bool(const std::string&)>& pred,
               int attempts = 200) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    WireClient probe;
    if (!probe.ConnectTcp("127.0.0.1", port)) return false;
    if (!probe.Send("stats\nquit\n")) return false;
    auto line = probe.ReadLine();
    if (line.has_value() && pred(*line)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST(ParseListenSpecTest, AcceptsTheDocumentedForms) {
  auto unix_explicit = ParseListenSpec("unix:/tmp/rankhow.sock");
  ASSERT_TRUE(unix_explicit.ok());
  EXPECT_EQ(unix_explicit->kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(unix_explicit->path, "/tmp/rankhow.sock");

  auto unix_bare = ParseListenSpec("/run/rankhow/api.sock");
  ASSERT_TRUE(unix_bare.ok());
  EXPECT_EQ(unix_bare->kind, ListenAddress::Kind::kUnix);

  auto tcp = ParseListenSpec("127.0.0.1:8731");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8731);

  auto ephemeral = ParseListenSpec("tcp:localhost:0");
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral->port, 0);

  for (const char* bad :
       {"", "unix:", "8731", "host:port", "1.2.3.4:99999", "1.2.3.4:-1"}) {
    EXPECT_FALSE(ParseListenSpec(bad).ok()) << "accepted: " << bad;
  }
  EXPECT_EQ(ListenSpecString(*tcp), "127.0.0.1:8731");
  EXPECT_EQ(ListenSpecString(*unix_explicit), "unix:/tmp/rankhow.sock");
}

TEST(ReactorServerTest, TwoTcpClientsOnDifferentDatasetsMatchSerialReplay) {
  // The PR 5 acceptance walk, now over the reactor: >= 2 concurrent TCP
  // clients, different dataset ids, scripted edits, results identical to
  // serial replay.
  ServerFixture fixture;
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  // Both connections open and stream their whole script before either
  // reads a response — the commands of the two clients are genuinely in
  // flight together on the strand pool.
  const std::vector<std::string> script = {
      "solve", "min-weight A0 0.05", "max-weight A1 0.6", "drop min_A0"};
  WireClient clients[2];
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(clients[c].ConnectTcp("127.0.0.1", port));
    std::string payload =
        "open c" + std::to_string(c) + " d" + std::to_string(c) + "\n";
    for (const std::string& line : script) {
      payload += "c" + std::to_string(c) + " " + line + "\n";
    }
    ASSERT_TRUE(clients[c].Send(payload));
  }

  for (int c = 0; c < 2; ++c) {
    const std::string name = "c" + std::to_string(c);
    auto ack = clients[c].ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open " + name + " d" + std::to_string(c));

    // Serial ground truth: the same script through ExecuteSessionCommand
    // on a private session over the same dataset.
    SolveSession replay(Dataset(fixture.datasets[c]),
                        Ranking(fixture.rankings[c]), SpatialOptions());
    auto parsed = ParseSessionScript(
        script[0] + "\n" + script[1] + "\n" + script[2] + "\n" + script[3]);
    ASSERT_TRUE(parsed.ok());
    std::vector<std::string> labels =
        TupleLabels(fixture.datasets[c].num_tuples());
    for (size_t s = 0; s < parsed->size(); ++s) {
      auto want = ExecuteSessionCommand(&replay, (*parsed)[s], labels);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(want->result.proven_optimal);
      auto line = clients[c].ReadLine();
      ASSERT_TRUE(line.has_value())
          << name << " step " << s << ": no response";
      // "ok cN line=L error=E bound=B proven=yes seconds=..."
      const std::string expect_prefix =
          "ok " + name + " line=" + std::to_string(s + 2) +
          " error=" + std::to_string(want->result.error) + " bound=";
      EXPECT_EQ(line->rfind(expect_prefix, 0), 0u)
          << name << " step " << s << ": got '" << *line << "', want prefix '"
          << expect_prefix << "' (network result differs from serial replay)";
      EXPECT_NE(line->find("proven=yes"), std::string::npos) << *line;
    }
    ASSERT_TRUE(clients[c].Send("quit\n"));
    auto quit = clients[c].ReadLine();
    ASSERT_TRUE(quit.has_value());
    EXPECT_EQ(*quit, "ok quit");
  }
  EXPECT_EQ(fixture.server->connections_accepted(), 2);
  fixture.server->Stop();
}

TEST(ReactorServerTest, EveryDocumentedVerbRoundTripsOverAUnixSocket) {
  // docs/PROTOCOL.md's round-trip guarantee: every verb it documents is
  // exercised over a real socket and answers the documented shape. The
  // walk itself lives in tests/support/protocol_conformance.cc so the
  // coordinator suite can replay it verbatim through rankhow_coord.
  ServerFixture fixture(/*seed=*/302, /*n=*/8, /*k=*/3);
  ListenAddress address;
  address.kind = ListenAddress::Kind::kUnix;
  address.path = testing::TempDir() + "rankhow_verbs.sock";
  Status started = fixture.server->Start(address);
  if (!started.ok()) {
    GTEST_SKIP() << "unix sockets unavailable: " << started.ToString();
  }
  conformance::RunProtocolVerbWalk(address);
  fixture.server->Stop();
}

TEST(ReactorServerTest, BinaryFramingMatchesSerialReplay) {
  // The framing-equivalence acceptance walk: a connection negotiates
  // `frame binary` (the ack arrives in the old text framing), then runs
  // the same script as the text acceptance test entirely in binary
  // frames. Every result must equal serial replay — the envelope changed,
  // the session semantics must not.
  ServerFixture fixture;
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  WireClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(client.Send("frame binary\n"));
  auto ack = client.ReadLine();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "ok frame binary");

  ASSERT_TRUE(client.SendFrame("open c0 d0"));
  auto opened = client.ReadFrame();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "ok open c0 d0");

  const std::vector<std::string> script = {
      "solve", "min-weight A0 0.05", "max-weight A1 0.6", "drop min_A0"};
  SolveSession replay(Dataset(fixture.datasets[0]),
                      Ranking(fixture.rankings[0]), SpatialOptions());
  auto parsed = ParseSessionScript(
      script[0] + "\n" + script[1] + "\n" + script[2] + "\n" + script[3]);
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> labels =
      TupleLabels(fixture.datasets[0].num_tuples());
  for (size_t s = 0; s < parsed->size(); ++s) {
    ASSERT_TRUE(client.SendFrame("c0 " + script[s]));
    auto want = ExecuteSessionCommand(&replay, (*parsed)[s], labels);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value()) << "step " << s << ": no frame";
    const std::string expect_prefix =
        "ok c0 line=" + std::to_string(s + 3) +
        " error=" + std::to_string(want->result.error) + " bound=";
    EXPECT_EQ(frame->rfind(expect_prefix, 0), 0u)
        << "step " << s << ": got '" << *frame << "', want prefix '"
        << expect_prefix << "' (binary framing diverged from serial replay)";
  }

  // The frames_binary gauge counted each decoded request frame.
  ASSERT_TRUE(client.SendFrame("stats"));
  auto stats = client.ReadFrame();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find(" frames_binary="), std::string::npos) << *stats;
  EXPECT_EQ(stats->find(" frames_binary=0 "), std::string::npos) << *stats;

  ASSERT_TRUE(client.SendFrame("quit"));
  auto quit = client.ReadFrame();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  fixture.server->Stop();
}

TEST(ReactorServerTest, TruncatedLinesAndDropsLeaveSiblingsIntact) {
  ServerFixture fixture(/*seed=*/303, /*n=*/12, /*k=*/5);
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  // The long-lived sibling whose session must survive everything below.
  WireClient sibling;
  ASSERT_TRUE(sibling.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(sibling.Send("open keeper d0\nkeeper min-weight A0 0.05\n"));
  auto opened = sibling.ReadLine();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "ok open keeper d0");
  auto first = sibling.ReadLine();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->rfind("ok keeper line=2 error=", 0), 0u) << *first;
  const std::string baseline = *first;

  // Fuzz 1: a connection that dies mid-verb — no trailing newline. The
  // reactor sees EOF with a partial line buffered and winds the
  // connection down without touching anyone else.
  {
    WireClient trunc;
    ASSERT_TRUE(trunc.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(trunc.Send("open doomed d0\n"));
    auto ack = trunc.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open doomed d0");
    ASSERT_TRUE(trunc.Send("doomed min-wei"));  // mid-verb, then gone
    trunc.Close();
  }

  // Fuzz 2: a connection dropped with solves still queued mid-flight.
  {
    WireClient dropper;
    ASSERT_TRUE(dropper.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(dropper.Send("open burst d1\n"));
    auto ack = dropper.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open burst d1");
    // Queue several solves and vanish without reading a single response.
    ASSERT_TRUE(
        dropper.Send("burst solve\nburst solve\nburst solve\nburst solve\n"));
    dropper.Close();
  }

  // Fuzz 3: binary-mode corruption. A connection negotiates binary and
  // then sends plain text — the decoder reads "open" as a ~1.9 GB length
  // prefix, a fatal framing error. The server's last word is a framed
  // `err`, then an abort-close; nobody else notices.
  {
    WireClient corrupt;
    ASSERT_TRUE(corrupt.ConnectTcp("127.0.0.1", port));
    // One write carrying the negotiation AND stale text after it: the
    // worst case, because the text bytes are already buffered when the
    // mode switches.
    ASSERT_TRUE(corrupt.Send("frame binary\nopen late d0\n"));
    auto ack = corrupt.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok frame binary");
    auto last_word = corrupt.ReadFrame();
    if (last_word.has_value()) {  // best-effort: may lose the race to close
      EXPECT_EQ(last_word->rfind("err - ", 0), 0u) << *last_word;
    }
    EXPECT_FALSE(corrupt.ReadFrame().has_value()) << "connection not closed";
    corrupt.Close();
  }

  // Fuzz 4: a binary frame truncated mid-length-prefix, then EOF.
  {
    WireClient half;
    ASSERT_TRUE(half.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(half.Send("frame binary\n"));
    auto ack = half.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok frame binary");
    ASSERT_TRUE(half.Send(std::string("\x00\x00", 2)));  // 2 of 4 bytes
    half.Close();
  }

  // Fuzz 5: an oversized binary length prefix (0x7fffffff >> 1 MiB cap).
  {
    WireClient huge;
    ASSERT_TRUE(huge.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(huge.Send("frame binary\n"));
    auto ack = huge.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok frame binary");
    ASSERT_TRUE(huge.Send(std::string("\x7f\xff\xff\xff", 4)));
    auto last_word = huge.ReadFrame();
    if (last_word.has_value()) {
      EXPECT_EQ(last_word->rfind("err - ", 0), 0u) << *last_word;
    }
    EXPECT_FALSE(huge.ReadFrame().has_value()) << "connection not closed";
    huge.Close();
  }

  // The sibling's session state survived every incident bit-identically:
  // the same re-solve proves the same optimum.
  ASSERT_TRUE(sibling.Send("keeper solve\n"));
  auto again = sibling.ReadLine();
  ASSERT_TRUE(again.has_value());
  // Identical problem, identical session → identical error (the line
  // number differs, so compare the tail from "error=").
  const std::string want_tail = baseline.substr(baseline.find("error="));
  EXPECT_NE(again->find(want_tail.substr(0, want_tail.find(" seconds="))),
            std::string::npos)
      << "sibling state corrupted: baseline '" << baseline << "' vs '"
      << *again << "'";

  // The dropped connections' client names were abort-closed and are free
  // again (EOF without quit closes owned clients). Teardown runs on the
  // ops thread, so retry briefly until it lands.
  WireClient reuser;
  ASSERT_TRUE(reuser.ConnectTcp("127.0.0.1", port));
  auto open_with_retry = [&reuser](const std::string& name,
                                   const std::string& dataset) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (!reuser.Send("open " + name + " " + dataset + "\n")) return false;
      auto line = reuser.ReadLine();
      if (!line.has_value()) return false;
      if (line->rfind("ok open " + name, 0) == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  };
  EXPECT_TRUE(open_with_retry("doomed", "d0"))
      << "truncated connection's client never freed — abort-close leaked";
  EXPECT_TRUE(open_with_retry("burst", "d1"))
      << "dropped connection's client never freed — abort-close leaked";
  ASSERT_TRUE(reuser.Send("quit\n"));
  auto reuser_quit = reuser.ReadLine();
  ASSERT_TRUE(reuser_quit.has_value());
  EXPECT_EQ(*reuser_quit, "ok quit");

  ASSERT_TRUE(sibling.Send("quit\n"));
  auto quit = sibling.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");

  // The framing victims were counted: protocol_errors >= 2 (fuzz 3 and
  // 5), and the EOF-abort gauge caught the vanished peers.
  EXPECT_TRUE(PollStats(port, [](const std::string& line) {
    return line.find(" aborted_eof=") != std::string::npos &&
           line.find(" aborted_eof=0") == std::string::npos;
  })) << "EOF abort-closes never reached the stats gauges";
  fixture.server->Stop();
}

TEST(ReactorServerTest, StalledReaderBackpressureAbortsOnlyThatConnection) {
  // The backpressure chaos walk: a peer that stops reading while the
  // server keeps answering must be abort-closed when its write queue hits
  // --max-conn-buffer, without delaying anyone else's solve. Tiny
  // SO_SNDBUF (server) + pinned tiny SO_RCVBUF (client) make the kernel
  // absorb almost nothing, so the queue fills fast.
  ReactorOptions reactor_options;
  reactor_options.sndbuf_bytes = 4096;
  reactor_options.max_conn_buffer = 16 * 1024;
  ServerFixture fixture(/*seed=*/304, /*n=*/10, /*k=*/4, reactor_options);
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  WireClient sibling;
  ASSERT_TRUE(sibling.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(sibling.Send("open keeper d0\n"));
  auto opened = sibling.ReadLine();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "ok open keeper d0");

  // The staller: floods stats requests (each answer is a few hundred
  // bytes) and never reads a byte back.
  WireClient staller;
  ASSERT_TRUE(staller.ConnectTcp("127.0.0.1", port, /*rcvbuf=*/4096));
  std::string flood;
  for (int i = 0; i < 2000; ++i) flood += "stats\n";
  // The send may fail partway once the server abort-closes — that IS the
  // expected outcome, so the return value is deliberately ignored.
  (void)staller.Send(flood);

  // While the staller is being strangled, the sibling's solve completes
  // normally (the acceptance criterion: one stalled reader costs one
  // connection, never a strand or an event loop).
  ASSERT_TRUE(sibling.Send("keeper solve\n"));
  auto solved = sibling.ReadLine();
  ASSERT_TRUE(solved.has_value()) << "sibling starved by a stalled reader";
  EXPECT_EQ(solved->rfind("ok keeper line=2 error=", 0), 0u) << *solved;

  // The backpressure abort-close lands and is attributed in the gauges.
  EXPECT_TRUE(PollStats(port, [](const std::string& line) {
    return line.find(" aborted_backpressure=") != std::string::npos &&
           line.find(" aborted_backpressure=0") == std::string::npos;
  })) << "stalled reader never abort-closed (backpressure gauge still 0)";

  // The staller's socket really is dead: reads drain whatever was in
  // flight, then hit EOF/reset rather than blocking forever.
  while (staller.ReadLine().has_value()) {
  }
  staller.Close();

  ASSERT_TRUE(sibling.Send("quit\n"));
  auto quit = sibling.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  fixture.server->Stop();
}

TEST(ReactorServerTest, IdleTimeoutSweepAbortsSilentConnections) {
  // --idle-timeout now rides the reactor's once-per-second deadline sweep
  // (the old transport used SO_RCVTIMEO): a silent connection is
  // abort-closed and attributed to the idle gauge; an active sibling
  // keeps its session.
  ReactorOptions reactor_options;
  reactor_options.idle_timeout_seconds = 1;
  ServerFixture fixture(/*seed=*/305, /*n=*/8, /*k=*/3, reactor_options);
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  WireClient idler;
  ASSERT_TRUE(idler.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(idler.Send("open sleepy d0\n"));
  auto ack = idler.ReadLine();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "ok open sleepy d0");

  // ... then silence. The sweep should cut the connection within ~2-3s;
  // the blocking read returns EOF when it does.
  EXPECT_FALSE(idler.ReadLine().has_value())
      << "idle connection outlived the timeout sweep";
  idler.Close();

  EXPECT_TRUE(PollStats(port, [](const std::string& line) {
    return line.find(" aborted_idle=") != std::string::npos &&
           line.find(" aborted_idle=0") == std::string::npos;
  })) << "idle abort-close never attributed to the idle gauge";
  fixture.server->Stop();
}

TEST(ReactorServerTest, HundredsOfIdleConnectionsOnAFixedThreadSet) {
  // The multiplexing smoke (the full >= 1000-connection scaling walk
  // lives in bench_session_resolve's connection_scaling section): a few
  // hundred parked connections on 2 event loops, while one active client
  // works normally. Thread-per-connection would need 300 stacks here; the
  // reactor needs 4 threads total.
  ServerFixture fixture(/*seed=*/306, /*n=*/8, /*k=*/3);
  int port = 0;
  Status started = fixture.StartTcp(&port);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }

  constexpr int kIdle = 300;
  std::vector<WireClient> idle(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    ASSERT_TRUE(idle[i].ConnectTcp("127.0.0.1", port))
        << "connect " << i << " failed: " << std::strerror(errno);
  }

  // One active client does real work through the crowd. Sequential
  // round-trips: `stats` answers inline on the event loop while a solve
  // completes on a strand, so pipelining them would race the responses.
  WireClient active;
  ASSERT_TRUE(active.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(active.Send("open worker d1\n"));
  auto ack = active.ReadLine();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "ok open worker d1");
  ASSERT_TRUE(active.Send("worker solve\n"));
  auto solved = active.ReadLine();
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->rfind("ok worker line=2 error=", 0), 0u) << *solved;
  ASSERT_TRUE(active.Send("stats\n"));
  auto stats = active.ReadLine();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find(" connections=" + std::to_string(kIdle + 1)),
            std::string::npos)
      << *stats << " (want " << kIdle + 1 << " live connections)";

  // Every parked connection still answers — sample a spread of them.
  for (int i = 0; i < kIdle; i += 37) {
    ASSERT_TRUE(idle[i].Send("stats\n"));
    auto line = idle[i].ReadLine();
    ASSERT_TRUE(line.has_value()) << "idle connection " << i << " dead";
    EXPECT_EQ(line->rfind("ok stats ", 0), 0u);
  }

  ASSERT_TRUE(active.Send("quit\n"));
  auto quit = active.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  EXPECT_EQ(fixture.server->num_loops(), 2);
  EXPECT_EQ(fixture.server->connections_accepted(), kIdle + 1);
  fixture.server->Stop();
}

}  // namespace
}  // namespace rankhow
