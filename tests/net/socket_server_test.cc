// Socket transport suite (tsan-labelled like the other server suites):
//
//  * ParseListenSpec unit coverage (unix:/tcp:/bare forms, bad ports).
//  * The acceptance walk over real loopback TCP: two concurrent
//    connections open sessions against *different dataset ids* on one
//    router-backed server and replay scripted edits; every proven result
//    must equal a serial single-session replay of the same script.
//  * A Unix-domain round-trip of the complete documented verb set — every
//    verb in docs/PROTOCOL.md answers the documented ok/err shape over a
//    real socket (the doc's round-trip guarantee).
//  * Wire fuzz over a real socket: a truncated line mid-verb (no trailing
//    newline, then close) and a connection dropped mid-solve must leave
//    sibling connections and their sessions fully intact, and free the
//    dropped connection's client names.
//
// Tests skip cleanly (GTEST_SKIP) where the socket family is unavailable.

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "core/solve_session.h"
#include "net/socket_server.h"
#include "server/registry_router.h"
#include "server/wire.h"
#include "util/random.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

/// A blocking line-oriented test client over one socket, with a receive
/// timeout so a server bug can never hang the suite.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept { *this = std::move(other); }
  WireClient& operator=(WireClient&& other) noexcept {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    return *this;
  }

  bool ConnectTcp(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      return false;
    }
    return SetTimeout();
  }

  bool ConnectUnix(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sun.sun_path)) return false;
    std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      return false;
    }
    return SetTimeout();
  }

  bool Send(const std::string& text) {
    const char* p = text.data();
    size_t left = text.size();
    while (left > 0) {
      ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  }

  /// One response line (without the newline); nullopt on EOF/timeout.
  std::optional<std::string> ReadLine() {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[1024];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  bool connected() const { return fd_ >= 0; }

 private:
  bool SetTimeout() {
    timeval tv;
    tv.tv_sec = 60;  // generous: solves on a loaded 1-core box are slow
    tv.tv_usec = 0;
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// A two-dataset router-backed handler stack for the socket tests.
struct ServerFixture {
  std::vector<Dataset> datasets;
  std::vector<Ranking> rankings;
  std::unique_ptr<RegistryRouter> router;
  std::unique_ptr<SocketServer> server;

  explicit ServerFixture(uint64_t seed = 301, int n = 10, int k = 4) {
    Rng rng(seed);
    for (int i = 0; i < 2; ++i) {
      datasets.push_back(RandomDataset(rng, n, 3));
      rankings.push_back(RandomRanking(rng, n, k));
    }
    RouterOptions options;
    options.server.solver = SpatialOptions();
    options.server.num_workers = 2;
    router = std::make_unique<RegistryRouter>(options);
    for (int i = 0; i < 2; ++i) {
      const Dataset& data = datasets[i];
      const Ranking& given = rankings[i];
      EXPECT_TRUE(router
                      ->RegisterDataset(
                          "d" + std::to_string(i),
                          [data, given]()
                              -> Result<RegistryRouter::DatasetBundle> {
                            RegistryRouter::DatasetBundle bundle;
                            bundle.data = SharedDataset(Dataset(data));
                            bundle.given = Ranking(given);
                            bundle.labels =
                                TupleLabels(data.num_tuples());
                            return bundle;
                          })
                      .ok());
    }
    server = std::make_unique<SocketServer>(
        [this](int conn_id, std::istream& in, std::ostream& out) {
          (void)conn_id;
          ServeStreamOptions serve_options;
          serve_options.connection_scoped_clients = true;
          (void)ServeStream(router.get(), in, out, serve_options);
        });
  }

  ~ServerFixture() {
    // Stop the transport before the router: reader threads hold raw
    // router pointers.
    if (server != nullptr) server->Stop();
  }
};

TEST(ParseListenSpecTest, AcceptsTheDocumentedForms) {
  auto unix_explicit = ParseListenSpec("unix:/tmp/rankhow.sock");
  ASSERT_TRUE(unix_explicit.ok());
  EXPECT_EQ(unix_explicit->kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(unix_explicit->path, "/tmp/rankhow.sock");

  auto unix_bare = ParseListenSpec("/run/rankhow/api.sock");
  ASSERT_TRUE(unix_bare.ok());
  EXPECT_EQ(unix_bare->kind, ListenAddress::Kind::kUnix);

  auto tcp = ParseListenSpec("127.0.0.1:8731");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8731);

  auto ephemeral = ParseListenSpec("tcp:localhost:0");
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral->port, 0);

  for (const char* bad :
       {"", "unix:", "8731", "host:port", "1.2.3.4:99999", "1.2.3.4:-1"}) {
    EXPECT_FALSE(ParseListenSpec(bad).ok()) << "accepted: " << bad;
  }
  EXPECT_EQ(ListenSpecString(*tcp), "127.0.0.1:8731");
  EXPECT_EQ(ListenSpecString(*unix_explicit), "unix:/tmp/rankhow.sock");
}

TEST(SocketServerTest, TwoTcpClientsOnDifferentDatasetsMatchSerialReplay) {
  // The ISSUE acceptance walk: >= 2 concurrent TCP clients, different
  // dataset ids, scripted edits, results identical to serial replay.
  ServerFixture fixture;
  ListenAddress address;
  address.kind = ListenAddress::Kind::kTcp;
  address.host = "127.0.0.1";
  address.port = 0;
  Status started = fixture.server->Start(address);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }
  const int port = fixture.server->bound().port;

  // Both connections open and stream their whole script before either
  // reads a response — the commands of the two clients are genuinely in
  // flight together on the strand pool.
  const std::vector<std::string> script = {
      "solve", "min-weight A0 0.05", "max-weight A1 0.6", "drop min_A0"};
  WireClient clients[2];
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(clients[c].ConnectTcp("127.0.0.1", port));
    std::string payload =
        "open c" + std::to_string(c) + " d" + std::to_string(c) + "\n";
    for (const std::string& line : script) {
      payload += "c" + std::to_string(c) + " " + line + "\n";
    }
    ASSERT_TRUE(clients[c].Send(payload));
  }

  for (int c = 0; c < 2; ++c) {
    const std::string name = "c" + std::to_string(c);
    auto ack = clients[c].ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open " + name + " d" + std::to_string(c));

    // Serial ground truth: the same script through ExecuteSessionCommand
    // on a private session over the same dataset.
    SolveSession replay(Dataset(fixture.datasets[c]),
                        Ranking(fixture.rankings[c]), SpatialOptions());
    auto parsed = ParseSessionScript(
        script[0] + "\n" + script[1] + "\n" + script[2] + "\n" + script[3]);
    ASSERT_TRUE(parsed.ok());
    std::vector<std::string> labels =
        TupleLabels(fixture.datasets[c].num_tuples());
    for (size_t s = 0; s < parsed->size(); ++s) {
      auto want = ExecuteSessionCommand(&replay, (*parsed)[s], labels);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(want->result.proven_optimal);
      auto line = clients[c].ReadLine();
      ASSERT_TRUE(line.has_value())
          << name << " step " << s << ": no response";
      // "ok cN line=L error=E bound=B proven=yes seconds=..."
      const std::string expect_prefix =
          "ok " + name + " line=" + std::to_string(s + 2) +
          " error=" + std::to_string(want->result.error) + " bound=";
      EXPECT_EQ(line->rfind(expect_prefix, 0), 0u)
          << name << " step " << s << ": got '" << *line << "', want prefix '"
          << expect_prefix << "' (network result differs from serial replay)";
      EXPECT_NE(line->find("proven=yes"), std::string::npos) << *line;
    }
    ASSERT_TRUE(clients[c].Send("quit\n"));
    auto quit = clients[c].ReadLine();
    ASSERT_TRUE(quit.has_value());
    EXPECT_EQ(*quit, "ok quit");
  }
  EXPECT_EQ(fixture.server->connections_accepted(), 2);
  fixture.server->Stop();
}

TEST(SocketServerTest, EveryDocumentedVerbRoundTripsOverAUnixSocket) {
  // docs/PROTOCOL.md's round-trip guarantee: every verb it documents is
  // exercised over a real socket and answers the documented shape.
  ServerFixture fixture(/*seed=*/302, /*n=*/8, /*k=*/3);
  ListenAddress address;
  address.kind = ListenAddress::Kind::kUnix;
  address.path = testing::TempDir() + "rankhow_verbs.sock";
  Status started = fixture.server->Start(address);
  if (!started.ok()) {
    GTEST_SKIP() << "unix sockets unavailable: " << started.ToString();
  }

  WireClient client;
  ASSERT_TRUE(client.ConnectUnix(address.path));
  auto roundtrip = [&client](const std::string& request)
      -> std::string {
    if (!client.Send(request + "\n")) return "<send failed>";
    auto line = client.ReadLine();
    return line.has_value() ? *line : "<no response>";
  };

  // open, both forms (dataset-id routing and default-dataset).
  EXPECT_EQ(roundtrip("open alice d1"), "ok open alice d1");
  EXPECT_EQ(roundtrip("open bob"), "ok open bob d0");
  // The full session-command grammar, one verb per request.
  EXPECT_EQ(roundtrip("alice solve").rfind("ok alice line=3 error=", 0), 0u);
  EXPECT_EQ(roundtrip("alice min-weight A0 0.05")
                .rfind("ok alice line=4 error=", 0),
            0u);
  EXPECT_EQ(roundtrip("alice max-weight A1 0.6")
                .rfind("ok alice line=5 error=", 0),
            0u);
  EXPECT_EQ(roundtrip("alice drop min_A0").rfind("ok alice line=6", 0), 0u);
  EXPECT_EQ(roundtrip("alice order t0>t1").rfind("ok alice line=7", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps 4e-7").rfind("ok alice line=8", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps1 2e-6").rfind("ok alice line=9", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps2 0").rfind("ok alice line=10", 0), 0u);
  EXPECT_EQ(roundtrip("alice objective topheavy")
                .rfind("ok alice line=11", 0),
            0u);
  EXPECT_EQ(roundtrip("alice append 0.5 0.5 0.5")
                .rfind("ok alice line=12", 0),
            0u);
  // stats: the router aggregate, documented field by field.
  EXPECT_EQ(roundtrip("stats").rfind(
                "ok stats registries=2 clients=2 datasets=3 commands=", 0),
            0u)
      << "(datasets=3: alice's append forked a private COW copy)";
  // Documented error replies: unknown verb, unknown client, bad dataset.
  EXPECT_EQ(roundtrip("alice frobnicate 1").rfind("err - wire line", 0), 0u);
  EXPECT_EQ(roundtrip("ghost solve"),
            "err ghost no client named ghost on this connection");
  EXPECT_EQ(roundtrip("open carol nope"),
            "err carol unknown dataset id: nope");
  // close, then quit.
  EXPECT_EQ(roundtrip("close alice"), "ok close alice");
  EXPECT_EQ(roundtrip("quit"), "ok quit");
  client.Close();
  fixture.server->Stop();
}

TEST(SocketServerTest, TruncatedLinesAndDropsLeaveSiblingsIntact) {
  ServerFixture fixture(/*seed=*/303, /*n=*/12, /*k=*/5);
  ListenAddress address;
  address.kind = ListenAddress::Kind::kTcp;
  address.host = "127.0.0.1";
  address.port = 0;
  Status started = fixture.server->Start(address);
  if (!started.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable: " << started.ToString();
  }
  const int port = fixture.server->bound().port;

  // The long-lived sibling whose session must survive everything below.
  WireClient sibling;
  ASSERT_TRUE(sibling.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(sibling.Send("open keeper d0\nkeeper min-weight A0 0.05\n"));
  auto opened = sibling.ReadLine();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "ok open keeper d0");
  auto first = sibling.ReadLine();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->rfind("ok keeper line=2 error=", 0), 0u) << *first;
  const std::string baseline = *first;

  // Fuzz 1: a connection that dies mid-verb — no trailing newline. The
  // server must treat the partial line as one (malformed) request at EOF
  // and wind the connection down without touching anyone else.
  {
    WireClient trunc;
    ASSERT_TRUE(trunc.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(trunc.Send("open doomed d0\n"));
    auto ack = trunc.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open doomed d0");
    ASSERT_TRUE(trunc.Send("doomed min-wei"));  // mid-verb, then gone
    trunc.Close();
  }

  // Fuzz 2: a connection dropped with solves still queued mid-flight.
  {
    WireClient dropper;
    ASSERT_TRUE(dropper.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(dropper.Send("open burst d1\n"));
    auto ack = dropper.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open burst d1");
    // Queue several solves and vanish without reading a single response.
    ASSERT_TRUE(
        dropper.Send("burst solve\nburst solve\nburst solve\nburst solve\n"));
    dropper.Close();
  }

  // The sibling's session state survived both incidents bit-identically:
  // the same re-solve proves the same optimum.
  ASSERT_TRUE(sibling.Send("keeper solve\n"));
  auto again = sibling.ReadLine();
  ASSERT_TRUE(again.has_value());
  // Identical problem, identical session → identical error (the line
  // number differs, so compare the tail from "error=").
  const std::string want_tail = baseline.substr(baseline.find("error="));
  EXPECT_NE(again->find(want_tail.substr(0, want_tail.find(" seconds="))),
            std::string::npos)
      << "sibling state corrupted: baseline '" << baseline << "' vs '"
      << *again << "'";

  // The dropped connections' client names were abort-closed and are free
  // again (EOF without quit closes owned clients). The close runs on the
  // dead connection's reader thread, so retry briefly until it lands.
  WireClient reuser;
  ASSERT_TRUE(reuser.ConnectTcp("127.0.0.1", port));
  auto open_with_retry = [&reuser](const std::string& name,
                                   const std::string& dataset) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (!reuser.Send("open " + name + " " + dataset + "\n")) return false;
      auto line = reuser.ReadLine();
      if (!line.has_value()) return false;
      if (line->rfind("ok open " + name, 0) == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  };
  EXPECT_TRUE(open_with_retry("doomed", "d0"))
      << "truncated connection's client never freed — abort-close leaked";
  EXPECT_TRUE(open_with_retry("burst", "d1"))
      << "dropped connection's client never freed — abort-close leaked";
  ASSERT_TRUE(reuser.Send("quit\n"));
  auto reuser_quit = reuser.ReadLine();
  ASSERT_TRUE(reuser_quit.has_value());
  EXPECT_EQ(*reuser_quit, "ok quit");

  ASSERT_TRUE(sibling.Send("quit\n"));
  auto quit = sibling.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  fixture.server->Stop();
}

}  // namespace
}  // namespace rankhow
