// FrameDecoder unit fuzz (docs/PROTOCOL.md "Binary framing"): round-trips
// in both modes under adversarial byte-stream slicing, plus the negative
// space — truncated length prefixes, oversized lengths, mid-frame EOF,
// unterminated text floods, and the text/binary mode switch with bytes
// already buffered. The decoder's contract is strict: framing errors are
// sticky (a length-prefixed stream cannot resynchronize), partial messages
// are visible via MidMessage() so the transport can report a truncated-at-
// EOF frame, and nothing ever reads past a message boundary.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"

namespace rankhow {
namespace {

/// Feeds `bytes` one byte at a time — the worst segmentation TCP can
/// deliver — popping every complete message.
std::vector<std::string> DecodeByteAtATime(FrameDecoder* decoder,
                                           const std::string& bytes) {
  std::vector<std::string> messages;
  for (char c : bytes) {
    decoder->Feed(&c, 1);
    std::string payload;
    while (decoder->Pop(&payload) == FrameDecoder::Next::kMessage) {
      messages.push_back(payload);
    }
  }
  return messages;
}

TEST(FrameTest, TextRoundTripSurvivesArbitrarySegmentation) {
  std::string bytes;
  EncodeFrame(FrameMode::kText, "open alice d0", &bytes);
  EncodeFrame(FrameMode::kText, "", &bytes);
  EncodeFrame(FrameMode::kText, "alice solve", &bytes);

  FrameDecoder decoder;
  auto messages = DecodeByteAtATime(&decoder, bytes);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0], "open alice d0");
  EXPECT_EQ(messages[1], "");
  EXPECT_EQ(messages[2], "alice solve");
  EXPECT_FALSE(decoder.MidMessage());
}

TEST(FrameTest, TextStripsCarriageReturnForTelnetClients) {
  FrameDecoder decoder;
  const std::string bytes = "stats\r\nquit\r\n";
  decoder.Feed(bytes.data(), bytes.size());
  std::string payload;
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "stats");
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "quit");
}

TEST(FrameTest, BinaryRoundTripSurvivesArbitrarySegmentation) {
  std::string bytes;
  EncodeFrame(FrameMode::kBinary, "open alice d0", &bytes);
  EncodeFrame(FrameMode::kBinary, "", &bytes);  // zero-length is legal
  // A payload with embedded newlines and NULs — binary framing must not
  // care about content.
  EncodeFrame(FrameMode::kBinary, std::string("a\nb\0c", 5), &bytes);

  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  auto messages = DecodeByteAtATime(&decoder, bytes);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0], "open alice d0");
  EXPECT_EQ(messages[1], "");
  EXPECT_EQ(messages[2], std::string("a\nb\0c", 5));
  EXPECT_FALSE(decoder.MidMessage());
}

TEST(FrameTest, TruncatedLengthPrefixIsNeedMoreNotError) {
  // 2 of the 4 prefix bytes: the decoder must wait, and MidMessage tells
  // the transport an EOF here is a truncated frame.
  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  decoder.Feed("\x00\x00", 2);
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kNeedMore);
  EXPECT_TRUE(decoder.MidMessage());
}

TEST(FrameTest, TruncatedPayloadIsNeedMoreNotError) {
  std::string bytes;
  EncodeFrame(FrameMode::kBinary, "alice solve", &bytes);
  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  decoder.Feed(bytes.data(), bytes.size() - 3);  // lose the tail
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kNeedMore);
  EXPECT_TRUE(decoder.MidMessage());
  // The missing bytes arrive after all — the message completes.
  decoder.Feed(bytes.data() + bytes.size() - 3, 3);
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "alice solve");
}

TEST(FrameTest, OversizedLengthIsAStickyFatalError) {
  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  decoder.Feed("\x7f\xff\xff\xff", 4);
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos)
      << decoder.error();
  // Sticky: more (even well-formed) bytes cannot revive the stream.
  std::string good;
  EncodeFrame(FrameMode::kBinary, "stats", &good);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
}

TEST(FrameTest, TextBytesOnABinaryConnectionAreAFatalError) {
  // The classic corruption: a client negotiates binary, then keeps
  // sending text. "open" decodes as the length 0x6f70656e ≈ 1.8 GB.
  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  const std::string text = "open alice d0\n";
  decoder.Feed(text.data(), text.size());
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("text bytes on a binary connection"),
            std::string::npos)
      << decoder.error();
}

TEST(FrameTest, ModeSwitchAppliesToAlreadyBufferedBytes) {
  // The negotiation case: "frame binary\n" and the first binary frame
  // arrive in ONE read. The protocol layer pops the text line, acks, and
  // switches the decoder — the buffered remainder must decode as binary.
  std::string bytes = "frame binary\n";
  EncodeFrame(FrameMode::kBinary, "open alice d0", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  std::string payload;
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "frame binary");
  decoder.set_mode(FrameMode::kBinary);
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "open alice d0");
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kNeedMore);

  // And back: binary-framed bytes already buffered decode as text after
  // switching to text mode — mid-stream switches cut both ways.
  std::string back;
  EncodeFrame(FrameMode::kText, "quit", &back);
  decoder.Feed(back.data(), back.size());
  decoder.set_mode(FrameMode::kText);
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload, "quit");
}

TEST(FrameTest, UnterminatedTextFloodIsBounded) {
  // A newline-free flood must not grow the buffer forever: one byte past
  // the frame cap is a fatal framing error.
  FrameDecoder decoder;
  const std::string chunk(64 * 1024, 'x');
  std::string payload;
  FrameDecoder::Next next = FrameDecoder::Next::kNeedMore;
  for (int i = 0; i < 20 && next == FrameDecoder::Next::kNeedMore; ++i) {
    decoder.Feed(chunk.data(), chunk.size());
    next = decoder.Pop(&payload);
  }
  EXPECT_EQ(next, FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("text line exceeds"), std::string::npos)
      << decoder.error();
}

TEST(FrameTest, MaxSizedFrameRoundTrips) {
  // Exactly at the cap is legal; the error fires strictly above it.
  const std::string big(kMaxFrameBytes, 'y');
  std::string bytes;
  EncodeFrame(FrameMode::kBinary, big, &bytes);
  FrameDecoder decoder;
  decoder.set_mode(FrameMode::kBinary);
  decoder.Feed(bytes.data(), bytes.size());
  std::string payload;
  ASSERT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kMessage);
  EXPECT_EQ(payload.size(), kMaxFrameBytes);
}

}  // namespace
}  // namespace rankhow
