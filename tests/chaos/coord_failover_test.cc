// Coordinator failover chaos (the distributed half of the chaos suite;
// docs/OPERATIONS.md "Distributed serving"):
//
//  * the headline acceptance test: two real `rankhow_cli --listen` workers
//    behind an in-process CoordServer, a session with acked edits pinned
//    to one of them, SIGKILL that worker mid-session — the failed-over
//    session's next solve proves the EXACT optimum a serial uninterrupted
//    replay of its acked edit script proves, the sibling session on the
//    surviving worker is untouched, and the next `open` adopts the moved
//    session with the ` recovered` ack suffix;
//  * the no-replacement variant: killing the only worker answers every
//    affected request with a clean `err` line — never a hang — and frees
//    the session name.
//
// Like the rest of the kill tests, these locate the CLI binary through
// RANKHOW_CLI and skip when absent; chaos_tests_nokill filters them out
// of the tsan run (names match *Kill*).

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "coord/coordinator.h"
#include "coord/shard_map.h"
#include "core/solve_session.h"
#include "net/dial.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

/// A self-deleting scratch directory (flat: CSVs and stderr logs only).
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/rankhow_coord_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return;
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((path + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(path.c_str());
  }
  std::string File(const std::string& name) const {
    return path + "/" + name;
  }
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string CliBinaryOrEmpty() {
  const char* env = ::getenv("RANKHOW_CLI");
  std::string path = env != nullptr ? env : "./rankhow_cli";
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || (st.st_mode & S_IXUSR) == 0) {
    return "";
  }
  return path;
}

/// A spawned worker process (same shape as the journal kill tests'
/// harness: stderr to a file the test polls for the listening banner).
struct WorkerProcess {
  pid_t pid = -1;
  std::string stderr_path;
  int port = -1;

  static WorkerProcess Spawn(const std::string& binary,
                             const std::vector<std::string>& args,
                             const std::string& stderr_path) {
    WorkerProcess proc;
    proc.stderr_path = stderr_path;
    pid_t pid = ::fork();
    if (pid == 0) {
      const int err = ::open(stderr_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::dup2(err, 1);
        ::close(err);
      }
      std::vector<char*> argv;
      std::vector<std::string> storage = args;
      storage.insert(storage.begin(), binary);
      for (std::string& a : storage) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      ::_exit(127);
    }
    proc.pid = pid;
    return proc;
  }

  /// Polls stderr for "listening on HOST:PORT"; false on timeout/death.
  bool WaitForPort(int timeout_ms = 20000) {
    for (int waited = 0; waited < timeout_ms; waited += 50) {
      const std::string text = ReadWholeFile(stderr_path);
      const size_t at = text.find("listening on ");
      if (at != std::string::npos) {
        const size_t begin = at + std::strlen("listening on ");
        const size_t end = text.find(' ', begin);
        if (end == std::string::npos) continue;  // banner mid-write
        const std::string spec = text.substr(begin, end - begin);
        const size_t colon = spec.rfind(':');
        if (colon == std::string::npos) return false;
        auto parsed = ParseInt(spec.substr(colon + 1));
        if (!parsed.ok()) return false;
        port = static_cast<int>(*parsed);
        return true;
      }
      int status = 0;
      if (pid > 0 && ::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  std::string Spec() const { return "127.0.0.1:" + std::to_string(port); }

  /// SIGKILL + reap: the no-goodbyes death failover must absorb.
  void Kill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  ~WorkerProcess() { Kill(); }
};

/// The shared fixture: a fixed ranked CSV served as two dataset ids
/// (alpha/beta), worker flags matching the serial solver options, and
/// the in-process serial ground truth.
struct CoordKillRig {
  TempDir dir;
  std::string alpha_csv;
  std::string beta_csv;
  CliProblem problem;
  bool ok = false;

  CoordKillRig() {
    alpha_csv = dir.File("alpha.csv");
    beta_csv = dir.File("beta.csv");
    // The journal kill tests' fixed instance: these edits stay provable
    // in milliseconds (random tables occasionally blow the budget).
    const char* csv_text =
        "id,A0,A1,A2\n"
        "t0,0.701572,0.053770,0.153893\n"
        "t1,0.284070,0.472286,0.695374\n"
        "t2,0.170754,0.476345,0.164456\n"
        "t3,0.708557,0.220187,0.037273\n"
        "t4,0.415417,0.960246,0.512896\n"
        "t5,0.076767,0.612669,0.529445\n"
        "t6,0.231850,0.510558,0.282811\n"
        "t7,0.676359,0.861859,0.629128\n"
        "t8,0.822337,0.790560,0.102615\n"
        "t9,0.205545,0.977423,0.952639\n";
    for (const std::string& path : {alpha_csv, beta_csv}) {
      std::ofstream out(path);
      out << csv_text;
    }

    CliDataSpec spec;
    spec.id_column = "id";
    spec.k = 4;
    auto table = ReadCsvFile(alpha_csv);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    if (!table.ok()) return;
    auto assembled = AssembleCliProblem(*table, spec);
    EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
    if (!assembled.ok()) return;
    problem = *std::move(assembled);
    ok = true;
  }

  std::vector<std::string> WorkerArgs() const {
    return {"--listen=127.0.0.1:0",
            "--data=" + alpha_csv + "," + beta_csv,
            "--strategy=spatial",
            "--threads=1",
            "--id=id",
            "--k=4",
            "--eps=5e-7",
            "--eps1=1e-6",
            "--eps2=0"};
  }

  RankHowOptions SolverOptions() const {
    RankHowOptions options;
    options.eps = TestEps();
    options.strategy = SolveStrategy::kSpatial;
    options.num_threads = 1;
    options.time_limit_seconds = 60;
    return options;
  }

  /// Serial uninterrupted replay of `edit_lines` + solve: the proven
  /// error the failed-over session must reproduce exactly.
  long SerialReplayError(const std::vector<std::string>& edit_lines) const {
    SolveSession replay(Dataset(problem.data), Ranking(problem.given),
                        SolverOptions());
    std::string script;
    for (const std::string& line : edit_lines) script += line + "\n";
    script += "solve\n";
    auto parsed = ParseSessionScript(script);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    long error = -1;
    for (const SessionCommand& cmd : *parsed) {
      auto out = ExecuteSessionCommand(&replay, cmd, problem.labels);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_TRUE(out->result.proven_optimal);
      error = out->result.error;
    }
    return error;
  }
};

/// In-process coordinator with test-speed health settings.
struct CoordHarness {
  std::unique_ptr<CoordServer> coord;
  ListenAddress endpoint;

  Status Start(const std::string& workers_spec,
               const std::string& shard_map_spec) {
    auto map = ShardMap::Parse(workers_spec, shard_map_spec);
    if (!map.ok()) return map.status();
    CoordOptions options;
    options.health.interval_ms = 100;
    options.health.timeout_ms = 1000;
    options.health.dial_timeout_ms = 1000;
    options.health.failure_threshold = 2;
    coord = std::make_unique<CoordServer>(*std::move(map), options);
    ListenAddress listen;
    listen.kind = ListenAddress::Kind::kTcp;
    listen.host = "127.0.0.1";
    listen.port = 0;
    Status started = coord->Start(listen);
    if (started.ok()) endpoint = coord->bound();
    return started;
  }

  ~CoordHarness() {
    if (coord != nullptr) coord->Stop();
  }
};

/// "... name=V ..." -> V, or -1.
long ParseLongField(const std::string& text, const std::string& name) {
  const std::string needle = " " + name + "=";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  const size_t begin = at + needle.size();
  const size_t end = text.find(' ', begin);
  auto value = ParseInt(
      text.substr(begin, end == std::string::npos ? end : end - begin));
  return value.ok() ? static_cast<long>(*value) : -1;
}

bool WaitForCounter(const std::function<long long()>& read, long long want,
                    int deadline_ms = 15000) {
  for (int waited = 0; waited < deadline_ms; waited += 20) {
    if (read() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return read() >= want;
}

TEST(CoordFailoverKillTest, SigkilledWorkerSessionFailsOverToIdenticalOptima) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  CoordKillRig rig;
  ASSERT_TRUE(rig.ok);

  WorkerProcess w1 = WorkerProcess::Spawn(binary, rig.WorkerArgs(),
                                          rig.dir.File("w1.err"));
  WorkerProcess w2 = WorkerProcess::Spawn(binary, rig.WorkerArgs(),
                                          rig.dir.File("w2.err"));
  if (!w1.WaitForPort() || !w2.WaitForPort()) {
    GTEST_SKIP() << "workers failed to start: "
                 << ReadWholeFile(w1.stderr_path)
                 << ReadWholeFile(w2.stderr_path);
  }

  CoordHarness coord;
  Status started = coord.Start(w1.Spec() + "," + w2.Spec(),
                               "alpha=" + w1.Spec() + ",beta=" + w2.Spec());
  ASSERT_TRUE(started.ok()) << started.ToString();

  LineClient client;
  Status connected = client.Connect(coord.endpoint);
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  auto roundtrip = [&client](const std::string& request) -> std::string {
    if (!client.SendLine(request)) return "<send failed>";
    auto line = client.ReadLine();
    return line.has_value() ? *line : "<no response>";
  };

  // s1 on alpha (pinned to w1) takes three acked edits; s2 on beta
  // (pinned to w2) takes one. Lines 1-6 on this connection.
  const std::vector<std::string> s1_edits = {
      "min-weight A0 0.05", "max-weight A1 0.6", "order t0>t1"};
  const std::vector<std::string> s2_edits = {"min-weight A0 0.05"};
  EXPECT_EQ(roundtrip("open s1 alpha"), "ok open s1 alpha");
  for (size_t e = 0; e < s1_edits.size(); ++e) {
    const std::string ack = roundtrip("s1 " + s1_edits[e]);
    EXPECT_EQ(ack.rfind("ok s1 line=" + std::to_string(e + 2) + " ", 0), 0u)
        << ack;
  }
  EXPECT_EQ(roundtrip("open s2 beta"), "ok open s2 beta");
  EXPECT_EQ(roundtrip("s2 " + s2_edits[0]).rfind("ok s2 line=6 ", 0), 0u);

  // SIGKILL the pinned worker: no goodbyes. Every edit above was acked,
  // so the coordinator's captured edit script is exactly the serial one.
  w1.Kill();
  ASSERT_TRUE(WaitForCounter(
      [&] { return coord.coord->counters().failover_sessions; }, 1))
      << "failover never completed after SIGKILL";

  // The failed-over session's solve (line 7) proves the exact optimum a
  // serial uninterrupted replay of its acked edit script proves.
  const long want_s1 = rig.SerialReplayError(s1_edits);
  const std::string solved = roundtrip("s1 solve");
  EXPECT_EQ(solved.rfind("ok s1 line=7 error=" + std::to_string(want_s1) +
                             " bound=",
                         0),
            0u)
      << "failed-over solve '" << solved << "' differs from serial replay "
      << "(want error=" << want_s1 << ")";
  EXPECT_NE(solved.find("proven=yes"), std::string::npos) << solved;

  // The sibling on the surviving worker is untouched (line 8).
  const long want_s2 = rig.SerialReplayError(s2_edits);
  const std::string sibling = roundtrip("s2 solve");
  EXPECT_EQ(sibling.rfind("ok s2 line=8 error=" + std::to_string(want_s2) +
                              " bound=",
                          0),
            0u)
      << sibling;

  // Re-opening the moved client adopts it with the same ` recovered`
  // suffix a journal-recovering worker uses.
  EXPECT_EQ(roundtrip("open s1 alpha"), "ok open s1 alpha recovered");

  // The books: one failover, one moved session, three replayed edits,
  // no failures — and the fleet view shows w1 down, w2 up.
  const CoordCounters counters = coord.coord->counters();
  EXPECT_EQ(counters.failovers, 1);
  EXPECT_EQ(counters.failover_sessions, 1);
  EXPECT_EQ(counters.failover_failures, 0);
  EXPECT_EQ(counters.replayed_edits, 3);
  EXPECT_EQ(counters.replay_errors, 0);
  const std::string stats = roundtrip("stats");
  EXPECT_EQ(ParseLongField(stats, "coord_up"), 1) << stats;
  EXPECT_NE(stats.find(":down"), std::string::npos) << stats;
  EXPECT_EQ(roundtrip("quit"), "ok quit");
}

TEST(CoordFailoverKillTest, KillWithNoReplacementAnswersCleanErrors) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  CoordKillRig rig;
  ASSERT_TRUE(rig.ok);

  WorkerProcess w1 = WorkerProcess::Spawn(binary, rig.WorkerArgs(),
                                          rig.dir.File("only.err"));
  if (!w1.WaitForPort()) {
    GTEST_SKIP() << "worker failed to start: "
                 << ReadWholeFile(w1.stderr_path);
  }
  CoordHarness coord;
  Status started = coord.Start(w1.Spec(), "");
  ASSERT_TRUE(started.ok()) << started.ToString();

  LineClient client;
  Status connected = client.Connect(coord.endpoint);
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  auto roundtrip = [&client](const std::string& request) -> std::string {
    if (!client.SendLine(request)) return "<send failed>";
    auto line = client.ReadLine();
    return line.has_value() ? *line : "<no response>";
  };

  EXPECT_EQ(roundtrip("open s1 alpha"), "ok open s1 alpha");
  EXPECT_EQ(roundtrip("s1 min-weight A0 0.05").rfind("ok s1 line=2 ", 0),
            0u);

  w1.Kill();
  ASSERT_TRUE(WaitForCounter(
      [&] { return coord.coord->counters().failover_failures; }, 1))
      << "failover (to nowhere) never ran after SIGKILL";

  // The session could not be rebound: it is gone, and every subsequent
  // request answers a clean `err` line immediately — never a hang.
  const std::string after = roundtrip("s1 solve");
  EXPECT_EQ(after, "err s1 no client named s1 on this connection") << after;
  // The name is free again; the re-open itself fails cleanly too (no
  // worker is alive to route to).
  const std::string reopen = roundtrip("open s1 alpha");
  EXPECT_EQ(reopen.rfind("err s1 ", 0), 0u) << reopen;
  // Scatter-gather degrades to a clean error as well.
  const std::string stats = roundtrip("stats");
  EXPECT_EQ(stats, "err - stats unavailable: no worker reachable") << stats;
  EXPECT_EQ(roundtrip("quit"), "ok quit");
}

}  // namespace
}  // namespace rankhow
