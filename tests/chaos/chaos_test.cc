// Chaos suite (the fault-injection half of the durability PR; see
// docs/OPERATIONS.md "Durability & recovery"):
//
//  * in-process crash recovery: a router torn down without closing its
//    sessions is rebuilt by RecoverFromJournals(), the recovered session
//    is adopted by the next `open`, and its solves prove the exact optima
//    a serial uninterrupted replay proves;
//  * journal corruption between runs (garbage lines, torn tails) degrades
//    recovery gracefully — counted, never fatal;
//  * a journaled open whose dataset changed under the journal (fingerprint
//    mismatch) drops the session instead of replaying against wrong data;
//  * injected fsync/rotate failures run the bounded-backoff and
//    journal-off degradation paths for real;
//  * overload shedding answers kResourceExhausted with the documented
//    RETRY-AFTER hint once the pending-command watermark is hit;
//  * the `deadline` verb round-trips over the wire; EOF-without-quit is
//    counted as an aborted close, `quit` as a graceful one;
//  * and the headline acceptance test: a real `rankhow_cli --listen`
//    server SIGKILLed mid-session (externally, and via the
//    crash-after-journal-append injection point inside the journal append
//    itself) recovers on restart and reports proven optima identical to a
//    serial replay of the journaled edits.
//
// Subprocess tests (names matching *Kill*/*Crash*) locate the CLI binary
// through the RANKHOW_CLI environment variable (CMake points it at the
// built rankhow_cli) and skip when it is absent. The `chaos_tests_nokill`
// ctest entry filters them out for the tsan run — SIGKILLing children
// under tsan is noise, not signal.

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "app/cli_driver.h"
#include "core/solve_session.h"
#include "server/journal.h"
#include "server/registry_router.h"
#include "server/session_registry.h"
#include "server/wire.h"
#include "util/csv.h"
#include "util/fault.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rankhow {
namespace {

EpsilonConfig TestEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-7;
  eps.eps1 = 1e-6;
  eps.eps2 = 0.0;
  return eps;
}

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 1));
  }
  return d;
}

Ranking RandomRanking(Rng& rng, int n, int k) {
  std::vector<int> tuples(n);
  for (int t = 0; t < n; ++t) tuples[t] = t;
  rng.Shuffle(&tuples);
  std::vector<int> positions(n, kUnranked);
  for (int p = 0; p < k; ++p) positions[tuples[p]] = p + 1;
  return MustCreate(std::move(positions));
}

std::vector<std::string> TupleLabels(int n) {
  std::vector<std::string> labels;
  for (int t = 0; t < n; ++t) labels.push_back("t" + std::to_string(t));
  return labels;
}

RankHowOptions SpatialOptions() {
  RankHowOptions options;
  options.eps = TestEps();
  options.strategy = SolveStrategy::kSpatial;
  options.num_threads = 1;
  return options;
}

SessionCommand Cmd(SessionCommand::Kind kind, std::string arg = "",
                   double value = 0, int line = 0) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  cmd.line = line;
  return cmd;
}

/// A self-deleting scratch directory (one level of subdirectories, which
/// is all the journal-dir layout needs).
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/rankhow_chaos_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() { RemoveDir(path, /*depth=*/0); }
  std::string File(const std::string& name) const {
    return path + "/" + name;
  }
  std::string Subdir(const std::string& name) const {
    const std::string dir = path + "/" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
  }

 private:
  static void RemoveDir(const std::string& dir, int depth) {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return;
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string full = dir + "/" + name;
      struct stat st;
      if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        if (depth < 4) RemoveDir(full, depth + 1);
      } else {
        ::unlink(full.c_str());
      }
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
};

/// Disarms every injection point on entry and exit, so a failed assertion
/// mid-test can never leak an armed fault into the next case.
struct FaultGuard {
  FaultGuard() { FaultInjector::Global().Reset(); }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

struct Slot {
  Result<SessionStepOutcome> outcome = Status::Internal("unset");
};

void SubmitAndWait(RegistryRouter* router, const std::string& client,
                   SessionCommand cmd, Slot* slot) {
  ASSERT_TRUE(router
                  ->Submit(client, std::move(cmd),
                           [slot](const std::string&,
                                  const Result<SessionStepOutcome>& out) {
                             slot->outcome = out;
                           })
                  .ok());
  router->Drain();
}

/// The recovery scenario every in-process test shares: one dataset, one
/// journaled client, a scripted edit prefix.
struct RecoveryRig {
  Dataset data;
  Ranking given;
  RouterOptions options;

  explicit RecoveryRig(const std::string& journal_dir, uint64_t seed = 901) {
    Rng rng(seed);
    data = RandomDataset(rng, 10, 3);
    given = RandomRanking(rng, 10, 4);
    options.server.solver = SpatialOptions();
    options.server.num_workers = 2;
    options.journal_dir = journal_dir;
    options.journal.fsync_every = 1;
  }

  void Register(RegistryRouter* router) const {
    const Dataset& d = data;
    const Ranking& g = given;
    ASSERT_TRUE(router
                    ->RegisterDataset(
                        "d0",
                        [d, g]() -> Result<RegistryRouter::DatasetBundle> {
                          RegistryRouter::DatasetBundle bundle;
                          bundle.data = SharedDataset(Dataset(d));
                          bundle.given = Ranking(g);
                          bundle.labels = TupleLabels(d.num_tuples());
                          return bundle;
                        })
                    .ok());
  }

  std::vector<SessionCommand> Edits() const {
    return {Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.05),
            Cmd(SessionCommand::Kind::kMaxWeight, "A1", 0.6),
            Cmd(SessionCommand::Kind::kOrder, "t0>t1")};
  }

  /// Serial ground truth: the same edits through ExecuteSessionCommand on
  /// a private uninterrupted session, then a solve.
  long SerialReplayError() const {
    SolveSession replay(Dataset(data), Ranking(given), SpatialOptions());
    const std::vector<std::string> labels = TupleLabels(data.num_tuples());
    for (const SessionCommand& cmd : Edits()) {
      auto out = ExecuteSessionCommand(&replay, cmd, labels);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
    }
    auto solved =
        ExecuteSessionCommand(&replay, Cmd(SessionCommand::Kind::kSolve),
                              labels);
    EXPECT_TRUE(solved.ok()) << solved.status().ToString();
    EXPECT_TRUE(solved->result.proven_optimal);
    return solved->result.error;
  }
};

TEST(ChaosRecoveryTest, InProcessRecoveryMatchesSerialReplay) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path);

  long live_error = 0;
  {
    // Run 1: open, edit, solve — then tear the router down WITHOUT closing
    // the session (a crash does not say goodbye). The journal keeps the
    // session live.
    RegistryRouter router(rig.options);
    rig.Register(&router);
    ASSERT_TRUE(router.Open("alice", "d0").ok());
    for (const SessionCommand& cmd : rig.Edits()) {
      Slot slot;
      SubmitAndWait(&router, "alice", cmd, &slot);
      ASSERT_TRUE(slot.outcome.ok()) << slot.outcome.status().ToString();
    }
    Slot solve;
    SubmitAndWait(&router, "alice", Cmd(SessionCommand::Kind::kSolve),
                  &solve);
    ASSERT_TRUE(solve.outcome.ok()) << solve.outcome.status().ToString();
    ASSERT_TRUE(solve.outcome->result.proven_optimal);
    live_error = solve.outcome->result.error;
  }

  // Run 2: a fresh router over the same catalog and journal directory.
  RegistryRouter router(rig.options);
  rig.Register(&router);
  auto report = router.RecoverFromJournals();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->datasets, 1);
  EXPECT_EQ(report->sessions, 1);
  // open + 3 edit cmds; solves are not edits and are never journaled.
  EXPECT_EQ(report->replayed, 4);
  EXPECT_EQ(report->truncated, 0);
  EXPECT_EQ(report->skipped, 0);
  EXPECT_EQ(report->fingerprint_mismatches, 0);
  EXPECT_EQ(report->replay_failures, 0);

  // The next open ADOPTS the recovered session rather than kAlreadyExists.
  bool adopted = false;
  ASSERT_TRUE(router.Open("alice", "d0", &adopted).ok());
  EXPECT_TRUE(adopted);

  // The recovered constraint state proves exactly what the uninterrupted
  // run proved — and what a serial replay proves.
  Slot solve;
  SubmitAndWait(&router, "alice", Cmd(SessionCommand::Kind::kSolve), &solve);
  ASSERT_TRUE(solve.outcome.ok()) << solve.outcome.status().ToString();
  EXPECT_TRUE(solve.outcome->result.proven_optimal);
  EXPECT_EQ(solve.outcome->result.error, live_error);
  EXPECT_EQ(solve.outcome->result.error, rig.SerialReplayError());

  // The report is also surfaced through Stats() for the wire layer.
  RegistryRouterStats stats = router.Stats();
  EXPECT_EQ(stats.recovered.sessions, 1);
  EXPECT_EQ(stats.recovered.replayed, 4);

  // Recording was re-enabled once recovery finished: a fresh edit after
  // adoption journals again (journal_records counts THIS process's
  // appends — replayed history belongs to the dead one).
  EXPECT_EQ(stats.journal_records, 0);
  Slot edit;
  SubmitAndWait(&router, "alice",
                Cmd(SessionCommand::Kind::kMinWeight, "A2", 0.01), &edit);
  ASSERT_TRUE(edit.outcome.ok()) << edit.outcome.status().ToString();
  EXPECT_EQ(router.Stats().journal_records, 1);
}

TEST(ChaosRecoveryTest, CorruptAndTornJournalLinesAreCountedNotFatal) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path, /*seed=*/902);

  {
    RegistryRouter router(rig.options);
    rig.Register(&router);
    ASSERT_TRUE(router.Open("alice", "d0").ok());
    for (const SessionCommand& cmd : rig.Edits()) {
      Slot slot;
      SubmitAndWait(&router, "alice", cmd, &slot);
      ASSERT_TRUE(slot.outcome.ok()) << slot.outcome.status().ToString();
    }
  }

  // Vandalize the journal the way real crashes and disk corruption do: a
  // garbage line in the middle of history, then a torn final append.
  {
    std::ofstream out(dir.File("d0.journal"),
                      std::ios::binary | std::ios::app);
    out << "not a journal record\n";
    out << "RHJ1 00000000 5 torn";  // no newline: a crash mid-write
  }

  RegistryRouter router(rig.options);
  rig.Register(&router);
  auto report = router.RecoverFromJournals();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sessions, 1);
  EXPECT_EQ(report->replayed, 4);
  EXPECT_EQ(report->skipped, 1);
  EXPECT_EQ(report->truncated, 1);

  bool adopted = false;
  ASSERT_TRUE(router.Open("alice", "d0", &adopted).ok());
  EXPECT_TRUE(adopted);
  Slot solve;
  SubmitAndWait(&router, "alice", Cmd(SessionCommand::Kind::kSolve), &solve);
  ASSERT_TRUE(solve.outcome.ok()) << solve.outcome.status().ToString();
  EXPECT_TRUE(solve.outcome->result.proven_optimal);
  EXPECT_EQ(solve.outcome->result.error, rig.SerialReplayError());
}

TEST(ChaosRecoveryTest, FingerprintMismatchDropsTheSessionAndFreesTheName) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path, /*seed=*/903);

  {
    RegistryRouter router(rig.options);
    rig.Register(&router);
    ASSERT_TRUE(router.Open("alice", "d0").ok());
    Slot slot;
    SubmitAndWait(&router, "alice",
                  Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.05), &slot);
    ASSERT_TRUE(slot.outcome.ok()) << slot.outcome.status().ToString();
  }

  // The CSV changed under the journal: same id, different values. The
  // journaled session must NOT replay against the wrong data.
  rig.data.set_value(0, 0, rig.data.value(0, 0) + 0.25);
  RegistryRouter router(rig.options);
  rig.Register(&router);
  auto report = router.RecoverFromJournals();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sessions, 0);
  EXPECT_EQ(report->fingerprint_mismatches, 1);

  // The name is free: a fresh open succeeds and is NOT an adoption.
  bool adopted = true;
  ASSERT_TRUE(router.Open("alice", "d0", &adopted).ok());
  EXPECT_FALSE(adopted);
}

TEST(ChaosJournalTest, FsyncFailureBacksOffThenDegradesToJournalOffMode) {
  TempDir dir;
  FaultGuard guard;
  JournalOptions options;
  options.fsync_every = 1;
  options.max_retries = 2;  // 1ms + 2ms of backoff, then give up
  auto journal =
      SessionJournal::Open(dir.File("d.journal"), "d", 1, options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  FaultInjector::Global().Arm(faults::kJournalFsyncFail, 1, /*count=*/-1);
  (*journal)->LogOpen("alice");

  JournalStats stats = (*journal)->Stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.fsync_failures, options.max_retries + 1);
  EXPECT_EQ(stats.records_appended, 1);

  // Journal-off mode: the server keeps serving, appends are dropped.
  (*journal)->LogCommand("alice",
                         Cmd(SessionCommand::Kind::kMinWeight, "A0", 0.1));
  EXPECT_EQ((*journal)->Stats().records_appended, 1);

  // The record written before degradation is still on disk (written, just
  // never fsynced) and reads back.
  FaultInjector::Global().Reset();
  auto readback = SessionJournal::Read(dir.File("d.journal"));
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->replayed, 1);
}

TEST(ChaosJournalTest, RotateFailureKeepsAppendingOnTheActiveSegment) {
  TempDir dir;
  FaultGuard guard;
  JournalOptions options;
  options.fsync_every = 1;
  options.rotate_bytes = 64;  // every record crosses the threshold
  auto journal =
      SessionJournal::Open(dir.File("d.journal"), "d", 1, options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  // The first rotation attempt fails (rename error); rotation is an
  // optimization, so the journal must keep appending, not degrade.
  FaultInjector::Global().Arm(faults::kJournalRotateFail, 1, /*count=*/1);
  for (int i = 0; i < 4; ++i) {
    (*journal)->LogCommand(
        "alice", Cmd(SessionCommand::Kind::kMinWeight,
                     "A" + std::to_string(i), 0.1 * (i + 1)));
  }
  JournalStats stats = (*journal)->Stats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.records_appended, 4);
  EXPECT_GE(stats.rotations, 1);  // later crossings rotated fine

  // Every record survives, across the sealed segment(s) and active file.
  journal->reset();
  auto readback = SessionJournal::Read(dir.File("d.journal"));
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->replayed, 4);
  EXPECT_EQ(readback->truncated, 0);
  EXPECT_EQ(readback->skipped, 0);
}

TEST(ChaosShedTest, OverloadShedsNewWorkWithARetryAfterHint) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path, /*seed=*/904);
  rig.options.journal_dir.clear();  // shedding is orthogonal to durability
  rig.options.server.max_pending_commands = 1;

  RegistryRouter router(rig.options);
  rig.Register(&router);
  ASSERT_TRUE(router.Open("alice", "d0").ok());

  // A 1ms strand delay widens the dequeue->execute window so the second
  // submit deterministically lands while the first is still pending.
  FaultInjector::Global().Arm(faults::kStrandDelayMs, 1, /*count=*/-1);

  Status shed;
  for (int attempt = 0; attempt < 50 && shed.ok(); ++attempt) {
    auto sink = [](const std::string&, const Result<SessionStepOutcome>&) {};
    Status first =
        router.Submit("alice", Cmd(SessionCommand::Kind::kSolve), sink);
    if (!first.ok()) {
      shed = first;
      break;
    }
    Status second =
        router.Submit("alice", Cmd(SessionCommand::Kind::kSolve), sink);
    if (!second.ok()) {
      shed = second;
      break;
    }
    router.Drain();
  }
  ASSERT_FALSE(shed.ok()) << "watermark 1 never shed a back-to-back submit";
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();
  EXPECT_NE(shed.message().find("RETRY-AFTER="), std::string::npos)
      << shed.ToString();
  router.Drain();
  EXPECT_GE(router.Stats().commands_shed, 1);

  // Accepted work always ran to completion — shedding refused work at the
  // door, it never cancelled anything in flight.
  EXPECT_EQ(router.Stats().pending_commands, 0);
}

TEST(ChaosWireTest, DeadlineVerbRoundTripsAndRejectsBadValues) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path, /*seed=*/905);
  rig.options.journal_dir.clear();

  RegistryRouter router(rig.options);
  rig.Register(&router);

  std::istringstream in(
      "open a d0\n"
      "deadline 10000\n"
      "a solve\n"
      "deadline 0\n"
      "deadline\n"
      "deadline -5\n"
      "deadline soon\n"
      "quit\n");
  std::ostringstream out;
  ASSERT_TRUE(ServeStream(&router, in, out).ok());

  // Verb acks are synchronous but command completions arrive from strand
  // threads, so the solve ack may interleave anywhere after its submit —
  // assert on the response SET, not on positions.
  std::vector<std::string> lines = Split(out.str(), '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  ASSERT_EQ(lines.size(), 8u) << out.str();
  EXPECT_EQ(lines[0], "ok open a d0");
  int solves = 0, wire_errors = 0, deadline_acks = 0, quits = 0;
  for (const std::string& line : lines) {
    if (line.rfind("ok a line=3 error=", 0) == 0) {
      ++solves;
      // A 10s budget is no budget at all for this instance: still proven.
      EXPECT_NE(line.find("proven=yes"), std::string::npos) << line;
    } else if (line.rfind("err - wire line", 0) == 0) {
      ++wire_errors;
    } else if (line == "ok deadline 10000" || line == "ok deadline 0") {
      ++deadline_acks;
    } else if (line == "ok quit") {
      ++quits;
    }
  }
  EXPECT_EQ(solves, 1) << out.str();
  EXPECT_EQ(deadline_acks, 2) << out.str();
  EXPECT_EQ(wire_errors, 3) << out.str();
  EXPECT_EQ(quits, 1) << out.str();
}

TEST(ChaosWireTest, EofWithoutQuitCountsAnAbortedClose) {
  TempDir dir;
  FaultGuard guard;
  RecoveryRig rig(dir.path, /*seed=*/906);
  rig.options.journal_dir.clear();

  RegistryRouter router(rig.options);
  rig.Register(&router);
  ServeStreamOptions serve_options;
  serve_options.connection_scoped_clients = true;

  {
    // A connection that vanishes mid-session: EOF with no quit.
    std::istringstream in("open a d0\na min-weight A0 0.05\n");
    std::ostringstream out;
    ASSERT_TRUE(ServeStream(&router, in, out, serve_options).ok());
  }
  RegistryRouterStats stats = router.Stats();
  EXPECT_EQ(stats.closes_aborted, 1);
  EXPECT_EQ(stats.closes_graceful, 0);

  {
    // A well-mannered connection: quit closes its clients gracefully.
    std::istringstream in("open b d0\nquit\n");
    std::ostringstream out;
    ASSERT_TRUE(ServeStream(&router, in, out, serve_options).ok());
  }
  stats = router.Stats();
  EXPECT_EQ(stats.closes_aborted, 1);
  EXPECT_EQ(stats.closes_graceful, 1);
}

// ---------------------------------------------------------------------------
// Subprocess kill tests: a real `rankhow_cli --listen` server over loopback
// TCP, killed for real. Filtered out of the tsan run by chaos_tests_nokill.
// ---------------------------------------------------------------------------

/// A blocking line-oriented test client over one TCP socket, with a
/// receive timeout so a dead server can never hang the suite.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  bool ConnectTcp(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      return false;
    }
    timeval tv;
    tv.tv_sec = 60;  // generous: solves on a loaded 1-core box are slow
    tv.tv_usec = 0;
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
  }

  bool Send(const std::string& text) {
    const char* p = text.data();
    size_t left = text.size();
    while (left > 0) {
      ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  }

  /// One response line (without the newline); nullopt on EOF/timeout.
  std::optional<std::string> ReadLine() {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[1024];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The CLI binary under test. CMake exports RANKHOW_CLI pointing at the
/// built tool; absent (manual gtest run outside the build tree), skip.
std::string CliBinaryOrEmpty() {
  const char* env = ::getenv("RANKHOW_CLI");
  std::string path = env != nullptr ? env : "./rankhow_cli";
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || (st.st_mode & S_IXUSR) == 0) {
    return "";
  }
  return path;
}

/// A spawned `rankhow_cli --listen=127.0.0.1:0` server process. stderr
/// (where the CLI reports its bound port and recovery stats) goes to a
/// file the test polls and asserts on.
struct ServerProcess {
  pid_t pid = -1;
  std::string stderr_path;

  /// Fork/execs the server; `faults_env` arms RANKHOW_FAULTS in the child
  /// (empty = explicitly unset, so injection never leaks across spawns).
  static ServerProcess Spawn(const std::string& binary,
                             const std::vector<std::string>& args,
                             const std::string& stderr_path,
                             const std::string& faults_env) {
    ServerProcess proc;
    proc.stderr_path = stderr_path;
    pid_t pid = ::fork();
    if (pid == 0) {
      const int err = ::open(stderr_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::dup2(err, 1);
        ::close(err);
      }
      if (faults_env.empty()) {
        ::unsetenv("RANKHOW_FAULTS");
      } else {
        ::setenv("RANKHOW_FAULTS", faults_env.c_str(), 1);
      }
      std::vector<char*> argv;
      std::vector<std::string> storage = args;
      storage.insert(storage.begin(), binary);
      for (std::string& a : storage) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      ::_exit(127);
    }
    proc.pid = pid;
    return proc;
  }

  /// Polls stderr for the "listening on HOST:PORT" banner; -1 on timeout
  /// or child death.
  int WaitForPort(int timeout_ms = 20000) {
    for (int waited = 0; waited < timeout_ms; waited += 50) {
      const std::string text = ReadWholeFile(stderr_path);
      const size_t at = text.find("listening on ");
      if (at != std::string::npos) {
        const size_t spec_begin = at + std::strlen("listening on ");
        const size_t spec_end = text.find(' ', spec_begin);
        if (spec_end == std::string::npos) continue;  // banner mid-write
        const std::string spec =
            text.substr(spec_begin, spec_end - spec_begin);
        const size_t colon = spec.rfind(':');
        if (colon == std::string::npos) return -1;
        auto port = ParseInt(spec.substr(colon + 1));
        return port.ok() ? static_cast<int>(*port) : -1;
      }
      int status = 0;
      if (pid > 0 && ::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;  // child died before listening (exec failed, bad flags)
        return -1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return -1;
  }

  /// SIGKILL + reap: the no-goodbyes death the journal must survive.
  void Kill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    Reap();
  }

  /// Blocks until the child is gone; returns its wait status (0 if
  /// already reaped).
  int Reap() {
    if (pid <= 0) return 0;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }

  ~ServerProcess() { Kill(); }
};

/// The kill tests' fixture: a ranked CSV on disk, the matching serial
/// ground truth computed in-process, and the server argument list.
struct KillRig {
  TempDir dir;
  std::string csv_path;
  std::string journal_dir;
  std::string warm_dir;
  CliDataSpec spec;
  CliProblem problem;
  bool ok = false;

  KillRig() {
    csv_path = dir.File("players.csv");
    journal_dir = dir.Subdir("journal");
    warm_dir = dir.Subdir("warmcache");
    std::ofstream csv(csv_path);
    // A fixed instance, not a random one: the suite's edits must stay
    // provable in milliseconds (random 10x3 tables occasionally produce
    // pathological spatial searches that blow the solve budget).
    csv << "id,A0,A1,A2\n"
           "t0,0.701572,0.053770,0.153893\n"
           "t1,0.284070,0.472286,0.695374\n"
           "t2,0.170754,0.476345,0.164456\n"
           "t3,0.708557,0.220187,0.037273\n"
           "t4,0.415417,0.960246,0.512896\n"
           "t5,0.076767,0.612669,0.529445\n"
           "t6,0.231850,0.510558,0.282811\n"
           "t7,0.676359,0.861859,0.629128\n"
           "t8,0.822337,0.790560,0.102615\n"
           "t9,0.205545,0.977423,0.952639\n";
    csv.close();

    spec.id_column = "id";
    spec.k = 4;  // file order ranks the first four rows
    auto table = ReadCsvFile(csv_path);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    if (!table.ok()) return;
    auto assembled = AssembleCliProblem(*table, spec);
    EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
    if (!assembled.ok()) return;
    problem = *std::move(assembled);
    ok = true;
  }

  /// Server flags matching ServerSolverOptions() below (the tight test
  /// epsilons keep these 10-tuple solves proven in milliseconds).
  /// `warm_cache` adds --warm-cache-dir for the restart-warm tests.
  std::vector<std::string> ServerArgs(bool warm_cache = false) const {
    std::vector<std::string> args = {
        "--listen=127.0.0.1:0", "--data=" + csv_path,
        "--journal-dir=" + journal_dir, "--journal-fsync=1",
        "--strategy=spatial",   "--threads=1",
        "--id=id",              "--k=4",
        "--eps=5e-7",           "--eps1=1e-6",
        "--eps2=0"};
    if (warm_cache) args.push_back("--warm-cache-dir=" + warm_dir);
    return args;
  }

  std::string CacheFile() const { return warm_dir + "/warm.cache"; }

  /// The solver configuration the flags above give the server.
  RankHowOptions ServerSolverOptions() const {
    RankHowOptions options;
    options.eps = TestEps();
    options.strategy = SolveStrategy::kSpatial;
    options.num_threads = 1;
    options.time_limit_seconds = 60;
    return options;
  }

  /// Serial uninterrupted replay of `edit_lines` + solve over the same
  /// CSV with the same solver configuration: the proven error the
  /// recovered server must reproduce exactly.
  long SerialReplayError(const std::vector<std::string>& edit_lines) const {
    SolveSession replay(Dataset(problem.data), Ranking(problem.given),
                        ServerSolverOptions());
    std::string script;
    for (const std::string& line : edit_lines) script += line + "\n";
    script += "solve\n";
    auto parsed = ParseSessionScript(script);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    long error = -1;
    for (const SessionCommand& cmd : *parsed) {
      auto out = ExecuteSessionCommand(&replay, cmd, problem.labels);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_TRUE(out->result.proven_optimal);
      error = out->result.error;
    }
    return error;
  }
};

/// "... name=V ..." -> V, or -1 when the field is absent/garbled. Works on
/// solve acks ("error=", "nodes=") and `stats` lines ("cache_hits=") alike.
long ParseLongField(const std::string& text, const std::string& name) {
  const std::string needle = " " + name + "=";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  const size_t begin = at + needle.size();
  const size_t end = text.find(' ', begin);
  auto value = ParseInt(
      text.substr(begin, end == std::string::npos ? end : end - begin));
  return value.ok() ? static_cast<long>(*value) : -1;
}

/// "ok alice line=N error=E bound=... proven=yes ..." -> E, or -1.
long ParseErrorField(const std::string& ack) {
  return ParseLongField(ack, "error");
}

TEST(ChaosKillTest, SigkilledServerRecoversIdenticalProvenOptima) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  KillRig rig;
  ASSERT_TRUE(rig.ok);

  const std::vector<std::string> edits = {"min-weight A0 0.05",
                                          "max-weight A1 0.6",
                                          "order t0>t1"};

  // Act 1: a live server takes three acked edits, then dies by SIGKILL.
  {
    ServerProcess server = ServerProcess::Spawn(
        binary, rig.ServerArgs(), rig.dir.File("server1.err"), "");
    const int port = server.WaitForPort();
    if (port < 0 && server.pid < 0) {
      GTEST_SKIP() << "server failed to start: "
                   << ReadWholeFile(server.stderr_path);
    }
    ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);

    WireClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(client.Send("open alice players\n"));
    auto ack = client.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open alice players");
    for (const std::string& edit : edits) {
      ASSERT_TRUE(client.Send("alice " + edit + "\n"));
      auto line = client.ReadLine();
      ASSERT_TRUE(line.has_value()) << edit << ": no ack";
      EXPECT_EQ(line->rfind("ok alice ", 0), 0u) << *line;
    }
    // Every edit above was acked, and --journal-fsync=1 synced each one
    // before its ack. SIGKILL: no destructors, no flushes, no goodbyes.
    server.Kill();
  }

  // Act 2: a fresh process over the same journal directory recovers the
  // session; the reconnecting client adopts it and proves the exact
  // optimum an uninterrupted serial replay proves.
  ServerProcess server = ServerProcess::Spawn(
      binary, rig.ServerArgs(), rig.dir.File("server2.err"), "");
  const int port = server.WaitForPort();
  ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
  const std::string banner = ReadWholeFile(server.stderr_path);
  EXPECT_NE(banner.find("recover "), std::string::npos) << banner;
  EXPECT_NE(banner.find("sessions=1"), std::string::npos) << banner;

  WireClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(client.Send("open alice players\n"));
  auto ack = client.ReadLine();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "ok open alice players recovered");

  ASSERT_TRUE(client.Send("alice solve\n"));
  auto solved = client.ReadLine();
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->rfind("ok alice ", 0), 0u) << *solved;
  EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
  EXPECT_EQ(ParseErrorField(*solved), rig.SerialReplayError(edits))
      << "recovered optimum diverged from the serial replay: " << *solved;

  ASSERT_TRUE(client.Send("quit\n"));
  auto quit = client.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  server.Kill();
}

TEST(ChaosCrashTest, InjectedCrashInsideJournalAppendReplaysThePrefix) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  KillRig rig;
  ASSERT_TRUE(rig.ok);

  // Act 1: the server SIGKILLs ITSELF inside the second LogCommand, right
  // after the record hits the file — the journaled-but-possibly-unacked
  // side of the crash contract.
  {
    ServerProcess server = ServerProcess::Spawn(
        binary, rig.ServerArgs(), rig.dir.File("server1.err"),
        "crash-after-journal-append=2");
    const int port = server.WaitForPort();
    if (port < 0 && server.pid < 0) {
      GTEST_SKIP() << "server failed to start: "
                   << ReadWholeFile(server.stderr_path);
    }
    ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);

    WireClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
    ASSERT_TRUE(client.Send("open alice players\n"));
    auto ack = client.ReadLine();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(*ack, "ok open alice players");

    ASSERT_TRUE(client.Send("alice min-weight A0 0.05\n"));
    auto first = client.ReadLine();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->rfind("ok alice ", 0), 0u) << *first;

    // The second edit's append lands, then the process dies mid-call: the
    // client never sees an ack.
    ASSERT_TRUE(client.Send("alice max-weight A1 0.6\n"));
    auto second = client.ReadLine();
    EXPECT_FALSE(second.has_value())
        << "server survived an armed crash point: " << *second;

    const int status = server.Reap();
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "expected a SIGKILL death, got wait status " << status;
  }

  // Act 2: recovery replays BOTH edits — acked ⊆ journaled, and the
  // journaled-unacked edit replays harmlessly (the client re-submitting
  // it after reconnect would be idempotent).
  ServerProcess server = ServerProcess::Spawn(
      binary, rig.ServerArgs(), rig.dir.File("server2.err"), "");
  const int port = server.WaitForPort();
  ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
  EXPECT_NE(ReadWholeFile(server.stderr_path).find("sessions=1"),
            std::string::npos)
      << ReadWholeFile(server.stderr_path);

  WireClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
  ASSERT_TRUE(client.Send("open alice players\n"));
  auto ack = client.ReadLine();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, "ok open alice players recovered");

  ASSERT_TRUE(client.Send("alice solve\nquit\n"));
  auto solved = client.ReadLine();
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
  EXPECT_EQ(ParseErrorField(*solved),
            rig.SerialReplayError(
                {"min-weight A0 0.05", "max-weight A1 0.6"}))
      << "recovered optimum diverged from the serial replay: " << *solved;
  server.Kill();
}

// ---------------------------------------------------------------------------
// Warm-cache restart tests: the persistent fingerprint-keyed cache (see
// docs/OPERATIONS.md "Warm-start cache") must survive a SIGKILL and make
// the restarted server's first solve at least as cheap as the cold one —
// with the SAME proven error — and a vandalized cache file must degrade
// loudly to cache-off without changing any result.
// ---------------------------------------------------------------------------

/// Opens a session, applies `edits`, solves, and returns the solve ack.
/// The caller owns interpretation (error, nodes) and the connection stays
/// open — killing the server afterwards is a genuine mid-session death.
std::optional<std::string> OpenEditSolve(WireClient* client,
                                         const std::vector<std::string>& edits,
                                         bool expect_recovered) {
  if (!client->Send("open alice players\n")) return std::nullopt;
  auto ack = client->ReadLine();
  if (!ack.has_value()) return std::nullopt;
  EXPECT_EQ(*ack, expect_recovered ? "ok open alice players recovered"
                                   : "ok open alice players");
  for (const std::string& edit : edits) {
    if (!client->Send("alice " + edit + "\n")) return std::nullopt;
    auto line = client->ReadLine();
    if (!line.has_value()) return std::nullopt;
    EXPECT_EQ(line->rfind("ok alice ", 0), 0u) << *line;
  }
  if (!client->Send("alice solve\n")) return std::nullopt;
  return client->ReadLine();
}

/// Polls until <warm-dir>/warm.cache is non-empty. The proven winner is
/// persisted by a background writer thread; a SIGKILL test must wait for
/// the record to actually land, or it would (correctly!) observe that an
/// unwritten record does not survive death.
bool WaitForCacheRecord(const std::string& cache_file,
                        int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    struct stat st;
    if (::stat(cache_file.c_str(), &st) == 0 && st.st_size > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(ChaosKillTest, RestartAfterKillWarmStartsFromCacheWithIdenticalError) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  KillRig rig;
  ASSERT_TRUE(rig.ok);
  const std::vector<std::string> edits = {"min-weight A0 0.05",
                                          "max-weight A1 0.6",
                                          "order t0>t1"};

  // Act 1: the cold run. Edits, one proven solve (published to the cache),
  // then SIGKILL mid-session — no quit, no destructors, no flushes.
  long cold_error = -1;
  long cold_nodes = -1;
  {
    ServerProcess server = ServerProcess::Spawn(
        binary, rig.ServerArgs(/*warm_cache=*/true),
        rig.dir.File("server1.err"), "");
    const int port = server.WaitForPort();
    if (port < 0 && server.pid < 0) {
      GTEST_SKIP() << "server failed to start: "
                   << ReadWholeFile(server.stderr_path);
    }
    ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);

    WireClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
    auto solved = OpenEditSolve(&client, edits, /*expect_recovered=*/false);
    ASSERT_TRUE(solved.has_value());
    EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
    cold_error = ParseErrorField(*solved);
    cold_nodes = ParseLongField(*solved, "nodes");
    ASSERT_GE(cold_error, 0) << *solved;
    ASSERT_GE(cold_nodes, 0) << *solved;

    ASSERT_TRUE(WaitForCacheRecord(rig.CacheFile()))
        << "proven winner never reached " << rig.CacheFile();
    server.Kill();
  }

  // Act 2: a fresh process on the same journal + cache directories. The
  // journal rebuilds the session; the cache hands the first solve the
  // proven winner AND its error as an external bound, so the re-solve
  // closes at (in fact below) the cold node count with the identical
  // proven error.
  ServerProcess server = ServerProcess::Spawn(
      binary, rig.ServerArgs(/*warm_cache=*/true),
      rig.dir.File("server2.err"), "");
  const int port = server.WaitForPort();
  ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
  EXPECT_NE(ReadWholeFile(server.stderr_path).find("sessions=1"),
            std::string::npos)
      << ReadWholeFile(server.stderr_path);

  WireClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
  // The replayed journal already holds the edits; re-sending them would
  // change the constraint set (a second `order t0>t1`) and so the problem
  // fingerprint. Adopt and solve as-is — the exact cache key of act 1.
  auto solved = OpenEditSolve(&client, {}, /*expect_recovered=*/true);
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
  EXPECT_EQ(ParseErrorField(*solved), cold_error)
      << "warm-started optimum diverged from the cold solve: " << *solved;
  EXPECT_EQ(ParseErrorField(*solved), rig.SerialReplayError(edits));
  const long warm_nodes = ParseLongField(*solved, "nodes");
  ASSERT_GE(warm_nodes, 0) << *solved;
  EXPECT_LE(warm_nodes, cold_nodes)
      << "the cache-seeded re-solve explored MORE nodes than cold: "
      << *solved;

  // The draw is visible in stats: the restarted process loaded the dead
  // one's record and served it as a hit.
  ASSERT_TRUE(client.Send("stats\n"));
  auto stats = client.ReadLine();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->rfind("ok stats ", 0), 0u) << *stats;
  EXPECT_GE(ParseLongField(*stats, "cache_loaded"), 1) << *stats;
  EXPECT_GE(ParseLongField(*stats, "cache_hits"), 1) << *stats;
  EXPECT_EQ(ParseLongField(*stats, "cache_degraded"), 0) << *stats;

  ASSERT_TRUE(client.Send("quit\n"));
  auto quit = client.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  server.Kill();
}

TEST(ChaosKillTest, CorruptedWarmCacheDegradesLoudlyWithoutChangingResults) {
  const std::string binary = CliBinaryOrEmpty();
  if (binary.empty()) {
    GTEST_SKIP() << "rankhow_cli not found (set RANKHOW_CLI)";
  }
  KillRig rig;
  ASSERT_TRUE(rig.ok);
  const std::vector<std::string> edits = {"min-weight A0 0.05",
                                          "max-weight A1 0.6"};
  const long want_error = rig.SerialReplayError(edits);

  // Act 1: seed the cache with one proven winner, then die by SIGKILL.
  {
    ServerProcess server = ServerProcess::Spawn(
        binary, rig.ServerArgs(/*warm_cache=*/true),
        rig.dir.File("server1.err"), "");
    const int port = server.WaitForPort();
    if (port < 0 && server.pid < 0) {
      GTEST_SKIP() << "server failed to start: "
                   << ReadWholeFile(server.stderr_path);
    }
    ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
    WireClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
    auto solved = OpenEditSolve(&client, edits, /*expect_recovered=*/false);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(ParseErrorField(*solved), want_error) << *solved;
    ASSERT_TRUE(WaitForCacheRecord(rig.CacheFile()));
    server.Kill();
  }

  // Act 2: vandalize the cache CONTENTS (every record garbled). The
  // restarted server must say so on stderr, serve with zero loaded
  // entries, and still prove the exact same optimum.
  {
    std::ofstream out(rig.CacheFile(), std::ios::binary | std::ios::trunc);
    out << "total garbage, not a cache record\n";
    out << "RHW1 00000000 4 win \n";  // framed but CRC-wrong
  }
  {
    ServerProcess server = ServerProcess::Spawn(
        binary, rig.ServerArgs(/*warm_cache=*/true),
        rig.dir.File("server2.err"), "");
    const int port = server.WaitForPort();
    ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
    EXPECT_NE(ReadWholeFile(server.stderr_path).find("corrupt"),
              std::string::npos)
        << "corruption was swallowed silently: "
        << ReadWholeFile(server.stderr_path);

    WireClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
    auto solved = OpenEditSolve(&client, {}, /*expect_recovered=*/true);
    ASSERT_TRUE(solved.has_value());
    EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
    EXPECT_EQ(ParseErrorField(*solved), want_error)
        << "a corrupt cache changed a RESULT: " << *solved;

    ASSERT_TRUE(client.Send("stats\n"));
    auto stats = client.ReadLine();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(ParseLongField(*stats, "cache_loaded"), 0) << *stats;
    EXPECT_GE(ParseLongField(*stats, "cache_skipped"), 2) << *stats;
    EXPECT_EQ(ParseLongField(*stats, "cache_hits"), 0) << *stats;
    server.Kill();
  }

  // Act 3: make the cache file UNOPENABLE (a directory squats on its
  // path). Open fails entirely; the server must announce cache-off and
  // keep serving correct results with the cache disabled.
  ::unlink(rig.CacheFile().c_str());
  ::mkdir(rig.CacheFile().c_str(), 0755);
  ServerProcess server = ServerProcess::Spawn(
      binary, rig.ServerArgs(/*warm_cache=*/true),
      rig.dir.File("server3.err"), "");
  const int port = server.WaitForPort();
  ASSERT_GT(port, 0) << ReadWholeFile(server.stderr_path);
  EXPECT_NE(ReadWholeFile(server.stderr_path).find("serving cache-off"),
            std::string::npos)
      << "open failure was swallowed silently: "
      << ReadWholeFile(server.stderr_path);

  WireClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port));
  auto solved = OpenEditSolve(&client, {}, /*expect_recovered=*/true);
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(solved->find("proven=yes"), std::string::npos) << *solved;
  EXPECT_EQ(ParseErrorField(*solved), want_error)
      << "cache-off mode changed a RESULT: " << *solved;

  ASSERT_TRUE(client.Send("stats\n"));
  auto stats = client.ReadLine();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(ParseLongField(*stats, "cache_hits"), 0) << *stats;
  EXPECT_EQ(ParseLongField(*stats, "cache_entries"), 0) << *stats;

  ASSERT_TRUE(client.Send("quit\n"));
  auto quit = client.ReadLine();
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(*quit, "ok quit");
  server.Kill();
}

}  // namespace
}  // namespace rankhow
