#include "tests/support/protocol_conformance.h"

#include <string>

#include <gtest/gtest.h>

#include "net/dial.h"

namespace rankhow {
namespace conformance {

void RunProtocolVerbWalk(const ListenAddress& endpoint,
                         const ConformanceOptions& options) {
  LineClient client;
  DialOptions dial;
  dial.recv_timeout_s = 60;  // a dead endpoint must never hang the suite
  Status connected = client.Connect(endpoint, dial);
  ASSERT_TRUE(connected.ok()) << connected.ToString();

  auto roundtrip = [&client](const std::string& request) -> std::string {
    if (!client.SendLine(request)) return "<send failed>";
    auto line = client.ReadLine();
    return line.has_value() ? *line : "<no response>";
  };

  // open, both forms (dataset-id routing and default-dataset).
  EXPECT_EQ(roundtrip("open alice d1"), "ok open alice d1");
  EXPECT_EQ(roundtrip("open bob"), "ok open bob d0");
  // The full session-command grammar, one verb per request. The line
  // numbers are the per-connection request count — a coordinator must
  // renumber worker acks back into this connection's numbering.
  EXPECT_EQ(roundtrip("alice solve").rfind("ok alice line=3 error=", 0), 0u);
  EXPECT_EQ(roundtrip("alice min-weight A0 0.05")
                .rfind("ok alice line=4 error=", 0),
            0u);
  EXPECT_EQ(roundtrip("alice max-weight A1 0.6")
                .rfind("ok alice line=5 error=", 0),
            0u);
  EXPECT_EQ(roundtrip("alice drop min_A0").rfind("ok alice line=6", 0), 0u);
  EXPECT_EQ(roundtrip("alice order t0>t1").rfind("ok alice line=7", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps 4e-7").rfind("ok alice line=8", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps1 2e-6").rfind("ok alice line=9", 0), 0u);
  EXPECT_EQ(roundtrip("alice eps2 0").rfind("ok alice line=10", 0), 0u);
  EXPECT_EQ(roundtrip("alice objective topheavy")
                .rfind("ok alice line=11", 0),
            0u);
  EXPECT_EQ(roundtrip("alice append 0.5 0.5 0.5")
                .rfind("ok alice line=12", 0),
            0u);
  // stats: the router aggregate plus the transport fields the metered
  // server appends, documented field by field. The session-state counts
  // are exact in both modes — a coordinator proxies sessions, it does
  // not own any.
  const std::string stats = roundtrip("stats");
  EXPECT_EQ(stats.rfind(
                "ok stats registries=2 clients=2 datasets=3 commands=", 0),
            0u)
      << stats << " (datasets=3: alice's append forked a private COW copy)";
  for (const char* field :
       {" connections=", " frames_binary=", " backpressure_closes=",
        " writes_queued_peak=", " writes_retried=", " aborted_idle=",
        " aborted_backpressure=", " aborted_eof="}) {
    EXPECT_NE(stats.find(field), std::string::npos)
        << stats << " missing " << field;
  }
  // deadline: stream-scoped solve budget, 0 restores the default.
  EXPECT_EQ(roundtrip("deadline 30000"), "ok deadline 30000");
  EXPECT_EQ(roundtrip("deadline 0"), "ok deadline 0");
  // metrics: gauges plus per-verb latency histograms — by this point the
  // stream has recorded opens, solves, and edits.
  const std::string metrics = roundtrip("metrics");
  if (options.exact_transport_gauges) {
    EXPECT_EQ(metrics.rfind("ok metrics connections=1 ", 0), 0u) << metrics;
  } else {
    EXPECT_EQ(metrics.rfind("ok metrics connections=", 0), 0u) << metrics;
  }
  // Presence, not exact counts: a verb's latency is recorded just *after*
  // its response is emitted, so a fast client can land `metrics` before
  // the previous verb's sample does.
  for (const char* field :
       {" open.count=", " solve.count=", " edit.count=",
        " solve.p50_us=", " solve.p99_us=", " stats.count="}) {
    EXPECT_NE(metrics.find(field), std::string::npos)
        << metrics << " missing " << field;
  }
  // frame: a text->text "switch" round-trips without disturbing the
  // stream (binary-path equivalence is the transport suites' job).
  EXPECT_EQ(roundtrip("frame text"), "ok frame text");
  // Documented error replies: unknown verb, unknown client, bad dataset.
  EXPECT_EQ(roundtrip("alice frobnicate 1").rfind("err - wire line", 0), 0u);
  EXPECT_EQ(roundtrip("ghost solve"),
            "err ghost no client named ghost on this connection");
  EXPECT_EQ(roundtrip("open carol nope"),
            "err carol unknown dataset id: nope");
  // close, then quit.
  EXPECT_EQ(roundtrip("close alice"), "ok close alice");
  EXPECT_EQ(roundtrip("quit"), "ok quit");
  client.Close();
}

}  // namespace conformance
}  // namespace rankhow
