#ifndef RANKHOW_TESTS_SUPPORT_PROTOCOL_CONFORMANCE_H_
#define RANKHOW_TESTS_SUPPORT_PROTOCOL_CONFORMANCE_H_

/// \file protocol_conformance.h
/// The docs/PROTOCOL.md verb walk as a reusable fixture, parameterized
/// over the endpoint being spoken to. The same walk must pass against a
/// worker (`rankhow_cli --listen`) directly AND against that worker
/// behind `rankhow_coord` — the coordinator's transparency contract is
/// "clients cannot tell", and this fixture is the executable form of it.
///
/// Endpoint preconditions (the ServerFixture catalog shape):
///   * datasets `d0` and `d1` are served, `d0` the default;
///   * attributes are named A0..A2, tuples labelled t0..;
///   * the endpoint is fresh — the walk asserts exact registry/client
///     counts, so no other session may have touched it.
///
/// All assertions are GTest EXPECT/ASSERT; call from inside a TEST.

#include "net/socket_server.h"

namespace rankhow {
namespace conformance {

struct ConformanceOptions {
  /// Exact transport gauges (`metrics connections=1`) hold only when the
  /// endpoint is the worker itself. Behind a coordinator the worker's
  /// connection count includes health probes and pooled control
  /// connections, so the walk relaxes those asserts to field presence.
  /// Everything protocol-visible — ack texts, line numbers, error
  /// strings — stays exact in both modes.
  bool exact_transport_gauges = true;
};

/// Runs the complete documented verb set against `endpoint` over one
/// connection: open (both forms), the full session-command grammar,
/// stats, metrics, deadline, frame, the documented error replies,
/// close, and quit.
void RunProtocolVerbWalk(const ListenAddress& endpoint,
                         const ConformanceOptions& options =
                             ConformanceOptions());

}  // namespace conformance
}  // namespace rankhow

#endif  // RANKHOW_TESTS_SUPPORT_PROTOCOL_CONFORMANCE_H_
