#include "ranking/error_measures.h"

#include <gtest/gtest.h>

#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

TEST(KendallTauDistanceTest, PerfectOrderIsZero) {
  Ranking given = MustCreate({1, 2, 3, 4});
  EXPECT_EQ(KendallTauDistance(given, {1, 2, 3, 4}), 0);
}

TEST(KendallTauDistanceTest, FullReversal) {
  Ranking given = MustCreate({1, 2, 3, 4});
  EXPECT_EQ(KendallTauDistance(given, {4, 3, 2, 1}), 6);  // C(4,2)
  EXPECT_DOUBLE_EQ(KendallTauCoefficient(given, {4, 3, 2, 1}), -1.0);
}

TEST(KendallTauDistanceTest, SingleSwap) {
  Ranking given = MustCreate({1, 2, 3, 4});
  EXPECT_EQ(KendallTauDistance(given, {2, 1, 3, 4}), 1);
}

TEST(KendallTauDistanceTest, TiesAreNeutral) {
  // Tie in the given ranking: that pair never counts.
  Ranking given = MustCreate({1, 1, 3});
  EXPECT_EQ(KendallTauDistance(given, {2, 1, 3}), 0);
  // Tie in the approx ranking: not an inversion either.
  Ranking strict = MustCreate({1, 2, 3});
  EXPECT_EQ(KendallTauDistance(strict, {1, 1, 3}), 0);
}

TEST(KendallTauDistanceTest, IgnoresUnrankedTuples) {
  Ranking given = MustCreate({1, 2, kUnranked, kUnranked});
  // The ⊥ tuples' relative order is irrelevant.
  EXPECT_EQ(KendallTauDistance(given, {1, 2, 9, 3}), 0);
}

TEST(TopWeightedInversionTest, HeadMistakesCostMore) {
  Ranking given = MustCreate({1, 2, 3, 4});
  // Swap positions 1 and 2 vs swap positions 3 and 4.
  double head_swap = TopWeightedInversionError(given, {2, 1, 3, 4});
  double tail_swap = TopWeightedInversionError(given, {1, 2, 4, 3});
  EXPECT_DOUBLE_EQ(head_swap, 1.0);        // weight 1/1
  EXPECT_DOUBLE_EQ(tail_swap, 1.0 / 3.0);  // weight 1/3
  EXPECT_GT(head_swap, tail_swap);
}

TEST(KendallTauCoefficientTest, SingleTupleIsPerfect) {
  Ranking given = MustCreate({1, kUnranked});
  EXPECT_DOUBLE_EQ(KendallTauCoefficient(given, {1, 5}), 1.0);
}

// Property: tau distance is symmetric in complementary swaps and bounded by
// the pair count.
class KendallPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KendallPropertyTest, BoundsAndConsistency) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(2, 25));
  std::vector<double> s1(n);
  std::vector<double> s2(n);
  for (int i = 0; i < n; ++i) {
    s1[i] = rng.NextDouble();
    s2[i] = rng.NextDouble();
  }
  Ranking given = Ranking::FromScores(s1, n);
  auto approx = ScoreRankPositions(s2, 0.0);
  long d = KendallTauDistance(given, approx);
  long max_pairs = static_cast<long>(n) * (n - 1) / 2;
  EXPECT_GE(d, 0);
  EXPECT_LE(d, max_pairs);
  double tau = KendallTauCoefficient(given, approx);
  EXPECT_GE(tau, -1.0 - 1e-12);
  EXPECT_LE(tau, 1.0 + 1e-12);
  // Weighted error is bounded by distance (weights <= 1).
  EXPECT_LE(TopWeightedInversionError(given, approx),
            static_cast<double>(d) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
