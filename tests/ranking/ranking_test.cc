#include "ranking/ranking.h"

#include <gtest/gtest.h>

namespace rankhow {
namespace {

TEST(RankingTest, AcceptsValidRankingWithBottom) {
  auto r = Ranking::Create({1, 2, 3, 4, kUnranked, kUnranked});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->k(), 4);
  EXPECT_EQ(r->num_tuples(), 6);
  EXPECT_TRUE(r->IsRanked(0));
  EXPECT_FALSE(r->IsRanked(4));
}

TEST(RankingTest, AcceptsTies) {
  // [1, 1, 3, 3, ⊥, ⊥] from the paper's Sec. II.
  auto r = Ranking::Create({1, 1, 3, 3, kUnranked, kUnranked});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->k(), 4);
  EXPECT_EQ(r->position(0), 1);
  EXPECT_EQ(r->position(2), 3);
}

TEST(RankingTest, RejectsNotStartingAtOne) {
  // [2, 3, 4, 5, ⊥, ⊥] is invalid (paper Sec. II).
  auto r = Ranking::Create({2, 3, 4, 5, kUnranked, kUnranked});
  EXPECT_FALSE(r.ok());
}

TEST(RankingTest, RejectsExcessiveGap) {
  // [1, 1, 4, 4, ⊥, ⊥] is invalid: position 4 has only 2 tuples above.
  auto r = Ranking::Create({1, 1, 4, 4, kUnranked, kUnranked});
  EXPECT_FALSE(r.ok());
}

TEST(RankingTest, AcceptsCompetitionStyleTieGaps) {
  // 1,1,3 is the correct competition ranking after a tie at 1.
  auto r = Ranking::Create({1, 1, 3});
  ASSERT_TRUE(r.ok());
}

TEST(RankingTest, RejectsNonPositivePositions) {
  EXPECT_FALSE(Ranking::Create({0, 1}).ok());
  EXPECT_FALSE(Ranking::Create({-3, 1}).ok());
}

TEST(RankingTest, RejectsAllBottom) {
  EXPECT_FALSE(Ranking::Create({kUnranked, kUnranked}).ok());
}

TEST(RankingTest, RankedTuplesOrderedByPosition) {
  auto r = Ranking::Create({3, 1, kUnranked, 1, 4});
  ASSERT_TRUE(r.ok());
  // Positions: t1=1, t3=1 (tie, id order), t0=3, t4=4.
  EXPECT_EQ(r->ranked_tuples(), (std::vector<int>{1, 3, 0, 4}));
}

TEST(RankingFromScoresTest, BasicDescendingOrder) {
  Ranking r = Ranking::FromScores({0.5, 2.0, 1.0, 0.1}, 3);
  EXPECT_EQ(r.position(1), 1);
  EXPECT_EQ(r.position(2), 2);
  EXPECT_EQ(r.position(0), 3);
  EXPECT_EQ(r.position(3), kUnranked);
}

TEST(RankingFromScoresTest, TieEpsilonGroupsScores) {
  // Paper example: scores [2.2, 2.1, 2.0, 1.5] with eps 0.3 -> [1,1,1,4].
  Ranking r = Ranking::FromScores({2.2, 2.1, 2.0, 1.5}, 4, 0.3);
  EXPECT_EQ(r.position(0), 1);
  EXPECT_EQ(r.position(1), 1);
  EXPECT_EQ(r.position(2), 1);
  EXPECT_EQ(r.position(3), 4);
}

TEST(RankingFromScoresTest, TopKClosedUnderTies) {
  // k=2 but positions 2..3 tie: the tied tuple slips in.
  Ranking r = Ranking::FromScores({5.0, 3.0, 3.0, 1.0}, 2);
  EXPECT_EQ(r.position(0), 1);
  EXPECT_EQ(r.position(1), 2);
  EXPECT_EQ(r.position(2), 2);
  EXPECT_EQ(r.position(3), kUnranked);
  EXPECT_EQ(r.k(), 3);
}

TEST(RankingFromScoresTest, ExactTiesWithZeroEps) {
  Ranking r = Ranking::FromScores({9, 6, 6, 5}, 4);
  // Paper Sec. II: ranks 1, 2, 2, 4.
  EXPECT_EQ(r.position(0), 1);
  EXPECT_EQ(r.position(1), 2);
  EXPECT_EQ(r.position(2), 2);
  EXPECT_EQ(r.position(3), 4);
}

TEST(RankingWindowTest, ExtractsMiddleSliceKeepingPositions) {
  auto r = Ranking::Create({1, 2, 3, 4, 5, kUnranked});
  ASSERT_TRUE(r.ok());
  // Window keeps ORIGINAL positions (Sec. I: the scoring function should
  // place the slice tuples where the given ranking did).
  auto w = r->Window(3, 5);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->position(2), 3);
  EXPECT_EQ(w->position(3), 4);
  EXPECT_EQ(w->position(4), 5);
  EXPECT_EQ(w->position(0), kUnranked);
  EXPECT_EQ(w->k(), 3);
}

TEST(RankingWindowTest, RebasedExtractsMiddleSlice) {
  auto r = Ranking::Create({1, 2, 3, 4, 5, kUnranked});
  ASSERT_TRUE(r.ok());
  auto w = r->WindowRebased(3, 5);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->position(2), 1);
  EXPECT_EQ(w->position(3), 2);
  EXPECT_EQ(w->position(4), 3);
  EXPECT_EQ(w->position(0), kUnranked);
  EXPECT_EQ(w->k(), 3);
}

TEST(RankingWindowTest, HandlesTieStraddlingWindowEdge) {
  auto r = Ranking::Create({1, 2, 2, 4, 5});
  ASSERT_TRUE(r.ok());
  // Window [3,5]: only tuples at positions 4 and 5 are inside (nothing sits
  // at position 3 because of the tie at 2). They keep positions 4 and 5 —
  // an offset ranking whose smallest position exceeds the window's lo.
  auto w = r->Window(3, 5);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->position(3), 4);
  EXPECT_EQ(w->position(4), 5);
  EXPECT_EQ(w->k(), 2);
}

TEST(RankingWindowTest, RebasedHandlesTieStraddlingWindowEdge) {
  auto r = Ranking::Create({1, 2, 2, 4, 5});
  ASSERT_TRUE(r.ok());
  // Rebased: positions 4 and 5 re-rank to 1 and 2.
  auto w = r->WindowRebased(3, 5);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->position(3), 1);
  EXPECT_EQ(w->position(4), 2);
  EXPECT_EQ(w->k(), 2);
}

TEST(RankingWindowTest, OffsetValidationCatchesUnachievablePositions) {
  // Position 5 with only 3 tuples total can never be realized.
  EXPECT_FALSE(
      Ranking::Create({5, kUnranked, kUnranked}, RankingValidation::kOffset)
          .ok());
  // Position 3 of 3 tuples is fine even though nothing sits at 1 or 2.
  EXPECT_TRUE(
      Ranking::Create({3, kUnranked, kUnranked}, RankingValidation::kOffset)
          .ok());
  // Strict validation still requires position 1.
  EXPECT_FALSE(Ranking::Create({3, kUnranked, kUnranked}).ok());
}

TEST(RankingWindowTest, RejectsBadBounds) {
  auto r = Ranking::Create({1, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->Window(0, 2).ok());
  EXPECT_FALSE(r->Window(3, 2).ok());
  EXPECT_FALSE(r->Window(5, 9).ok());  // empty window
}

}  // namespace
}  // namespace rankhow
