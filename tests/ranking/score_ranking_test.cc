#include "ranking/score_ranking.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rankhow {
namespace {

TEST(ScoreRankPositionsTest, MatchesDefinitionTwo) {
  // Scores 9, 6, 6, 5 -> ranks 1, 2, 2, 4 (paper Sec. II).
  auto pos = ScoreRankPositions({9, 6, 6, 5}, 0.0);
  EXPECT_EQ(pos, (std::vector<int>{1, 2, 2, 4}));
}

TEST(ScoreRankPositionsTest, EpsilonTies) {
  // [2.2, 2.1, 2.0, 1.5] with eps 0.3 -> [1, 1, 1, 4].
  auto pos = ScoreRankPositions({2.2, 2.1, 2.0, 1.5}, 0.3);
  EXPECT_EQ(pos, (std::vector<int>{1, 1, 1, 4}));
}

TEST(ScoreRankPositionsOfTest, MatchesFullComputation) {
  Rng rng(3);
  std::vector<double> scores(200);
  for (double& s : scores) s = rng.NextGaussian();
  auto all = ScoreRankPositions(scores, 0.01);
  std::vector<int> subset = {0, 5, 17, 99, 150};
  auto some = ScoreRankPositionsOf(scores, subset, 0.01);
  for (size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(some[i], all[subset[i]]);
  }
}

TEST(PositionErrorTest, PerfectRankingHasZeroError) {
  auto given = Ranking::Create({1, 2, 3, kUnranked});
  ASSERT_TRUE(given.ok());
  // Scores that reproduce the ranking exactly.
  EXPECT_EQ(PositionErrorFromScores({10, 8, 5, 1}, *given, 0.0), 0);
}

TEST(PositionErrorTest, ExampleTwoFromPaper) {
  // Paper Example 2: labels [4,3,2,1]; prediction [3,2,4,1] puts r3 on top:
  // induced ranking [2,3,1,4], total position error 4.
  auto given = Ranking::Create({1, 2, 3, 4});
  ASSERT_TRUE(given.ok());
  EXPECT_EQ(PositionErrorFromScores({3, 2, 4, 1}, *given, 0.0), 4);
  // The other prediction [8,6,2,0] ranks perfectly.
  EXPECT_EQ(PositionErrorFromScores({8, 6, 2, 0}, *given, 0.0), 0);
}

TEST(PositionErrorTest, BottomTuplesBeatingTopCountsAgainstTop) {
  // Given: r0 first, r1 second, rest ⊥. If both ⊥ tuples outscore r0, its
  // induced position is 3 => error 2 (+ r1 displaced by 2).
  auto given = Ranking::Create({1, 2, kUnranked, kUnranked});
  ASSERT_TRUE(given.ok());
  EXPECT_EQ(PositionErrorFromScores({5, 4, 9, 8}, *given, 0.0), 4);
}

TEST(PositionErrorTest, UnrankedTuplesBelowTopKCostNothing) {
  auto given = Ranking::Create({1, 2, kUnranked, kUnranked});
  ASSERT_TRUE(given.ok());
  // ⊥ tuples in any order below the top-2: no error.
  EXPECT_EQ(PositionErrorFromScores({5, 4, 1, 2}, *given, 0.0), 0);
  EXPECT_EQ(PositionErrorFromScores({5, 4, 2, 1}, *given, 0.0), 0);
}

TEST(PositionErrorTest, WorksThroughDatasetInterface) {
  Dataset data({"A", "B"}, 3);
  data.set_value(0, 0, 3);
  data.set_value(0, 1, 0);
  data.set_value(1, 0, 2);
  data.set_value(1, 1, 0);
  data.set_value(2, 0, 1);
  data.set_value(2, 1, 10);
  auto given = Ranking::Create({1, 2, 3});
  ASSERT_TRUE(given.ok());
  // Weight fully on A: perfect. Weight fully on B: r2 jumps to 1st.
  EXPECT_EQ(PositionError(data, *given, {1.0, 0.0}, 0.0), 0);
  EXPECT_GT(PositionError(data, *given, {0.0, 1.0}, 0.0), 0);
}

TEST(PositionErrorBreakdownTest, PerTupleContributions) {
  auto given = Ranking::Create({1, 2, 3, 4});
  ASSERT_TRUE(given.ok());
  auto breakdown = PositionErrorBreakdown({3, 2, 4, 1}, *given, 0.0);
  // Induced positions: r0->2, r1->3, r2->1, r3->4.
  EXPECT_EQ(breakdown, (std::vector<long>{1, 1, 2, 0}));
}

// Property: PositionErrorFromScores equals the naive O(n^2) Definition-2
// computation.
class PositionErrorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PositionErrorPropertyTest, MatchesNaiveComputation) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(2, 40));
  int k = static_cast<int>(rng.NextInt(1, n));
  double eps = rng.NextBelow(2) ? 0.0 : rng.NextUniform(0, 0.5);
  std::vector<double> given_scores(n);
  std::vector<double> approx_scores(n);
  for (int i = 0; i < n; ++i) {
    given_scores[i] = rng.NextUniform(0, 3);
    approx_scores[i] = rng.NextUniform(0, 3);
  }
  Ranking given = Ranking::FromScores(given_scores, k, eps);

  long naive = 0;
  for (int t : given.ranked_tuples()) {
    int beats = 0;
    for (int s = 0; s < n; ++s) {
      if (s != t && approx_scores[s] - approx_scores[t] > eps) ++beats;
    }
    naive += std::labs(static_cast<long>(beats + 1) - given.position(t));
  }
  EXPECT_EQ(PositionErrorFromScores(approx_scores, given, eps), naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositionErrorPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace rankhow
