// Snapshot-sharing correctness for SharedRanking (the per-session given-
// ranking handle): handles share one physical snapshot until a Reset
// replaces it, siblings keep the old snapshot bit-identically, and the
// snapshot is freed exactly when the last handle drops (asserted through a
// weak_ptr, mirroring tests/data/shared_dataset_test.cc; the asan preset
// run in scripts/check.sh would flag a leak or use-after-free on top).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ranking/shared_ranking.h"

namespace rankhow {
namespace {

Ranking MustCreate(std::vector<int> positions) {
  auto r = Ranking::Create(std::move(positions));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

Ranking SmallRanking() { return MustCreate({1, 2, kUnranked, 3}); }

TEST(SharedRankingTest, HandleCopiesShareOneSnapshot) {
  SharedRanking a(SmallRanking());
  SharedRanking b = a;
  SharedRanking c = b;
  EXPECT_TRUE(a.SharesSnapshotWith(b));
  EXPECT_TRUE(b.SharesSnapshotWith(c));
  EXPECT_EQ(a.snapshot_id(), c.snapshot_id());
  EXPECT_TRUE(a.shared());
  EXPECT_EQ(&a.get(), &b.get());
  EXPECT_EQ(a.forks(), 0);
}

TEST(SharedRankingTest, ResetOnSharedSnapshotForksAndLeavesSiblingsIntact) {
  SharedRanking a(SmallRanking());
  SharedRanking b = a;
  const void* before = b.snapshot_id();

  a.Reset(MustCreate({1, 2, 3, 4}));
  EXPECT_EQ(a.forks(), 1);
  EXPECT_FALSE(a.SharesSnapshotWith(b));
  EXPECT_EQ(a.get().position(2), 3);

  // The sibling still reads the pre-Reset snapshot, physically unmoved.
  EXPECT_EQ(b.snapshot_id(), before);
  EXPECT_EQ(b.get().position(2), kUnranked);
  EXPECT_FALSE(b.shared()) << "b is now sole owner of the old snapshot";
}

TEST(SharedRankingTest, SoleOwnerResetIsNotAFork) {
  SharedRanking a(SmallRanking());
  a.Reset(MustCreate({1, 2, 3, 4}));
  EXPECT_EQ(a.forks(), 0) << "nobody shared the snapshot; nothing was saved "
                             "or lost by replacing it";
  EXPECT_EQ(a.get().k(), 4);
}

TEST(SharedRankingTest, RefcountDropFreesTheSnapshot) {
  std::weak_ptr<const Ranking> observer;
  {
    SharedRanking a(SmallRanking());
    observer = a.snapshot();
    {
      SharedRanking b = a;
      EXPECT_FALSE(observer.expired());
    }
    EXPECT_FALSE(observer.expired()) << "a still holds the snapshot";
  }
  EXPECT_TRUE(observer.expired())
      << "last handle dropped; the snapshot must be freed";
}

TEST(SharedRankingTest, ResetDropsTheOldSnapshotWhenSiblingsVanish) {
  SharedRanking a(SmallRanking());
  std::weak_ptr<const Ranking> original = a.snapshot();
  {
    SharedRanking b = a;
    a.Reset(MustCreate({1, 2, 3, 4}));  // a re-points; b keeps the original
    EXPECT_FALSE(original.expired());
  }
  // b died; the pre-Reset snapshot had no other owner left.
  EXPECT_TRUE(original.expired());
  EXPECT_TRUE(a.valid());
}

}  // namespace
}  // namespace rankhow
