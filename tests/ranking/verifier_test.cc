#include "ranking/verifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ranking/score_ranking.h"
#include "util/random.h"

namespace rankhow {
namespace {

Dataset RandomDataset(Rng& rng, int n, int m) {
  std::vector<std::string> names;
  for (int a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  Dataset d(names, n);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) d.set_value(t, a, rng.NextUniform(0, 10));
  }
  return d;
}

TEST(VerifierTest, ConsistentSolutionPasses) {
  Rng rng(1);
  Dataset data = RandomDataset(rng, 50, 4);
  std::vector<double> w = rng.NextSimplexPoint(4);
  Ranking given = Ranking::FromScores(data.Scores(w), 5);
  long err = PositionError(data, given, w, 0.0);
  ASSERT_EQ(err, 0);
  auto report = VerifySolution(data, given, w, 0.0, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  EXPECT_EQ(report->exact_error, 0);
}

TEST(VerifierTest, DetectsWrongClaim) {
  Rng rng(2);
  Dataset data = RandomDataset(rng, 30, 3);
  std::vector<double> w = rng.NextSimplexPoint(3);
  Ranking given = Ranking::FromScores(data.Scores(w), 5);
  auto report = VerifySolution(data, given, w, 0.0, /*claimed_error=*/7);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  EXPECT_EQ(report->exact_error, 0);
  EXPECT_EQ(report->claimed_error, 7);
}

TEST(VerifierTest, ExactTieDetection) {
  // Two tuples with scores that are exactly equal under w = (0.5, 0.5):
  // doubles cannot distinguish; exact arithmetic must declare a tie (neither
  // beats the other at eps = 0).
  Dataset data({"A", "B"}, 3);
  data.set_value(0, 0, 2.0);
  data.set_value(0, 1, 4.0);
  data.set_value(1, 0, 4.0);
  data.set_value(1, 1, 2.0);
  data.set_value(2, 0, 1.0);
  data.set_value(2, 1, 1.0);
  auto given = Ranking::Create({1, 1, 3});
  ASSERT_TRUE(given.ok());
  std::vector<double> w = {0.5, 0.5};
  auto report = VerifySolution(data, *given, w, 0.0, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << "exact error " << report->exact_error;
  EXPECT_EQ(report->exact_positions, (std::vector<int>{1, 1, 3}));
}

TEST(VerifierTest, CatchesSubEpsilonScoreDifferences) {
  // Scores differ by less than double rounding noise would suggest: tuple 0
  // beats tuple 1 by exactly 2^-60 * weight. With eps = 0 exact arithmetic
  // must count the win; naive double evaluation may tie them.
  Dataset data({"A"}, 2);
  data.set_value(0, 0, 1.0 + std::ldexp(1.0, -50));
  data.set_value(1, 0, 1.0);
  auto given = Ranking::Create({1, 2});
  ASSERT_TRUE(given.ok());
  auto report = VerifySolution(data, *given, {1.0}, 0.0, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  EXPECT_EQ(report->exact_positions, (std::vector<int>{1, 2}));
}

TEST(VerifierTest, RejectsAritySizeMismatch) {
  Dataset data({"A"}, 2);
  auto given = Ranking::Create({1, 2});
  ASSERT_TRUE(given.ok());
  EXPECT_FALSE(VerifySolution(data, *given, {0.5, 0.5}, 0.0, 0).ok());
}

// Property: exact positions agree with double positions whenever score gaps
// are comfortably larger than rounding error.
class VerifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifierPropertyTest, AgreesWithDoubleOnWellSeparatedScores) {
  Rng rng(GetParam());
  int n = static_cast<int>(rng.NextInt(5, 60));
  int m = static_cast<int>(rng.NextInt(1, 6));
  int k = static_cast<int>(rng.NextInt(1, std::min(n, 10)));
  Dataset data = RandomDataset(rng, n, m);
  std::vector<double> w = rng.NextSimplexPoint(m);
  double eps = 1e-9;  // far above rounding noise for these magnitudes
  std::vector<double> scores = data.Scores(w);
  Ranking given = Ranking::FromScores(scores, k, eps);

  auto double_positions =
      ScoreRankPositionsOf(scores, given.ranked_tuples(), eps);
  long claimed = 0;
  const auto& ranked = given.ranked_tuples();
  for (size_t i = 0; i < ranked.size(); ++i) {
    claimed += std::labs(static_cast<long>(double_positions[i]) -
                         given.position(ranked[i]));
  }
  auto report = VerifySolution(data, given, w, eps, claimed);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent)
      << "exact=" << report->exact_error << " claimed=" << claimed;
  EXPECT_EQ(report->total_comparisons,
            static_cast<long>(ranked.size()) * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rankhow
