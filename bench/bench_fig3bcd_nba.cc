// Figures 3b/3c/3d: exact OPT on the NBA data (ranking = MP*PER), varying
//   3b: k in {2,3,4,5,6}          (n = full, m = 5)
//   3c: n in 5 steps to full size (k = 6, m = 5)
//   3d: m in {4,5,6,7,8}          (n = full, k = 6)
// for RankHow, OrdinalRegression, Sampling (RankHow-matched budget) and
// LinearRegression. y axis = error per tuple.
//
// Paper shapes: error grows with k; flat in n (RankHow) but growing for
// LinearRegression; non-increasing in m for RankHow, reaching 0 at m = 8.
//
// Flags: --n (default 3000; paper 22840), --budget per config, --seed.

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

struct Config {
  std::string axis;
  int value;
  Dataset data;
  Ranking given;
};

void RunConfigs(const std::vector<Config>& configs, EpsilonConfig eps,
                double budget, uint64_t seed, TablePrinter* table) {
  for (const Config& c : configs) {
    MethodRow rankhow = RunRankHow(c.data, c.given, eps, budget);
    MethodRow ordinal = RunOrdinalRegression(c.data, c.given, eps);
    MethodRow sampling = RunSamplingBaseline(
        c.data, c.given, eps, rankhow.seconds > 0 ? rankhow.seconds : budget,
        seed);
    MethodRow linear = RunLinearRegression(c.data, c.given, eps);
    for (const MethodRow* row : {&rankhow, &ordinal, &sampling, &linear}) {
      table->AddRow({c.axis, std::to_string(c.value), row->method,
                     PerTuple(row->error, c.given.k()),
                     FormatDouble(row->seconds, 3), row->note});
    }
    std::cout << "  " << c.axis << "=" << c.value << " done (RankHow "
              << PerTuple(rankhow.error, c.given.k()) << "/tuple)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n_full =
      static_cast<int>(flags.GetInt("n", 1200, "tuples (paper: 22840)"));
  double budget = flags.GetDouble("budget", 8, "RankHow cap per config (s)");
  uint64_t seed = flags.GetInt("seed", 1, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3b/3c/3d: NBA exact OPT (n_full=" << n_full
            << ") ===\n";
  NbaData nba = GenerateNba({.num_tuples = n_full, .seed = seed});
  EpsilonConfig eps = NbaEps();

  TablePrinter table({"axis", "value", "method", "error_per_tuple",
                      "seconds", "note"});

  // Fig 3b: vary k at m = 5.
  {
    Dataset data = nba.table.SelectAttributes({0, 1, 2, 3, 4});
    data.NormalizeMinMax();
    std::vector<Config> configs;
    for (int k : {2, 3, 4, 5, 6}) {
      configs.push_back({"k", k, data, NbaPerRanking(nba, k)});
    }
    std::cout << "[3b] varying k\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  // Fig 3c: vary n at k = 6, m = 5 (prefixes of the dataset).
  {
    std::vector<Config> configs;
    for (int frac = 1; frac <= 5; ++frac) {
      int n = n_full * frac / 5;
      std::vector<int> rows(n);
      for (int i = 0; i < n; ++i) rows[i] = i;
      NbaData sub;
      sub.table = nba.table.SelectTuples(rows).SelectAttributes(
          {0, 1, 2, 3, 4});
      sub.mp_times_per.assign(nba.mp_times_per.begin(),
                              nba.mp_times_per.begin() + n);
      Dataset data = sub.table;
      data.NormalizeMinMax();
      configs.push_back({"n", n, data, NbaPerRanking(sub, 6)});
    }
    std::cout << "[3c] varying n\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  // Fig 3d: vary m at k = 6.
  {
    std::vector<Config> configs;
    for (int m : {4, 5, 6, 7, 8}) {
      std::vector<int> attrs;
      for (int a = 0; a < m; ++a) attrs.push_back(a);
      Dataset data = nba.table.SelectAttributes(attrs);
      data.NormalizeMinMax();
      configs.push_back({"m", m, data, NbaPerRanking(nba, 6)});
    }
    std::cout << "[3d] varying m\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  Emit("fig3bcd_nba", table);
  std::cout << "Paper shapes: error grows with k; ~flat in n for RankHow "
               "(LinearRegression grows); non-increasing in m for RankHow.\n";
  return 0;
}
