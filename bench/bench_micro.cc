// Microbenchmarks (google-benchmark): throughput of the substrates the
// paper-scale experiments lean on — the simplex solver, indicator interval
// fixing, double/exact score ranking, and the exact arithmetic itself.

#include <benchmark/benchmark.h>

#include "core/indicator_fixing.h"
#include "data/synthetic.h"
#include "lp/simplex.h"
#include "math/dyadic.h"
#include "math/rational.h"
#include "ranking/score_ranking.h"
#include "ranking/verifier.h"
#include "util/random.h"

namespace rankhow {
namespace {

Dataset MakeData(int n, int m, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_tuples = n;
  spec.num_attributes = m;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

void BM_SimplexSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int rows = static_cast<int>(state.range(1));
  Rng rng(7);
  LpModel model;
  std::vector<int> vars(m);
  LinearExpr sum;
  for (int i = 0; i < m; ++i) {
    vars[i] = model.AddVariable(0, 1);
    sum += LinearExpr::Term(vars[i], 1.0);
  }
  model.AddConstraint(sum, RelOp::kEq, 1.0);
  for (int r = 0; r < rows; ++r) {
    LinearExpr e;
    double centroid = 0;
    for (int i = 0; i < m; ++i) {
      double c = rng.NextGaussian();
      e += LinearExpr::Term(vars[i], c);
      centroid += c / m;
    }
    model.AddConstraint(e, RelOp::kLe, centroid + 0.05);
  }
  LinearExpr obj;
  for (int i = 0; i < m; ++i) obj += LinearExpr::Term(vars[i],
                                                      rng.NextGaussian());
  model.SetObjective(obj);
  SimplexSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(model);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexSolve)->Args({5, 50})->Args({8, 200})->Args({27, 400});

void BM_IndicatorFixingFullSimplex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<int> tuples = {0, 1, 2, 3, 4};
  WeightBox box = WeightBox::FullSimplex(5);
  for (auto _ : state) {
    auto fixing = ComputeIndicatorFixing(data, tuples, box, 1e-5, 0.0);
    benchmark::DoNotOptimize(fixing);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size() * n);
}
BENCHMARK(BM_IndicatorFixingFullSimplex)->Arg(10000)->Arg(100000);

void BM_IndicatorFixingCell(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<int> tuples = {0, 1, 2, 3, 4};
  WeightBox box = WeightBox::CellAround({0.2, 0.2, 0.2, 0.2, 0.2}, 0.01);
  for (auto _ : state) {
    auto fixing = ComputeIndicatorFixing(data, tuples, box, 1e-5, 0.0);
    benchmark::DoNotOptimize(fixing);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size() * n);
}
BENCHMARK(BM_IndicatorFixingCell)->Arg(10000)->Arg(100000);

void BM_PositionError(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 5);
  Ranking given = PowerSumRanking(data, 3, 10);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PositionError(data, given, w, 1e-6));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PositionError)->Arg(10000)->Arg(100000);

void BM_ExactVerification(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 7);
  Ranking given = PowerSumRanking(data, 3, 10);
  std::vector<double> w = {0.25, 0.25, 0.2, 0.15, 0.15};
  for (auto _ : state) {
    auto report = VerifySolution(data, given, w, 1e-6, 0);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * given.k() * n);
}
BENCHMARK(BM_ExactVerification)->Arg(10000)->Arg(50000);

void BM_DyadicDotProduct(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> w(8);
  std::vector<double> a(8);
  for (int i = 0; i < 8; ++i) {
    w[i] = rng.NextDouble();
    a[i] = rng.NextUniform(0, 30);
  }
  for (auto _ : state) {
    Dyadic sum;
    for (int i = 0; i < 8; ++i) {
      sum += Dyadic::FromDouble(w[i]) * Dyadic::FromDouble(a[i]);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DyadicDotProduct);

void BM_RationalArithmetic(benchmark::State& state) {
  Rational a = Rational::FromDouble(0.123456789);
  Rational b = Rational::FromDouble(3.14159265358979);
  for (auto _ : state) {
    Rational c = a * b + a - b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalArithmetic);

void BM_ScoreRanking(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 9);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  std::vector<double> scores = data.Scores(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreRankPositions(scores, 1e-6));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScoreRanking)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace rankhow

BENCHMARK_MAIN();
