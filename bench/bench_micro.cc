// Microbenchmarks (google-benchmark): throughput of the substrates the
// paper-scale experiments lean on — the simplex solver, indicator interval
// fixing, double/exact score ranking, and the exact arithmetic itself.
//
// Also runs (before the google-benchmark suite) a cold-start vs. warm-start
// node-resolve comparison mirroring what branch-and-bound does per node —
// fix/unfix a variable, re-solve — and writes the result as machine-readable
// BENCH_lp_warmstart.json so future PRs can track the perf trajectory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "core/indicator_fixing.h"
#include "data/kernels.h"
#include "data/synthetic.h"
#include "util/thread_pool.h"
#include "lp/incremental.h"
#include "lp/simplex.h"
#include "math/dyadic.h"
#include "math/rational.h"
#include "ranking/score_ranking.h"
#include "ranking/verifier.h"
#include "util/random.h"
#include "util/timer.h"

namespace rankhow {
namespace {

Dataset MakeData(int n, int m, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_tuples = n;
  spec.num_attributes = m;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

// ---------------------------------------------------------------------------
// Cold vs. warm node resolves.
//
// The model mimics a branch-and-bound node LP: binary-like [0,1] variables
// plus nonnegative "error" variables under random rows, minimized over
// positive error costs. Each step fixes or unfixes one binary — exactly the
// parent→child delta of the MILP search — and re-solves.

struct NodeResolveModel {
  LpModel lp;
  std::vector<int> binaries;
};

NodeResolveModel BuildNodeResolveModel(int num_binaries, int num_errors,
                                       int rows, uint64_t seed) {
  Rng rng(seed);
  NodeResolveModel m;
  LinearExpr objective;
  for (int i = 0; i < num_binaries; ++i) {
    m.binaries.push_back(m.lp.AddVariable(0, 1));
  }
  std::vector<int> errors;
  for (int i = 0; i < num_errors; ++i) {
    int e = m.lp.AddVariable(0, kInfinity);
    errors.push_back(e);
    objective += LinearExpr::Term(e, rng.NextUniform(1, 5));
  }
  for (int r = 0; r < rows; ++r) {
    LinearExpr row;
    for (int b : m.binaries) {
      if (rng.NextDouble() < 0.5) {
        row += LinearExpr::Term(b, rng.NextGaussian());
      }
    }
    // Every row is relaxed by one error variable, like the Equation-(2)
    // big-M rows relax into the per-tuple error terms.
    row -= LinearExpr::Term(errors[r % num_errors], 1.0);
    m.lp.AddConstraint(row, RelOp::kLe, rng.NextUniform(0.0, 0.5));
  }
  m.lp.SetObjective(objective, ObjectiveSense::kMinimize);
  return m;
}

/// One deterministic trajectory of `steps` fix/unfix bound flips. Returns
/// the visited fixing values so cold and warm replay identical work.
std::vector<std::pair<int, double>> FlipTrajectory(
    const NodeResolveModel& m, int steps, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, double>> flips;
  for (int s = 0; s < steps; ++s) {
    int var = m.binaries[rng.NextBelow(m.binaries.size())];
    double roll = rng.NextDouble();
    flips.emplace_back(var, roll < 0.4 ? 0.0 : roll < 0.8 ? 1.0 : -1.0);
  }
  return flips;  // -1 = unfix back to [0,1]
}

struct NodeResolveCost {
  double seconds = 0;
  int64_t pivots = 0;
  int64_t solves = 0;
};

NodeResolveCost RunNodeResolveCold(NodeResolveModel m,
                                   const std::vector<std::pair<int, double>>&
                                       flips) {
  SimplexSolver solver;
  NodeResolveCost cost;
  WallTimer timer;
  for (const auto& [var, value] : flips) {
    LpVariable& v = m.lp.mutable_variable(var);
    if (value < 0) {
      v.lower = 0;
      v.upper = 1;
    } else {
      v.lower = v.upper = value;
    }
    auto sol = solver.Solve(m.lp);
    ++cost.solves;
    if (sol.ok()) cost.pivots += sol->iterations;
  }
  cost.seconds = timer.ElapsedSeconds();
  return cost;
}

NodeResolveCost RunNodeResolveWarm(const NodeResolveModel& m,
                                   const std::vector<std::pair<int, double>>&
                                       flips,
                                   IncrementalLpStats* stats_out) {
  IncrementalLp inc(m.lp);
  NodeResolveCost cost;
  WallTimer timer;
  for (const auto& [var, value] : flips) {
    if (value < 0) {
      inc.SetVariableBounds(var, 0, 1);
    } else {
      inc.SetVariableBounds(var, value, value);
    }
    auto sol = inc.Solve();
    ++cost.solves;
    if (sol.ok()) cost.pivots += sol->iterations;
  }
  cost.seconds = timer.ElapsedSeconds();
  if (stats_out != nullptr) *stats_out = inc.stats();
  return cost;
}

/// Runs the comparison and writes BENCH_lp_warmstart.json next to the
/// binary. Returns true on success.
bool EmitWarmstartJson() {
  constexpr int kBinaries = 40;
  constexpr int kErrors = 12;
  constexpr int kRows = 80;
  constexpr int kSteps = 250;
  NodeResolveModel model =
      BuildNodeResolveModel(kBinaries, kErrors, kRows, /*seed=*/17);
  std::vector<std::pair<int, double>> flips =
      FlipTrajectory(model, kSteps, /*seed=*/23);

  NodeResolveCost cold = RunNodeResolveCold(model, flips);
  IncrementalLpStats warm_stats;
  NodeResolveCost warm = RunNodeResolveWarm(model, flips, &warm_stats);

  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0;
  const double pivot_ratio =
      warm.pivots > 0 ? static_cast<double>(cold.pivots) / warm.pivots : 0;
  std::printf(
      "[lp_warmstart] %d resolves on %d rows: cold %.3fs/%lld pivots, warm "
      "%.3fs/%lld pivots -> speedup %.2fx, pivot ratio %.2fx\n",
      kSteps, kRows, cold.seconds, (long long)cold.pivots, warm.seconds,
      (long long)warm.pivots, speedup, pivot_ratio);

  std::FILE* f = std::fopen("BENCH_lp_warmstart.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"lp_warmstart\",\n");
  rankhow::bench::WriteBenchMetadataJson(
      f, /*threads_used=*/1, rankhow::bench::BenchTimestampUtc());
  std::fprintf(
      f,
      "  \"config\": {\"binaries\": %d, \"errors\": %d, \"rows\": %d, "
      "\"resolves\": %d},\n"
      "  \"cold\": {\"seconds\": %.6f, \"pivots\": %lld},\n"
      "  \"warm\": {\"seconds\": %.6f, \"pivots\": %lld, "
      "\"warm_solves\": %lld, \"cold_solves\": %lld, "
      "\"primal_pivots\": %lld, \"dual_pivots\": %lld, "
      "\"repair_pivots\": %lld, \"bound_flips\": %lld, "
      "\"rebuilds\": %lld},\n"
      "  \"speedup\": %.3f,\n"
      "  \"pivot_ratio\": %.3f\n"
      "}\n",
      kBinaries, kErrors, kRows, kSteps, cold.seconds,
      (long long)cold.pivots, warm.seconds, (long long)warm.pivots,
      (long long)warm_stats.warm_solves, (long long)warm_stats.cold_solves,
      (long long)warm_stats.primal_pivots, (long long)warm_stats.dual_pivots,
      (long long)warm_stats.repair_pivots, (long long)warm_stats.bound_flips,
      (long long)warm_stats.rebuilds, speedup, pivot_ratio);
  std::fclose(f);
  std::printf("(written to BENCH_lp_warmstart.json)\n");
  return true;
}

// ---------------------------------------------------------------------------
// Scoring kernels: scalar vs batched vs batched+parallel.
//
// The scalar baseline below is the pre-kernel hot path kept verbatim —
// row-at-a-time value() scoring with the certified error band, then one
// O(n) pivot scan per ranked tuple — exactly what ranking/verifier.cc did
// before it was rewired onto kernels::FusedExactRankPositions.

/// Pre-kernel scalar verification: scores + error bounds via value(), then
/// per-pivot linear scans with exact fallback inside the band.
std::vector<int> ScalarFusedVerifyBaseline(const Dataset& data,
                                           const std::vector<double>& w,
                                           const std::vector<int>& tuples,
                                           double tie_eps) {
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  const double u = std::ldexp(1.0, -53);
  std::vector<double> scores(n, 0.0);
  std::vector<double> err(n, 0.0);
  for (int t = 0; t < n; ++t) {
    double sum = 0;
    double abs_sum = 0;
    for (int a = 0; a < m; ++a) {
      double term = w[a] * data.value(t, a);
      sum += term;
      abs_sum += std::abs(term);
    }
    scores[t] = sum;
    err[t] = (m + 3) * u * abs_sum;
  }
  std::vector<int> positions;
  positions.reserve(tuples.size());
  for (int r : tuples) {
    int beats = 0;
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      double diff = scores[s] - scores[r];
      double band = err[s] + err[r];
      if (diff - tie_eps > band) {
        ++beats;
      } else if (diff - tie_eps < -band) {
        // certainly does not beat
      } else if (ExactScoreDiffSign(data, w, s, r, tie_eps) > 0) {
        ++beats;
      }
    }
    positions.push_back(beats + 1);
  }
  return positions;
}

/// Best-of-`reps` wall time of `fn` in seconds.
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// Runs the scalar/batched/parallel comparison at n = 10^4..10^6 and writes
/// BENCH_scoring_kernels.json next to the binary. Returns true on success.
bool EmitScoringKernelsJson() {
  constexpr int kAttrs = 5;
  constexpr int kPivots = 100;
  constexpr double kTieEps = 1e-6;
  const int threads = ThreadPool::ResolveThreadCount(0);
  ThreadPool pool(threads);

  struct SizeResult {
    int n;
    double scalar_fused;
    double batched_fused;
    double parallel_fused;
    double scalar_scores;
    double batched_scores;
    double parallel_scores;
  };
  std::vector<SizeResult> results;
  double fused_speedup_at_1e5 = 0;

  for (int n : {10000, 100000, 1000000}) {
    Dataset data = MakeData(n, kAttrs, /*seed=*/29);
    std::vector<double> w = {0.25, 0.25, 0.2, 0.15, 0.15};
    std::vector<int> tuples;
    for (int i = 0; i < kPivots; ++i) tuples.push_back((i * 131) % n);
    const int reps = n >= 1000000 ? 2 : 3;

    // Plain w·A scoring, the innermost primitive.
    std::vector<double> scores(n);
    double scalar_scores = BestOf(reps, [&] {
      for (int t = 0; t < n; ++t) scores[t] = data.ScoreOf(t, w);
    });
    double batched_scores =
        BestOf(reps, [&] { kernels::BatchScores(data, w, scores.data()); });
    double parallel_scores = BestOf(
        reps, [&] { kernels::BatchScores(data, w, scores.data(), &pool); });

    // Fused score + exact-rank verification, the acceptance-criterion
    // kernel.
    auto exact_sign = [&](int s, int r) {
      return ExactScoreDiffSign(data, w, s, r, kTieEps);
    };
    std::vector<int> scalar_pos;
    double scalar_fused = BestOf(reps, [&] {
      scalar_pos = ScalarFusedVerifyBaseline(data, w, tuples, kTieEps);
    });
    kernels::ExactRankScratch scratch;
    std::vector<int> batched_pos;
    double batched_fused = BestOf(reps, [&] {
      kernels::FusedExactRankPositions(data, w, tuples, kTieEps, exact_sign,
                                       &scratch, &batched_pos);
    });
    std::vector<int> parallel_pos;
    double parallel_fused = BestOf(reps, [&] {
      kernels::FusedExactRankPositions(data, w, tuples, kTieEps, exact_sign,
                                       &scratch, &parallel_pos, nullptr,
                                       nullptr, &pool);
    });
    if (scalar_pos != batched_pos || scalar_pos != parallel_pos) {
      std::fprintf(stderr,
                   "[scoring_kernels] VERDICT MISMATCH at n=%d — refusing to "
                   "report timings for wrong answers\n",
                   n);
      return false;
    }

    results.push_back({n, scalar_fused, batched_fused, parallel_fused,
                       scalar_scores, batched_scores, parallel_scores});
    if (n == 100000 && batched_fused > 0) {
      fused_speedup_at_1e5 = scalar_fused / batched_fused;
    }
    std::printf(
        "[scoring_kernels] n=%d k=%d: fused scalar %.4fs, batched %.4fs "
        "(%.1fx), parallel %.4fs; scores scalar %.4fs, batched %.4fs\n",
        n, kPivots, scalar_fused, batched_fused,
        batched_fused > 0 ? scalar_fused / batched_fused : 0, parallel_fused,
        scalar_scores, batched_scores);
  }

  std::FILE* f = std::fopen("BENCH_scoring_kernels.json", "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"scoring_kernels\",\n");
  rankhow::bench::WriteBenchMetadataJson(
      f, /*threads_used=*/threads, rankhow::bench::BenchTimestampUtc());
  std::fprintf(f,
               "  \"config\": {\"attributes\": %d, \"pivots\": %d, "
               "\"tie_eps\": %g},\n  \"sizes\": [\n",
               kAttrs, kPivots, kTieEps);
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(
        f,
        "    {\"n\": %d,\n"
        "     \"fused_verification\": {\"scalar_seconds\": %.6f, "
        "\"batched_seconds\": %.6f, \"parallel_seconds\": %.6f, "
        "\"batched_speedup\": %.3f, \"parallel_speedup\": %.3f},\n"
        "     \"batch_scores\": {\"scalar_seconds\": %.6f, "
        "\"batched_seconds\": %.6f, \"parallel_seconds\": %.6f, "
        "\"batched_speedup\": %.3f}}%s\n",
        r.n, r.scalar_fused, r.batched_fused, r.parallel_fused,
        r.batched_fused > 0 ? r.scalar_fused / r.batched_fused : 0,
        r.parallel_fused > 0 ? r.scalar_fused / r.parallel_fused : 0,
        r.scalar_scores, r.batched_scores, r.parallel_scores,
        r.batched_scores > 0 ? r.scalar_scores / r.batched_scores : 0,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"fused_batched_speedup_at_1e5\": %.3f\n}\n",
               fused_speedup_at_1e5);
  std::fclose(f);
  std::printf("(written to BENCH_scoring_kernels.json)\n");
  return true;
}

void BM_BatchScores(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  std::vector<double> out(n);
  for (auto _ : state) {
    kernels::BatchScores(data, w, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchScores)->Arg(10000)->Arg(100000);

void BM_ScalarScores(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  std::vector<double> out(n);
  for (auto _ : state) {
    for (int t = 0; t < n; ++t) out[t] = data.ScoreOf(t, w);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScalarScores)->Arg(10000)->Arg(100000);

void BM_FusedExactRankPositions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 7);
  std::vector<double> w = {0.25, 0.25, 0.2, 0.15, 0.15};
  std::vector<int> tuples;
  for (int i = 0; i < 100; ++i) tuples.push_back((i * 131) % n);
  auto exact_sign = [&](int s, int r) {
    return ExactScoreDiffSign(data, w, s, r, 1e-6);
  };
  kernels::ExactRankScratch scratch;
  std::vector<int> positions;
  for (auto _ : state) {
    kernels::FusedExactRankPositions(data, w, tuples, 1e-6, exact_sign,
                                     &scratch, &positions);
    benchmark::DoNotOptimize(positions.data());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size() * n);
}
BENCHMARK(BM_FusedExactRankPositions)->Arg(10000)->Arg(100000);

void BM_NodeResolveCold(benchmark::State& state) {
  NodeResolveModel model = BuildNodeResolveModel(40, 12, 80, 17);
  std::vector<std::pair<int, double>> flips = FlipTrajectory(model, 25, 23);
  for (auto _ : state) {
    auto cost = RunNodeResolveCold(model, flips);
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(state.iterations() * flips.size());
}
BENCHMARK(BM_NodeResolveCold);

void BM_NodeResolveWarm(benchmark::State& state) {
  NodeResolveModel model = BuildNodeResolveModel(40, 12, 80, 17);
  std::vector<std::pair<int, double>> flips = FlipTrajectory(model, 25, 23);
  for (auto _ : state) {
    auto cost = RunNodeResolveWarm(model, flips, nullptr);
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(state.iterations() * flips.size());
}
BENCHMARK(BM_NodeResolveWarm);

void BM_SimplexSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int rows = static_cast<int>(state.range(1));
  Rng rng(7);
  LpModel model;
  std::vector<int> vars(m);
  LinearExpr sum;
  for (int i = 0; i < m; ++i) {
    vars[i] = model.AddVariable(0, 1);
    sum += LinearExpr::Term(vars[i], 1.0);
  }
  model.AddConstraint(sum, RelOp::kEq, 1.0);
  for (int r = 0; r < rows; ++r) {
    LinearExpr e;
    double centroid = 0;
    for (int i = 0; i < m; ++i) {
      double c = rng.NextGaussian();
      e += LinearExpr::Term(vars[i], c);
      centroid += c / m;
    }
    model.AddConstraint(e, RelOp::kLe, centroid + 0.05);
  }
  LinearExpr obj;
  for (int i = 0; i < m; ++i) obj += LinearExpr::Term(vars[i],
                                                      rng.NextGaussian());
  model.SetObjective(obj);
  SimplexSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(model);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexSolve)->Args({5, 50})->Args({8, 200})->Args({27, 400});

void BM_IndicatorFixingFullSimplex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<int> tuples = {0, 1, 2, 3, 4};
  WeightBox box = WeightBox::FullSimplex(5);
  for (auto _ : state) {
    auto fixing = ComputeIndicatorFixing(data, tuples, box, 1e-5, 0.0);
    benchmark::DoNotOptimize(fixing);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size() * n);
}
BENCHMARK(BM_IndicatorFixingFullSimplex)->Arg(10000)->Arg(100000);

void BM_IndicatorFixingCell(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 3);
  std::vector<int> tuples = {0, 1, 2, 3, 4};
  WeightBox box = WeightBox::CellAround({0.2, 0.2, 0.2, 0.2, 0.2}, 0.01);
  for (auto _ : state) {
    auto fixing = ComputeIndicatorFixing(data, tuples, box, 1e-5, 0.0);
    benchmark::DoNotOptimize(fixing);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size() * n);
}
BENCHMARK(BM_IndicatorFixingCell)->Arg(10000)->Arg(100000);

void BM_PositionError(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 5);
  Ranking given = PowerSumRanking(data, 3, 10);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PositionError(data, given, w, 1e-6));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PositionError)->Arg(10000)->Arg(100000);

void BM_ExactVerification(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 7);
  Ranking given = PowerSumRanking(data, 3, 10);
  std::vector<double> w = {0.25, 0.25, 0.2, 0.15, 0.15};
  for (auto _ : state) {
    auto report = VerifySolution(data, given, w, 1e-6, 0);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * given.k() * n);
}
BENCHMARK(BM_ExactVerification)->Arg(10000)->Arg(50000);

void BM_DyadicDotProduct(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> w(8);
  std::vector<double> a(8);
  for (int i = 0; i < 8; ++i) {
    w[i] = rng.NextDouble();
    a[i] = rng.NextUniform(0, 30);
  }
  for (auto _ : state) {
    Dyadic sum;
    for (int i = 0; i < 8; ++i) {
      sum += Dyadic::FromDouble(w[i]) * Dyadic::FromDouble(a[i]);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DyadicDotProduct);

void BM_RationalArithmetic(benchmark::State& state) {
  Rational a = Rational::FromDouble(0.123456789);
  Rational b = Rational::FromDouble(3.14159265358979);
  for (auto _ : state) {
    Rational c = a * b + a - b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalArithmetic);

void BM_ScoreRanking(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Dataset data = MakeData(n, 5, 9);
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  std::vector<double> scores = data.Scores(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreRankPositions(scores, 1e-6));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScoreRanking)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace rankhow

// Custom main: the warm-start comparison + JSON emission run once up front,
// then the registered google-benchmark suite as usual.
int main(int argc, char** argv) {
  if (!rankhow::EmitWarmstartJson()) {
    std::fprintf(stderr, "failed to write BENCH_lp_warmstart.json\n");
  }
  if (!rankhow::EmitScoringKernelsJson()) {
    std::fprintf(stderr, "failed to write BENCH_scoring_kernels.json\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
