// Figures 3j/3k/3l: SYM-GD scalability on large synthetic data. One panel
// per distribution (uniform / correlated / anti-correlated); each dataset is
// ranked by the non-linear function sum(A_i^3); k varies in {5,10,15,20,25};
// SYM-GD runs with cell size 0.01 from the ordinal-regression seed.
//
// Paper settings: 1M tuples, m = 5, eps1 = 1e-5; error stays below ~1.5 per
// tuple and each run finishes within the hour. We default to 100k tuples
// (laptop scale; use --n=1000000 for the paper's size) — the shape (low
// error, time growing mildly with k, correlated easiest) is preserved.
//
// With --compare=1 (default) every configuration also runs with the legacy
// cold-start node LPs, and the table reports total simplex pivots for both
// engines plus the cold/warm ratio — the acceptance metric for the
// warm-started incremental LP subsystem (DESIGN.md "Incremental LP
// architecture"). Pivot counts are zero for configurations the auto
// strategy routes to the spatial search with no general P rows (no LP runs
// at all there).
//
// A second section measures the *parallel search engine*: the n=10000
// exact solve (auto strategy) at 1/2/4/8 worker threads, asserting the
// proven objective is thread-count invariant and recording wall-clock
// speedups to BENCH_parallel_scaling.json (the acceptance artifact for the
// thread-pooled branch-and-bound; meaningful speedups need >= 8 hardware
// threads — the file records hardware_concurrency so readers can tell).
//
// Flags: --n, --m, --seed, --datasets (replicas per distribution; the paper
// averages 3), --budget, --compare, --table, --scaling, --scaling-n,
// --scaling-budget, --threads-max.

#include <cstdio>
#include <thread>

#include "bench/harness_include.h"
#include "data/kernels.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

/// One thread-count measurement of the exact solve.
struct ScalingRun {
  int threads = 0;
  double seconds = 0;
  long error = -1;
  long bound = -1;
  bool proven = false;
  int64_t nodes = 0;
};

/// The n=10^6 synthetic point the batched-kernel layer exists for: generate
/// a million-tuple dataset, score it, and run the exact fused verification
/// end-to-end. Returns the JSON fragment recorded under
/// "million_tuple_kernel_point" in BENCH_parallel_scaling.json.
struct KernelPoint {
  int n = 0;
  double generate_seconds = 0;
  double batch_scores_seconds = 0;
  double fused_verify_seconds = 0;
  long exact_comparisons = 0;
  long total_comparisons = 0;
  bool verified = false;
};

KernelPoint RunMillionTupleKernelPoint(int kernel_n, int m, uint64_t seed) {
  std::cout << "\n=== Million-tuple kernel point: n=" << kernel_n << " ===\n";
  KernelPoint point;
  point.n = kernel_n;

  WallTimer gen_timer;
  SyntheticSpec spec;
  spec.num_tuples = kernel_n;
  spec.num_attributes = m;
  spec.distribution = SyntheticDistribution::kUniform;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 100);
  point.generate_seconds = gen_timer.ElapsedSeconds();

  std::vector<double> w(m, 1.0 / m);
  std::vector<double> scores(kernel_n);
  WallTimer score_timer;
  kernels::BatchScores(data, w, scores.data());
  point.batch_scores_seconds = score_timer.ElapsedSeconds();

  WallTimer verify_timer;
  std::vector<int> positions = ExactScoreRankPositionsOf(
      data, w, given.ranked_tuples(), SyntheticEps().tie_eps,
      &point.exact_comparisons, &point.total_comparisons);
  point.fused_verify_seconds = verify_timer.ElapsedSeconds();
  point.verified = static_cast<int>(positions.size()) == given.k();

  std::cout << "  generate " << FormatDouble(point.generate_seconds, 2)
            << "s, batch-scores " << FormatDouble(point.batch_scores_seconds, 4)
            << "s, fused exact verification of k=" << given.k() << " pivots "
            << FormatDouble(point.fused_verify_seconds, 3) << "s ("
            << point.exact_comparisons << "/" << point.total_comparisons
            << " comparisons needed exact arithmetic)\n";
  return point;
}

int RunParallelScaling(int scaling_n, int m, uint64_t seed,
                       double per_solve_budget, int threads_max,
                       int kernel_n) {
  std::cout << "\n=== Parallel scaling: exact solve at n=" << scaling_n
            << " (threads 1.." << threads_max << ") ===\n";
  SyntheticSpec spec;
  spec.num_tuples = scaling_n;
  spec.num_attributes = m;
  spec.distribution = SyntheticDistribution::kUniform;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, 10);
  EpsilonConfig eps = SyntheticEps();

  std::vector<ScalingRun> runs;
  TablePrinter table({"threads", "seconds", "error", "bound", "proven",
                      "nodes", "speedup"});
  for (int threads = 1; threads <= threads_max; threads *= 2) {
    RankHowOptions options;
    options.eps = eps;
    options.time_limit_seconds = per_solve_budget;
    options.num_threads = threads;
    RankHow solver(data, given, options);
    auto result = solver.Solve();
    ScalingRun run;
    run.threads = threads;
    if (result.ok()) {
      run.seconds = result->seconds;
      run.error = result->error;
      run.bound = result->bound;
      run.proven = result->proven_optimal;
      run.nodes = result->stats.nodes_explored;
    } else {
      std::cout << "  threads=" << threads
                << " FAILED: " << result.status().ToString() << "\n";
    }
    double speedup =
        !runs.empty() && runs.front().seconds > 0 && run.seconds > 0
            ? runs.front().seconds / run.seconds
            : 1.0;
    table.AddRow({std::to_string(threads), FormatDouble(run.seconds, 2),
                  std::to_string(run.error), std::to_string(run.bound),
                  run.proven ? "yes" : "no",
                  std::to_string(static_cast<long>(run.nodes)),
                  FormatDouble(speedup, 2)});
    std::cout << "  threads=" << threads << ": "
              << FormatDouble(run.seconds, 2) << "s, error=" << run.error
              << (run.proven ? " (proven)" : " (budget-limited)")
              << ", speedup " << FormatDouble(speedup, 2) << "x\n";
    runs.push_back(run);
  }
  std::cout << table.ToText();

  // Cross-thread-count invariant: every *proven* run must agree.
  long proven_error = -1;
  bool consistent = true;
  for (const ScalingRun& run : runs) {
    if (!run.proven) continue;
    if (proven_error < 0) {
      proven_error = run.error;
    } else if (run.error != proven_error) {
      consistent = false;
    }
  }
  if (!consistent) {
    std::cout << "ERROR: proven objectives disagree across thread counts\n";
  }

  KernelPoint kernel_point;
  if (kernel_n > 0) {
    kernel_point = RunMillionTupleKernelPoint(kernel_n, m, seed);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::FILE* f = std::fopen("BENCH_parallel_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_parallel_scaling.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel_scaling\",\n");
  int max_threads = 1;
  for (const ScalingRun& run : runs) {
    max_threads = std::max(max_threads, run.threads);
  }
  WriteBenchMetadataJson(f, max_threads, BenchTimestampUtc());
  std::fprintf(f,
               "  \"workload\": \"exact solve, uniform synthetic, "
               "ranking sum(A^3), k=10\",\n"
               "  \"n\": %d,\n  \"m\": %d,\n  \"seed\": %llu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"objectives_consistent\": %s,\n  \"runs\": [\n",
               scaling_n, m, static_cast<unsigned long long>(seed), hw,
               consistent ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScalingRun& run = runs[i];
    double speedup = runs.front().seconds > 0 && run.seconds > 0
                         ? runs.front().seconds / run.seconds
                         : 1.0;
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.4f, \"error\": %ld, "
                 "\"bound\": %ld, \"proven\": %s, \"nodes\": %lld, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 run.threads, run.seconds, run.error, run.bound,
                 run.proven ? "true" : "false",
                 static_cast<long long>(run.nodes), speedup,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (kernel_point.n > 0) {
    std::fprintf(
        f,
        ",\n  \"million_tuple_kernel_point\": {\"n\": %d, "
        "\"generate_seconds\": %.4f, \"batch_scores_seconds\": %.6f, "
        "\"fused_verify_seconds\": %.4f, \"exact_comparisons\": %ld, "
        "\"total_comparisons\": %ld, \"verified\": %s}",
        kernel_point.n, kernel_point.generate_seconds,
        kernel_point.batch_scores_seconds, kernel_point.fused_verify_seconds,
        kernel_point.exact_comparisons, kernel_point.total_comparisons,
        kernel_point.verified ? "true" : "false");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::cout << "(written to BENCH_parallel_scaling.json; hardware threads: "
            << hw << ")\n";
  return consistent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 10000,
                                        "tuples (paper: 1000000)"));
  int m = static_cast<int>(flags.GetInt("m", 5, "attributes"));
  int replicas = static_cast<int>(flags.GetInt("datasets", 1,
                                               "datasets per distribution"));
  uint64_t seed = flags.GetInt("seed", 31, "generation seed");
  double budget = flags.GetDouble("budget", 20,
                                  "SYM-GD budget per run (s); paper <1h");
  bool compare = flags.GetInt("compare", 1,
                              "also run cold-start node LPs and report "
                              "the pivot ratio") != 0;
  bool run_table = flags.GetInt("table", 1,
                                "run the Fig 3j/3k/3l SYM-GD table") != 0;
  bool run_scaling = flags.GetInt("scaling", 1,
                                  "run the parallel-scaling section") != 0;
  int scaling_n = static_cast<int>(flags.GetInt(
      "scaling-n", 10000, "tuples for the parallel-scaling exact solve"));
  double scaling_budget = flags.GetDouble(
      "scaling-budget", 120, "per-thread-count solve budget (s)");
  int threads_max = static_cast<int>(flags.GetInt(
      "threads-max", 8, "largest thread count measured (doubling from 1)"));
  int kernel_n = static_cast<int>(flags.GetInt(
      "kernel-n", 1000000,
      "tuples for the batched-kernel point recorded with --scaling "
      "(0 disables)"));
  if (!flags.Finish()) return 0;

  if (!run_table) {
    return run_scaling ? RunParallelScaling(scaling_n, m, seed,
                                            scaling_budget, threads_max,
                                            kernel_n)
                       : 0;
  }

  std::cout << "=== Fig 3j/3k/3l: Sym-GD scalability (n=" << n
            << ", ranking sum(A^3)) ===\n";
  EpsilonConfig eps = SyntheticEps();

  TablePrinter table({"distribution", "k", "error_per_tuple", "seconds",
                      "cells", "warm_pivots", "cold_pivots", "pivot_ratio"});
  long total_warm_pivots = 0;
  long total_cold_pivots = 0;
  double total_warm_secs = 0;
  double total_cold_secs = 0;
  for (auto dist : {SyntheticDistribution::kUniform,
                    SyntheticDistribution::kCorrelated,
                    SyntheticDistribution::kAntiCorrelated}) {
    for (int k : {5, 10, 15, 20, 25}) {
      double error_sum = 0;
      double time_sum = 0;
      long cells = 0;
      long warm_pivots = 0;
      long cold_pivots = 0;
      int ok_count = 0;
      bool have_cold = false;
      for (int rep = 0; rep < replicas; ++rep) {
        SyntheticSpec spec;
        spec.num_tuples = n;
        spec.num_attributes = m;
        spec.distribution = dist;
        spec.seed = seed + 1000 * rep;
        Dataset data = GenerateSynthetic(spec);
        Ranking given = PowerSumRanking(data, 3, k);
        SymGdResult raw;
        MethodRow row = RunSymGd(data, given, eps, /*cell=*/0.01,
                                 budget, /*adaptive=*/true, "Sym-GD",
                                 /*warm_lp=*/true, &raw);
        if (row.error >= 0) {
          error_sum += row.error / std::max(1, given.k());
          time_sum += row.seconds;
          cells += raw.iterations;
          warm_pivots += raw.total_lp_pivots;
          total_warm_secs += row.seconds;
          ++ok_count;
        }
        if (compare) {
          SymGdResult cold_raw;
          MethodRow cold_row = RunSymGd(data, given, eps, /*cell=*/0.01,
                                        budget, /*adaptive=*/true,
                                        "Sym-GD-cold", /*warm_lp=*/false,
                                        &cold_raw);
          if (cold_row.error >= 0) {
            cold_pivots += cold_raw.total_lp_pivots;
            total_cold_secs += cold_row.seconds;
            have_cold = true;
          }
        }
      }
      if (ok_count == 0) {
        table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                      "fail", "-", "-", "-", "-", "-"});
        continue;
      }
      total_warm_pivots += warm_pivots;
      total_cold_pivots += cold_pivots;
      std::string ratio =
          have_cold && warm_pivots > 0
              ? FormatDouble(static_cast<double>(cold_pivots) / warm_pivots,
                             2)
              : "-";
      table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                    FormatDouble(error_sum / ok_count, 4),
                    FormatDouble(time_sum / ok_count, 2),
                    std::to_string(cells), std::to_string(warm_pivots),
                    have_cold ? std::to_string(cold_pivots) : "-", ratio});
      std::cout << "  " << SyntheticDistributionName(dist) << " k=" << k
                << ": " << FormatDouble(error_sum / ok_count, 3)
                << "/tuple in " << FormatDouble(time_sum / ok_count, 1)
                << "s, " << warm_pivots << " warm pivots"
                << (have_cold
                        ? " vs " + std::to_string(cold_pivots) + " cold"
                        : "")
                << "\n";
    }
  }

  Emit("fig3jkl_scalability", table);
  if (compare && total_warm_pivots > 0) {
    std::cout << "Warm-start totals: " << total_warm_pivots
              << " pivots (" << FormatDouble(total_warm_secs, 1)
              << "s) vs cold " << total_cold_pivots << " pivots ("
              << FormatDouble(total_cold_secs, 1) << "s) -> pivot ratio "
              << FormatDouble(static_cast<double>(total_cold_pivots) /
                                  total_warm_pivots,
                              2)
              << "x\n";
  }
  std::cout << "Paper shape: error <= ~1.5 per tuple across k and "
               "distributions; runtime grows mildly with k and stays within "
               "budget.\n";
  if (run_scaling) {
    return RunParallelScaling(scaling_n, m, seed, scaling_budget,
                              threads_max, kernel_n);
  }
  return 0;
}
