// Figures 3j/3k/3l: SYM-GD scalability on large synthetic data. One panel
// per distribution (uniform / correlated / anti-correlated); each dataset is
// ranked by the non-linear function sum(A_i^3); k varies in {5,10,15,20,25};
// SYM-GD runs with cell size 0.01 from the ordinal-regression seed.
//
// Paper settings: 1M tuples, m = 5, eps1 = 1e-5; error stays below ~1.5 per
// tuple and each run finishes within the hour. We default to 100k tuples
// (laptop scale; use --n=1000000 for the paper's size) — the shape (low
// error, time growing mildly with k, correlated easiest) is preserved.
//
// Flags: --n, --m, --seed, --datasets (replicas per distribution; the paper
// averages 3).

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 10000,
                                        "tuples (paper: 1000000)"));
  int m = static_cast<int>(flags.GetInt("m", 5, "attributes"));
  int replicas = static_cast<int>(flags.GetInt("datasets", 1,
                                               "datasets per distribution"));
  uint64_t seed = flags.GetInt("seed", 31, "generation seed");
  double budget = flags.GetDouble("budget", 20,
                                  "SYM-GD budget per run (s); paper <1h");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3j/3k/3l: Sym-GD scalability (n=" << n
            << ", ranking sum(A^3)) ===\n";
  EpsilonConfig eps = SyntheticEps();

  TablePrinter table({"distribution", "k", "error_per_tuple", "seconds",
                      "cells"});
  for (auto dist : {SyntheticDistribution::kUniform,
                    SyntheticDistribution::kCorrelated,
                    SyntheticDistribution::kAntiCorrelated}) {
    for (int k : {5, 10, 15, 20, 25}) {
      double error_sum = 0;
      double time_sum = 0;
      long cells = 0;
      int ok_count = 0;
      for (int rep = 0; rep < replicas; ++rep) {
        SyntheticSpec spec;
        spec.num_tuples = n;
        spec.num_attributes = m;
        spec.distribution = dist;
        spec.seed = seed + 1000 * rep;
        Dataset data = GenerateSynthetic(spec);
        Ranking given = PowerSumRanking(data, 3, k);
        MethodRow row = RunSymGd(data, given, eps, /*cell=*/0.01,
                                 budget, /*adaptive=*/true);
        if (row.error >= 0) {
          error_sum += row.error / std::max(1, given.k());
          time_sum += row.seconds;
          ++ok_count;
        }
        (void)cells;
      }
      if (ok_count == 0) {
        table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                      "fail", "-", "-"});
        continue;
      }
      table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                    FormatDouble(error_sum / ok_count, 4),
                    FormatDouble(time_sum / ok_count, 2), ""});
      std::cout << "  " << SyntheticDistributionName(dist) << " k=" << k
                << ": " << FormatDouble(error_sum / ok_count, 3)
                << "/tuple in " << FormatDouble(time_sum / ok_count, 1)
                << "s\n";
    }
  }

  Emit("fig3jkl_scalability", table);
  std::cout << "Paper shape: error <= ~1.5 per tuple across k and "
               "distributions; runtime grows mildly with k and stays within "
               "budget.\n";
  return 0;
}
