// Figures 3j/3k/3l: SYM-GD scalability on large synthetic data. One panel
// per distribution (uniform / correlated / anti-correlated); each dataset is
// ranked by the non-linear function sum(A_i^3); k varies in {5,10,15,20,25};
// SYM-GD runs with cell size 0.01 from the ordinal-regression seed.
//
// Paper settings: 1M tuples, m = 5, eps1 = 1e-5; error stays below ~1.5 per
// tuple and each run finishes within the hour. We default to 100k tuples
// (laptop scale; use --n=1000000 for the paper's size) — the shape (low
// error, time growing mildly with k, correlated easiest) is preserved.
//
// With --compare=1 (default) every configuration also runs with the legacy
// cold-start node LPs, and the table reports total simplex pivots for both
// engines plus the cold/warm ratio — the acceptance metric for the
// warm-started incremental LP subsystem (DESIGN.md "Incremental LP
// architecture"). Pivot counts are zero for configurations the auto
// strategy routes to the spatial search with no general P rows (no LP runs
// at all there).
//
// Flags: --n, --m, --seed, --datasets (replicas per distribution; the paper
// averages 3), --budget, --compare.

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 10000,
                                        "tuples (paper: 1000000)"));
  int m = static_cast<int>(flags.GetInt("m", 5, "attributes"));
  int replicas = static_cast<int>(flags.GetInt("datasets", 1,
                                               "datasets per distribution"));
  uint64_t seed = flags.GetInt("seed", 31, "generation seed");
  double budget = flags.GetDouble("budget", 20,
                                  "SYM-GD budget per run (s); paper <1h");
  bool compare = flags.GetInt("compare", 1,
                              "also run cold-start node LPs and report "
                              "the pivot ratio") != 0;
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3j/3k/3l: Sym-GD scalability (n=" << n
            << ", ranking sum(A^3)) ===\n";
  EpsilonConfig eps = SyntheticEps();

  TablePrinter table({"distribution", "k", "error_per_tuple", "seconds",
                      "cells", "warm_pivots", "cold_pivots", "pivot_ratio"});
  long total_warm_pivots = 0;
  long total_cold_pivots = 0;
  double total_warm_secs = 0;
  double total_cold_secs = 0;
  for (auto dist : {SyntheticDistribution::kUniform,
                    SyntheticDistribution::kCorrelated,
                    SyntheticDistribution::kAntiCorrelated}) {
    for (int k : {5, 10, 15, 20, 25}) {
      double error_sum = 0;
      double time_sum = 0;
      long cells = 0;
      long warm_pivots = 0;
      long cold_pivots = 0;
      int ok_count = 0;
      bool have_cold = false;
      for (int rep = 0; rep < replicas; ++rep) {
        SyntheticSpec spec;
        spec.num_tuples = n;
        spec.num_attributes = m;
        spec.distribution = dist;
        spec.seed = seed + 1000 * rep;
        Dataset data = GenerateSynthetic(spec);
        Ranking given = PowerSumRanking(data, 3, k);
        SymGdResult raw;
        MethodRow row = RunSymGd(data, given, eps, /*cell=*/0.01,
                                 budget, /*adaptive=*/true, "Sym-GD",
                                 /*warm_lp=*/true, &raw);
        if (row.error >= 0) {
          error_sum += row.error / std::max(1, given.k());
          time_sum += row.seconds;
          cells += raw.iterations;
          warm_pivots += raw.total_lp_pivots;
          total_warm_secs += row.seconds;
          ++ok_count;
        }
        if (compare) {
          SymGdResult cold_raw;
          MethodRow cold_row = RunSymGd(data, given, eps, /*cell=*/0.01,
                                        budget, /*adaptive=*/true,
                                        "Sym-GD-cold", /*warm_lp=*/false,
                                        &cold_raw);
          if (cold_row.error >= 0) {
            cold_pivots += cold_raw.total_lp_pivots;
            total_cold_secs += cold_row.seconds;
            have_cold = true;
          }
        }
      }
      if (ok_count == 0) {
        table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                      "fail", "-", "-", "-", "-", "-"});
        continue;
      }
      total_warm_pivots += warm_pivots;
      total_cold_pivots += cold_pivots;
      std::string ratio =
          have_cold && warm_pivots > 0
              ? FormatDouble(static_cast<double>(cold_pivots) / warm_pivots,
                             2)
              : "-";
      table.AddRow({SyntheticDistributionName(dist), std::to_string(k),
                    FormatDouble(error_sum / ok_count, 4),
                    FormatDouble(time_sum / ok_count, 2),
                    std::to_string(cells), std::to_string(warm_pivots),
                    have_cold ? std::to_string(cold_pivots) : "-", ratio});
      std::cout << "  " << SyntheticDistributionName(dist) << " k=" << k
                << ": " << FormatDouble(error_sum / ok_count, 3)
                << "/tuple in " << FormatDouble(time_sum / ok_count, 1)
                << "s, " << warm_pivots << " warm pivots"
                << (have_cold
                        ? " vs " + std::to_string(cold_pivots) + " cold"
                        : "")
                << "\n";
    }
  }

  Emit("fig3jkl_scalability", table);
  if (compare && total_warm_pivots > 0) {
    std::cout << "Warm-start totals: " << total_warm_pivots
              << " pivots (" << FormatDouble(total_warm_secs, 1)
              << "s) vs cold " << total_cold_pivots << " pivots ("
              << FormatDouble(total_cold_secs, 1) << "s) -> pivot ratio "
              << FormatDouble(static_cast<double>(total_cold_pivots) /
                                  total_warm_pivots,
                              2)
              << "x\n";
  }
  std::cout << "Paper shape: error <= ~1.5 per tuple across k and "
               "distributions; runtime grows mildly with k and stays within "
               "budget.\n";
  return 0;
}
