// Table III: numerical imprecision. NBA subset with n = 10 tuples, m = 8
// attributes, k = 1..10. The "+" variants use the Lemma-2/3 gap
// (ε1 = 1e-4); the "-" variants use ε1 = 1e-10, below the solver's noise
// floor. Every returned solution is re-checked with exact rational
// arithmetic; the table reports the TRUE position error.
//
// Paper shape: RankHow+ and OR+ achieve 0 everywhere; the "-" variants
// intermittently return false positives (nonzero verified error).
//
// Flags: --seed, --trials (the "-" failures are data-dependent; more trials
// make them visible; errors are summed over trials like repeated runs).

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

/// Solves and returns the *verified* error (what Table III reports).
long SolveVerified(const Dataset& data, const Ranking& given, double eps1,
                   bool* verified_ok) {
  RankHowOptions options;
  options.eps.tie_eps = eps1 / 2;
  options.eps.eps1 = eps1;
  options.eps.eps2 = 0.0;
  // Table III is about VERIFICATION outcomes, not optimality proofs: the
  // presolve incumbent on these 10-tuple instances is found in
  // milliseconds, so a short cap keeps the 40-solve sweep brisk.
  options.time_limit_seconds = 5;
  RankHow solver(data, given, options);
  auto result = solver.Solve();
  if (!result.ok()) {
    *verified_ok = false;
    return -1;
  }
  *verified_ok = result->verification->consistent;
  return result->verification->exact_error;
}

long OrdinalVerified(const Dataset& data, const Ranking& given, double eps1) {
  OrdinalRegressionOptions options;
  options.margin = eps1;
  auto fit = FitOrdinalRegression(data, given, options);
  if (!fit.ok()) return -1;
  // Exact evaluation at the OR weights (ties at eps1/2, as for RankHow).
  auto report = VerifySolution(data, given, fit->weights, eps1 / 2, 0);
  if (!report.ok()) return -1;
  return report->exact_error;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  uint64_t seed = flags.GetInt("seed", 17, "subset selection seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Table III: numerical imprecision (n=10, m=8, k=1..10) "
               "===\n";
  // A 10-tuple NBA subset. To exercise the numerics the way tiny ε1 does in
  // the paper, pick statistically close players (mid-table neighbours by
  // MP*PER) so score differences are small.
  NbaData nba = GenerateNba({.num_tuples = 4000, .seed = seed});
  std::vector<int> order(nba.table.num_tuples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return nba.mp_times_per[a] > nba.mp_times_per[b];
  });
  std::vector<int> subset(order.begin() + 500, order.begin() + 510);
  Dataset data = nba.table.SelectTuples(subset);
  data.NormalizeMinMax();
  std::vector<double> sub_scores;
  for (int t : subset) sub_scores.push_back(nba.mp_times_per[t]);

  TablePrinter table(
      {"k", "RankHow+", "RankHow-", "OR+", "OR-", "rh+_verified"});
  long total_minus = 0;
  for (int k = 1; k <= 10; ++k) {
    Ranking given = Ranking::FromScores(sub_scores, k);
    bool plus_ok = false;
    bool minus_ok = false;
    long rh_plus = SolveVerified(data, given, 1e-4, &plus_ok);
    long rh_minus = SolveVerified(data, given, 1e-10, &minus_ok);
    long or_plus = OrdinalVerified(data, given, 1e-4);
    long or_minus = OrdinalVerified(data, given, 1e-10);
    total_minus += std::max(0L, rh_minus) + std::max(0L, or_minus);
    table.AddRow({std::to_string(k), std::to_string(rh_plus),
                  std::to_string(rh_minus), std::to_string(or_plus),
                  std::to_string(or_minus), plus_ok ? "yes" : "NO"});
  }

  Emit("table3_numerics", table);
  std::cout << "Paper shape: the + variants (eps1 = 1e-4) read 0 across the "
               "row and always verify; the - variants (eps1 = 1e-10) suffer "
               "sporadic nonzero true errors (false positives).\n";
  std::cout << "(sum of '-' errors over k: " << total_minus << ")\n";
  return 0;
}
