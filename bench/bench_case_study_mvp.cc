// Section VI-B case study: the NBA MVP ranking.
//
// Paper reference: 13 vote-receiving players, 8 ranking attributes, a tie at
// the bottom. RankHow returns the optimal function (error 6) in 1.6 s; the
// original TREE needs >16 h to reach error 9; TREE + the ε1 construction
// needs 36 min for error 7 — 35000× / 1000× slower than RankHow.
//
// We reproduce the *shape*: RankHow solves the instance to proven optimality
// in well under a second of solver time, while TREE burns its entire (much
// larger) budget without matching it. Flags: --n, --panelists, --seed,
// --tree_budget (seconds per TREE variant).

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 4000, "simulated player-seasons"));
  int panelists = static_cast<int>(flags.GetInt("panelists", 100, "voters"));
  uint64_t seed = flags.GetInt("seed", 22, "simulation seed");
  double tree_budget =
      flags.GetDouble("tree_budget", 12.0, "seconds per TREE variant");
  if (!flags.Finish()) return 0;

  std::cout << "=== Case study (Sec. VI-B): NBA MVP ===\n";
  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  MvpVoteResult mvp = SimulateMvpVote(nba, panelists, seed + 1);
  Dataset voted = mvp.voted_table;
  voted.NormalizeMinMax();
  std::cout << mvp.vote_receivers.size() << " players received votes (paper: "
            << "13); m = " << voted.num_attributes() << "\n\n";

  EpsilonConfig eps = NbaEps();
  TablePrinter table({"method", "error", "seconds", "optimal", "note"});

  // RankHow (the 1.6 s row of the paper).
  MethodRow rankhow = RunRankHow(voted, mvp.ranking, eps, 4 * tree_budget);
  table.AddRow({rankhow.method, FormatDouble(rankhow.error),
                FormatDouble(rankhow.seconds, 3),
                rankhow.optimal ? "yes" : "no", rankhow.note});

  // Original TREE: eps1 below the noise floor, budget-limited (the paper ran
  // it 16 hours; we cap and report progress).
  {
    TreeOptions tree;
    tree.eps1 = 1e-10;
    tree.eps2 = 0.0;
    tree.tie_eps = eps.tie_eps;
    tree.time_limit_seconds = tree_budget;
    auto result = RunTreeBaseline(voted, mvp.ranking, tree);
    if (result.ok()) {
      table.AddRow({"Tree (original)", FormatDouble(result->error),
                    FormatDouble(result->seconds, 3),
                    result->completed ? "yes" : "no",
                    StrFormat("%ld LPs, %ld leaves%s", result->lp_calls,
                              result->leaves_reached,
                              result->completed ? "" : ", budget hit")});
    } else {
      table.AddRow({"Tree (original)", "fail", FormatDouble(tree_budget),
                    "no", result.status().ToString()});
    }
  }

  // TREE + the paper's ε1 construction (+ dominance pre-fixing, which the
  // ε1 value enables): faster but still far behind.
  {
    TreeOptions tree;
    tree.eps1 = eps.eps1;
    tree.eps2 = eps.eps2;
    tree.tie_eps = eps.tie_eps;
    tree.time_limit_seconds = tree_budget;
    tree.use_dominance_pruning = true;
    auto result = RunTreeBaseline(voted, mvp.ranking, tree);
    if (result.ok()) {
      table.AddRow({"Tree (+eps1)", FormatDouble(result->error),
                    FormatDouble(result->seconds, 3),
                    result->completed ? "yes" : "no",
                    StrFormat("%ld LPs, %ld leaves%s", result->lp_calls,
                              result->leaves_reached,
                              result->completed ? "" : ", budget hit")});
    } else {
      table.AddRow({"Tree (+eps1)", "fail", FormatDouble(tree_budget), "no",
                    result.status().ToString()});
    }
  }

  Emit("case_study_mvp", table);
  std::cout << "Paper shape: RankHow optimal in seconds; TREE orders of "
               "magnitude slower (16h/36min at full scale), with higher "
               "error when stopped early.\n";
  if (rankhow.error >= 0) {
    std::cout << "RankHow function: exactly verified error "
              << rankhow.error
              << (rankhow.optimal ? " (proven optimal)" : " (incumbent)")
              << " over " << mvp.ranking.k() << " ranked players.\n";
  }
  return 0;
}
