// Figure 3h: SYM-GD approximation quality. Re-run the Fig-3b/3f/3g-style
// configurations with SYM-GD (Algorithm 1, fixed large cell 0.1, ordinal
// seed) and plot, per configuration, the execution-time ratio
// (local / global) against the extra per-tuple error (local − global).
//
// Paper shape: the mass of points sits in the lower-left corner — optimal
// or near-optimal error at a fraction (often <1/10) of the global time.
//
// Flags: --n (NBA tuples), --budget (global RankHow cap), --seed.

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

struct Config {
  std::string label;
  Dataset data;
  Ranking given;
  EpsilonConfig eps;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 1200, "NBA tuples"));
  double budget = flags.GetDouble("budget", 10, "global solver cap (s)");
  uint64_t seed = flags.GetInt("seed", 5, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3h: Sym-GD local vs global (cell = 0.1) ===\n";
  std::vector<Config> configs;

  // NBA configs: vary k (as Fig 3b).
  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  for (int k : {2, 4, 6}) {
    Dataset data = nba.table.SelectAttributes({0, 1, 2, 3, 4});
    data.NormalizeMinMax();
    configs.push_back({StrFormat("nba_k=%d", k), std::move(data),
                       NbaPerRanking(nba, k), NbaEps()});
  }
  // NBA configs: vary m (as Fig 3g's spirit, on NBA).
  for (int m : {4, 6, 8}) {
    std::vector<int> attrs;
    for (int a = 0; a < m; ++a) attrs.push_back(a);
    Dataset data = nba.table.SelectAttributes(attrs);
    data.NormalizeMinMax();
    configs.push_back({StrFormat("nba_m=%d", m), std::move(data),
                       NbaPerRanking(nba, 4), NbaEps()});
  }
  // NBA configs: vary n (as Fig 3f's spirit).
  for (int frac : {2, 4}) {
    int sub_n = n * frac / 4;
    std::vector<int> rows(sub_n);
    for (int i = 0; i < sub_n; ++i) rows[i] = i;
    NbaData sub;
    sub.table = nba.table.SelectTuples(rows).SelectAttributes({0, 1, 2, 3, 4});
    sub.mp_times_per.assign(nba.mp_times_per.begin(),
                            nba.mp_times_per.begin() + sub_n);
    Dataset data = sub.table;
    data.NormalizeMinMax();
    configs.push_back({StrFormat("nba_n=%d", sub_n), std::move(data),
                       NbaPerRanking(sub, 4), NbaEps()});
  }

  TablePrinter table({"config", "global_err/t", "local_err/t",
                      "time_ratio", "extra_err/t"});
  for (const Config& c : configs) {
    MethodRow global = RunRankHow(c.data, c.given, c.eps, budget);
    MethodRow local = RunSymGd(c.data, c.given, c.eps, /*cell=*/0.1,
                               /*budget=*/0, /*adaptive=*/false, "Sym-GD");
    double ratio = global.seconds > 0 ? local.seconds / global.seconds : 0;
    double extra = (local.error - global.error) / std::max(1, c.given.k());
    table.AddRow({c.label, PerTuple(global.error, c.given.k()),
                  PerTuple(local.error, c.given.k()),
                  FormatDouble(ratio, 3), FormatDouble(extra, 3)});
    std::cout << "  " << c.label << ": ratio " << FormatDouble(ratio, 3)
              << ", extra " << FormatDouble(extra, 3) << "\n";
  }

  Emit("fig3h_approx_quality", table);
  std::cout << "Paper shape: points cluster toward the lower-left (small "
               "time ratio, near-zero extra error).\n";
  return 0;
}
