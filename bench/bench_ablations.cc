// Ablations for the design choices DESIGN.md calls out (not a paper figure;
// supports the paper's Sec. III-B and V-B arguments with measurements):
//
//  A1. Indicator fixing (Sec. V-B dominance generalization) on/off:
//      free-indicator counts and solve time.
//  A2. The true-error primal heuristic (the B&B's cross-branch incumbent
//      source) on/off: nodes explored and time — "off" approximates the
//      naive per-partition reasoning of TREE inside the same solver.
//  A3. Tight per-pair big-M vs auto (bounds-derived) big-M: nodes and time.
//  A4. Seed strategies for SYM-GD: ordinal / linear / grid / random.
//  A5. Exact strategy: spatial weight-space B&B vs indicator MILP, across
//      attribute counts (the kAuto crossover).
//  A6. Multi-start presolve incumbent on/off under a fixed budget.
//  A7. Lazy row generation vs the classical full relaxation.
//  A8. Objective variants on one instance: Definition-3 position error,
//      top-heavy weighted error, Kendall-tau inversions.
//  A9. Direct branch-and-bound minimization vs the Sec. III-A alternative
//      the paper sketches for SMT solvers: binary-searching the smallest
//      error bound E over a series of satisfiability probes.
//
// Flags: --n, --k, --seed, --budget.

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

/// One indicator-MILP solve with selected toggles (the A1-A3 ablations are
/// MILP-path design choices; kAuto would route these instances to the
/// spatial strategy and mask them).
struct MilpToggles {
  bool fixing = true;
  bool heuristic = true;
  bool presolve = true;
  bool lazy = true;
  bool tight_big_m = true;
};

MethodRow SolveWith(const Dataset& data, const Ranking& given,
                    EpsilonConfig eps, double budget,
                    const MilpToggles& toggles, const std::string& label) {
  RankHowOptions options;
  options.eps = eps;
  options.strategy = SolveStrategy::kIndicatorMilp;
  options.time_limit_seconds = budget;
  options.use_indicator_fixing = toggles.fixing;
  options.use_primal_heuristic = toggles.heuristic;
  options.use_presolve = toggles.presolve;
  options.use_lazy_separation = toggles.lazy;
  options.use_tight_big_m = toggles.tight_big_m;
  RankHow solver(data, given, options);
  auto result = solver.Solve();
  if (!result.ok()) return Failed(label, result.status());
  return MethodRow{
      label, static_cast<double>(result->error), result->seconds,
      result->proven_optimal,
      StrFormat("nodes=%lld free=%ld fixed=%ld lazy_rounds=%lld",
                static_cast<long long>(result->stats.nodes_explored),
                result->num_free_indicators, result->num_fixed_indicators,
                static_cast<long long>(result->stats.lazy_rounds))};
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 150, "tuples"));
  int k = static_cast<int>(flags.GetInt("k", 5, "ranking length"));
  double budget = flags.GetDouble("budget", 8, "cap per solve (s)");
  uint64_t seed = flags.GetInt("seed", 13, "generation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Ablations (synthetic anti-correlated, n=" << n
            << ", k=" << k << ", m=4) ===\n";
  SyntheticSpec spec;
  spec.num_tuples = n;
  spec.num_attributes = 4;
  spec.distribution = SyntheticDistribution::kAntiCorrelated;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 3, k);
  EpsilonConfig eps = SyntheticEps();

  TablePrinter table({"ablation", "variant", "error", "seconds", "note"});
  auto add = [&](const char* ablation, const MethodRow& row) {
    table.AddRow({ablation, row.method,
                  row.error < 0 ? "fail" : FormatDouble(row.error),
                  FormatDouble(row.seconds, 3), row.note});
  };

  // A1: fixing on/off.
  add("A1 fixing", SolveWith(data, given, eps, budget, {.fixing = true},
                             "on"));
  add("A1 fixing", SolveWith(data, given, eps, budget, {.fixing = false},
                             "off"));

  // A2: incumbent sources off entirely (no presolve, no per-node heuristic)
  // — the remaining pruning is what a per-partition algorithm like TREE has.
  add("A2 incumbents",
      SolveWith(data, given, eps, budget, MilpToggles{}, "on"));
  add("A2 incumbents",
      SolveWith(data, given, eps, budget,
                {.heuristic = false, .presolve = false}, "off"));

  // A3: tight per-pair big-M vs loose bounds-derived M.
  add("A3 big-M",
      SolveWith(data, given, eps, budget, MilpToggles{}, "tight"));
  add("A3 big-M", SolveWith(data, given, eps, budget,
                            {.tight_big_m = false}, "loose"));

  // A4: seed strategies for SYM-GD (fixed cell 0.05).
  {
    auto run_seed = [&](const char* name,
                        Result<std::vector<double>> seed_w) {
      if (!seed_w.ok()) {
        add("A4 seed", Failed(name, seed_w.status()));
        return;
      }
      SymGdOptions options;
      options.cell_size = 0.05;
      options.solver.eps = eps;
      options.time_budget_seconds = budget;
      SymGd symgd(data, given, options);
      WallTimer timer;
      auto result = symgd.Run(*seed_w);
      add("A4 seed",
          result.ok()
              ? MethodRow{name, static_cast<double>(result->error),
                          timer.ElapsedSeconds(), false,
                          StrFormat("%d cells", result->iterations)}
              : Failed(name, result.status()));
    };
    run_seed("ordinal", OrdinalRegressionSeed(data, given, eps.eps1));
    run_seed("linear", LinearRegressionSeed(data, given));
    run_seed("grid", GridLowerBoundSeed(data, given,
                                        {.target_cell_size = 0.1,
                                         .max_cells = 500,
                                         .eps1 = eps.eps1,
                                         .eps2 = eps.eps2}));
    run_seed("random",
             Result<std::vector<double>>(RandomSeed(4, seed)));
  }

  // A5: spatial vs indicator MILP across m (smaller n so the MILP can
  // finish too; the crossover drives SolveStrategy::kAuto).
  for (int m5 : {3, 4, 6, 8}) {
    SyntheticSpec sp = spec;
    sp.num_tuples = std::min(n, 120);
    sp.num_attributes = m5;
    Dataset d5 = GenerateSynthetic(sp);
    Ranking g5 = PowerSumRanking(d5, 3, k);
    for (SolveStrategy strategy :
         {SolveStrategy::kSpatial, SolveStrategy::kIndicatorMilp}) {
      RankHowOptions options;
      options.eps = eps;
      options.strategy = strategy;
      options.time_limit_seconds = budget;
      RankHow solver(d5, g5, options);
      auto result = solver.Solve();
      const char* name =
          strategy == SolveStrategy::kSpatial ? "spatial" : "milp";
      add(StrFormat("A5 m=%d", m5).c_str(),
          result.ok()
              ? MethodRow{name, static_cast<double>(result->error),
                          result->seconds, result->proven_optimal,
                          StrFormat("nodes=%lld",
                                    static_cast<long long>(
                                        result->stats.nodes_explored))}
              : Failed(name, result.status()));
    }
  }

  // A6: presolve incumbent on/off, on a *realizable* instance where a
  // presolve hit turns the whole solve into an instant optimality proof
  // (incumbent 0 == root bound 0).
  {
    Dataset d6 = data;
    Ranking g6 =
        Ranking::FromScores(d6.Scores({0.4, 0.3, 0.2, 0.1}), k, 0.0);
    add("A6 presolve",
        SolveWith(d6, g6, eps, budget, MilpToggles{}, "on"));
    add("A6 presolve", SolveWith(d6, g6, eps, budget,
                                 {.presolve = false}, "off"));
  }

  // A7: lazy row generation vs full relaxation, at a size where the full
  // relaxation's node LPs are big enough to hurt.
  {
    SyntheticSpec sp = spec;
    sp.num_tuples = std::max(n, 600);
    Dataset d7 = GenerateSynthetic(sp);
    Ranking g7 = PowerSumRanking(d7, 3, k);
    add("A7 rows",
        SolveWith(d7, g7, eps, budget, MilpToggles{}, "lazy"));
    add("A7 rows",
        SolveWith(d7, g7, eps, budget, {.lazy = false}, "full"));
  }

  // A8: objective variants (Sec. I's generalized measures) on one instance.
  {
    struct Variant {
      const char* name;
      RankingObjectiveSpec spec;
    };
    std::vector<Variant> variants = {
        {"position", RankingObjectiveSpec{}},
        {"top-heavy", RankingObjectiveSpec::TopHeavy(k)},
        {"inversions", RankingObjectiveSpec::Inversions()},
    };
    for (const Variant& variant : variants) {
      RankHowOptions options;
      options.eps = eps;
      options.time_limit_seconds = budget;
      RankHow solver(data, given, options);
      solver.problem().objective = variant.spec;
      auto result = solver.Solve();
      add("A8 objective",
          result.ok()
              ? MethodRow{variant.name, static_cast<double>(result->error),
                          result->seconds, result->proven_optimal,
                          result->verification &&
                                  result->verification->consistent
                              ? "verified"
                              : "UNVERIFIED"}
              : Failed(variant.name, result.status()));
    }
  }

  // A9: direct minimization vs the SMT-style binary search on error bounds
  // (Sec. III-A: "performing binary search to find the smallest error value
  // for which a satisfying assignment can be found"). Same model builder,
  // same B&B machinery — the difference is pure search organization, and
  // infeasible probes make the SAT route pay for its optimality proof.
  {
    // A small instance with a *positive* optimum: the SAT route must prove
    // probes infeasible, which is where it pays relative to direct B&B.
    SyntheticSpec sp = spec;
    sp.num_tuples = std::min(n, 60);
    Dataset d9 = GenerateSynthetic(sp);
    Ranking g9 = PowerSumRanking(d9, 5, std::max(k, 8));
    for (SolveStrategy strategy :
         {SolveStrategy::kIndicatorMilp, SolveStrategy::kSatBinarySearch}) {
      RankHowOptions options;
      options.eps = eps;
      options.strategy = strategy;
      options.time_limit_seconds = budget;
      RankHow solver(d9, g9, options);
      auto result = solver.Solve();
      const char* name = strategy == SolveStrategy::kIndicatorMilp
                             ? "direct-bnb"
                             : "sat-search";
      add("A9 search",
          result.ok()
              ? MethodRow{name, static_cast<double>(result->error),
                          result->seconds, result->proven_optimal,
                          StrFormat("nodes=%lld probes=%ld",
                                    static_cast<long long>(
                                        result->stats.nodes_explored),
                                    result->sat_probes)}
              : Failed(name, result.status()));
    }
  }

  Emit("ablations", table);
  std::cout
      << "Expected: fixing trims free indicators (strongly on correlated "
         "data, mildly on anti-correlated); without incumbent sources the "
         "solver may find nothing at all (Sec. III-B's 'holistic' effect); "
         "tight big-M needs fewer nodes than loose; informed seeds beat "
         "random; spatial wins at small m, the MILP takes over as m grows; "
         "presolve turns realizable instances into instant proofs; lazy "
         "rows dominate at large n; objective variants are all verified; "
         "both search organizations prove the same optimum, with the SAT "
         "binary search spending extra nodes on infeasible probes.\n";
  return 0;
}
