// Figure 3i: the cell-size tradeoff. NBA data, m = 8, k = 10, SYM-GD
// (Algorithm 1) with cell sizes 0.001 .. 0.010 (the paper's "1 unit =
// 0.001" axis). Reports error per tuple and execution time per cell size.
//
// Paper shape: error drops as the cell grows, with little extra time until
// a knee (~0.008 in the paper); beyond it time rises sharply for no error
// benefit — the tradeoff knob of Sec. IV-C.
//
// Flags: --n, --k, --seed, --cells (max cell-size units).

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 1200, "NBA tuples"));
  int k = static_cast<int>(flags.GetInt("k", 10, "ranking length"));
  int units = static_cast<int>(flags.GetInt("cells", 10, "max size in 0.001"));
  uint64_t seed = flags.GetInt("seed", 9, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3i: cell-size tradeoff (NBA, m=8, k=" << k
            << ") ===\n";
  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  Dataset data = nba.table;  // all 8 attributes
  data.NormalizeMinMax();
  Ranking given = NbaPerRanking(nba, k);
  EpsilonConfig eps = NbaEps();

  auto seed_w = OrdinalRegressionSeed(data, given, eps.eps1);
  if (!seed_w.ok()) {
    std::cerr << seed_w.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"cell_size", "error_per_tuple", "seconds", "cells"});
  for (int u = 1; u <= units; ++u) {
    double cell = 0.001 * u;
    SymGdOptions options;
    options.cell_size = cell;
    options.adaptive = false;  // Algorithm 1 (fixed cell), as in the paper
    options.solver.eps = eps;
    SymGd symgd(data, given, options);
    auto result = symgd.Run(*seed_w);
    if (!result.ok()) {
      table.AddRow({FormatDouble(cell), "fail", "-",
                    result.status().ToString()});
      continue;
    }
    table.AddRow({FormatDouble(cell),
                  PerTuple(static_cast<double>(result->error), given.k()),
                  FormatDouble(result->seconds, 3),
                  std::to_string(result->iterations)});
    std::cout << "  cell " << cell << ": error/tuple "
              << PerTuple(static_cast<double>(result->error), given.k())
              << " in " << FormatDouble(result->seconds, 2) << "s\n";
  }

  Emit("fig3i_cell_size", table);
  std::cout << "Paper shape: error decreases with cell size at nearly flat "
               "cost until a knee, then time climbs.\n";
  return 0;
}
