// bench_session_resolve — the SolveSession acceptance artifact: cold-solve
// vs. session re-solve latency over realistic constraint-edit scripts on the
// NBA and CSRankings simulators (the Sec. I RankHow what-if workflow: a user
// repeatedly edits weight constraints and re-solves).
//
// Per edit step the harness runs (a) a fresh RankHow::Solve over the
// accumulated problem — model rebuild + multi-start presolve + cold search —
// and (b) SolveSession::Solve after applying just the delta. Both must agree
// on the proven optimum (the randomized equivalence suite in
// tests/core/solve_session_test.cc proves this property exhaustively; here
// it doubles as a smoke check), and the per-step/total latencies land in
// BENCH_session_resolve.json.
//
// A second section measures the session *server* (PR 4): N scripted
// clients streaming the same edit script through a SessionRegistry over
// one copy-on-write dataset snapshot, at 1/4/16 simulated clients —
// queries/sec, wall seconds, and the resident-copy count (must stay 1: the
// script has no structural edits) land in BENCH_server_throughput.json.
//
// A third section measures cross-client warm seeding (PR 5): client A
// proves a region, then client B's first solve of the same base problem
// runs with per-session pools vs the registry-level shared incumbent pool
// (SharedIncumbentPool) — seconds, explored nodes, and draw counts land in
// BENCH_server_throughput.json's "cross_client_warm_seed" object, with an
// errors_match consistency bit (sharing must never move a proven optimum).
//
// A fourth section measures write-ahead journal overhead (the durability
// PR): the same scripted-client workload with the journal off, batched
// (the fsync_every=32 default), and fsync-every-record — wall seconds and
// the overhead percentages land in BENCH_server_throughput.json's
// "journal_overhead" object. The acceptance number: batched overhead
// under 10%.
//
// A fifth section measures the epoll reactor transport (the
// connection-scaling PR): >= 1000 mostly-idle loopback TCP connections
// multiplexed by one in-process ReactorServer while an active client works
// through the crowd — per-verb p50/p99 latencies from the `metrics` verb
// land in BENCH_server_throughput.json's "connection_scaling" object, and
// a text-vs-binary framing throughput ladder at 1/16/256 pipelined clients
// lands in "framing_throughput". The metadata records the transport mode
// and reactor event-loop count.
//
// A sixth section measures restart-warm seeding (the persistent warm-cache
// PR): a cold first solve publishes its proven winner through a
// fingerprint-keyed WarmCache, every in-memory structure is destroyed (a
// simulated process death), and a fresh registry over the reopened cache
// re-solves the same problem — cold vs warm seconds/nodes land in
// BENCH_server_throughput.json's "restart_warm_seed" object with an
// errors_match bit (the cache must never move a proven optimum) and the
// cache hit/loaded counters that prove the warm solve actually drew the
// dead process's record.
//
// Flags: --nba-n, --cs-n, --k, --budget (per solve), --seed, --serve-n
// (server-section dataset size), --serve-budget, --idle-conns,
// --frame-pings.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/harness_include.h"
#include "core/solve_session.h"
#include "core/warm_cache.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/socket_server.h"
#include "server/journal.h"
#include "server/session_registry.h"
#include "server/wire.h"
#include "util/histogram.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

/// One scripted constraint edit: add a named bound or drop by name.
struct Edit {
  enum class Kind { kCold, kAdd, kDrop } kind = Edit::Kind::kCold;
  int attr = -1;
  bool is_min = true;
  double bound = 0;
  std::string name;
  std::string desc;
};

/// The shared edit-script shape: tighten, tighten further, tighten another
/// attribute, relax, tighten a third — covering every delta class the
/// session distinguishes except structural ones (those recompile either
/// way, so there is nothing interesting to measure).
std::vector<Edit> MakeScript(const Dataset& data) {
  auto name_of = [&](bool is_min, int attr) {
    return (is_min ? std::string("min_") : std::string("max_")) +
           data.attribute_name(attr);
  };
  std::vector<Edit> script;
  script.push_back({Edit::Kind::kCold, -1, true, 0, "", "cold solve"});
  script.push_back({Edit::Kind::kAdd, 0, true, 0.02, name_of(true, 0),
                    "min w0 0.02"});
  script.push_back({Edit::Kind::kAdd, 0, true, 0.05, name_of(true, 0),
                    "min w0 0.05"});
  script.push_back({Edit::Kind::kAdd, 1, false, 0.5, name_of(false, 1),
                    "max w1 0.5"});
  script.push_back({Edit::Kind::kDrop, 0, true, 0, name_of(true, 0),
                    "drop min w0"});
  script.push_back({Edit::Kind::kAdd, 2, true, 0.03, name_of(true, 2),
                    "min w2 0.03"});
  return script;
}

struct StepResult {
  std::string desc;
  double cold_seconds = 0;
  double session_seconds = 0;
  long cold_error = -1;
  long session_error = -1;
  bool cold_proven = false;
  bool session_proven = false;
  bool match = true;
};

struct ScriptRun {
  std::string dataset;
  int n = 0;
  int m = 0;
  int k = 0;
  std::vector<StepResult> steps;
  bool ok = true;
};

/// Runs the script against one dataset, cold and in-session, asserting the
/// proven optima agree at every step.
ScriptRun RunScript(const std::string& name, const Dataset& data,
                    const Ranking& given, EpsilonConfig eps, double budget) {
  ScriptRun run;
  run.dataset = name;
  run.n = data.num_tuples();
  run.m = data.num_attributes();
  run.k = given.k();

  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = budget;

  SolveSession session(data, given, options);
  WeightConstraintSet accumulated;  // what the cold solver rebuilds from

  for (const Edit& edit : MakeScript(data)) {
    StepResult step;
    step.desc = edit.desc;

    Status edit_status;
    if (edit.kind == Edit::Kind::kAdd) {
      WeightConstraint c;
      c.terms = {{edit.attr, 1.0}};
      c.op = edit.is_min ? RelOp::kGe : RelOp::kLe;
      c.rhs = edit.bound;
      c.name = edit.name;
      accumulated.Add(c);
      edit_status = session.AddWeightConstraint(std::move(c));
    } else if (edit.kind == Edit::Kind::kDrop) {
      accumulated.RemoveByName(edit.name);
      edit_status = session.RemoveWeightConstraint(edit.name);
    }
    if (!edit_status.ok()) {
      std::printf("  %s: edit failed: %s\n", edit.desc.c_str(),
                  edit_status.ToString().c_str());
      run.ok = false;
      break;
    }

    // Session re-solve (the delta path).
    auto sres = session.Solve();
    if (!sres.ok()) {
      std::printf("  %s: session solve failed: %s\n", edit.desc.c_str(),
                  sres.status().ToString().c_str());
      run.ok = false;
      break;
    }
    step.session_seconds = sres->seconds;
    step.session_error = sres->error;
    step.session_proven = sres->proven_optimal;

    // Cold solve: a fresh RankHow over the accumulated problem.
    {
      RankHow cold(data, given, options);
      cold.problem().constraints = accumulated;
      auto cres = cold.Solve();
      if (!cres.ok()) {
        std::printf("  %s: cold solve failed: %s\n", edit.desc.c_str(),
                    cres.status().ToString().c_str());
        run.ok = false;
        break;
      }
      step.cold_seconds = cres->seconds;
      step.cold_error = cres->error;
      step.cold_proven = cres->proven_optimal;
    }

    step.match = !(step.cold_proven && step.session_proven) ||
                 step.cold_error == step.session_error;
    if (!step.match) run.ok = false;
    std::printf("  %-14s cold %7.3fs (err %ld%s)   session %7.3fs "
                "(err %ld%s)   %5.1fx%s\n",
                step.desc.c_str(), step.cold_seconds, step.cold_error,
                step.cold_proven ? "*" : "", step.session_seconds,
                step.session_error, step.session_proven ? "*" : "",
                step.session_seconds > 0
                    ? step.cold_seconds / step.session_seconds
                    : 0.0,
                step.match ? "" : "  MISMATCH");
    run.steps.push_back(std::move(step));
  }
  const SolveSessionStats& st = session.stats();
  std::printf("  session stats: builds %lld, patches %lld, presolves %lld, "
              "pool hits %lld, bound seeds %lld\n",
              (long long)st.model_builds, (long long)st.model_patches,
              (long long)st.presolve_runs, (long long)st.pool_hits,
              (long long)st.bound_seeds);
  return run;
}

void EmitJson(const std::vector<ScriptRun>& runs, bool all_ok) {
  std::FILE* f = std::fopen("BENCH_session_resolve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_session_resolve.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"session_resolve\",\n");
  WriteBenchMetadataJson(f, /*threads_used=*/1, BenchTimestampUtc());
  std::fprintf(f, "  \"optima_match\": %s,\n  \"datasets\": [\n",
               all_ok ? "true" : "false");
  for (size_t d = 0; d < runs.size(); ++d) {
    const ScriptRun& run = runs[d];
    double cold_total = 0, session_total = 0;
    for (const StepResult& s : run.steps) {
      cold_total += s.cold_seconds;
      session_total += s.session_seconds;
    }
    // The acceptance number: the re-solve right after the first single
    // constraint edit (script step 2) vs. its cold solve.
    double single_edit_speedup = 0;
    if (run.steps.size() > 1 && run.steps[1].session_seconds > 0) {
      single_edit_speedup =
          run.steps[1].cold_seconds / run.steps[1].session_seconds;
    }
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %d, \"m\": %d, \"k\": %d,\n"
                 "     \"cold_total_seconds\": %.4f, "
                 "\"session_total_seconds\": %.4f,\n"
                 "     \"total_speedup\": %.3f, "
                 "\"single_edit_speedup\": %.3f,\n"
                 "     \"steps\": [\n",
                 run.dataset.c_str(), run.n, run.m, run.k, cold_total,
                 session_total,
                 session_total > 0 ? cold_total / session_total : 0.0,
                 single_edit_speedup);
    for (size_t i = 0; i < run.steps.size(); ++i) {
      const StepResult& s = run.steps[i];
      std::fprintf(
          f,
          "      {\"edit\": \"%s\", \"cold_seconds\": %.5f, "
          "\"session_seconds\": %.5f, \"cold_error\": %ld, "
          "\"session_error\": %ld, \"both_proven\": %s, \"match\": %s}%s\n",
          s.desc.c_str(), s.cold_seconds, s.session_seconds, s.cold_error,
          s.session_error,
          s.cold_proven && s.session_proven ? "true" : "false",
          s.match ? "true" : "false",
          i + 1 < run.steps.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", d + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(written to BENCH_session_resolve.json)\n");
}

// ---------------------------------------------------------------------------
// Multi-client server throughput.

struct ThroughputLevel {
  int clients = 0;
  int commands = 0;        // total across clients
  double seconds = 0;
  double queries_per_second = 0;
  int resident_copies = 0;
  bool optima_consistent = true;  // all clients proved identical optima
  bool ok = true;
};

SessionCommand MakeCommand(SessionCommand::Kind kind, std::string arg,
                           double value, int line) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  cmd.line = line;
  return cmd;
}

/// The per-client wire script: one cold solve, then warm constraint edits
/// (no structural edits, so the COW snapshot must never fork).
std::vector<SessionCommand> ThroughputScript(const Dataset& data) {
  using K = SessionCommand::Kind;
  const std::string a0 = data.attribute_name(0);
  const std::string a1 = data.attribute_name(1);
  std::vector<SessionCommand> script;
  script.push_back(MakeCommand(K::kSolve, "", 0, 1));
  script.push_back(MakeCommand(K::kMinWeight, a0, 0.02, 2));
  script.push_back(MakeCommand(K::kMaxWeight, a1, 0.5, 3));
  script.push_back(MakeCommand(K::kDrop, "min_" + a0, 0, 4));
  script.push_back(MakeCommand(K::kMinWeight, a1, 0.03, 5));
  script.push_back(MakeCommand(K::kSolve, "", 0, 6));
  return script;
}

ThroughputLevel RunThroughputLevel(const Dataset& data, const Ranking& given,
                                   EpsilonConfig eps, double budget,
                                   int clients) {
  ThroughputLevel level;
  level.clients = clients;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 0;  // all hardware threads
  server_options.max_clients = clients;
  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);

  std::vector<std::vector<SessionCommand>> scripts = {
      ThroughputScript(data)};
  WallTimer timer;
  auto runs = RunScriptedClients(&registry, scripts, clients);
  level.seconds = timer.ElapsedSeconds();
  if (!runs.ok()) {
    std::printf("  %2d clients: FAILED: %s\n", clients,
                runs.status().ToString().c_str());
    level.ok = false;
    return level;
  }
  for (const ScriptedClientRun& run : *runs) {
    level.commands += static_cast<int>(run.outcomes.size());
    if (!run.status.ok()) level.ok = false;
    // Identical scripts over one immutable snapshot: per-step proven
    // optima must agree across clients (the throughput run doubles as a
    // consistency smoke check). Failed steps are absent from outcomes, so
    // compare only the common prefix.
    const size_t steps =
        std::min(run.outcomes.size(), (*runs)[0].outcomes.size());
    for (size_t s = 0; s < steps; ++s) {
      const RankHowResult& mine = run.outcomes[s].result;
      const RankHowResult& c0 = (*runs)[0].outcomes[s].result;
      if (mine.proven_optimal && c0.proven_optimal &&
          mine.error != c0.error) {
        level.optima_consistent = false;
        level.ok = false;
      }
    }
  }
  level.queries_per_second =
      level.seconds > 0 ? level.commands / level.seconds : 0;
  level.resident_copies = registry.Stats().resident_dataset_copies;
  if (level.resident_copies != 1) level.ok = false;  // COW regression
  std::printf("  %2d clients: %3d commands in %7.3fs = %7.2f q/s  "
              "(resident copies %d%s)\n",
              clients, level.commands, level.seconds,
              level.queries_per_second, level.resident_copies,
              level.optima_consistent ? "" : ", OPTIMA MISMATCH");
  return level;
}

// ---------------------------------------------------------------------------
// Cross-client warm seeding (registry-level incumbent sharing).

struct WarmSeedRun {
  bool shared = false;
  double a_seconds = 0;        // client A's cold first solve (the baseline)
  double b_seconds = 0;        // client B's first solve over the same region
  long b_nodes = 0;            // nodes/boxes B explored (0 = closed at root)
  long a_error = -1, b_error = -1;
  bool proven = false;
  int64_t shared_draws = 0;
  bool ok = true;
};

/// Client A proves the region (a cold solve, then a tightened re-solve);
/// client B then opens and issues its first solve of the same base
/// problem. With sharing on, B's revalidation draws A's published winner
/// and the search should close at or near the root instead of re-earning
/// the incumbent cold.
WarmSeedRun RunWarmSeedVariant(const Dataset& data, const Ranking& given,
                               EpsilonConfig eps, double budget,
                               bool shared) {
  WarmSeedRun run;
  run.shared = shared;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 1;  // sequential: B solves strictly after A
  server_options.share_incumbents = shared;
  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);

  struct Slot {
    Result<SessionStepOutcome> outcome = Status::Internal("unset");
  };
  auto submit = [&registry, &run](const std::string& client,
                                  SessionCommand cmd, Slot* slot) {
    Status submitted = registry.Submit(
        client, std::move(cmd),
        [slot](const std::string&, const Result<SessionStepOutcome>& out) {
          slot->outcome = out;
        });
    if (!submitted.ok()) run.ok = false;
  };

  if (!registry.Open("a").ok()) {
    run.ok = false;
    return run;
  }
  Slot a_cold, a_tight;
  submit("a", MakeCommand(SessionCommand::Kind::kSolve, "", 0, 1), &a_cold);
  submit("a",
         MakeCommand(SessionCommand::Kind::kMinWeight,
                     data.attribute_name(0), 0.02, 2),
         &a_tight);
  registry.Drain();
  if (!a_cold.outcome.ok() || !a_cold.outcome->result.proven_optimal ||
      !a_tight.outcome.ok()) {
    run.ok = false;
    return run;
  }
  run.a_seconds = a_cold.outcome->result.seconds;
  run.a_error = a_cold.outcome->result.error;

  if (!registry.Open("b").ok()) {
    run.ok = false;
    return run;
  }
  Slot b_first;
  submit("b", MakeCommand(SessionCommand::Kind::kSolve, "", 0, 1), &b_first);
  registry.Drain();
  if (!b_first.outcome.ok()) {
    run.ok = false;
    return run;
  }
  run.b_seconds = b_first.outcome->result.seconds;
  run.b_nodes = b_first.outcome->result.stats.nodes_explored;
  run.b_error = b_first.outcome->result.error;
  run.proven = b_first.outcome->result.proven_optimal;
  run.shared_draws = registry.Stats().shared_draws;
  // B solves the identical base problem: the optima must agree regardless
  // of sharing (candidates are revalidated, never trusted as bounds).
  if (run.proven && run.b_error != run.a_error) run.ok = false;

  std::printf("  %-10s A cold %7.3fs (err %ld)   B first %7.3fs "
              "(err %ld%s, %ld nodes, %lld draws)\n",
              shared ? "shared" : "per-session", run.a_seconds, run.a_error,
              run.b_seconds, run.b_error, run.proven ? "*" : "",
              run.b_nodes, (long long)run.shared_draws);
  return run;
}

// ---------------------------------------------------------------------------
// Restart-warm seeding (the persistent fingerprint-keyed warm cache).

struct RestartWarmRun {
  double cold_seconds = 0, warm_seconds = 0;
  long cold_nodes = -1, warm_nodes = -1;
  long cold_error = -1, warm_error = -1;
  bool cold_proven = false, warm_proven = false;
  int64_t cache_hits = 0, cache_loaded = 0;
  bool ok = true;
};

/// One registry lifetime: open a client, run its first solve, tear the
/// registry down. With `cache` set, the solve draws from / publishes to
/// the persistent warm cache exactly as a `--warm-cache-dir` server would.
void RunFirstSolve(const Dataset& data, const Ranking& given,
                   const RankHowOptions& solver, WarmCache* cache,
                   double* seconds, long* nodes, long* error, bool* proven,
                   bool* ok) {
  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 1;
  server_options.warm_cache = cache;
  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);
  if (!registry.Open("a").ok()) {
    *ok = false;
    return;
  }
  struct Slot {
    Result<SessionStepOutcome> outcome = Status::Internal("unset");
  } slot;
  Status submitted = registry.Submit(
      "a", MakeCommand(SessionCommand::Kind::kSolve, "", 0, 1),
      [&slot](const std::string&, const Result<SessionStepOutcome>& out) {
        slot.outcome = out;
      });
  if (!submitted.ok()) {
    *ok = false;
    return;
  }
  registry.Drain();
  if (!slot.outcome.ok()) {
    *ok = false;
    return;
  }
  *seconds = slot.outcome->result.seconds;
  *nodes = slot.outcome->result.stats.nodes_explored;
  *error = slot.outcome->result.error;
  *proven = slot.outcome->result.proven_optimal;
}

/// The restart experiment: a cold first solve publishes its proven winner
/// through a warm cache in `dir`, then EVERYTHING in memory (registry,
/// pool, cache object) is destroyed — a simulated process death — and a
/// fresh registry over a reopened cache re-solves the same problem. The
/// warm first solve must prove the identical error while drawing the dead
/// process's record; node_ratio prices the head start.
RestartWarmRun RunRestartWarm(const Dataset& data, const Ranking& given,
                              EpsilonConfig eps, double budget,
                              const std::string& dir) {
  RestartWarmRun run;
  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;
  WarmCacheOptions cache_options;
  // The publish must be on disk before the simulated death below; a real
  // server gets the same guarantee from the writer thread having a whole
  // process lifetime to drain (and the chaos suite polls for it).
  cache_options.synchronous_appends = true;

  {
    auto cache = WarmCache::Open(dir, cache_options);
    if (!cache.ok()) {
      std::printf("  warm cache open failed: %s\n",
                  cache.status().ToString().c_str());
      run.ok = false;
      return run;
    }
    RunFirstSolve(data, given, solver, cache->get(), &run.cold_seconds,
                  &run.cold_nodes, &run.cold_error, &run.cold_proven,
                  &run.ok);
    // Scope end: registry and cache both destroyed. Only the file survives.
  }

  auto cache = WarmCache::Open(dir, cache_options);
  if (!cache.ok()) {
    run.ok = false;
    return run;
  }
  RunFirstSolve(data, given, solver, cache->get(), &run.warm_seconds,
                &run.warm_nodes, &run.warm_error, &run.warm_proven, &run.ok);
  WarmCacheStats cs = (*cache)->Stats();
  run.cache_hits = cs.hits;
  run.cache_loaded = cs.loaded;

  if (!run.cold_proven || !run.warm_proven ||
      run.cold_error != run.warm_error) {
    run.ok = false;  // the cache must never move a proven optimum
  }
  if (run.cache_loaded < 1 || run.cache_hits < 1) run.ok = false;
  std::printf("  cold %7.3fs (err %ld, %ld nodes)   restart-warm %7.3fs "
              "(err %ld, %ld nodes, %lld loaded, %lld hits)%s\n",
              run.cold_seconds, run.cold_error, run.cold_nodes,
              run.warm_seconds, run.warm_error, run.warm_nodes,
              (long long)run.cache_loaded, (long long)run.cache_hits,
              run.ok ? "" : "  ERROR");
  return run;
}

// ---------------------------------------------------------------------------
// Write-ahead journal overhead.

struct JournalOverheadRun {
  std::string mode;      // "off" | "batched" | "fsync_every_record"
  int fsync_every = -1;  // -1 = journal off
  double seconds = 0;
  int commands = 0;
  double queries_per_second = 0;
  int64_t records = 0;
  int64_t fsyncs = 0;
  bool ok = true;
};

/// The throughput workload (4 clients, the standard edit script) with the
/// registry journaling into a scratch directory at one fsync policy.
/// Everything but the journal pointer matches RunThroughputLevel, so the
/// seconds are comparable run-to-run and the delta prices the journal.
JournalOverheadRun RunJournalOverhead(const Dataset& data,
                                      const Ranking& given, EpsilonConfig eps,
                                      double budget, const std::string& mode,
                                      int fsync_every,
                                      const std::string& dir) {
  constexpr int kClients = 4;
  JournalOverheadRun run;
  run.mode = mode;
  run.fsync_every = fsync_every;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 0;  // all hardware threads
  server_options.max_clients = kClients;

  std::unique_ptr<SessionJournal> journal;
  if (fsync_every >= 0) {
    JournalOptions jopts;
    jopts.fsync_every = fsync_every;
    auto opened =
        SessionJournal::Open(dir + "/" + mode + ".journal", "bench",
                             DatasetFingerprint(data, given), jopts);
    if (!opened.ok()) {
      std::printf("  %-18s journal open failed: %s\n", mode.c_str(),
                  opened.status().ToString().c_str());
      run.ok = false;
      return run;
    }
    journal = std::move(*opened);
    server_options.journal = journal.get();
  }

  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);
  std::vector<std::vector<SessionCommand>> scripts = {
      ThroughputScript(data)};
  WallTimer timer;
  auto runs = RunScriptedClients(&registry, scripts, kClients);
  run.seconds = timer.ElapsedSeconds();
  if (!runs.ok()) {
    std::printf("  %-18s FAILED: %s\n", mode.c_str(),
                runs.status().ToString().c_str());
    run.ok = false;
    return run;
  }
  for (const ScriptedClientRun& client : *runs) {
    run.commands += static_cast<int>(client.outcomes.size());
    if (!client.status.ok()) run.ok = false;
  }
  run.queries_per_second =
      run.seconds > 0 ? run.commands / run.seconds : 0;
  if (journal != nullptr) {
    JournalStats js = journal->Stats();
    run.records = js.records_appended;
    run.fsyncs = js.fsyncs;
    if (js.degraded || js.records_appended == 0) run.ok = false;
  }
  std::printf("  %-18s %3d commands in %7.3fs = %7.2f q/s  "
              "(%lld records, %lld fsyncs)\n",
              mode.c_str(), run.commands, run.seconds,
              run.queries_per_second, (long long)run.records,
              (long long)run.fsyncs);
  return run;
}

// ---------------------------------------------------------------------------
// Connection scaling + framing throughput over the epoll reactor.

/// A minimal blocking loopback client speaking both framings (the test
/// suite's WireClient, reduced to what the bench needs).
class BenchClient {
 public:
  BenchClient() = default;
  ~BenchClient() { Close(); }
  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;
  BenchClient(BenchClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(port));
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&sin),
                     sizeof(sin)) == 0;
  }

  bool Send(const std::string& bytes) {
    const char* p = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
      ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  }

  std::optional<std::string> ReadLine() {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!Fill()) return std::nullopt;
    }
  }

  std::optional<std::string> ReadFrame() {
    while (buffer_.size() < 4) {
      if (!Fill()) return std::nullopt;
    }
    const auto* b = reinterpret_cast<const unsigned char*>(buffer_.data());
    const size_t len = (static_cast<size_t>(b[0]) << 24) |
                       (static_cast<size_t>(b[1]) << 16) |
                       (static_cast<size_t>(b[2]) << 8) |
                       static_cast<size_t>(b[3]);
    if (len > kMaxFrameBytes) return std::nullopt;
    while (buffer_.size() < 4 + len) {
      if (!Fill()) return std::nullopt;
    }
    std::string payload = buffer_.substr(4, len);
    buffer_.erase(0, 4 + len);
    return payload;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

struct ConnectionScalingRun {
  int idle_connections = 0;
  double connect_seconds = 0;     // wall time to park the whole crowd
  int pings = 0;                  // active client's stats round-trips
  double ping_seconds = 0;
  double pings_per_second = 0;
  int solves = 0;
  /// The raw `ok metrics ...` key=value fields (per-verb p50/p99 etc.),
  /// re-emitted verbatim as a JSON object.
  std::vector<std::pair<std::string, std::string>> metrics_fields;
  int reactor_loops = 0;
  bool ok = true;
};

struct FramingLevel {
  std::string mode;  // "text" | "binary"
  int clients = 0;
  int requests = 0;  // total pipelined stats round-trips
  double seconds = 0;
  double requests_per_second = 0;
  bool ok = true;
};

/// The serving stack for the transport sections: one SessionRegistry
/// behind an in-process ReactorServer on an ephemeral loopback port.
/// Member order is destruction order in reverse (metrics and registry must
/// outlive the server's teardown callbacks).
struct ReactorBenchServer {
  ServerMetrics metrics;
  std::unique_ptr<SessionRegistry> registry;
  std::unique_ptr<ReactorServer> server;
  int port = 0;

  bool Start(const Dataset& data, const Ranking& given, EpsilonConfig eps,
             double budget, int max_clients) {
    RankHowOptions solver;
    solver.eps = eps;
    solver.time_limit_seconds = budget;
    ServerOptions server_options;
    server_options.solver = solver;
    server_options.num_workers = 0;
    server_options.max_clients = max_clients;
    registry = std::make_unique<SessionRegistry>(
        SharedDataset(Dataset(data)), Ranking(given), /*labels=*/
        std::vector<std::string>(), server_options);
    ServeStreamOptions serve_options;
    serve_options.metrics = &metrics;
    ReactorOptions reactor_options;
    reactor_options.metrics = &metrics;
    server = std::make_unique<ReactorServer>(
        MakeWireReactorCallbacks(registry.get(), serve_options),
        reactor_options);
    ListenAddress address;
    address.kind = ListenAddress::Kind::kTcp;
    address.host = "127.0.0.1";
    address.port = 0;
    Status started = server->Start(address);
    if (!started.ok()) {
      std::printf("  loopback TCP unavailable: %s\n",
                  started.ToString().c_str());
      return false;
    }
    port = server->bound().port;
    return true;
  }

  ~ReactorBenchServer() {
    if (server != nullptr) server->Stop();
  }
};

/// >= 1000 parked connections on one process while an active client pings
/// and solves through the crowd; per-verb latency histograms come back
/// over the wire via the `metrics` verb.
ConnectionScalingRun RunConnectionScaling(const Dataset& data,
                                          const Ranking& given,
                                          EpsilonConfig eps, double budget,
                                          int idle_conns) {
  ConnectionScalingRun run;
  run.idle_connections = idle_conns;

  ReactorBenchServer stack;
  if (!stack.Start(data, given, eps, budget, /*max_clients=*/4)) {
    run.ok = false;
    return run;
  }
  run.reactor_loops = stack.server->num_loops();

  std::vector<BenchClient> idle(static_cast<size_t>(idle_conns));
  WallTimer connect_timer;
  for (int i = 0; i < idle_conns; ++i) {
    if (!idle[i].Connect(stack.port)) {
      std::printf("  connect %d/%d failed: %s\n", i, idle_conns,
                  std::strerror(errno));
      run.ok = false;
      return run;
    }
  }
  run.connect_seconds = connect_timer.ElapsedSeconds();

  // The active client works through the crowd: open, a stats-ping burst
  // (sequential round-trips — this measures wire latency with 1000
  // registered-but-silent fds in every epoll set), two solves, metrics.
  BenchClient active;
  if (!active.Connect(stack.port)) {
    run.ok = false;
    return run;
  }
  auto roundtrip = [&active](const std::string& verb)
      -> std::optional<std::string> {
    if (!active.Send(verb + "\n")) return std::nullopt;
    return active.ReadLine();
  };
  auto opened = roundtrip("open bench");
  if (!opened.has_value() || opened->rfind("ok open bench", 0) != 0) {
    run.ok = false;
    return run;
  }

  constexpr int kPings = 200;
  WallTimer ping_timer;
  for (int i = 0; i < kPings; ++i) {
    auto pong = roundtrip("stats");
    if (!pong.has_value() || pong->rfind("ok stats", 0) != 0) {
      run.ok = false;
      return run;
    }
  }
  run.ping_seconds = ping_timer.ElapsedSeconds();
  run.pings = kPings;
  run.pings_per_second =
      run.ping_seconds > 0 ? kPings / run.ping_seconds : 0;

  for (int s = 0; s < 2; ++s) {
    auto solved = roundtrip("bench solve");
    if (!solved.has_value() || solved->rfind("ok bench", 0) != 0) {
      run.ok = false;
      return run;
    }
    ++run.solves;
  }

  // Every idle connection is still live; sample a spread of them.
  for (int i = 0; i < idle_conns; i += 97) {
    if (!idle[i].Send("stats\n") || !idle[i].ReadLine().has_value()) {
      std::printf("  idle connection %d died under load\n", i);
      run.ok = false;
      return run;
    }
  }

  auto metrics_line = roundtrip("metrics");
  if (!metrics_line.has_value() ||
      metrics_line->rfind("ok metrics ", 0) != 0) {
    run.ok = false;
    return run;
  }
  // "ok metrics k=v k=v ..." → field list, re-emitted as JSON.
  size_t pos = std::strlen("ok metrics ");
  while (pos < metrics_line->size()) {
    size_t space = metrics_line->find(' ', pos);
    if (space == std::string::npos) space = metrics_line->size();
    std::string token = metrics_line->substr(pos, space - pos);
    size_t eq = token.find('=');
    if (eq != std::string::npos) {
      run.metrics_fields.emplace_back(token.substr(0, eq),
                                      token.substr(eq + 1));
    }
    pos = space + 1;
  }

  std::printf("  %d idle conns parked in %.3fs on %d loop(s); %d pings at "
              "%7.0f/s through the crowd; %d solves; %zu metric fields\n",
              idle_conns, run.connect_seconds, run.reactor_loops, kPings,
              run.pings_per_second, run.solves,
              run.metrics_fields.size());
  (void)roundtrip("quit");
  return run;
}

/// One framing-throughput cell: `clients` pipelined connections each
/// firing `pings` stats requests in `mode` framing, then draining the
/// responses — wall time over the whole burst.
FramingLevel RunFramingLevel(int port, const std::string& mode, int clients,
                             int pings) {
  FramingLevel level;
  level.mode = mode;
  level.clients = clients;
  const bool binary = mode == "binary";

  std::vector<BenchClient> conns(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    if (!conns[c].Connect(port)) {
      level.ok = false;
      return level;
    }
    if (binary) {
      if (!conns[c].Send("frame binary\n")) {
        level.ok = false;
        return level;
      }
      auto ack = conns[c].ReadLine();
      if (!ack.has_value() || *ack != "ok frame binary") {
        level.ok = false;
        return level;
      }
    }
  }

  std::string burst;
  if (binary) {
    for (int i = 0; i < pings; ++i) EncodeFrame(FrameMode::kBinary, "stats",
                                                &burst);
  } else {
    for (int i = 0; i < pings; ++i) burst += "stats\n";
  }

  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    if (!conns[c].Send(burst)) {
      level.ok = false;
      return level;
    }
  }
  for (int c = 0; c < clients; ++c) {
    for (int i = 0; i < pings; ++i) {
      auto pong = binary ? conns[c].ReadFrame() : conns[c].ReadLine();
      if (!pong.has_value() || pong->rfind("ok stats", 0) != 0) {
        level.ok = false;
        return level;
      }
    }
  }
  level.seconds = timer.ElapsedSeconds();
  level.requests = clients * pings;
  level.requests_per_second =
      level.seconds > 0 ? level.requests / level.seconds : 0;
  std::printf("  %-6s %3d clients: %6d requests in %7.3fs = %8.0f req/s\n",
              mode.c_str(), clients, level.requests, level.seconds,
              level.requests_per_second);
  return level;
}

void EmitThroughputJson(const std::vector<ThroughputLevel>& levels,
                        const WarmSeedRun& cold, const WarmSeedRun& warm,
                        const RestartWarmRun& restart,
                        const std::vector<JournalOverheadRun>& jruns,
                        const ConnectionScalingRun& scaling,
                        const std::vector<FramingLevel>& framing,
                        int n, int m, int k, bool all_ok) {
  std::FILE* f = std::fopen("BENCH_server_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_server_throughput.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"server_throughput\",\n");
  WriteBenchMetadataJson(f, /*threads_used=*/0, BenchTimestampUtc());
  // Which transport the serving sections measured: the epoll reactor with
  // its event-loop count (the scripted-client levels above bypass the
  // transport entirely — that is what "in_process" marks).
  std::fprintf(f,
               "  \"transport\": {\"mode\": \"epoll_reactor\", "
               "\"reactor_loops\": %d, \"scripted_levels\": "
               "\"in_process\"},\n",
               scaling.reactor_loops);
  std::fprintf(f,
               "  \"dataset\": {\"name\": \"nba\", \"n\": %d, \"m\": %d, "
               "\"k\": %d},\n  \"ok\": %s,\n  \"levels\": [\n",
               n, m, k, all_ok ? "true" : "false");
  for (size_t i = 0; i < levels.size(); ++i) {
    const ThroughputLevel& level = levels[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"commands\": %d, \"seconds\": "
                 "%.4f, \"queries_per_second\": %.3f, "
                 "\"resident_dataset_copies\": %d, \"optima_consistent\": "
                 "%s}%s\n",
                 level.clients, level.commands, level.seconds,
                 level.queries_per_second, level.resident_copies,
                 level.optima_consistent ? "true" : "false",
                 i + 1 < levels.size() ? "," : "");
  }
  // Cross-client warm seeding: client B's first solve after client A
  // proved the same region, with the registry pool off (cold) and on
  // (shared). first_solve_speedup is the acceptance number; b_nodes at or
  // near 0 under "shared" is the closing-at-the-root signature.
  std::fprintf(
      f,
      "  ],\n  \"cross_client_warm_seed\": {\n"
      "    \"cold\": {\"b_first_solve_seconds\": %.5f, \"b_nodes\": %ld, "
      "\"b_error\": %ld, \"proven\": %s},\n"
      "    \"shared\": {\"b_first_solve_seconds\": %.5f, \"b_nodes\": %ld, "
      "\"b_error\": %ld, \"proven\": %s, \"shared_draws\": %lld},\n"
      "    \"first_solve_speedup\": %.3f,\n"
      "    \"node_ratio\": %.3f,\n"
      "    \"errors_match\": %s\n  },\n",
      cold.b_seconds, cold.b_nodes, cold.b_error,
      cold.proven ? "true" : "false", warm.b_seconds, warm.b_nodes,
      warm.b_error, warm.proven ? "true" : "false",
      static_cast<long long>(warm.shared_draws),
      warm.b_seconds > 0 ? cold.b_seconds / warm.b_seconds : 0.0,
      cold.b_nodes > 0 ? static_cast<double>(warm.b_nodes) / cold.b_nodes
                       : 0.0,
      cold.b_error == warm.b_error ? "true" : "false");
  // Restart-warm seeding: the first solve after a simulated process death,
  // cache-cold vs over a reopened --warm-cache-dir cache. cache_hits >= 1
  // and cache_loaded >= 1 prove the warm solve drew the dead process's
  // persisted record; errors_match must be true (the cache seeds
  // tighten-only bounds, so it can never move a proven optimum).
  std::fprintf(
      f,
      "  \"restart_warm_seed\": {\n"
      "    \"cold\": {\"solve_seconds\": %.5f, \"nodes\": %ld, "
      "\"error\": %ld, \"proven\": %s},\n"
      "    \"warm\": {\"solve_seconds\": %.5f, \"nodes\": %ld, "
      "\"error\": %ld, \"proven\": %s, \"cache_hits\": %lld, "
      "\"cache_loaded\": %lld},\n"
      "    \"first_solve_speedup\": %.3f,\n"
      "    \"node_ratio\": %.3f,\n"
      "    \"errors_match\": %s,\n"
      "    \"ok\": %s\n  },\n",
      restart.cold_seconds, restart.cold_nodes, restart.cold_error,
      restart.cold_proven ? "true" : "false", restart.warm_seconds,
      restart.warm_nodes, restart.warm_error,
      restart.warm_proven ? "true" : "false",
      static_cast<long long>(restart.cache_hits),
      static_cast<long long>(restart.cache_loaded),
      restart.warm_seconds > 0 ? restart.cold_seconds / restart.warm_seconds
                               : 0.0,
      restart.cold_nodes > 0
          ? static_cast<double>(restart.warm_nodes) / restart.cold_nodes
          : 0.0,
      restart.cold_error == restart.warm_error ? "true" : "false",
      restart.ok ? "true" : "false");
  // Journal overhead: the same workload at each fsync policy, with
  // overhead_pct relative to the journal-off baseline. The acceptance
  // number is "batched" (the fsync_every=32 default) under 10%.
  std::fprintf(f, "  \"journal_overhead\": {\n    \"modes\": [\n");
  double off_seconds = 0;
  for (const JournalOverheadRun& jr : jruns) {
    if (jr.mode == "off") off_seconds = jr.seconds;
  }
  for (size_t i = 0; i < jruns.size(); ++i) {
    const JournalOverheadRun& jr = jruns[i];
    double overhead_pct =
        off_seconds > 0 ? (jr.seconds - off_seconds) / off_seconds * 100.0
                        : 0.0;
    std::fprintf(f,
                 "      {\"mode\": \"%s\", \"fsync_every\": %d, "
                 "\"seconds\": %.4f, \"queries_per_second\": %.3f, "
                 "\"records\": %lld, \"fsyncs\": %lld, "
                 "\"overhead_pct\": %.2f, \"ok\": %s}%s\n",
                 jr.mode.c_str(), jr.fsync_every, jr.seconds,
                 jr.queries_per_second, (long long)jr.records,
                 (long long)jr.fsyncs, overhead_pct,
                 jr.ok ? "true" : "false",
                 i + 1 < jruns.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  // Connection scaling: the >= 1000-idle-connection walk, with the
  // server's own per-verb latency histograms (the `metrics` verb fields,
  // verbatim — *_p50_us/*_p99_us are the acceptance numbers).
  std::fprintf(f,
               "  \"connection_scaling\": {\n"
               "    \"idle_connections\": %d, \"connect_seconds\": %.4f,\n"
               "    \"pings\": %d, \"ping_seconds\": %.4f, "
               "\"pings_per_second\": %.1f, \"solves\": %d,\n"
               "    \"ok\": %s,\n    \"verb_latencies\": {",
               scaling.idle_connections, scaling.connect_seconds,
               scaling.pings, scaling.ping_seconds, scaling.pings_per_second,
               scaling.solves, scaling.ok ? "true" : "false");
  for (size_t i = 0; i < scaling.metrics_fields.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                 scaling.metrics_fields[i].first.c_str(),
                 scaling.metrics_fields[i].second.c_str());
  }
  std::fprintf(f, "}\n  },\n");
  // Framing throughput: text vs binary stats-ping bursts per client count.
  std::fprintf(f, "  \"framing_throughput\": [\n");
  for (size_t i = 0; i < framing.size(); ++i) {
    const FramingLevel& fl = framing[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"clients\": %d, \"requests\": %d, "
                 "\"seconds\": %.4f, \"requests_per_second\": %.1f, "
                 "\"ok\": %s}%s\n",
                 fl.mode.c_str(), fl.clients, fl.requests, fl.seconds,
                 fl.requests_per_second, fl.ok ? "true" : "false",
                 i + 1 < framing.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(written to BENCH_server_throughput.json)\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // Default sized so the exact solve *proves* within --budget on one core:
  // an unproven step has no bound to reuse and (correctly) shows no
  // speedup, which would make the artifact measure nothing.
  int nba_n = static_cast<int>(
      flags.GetInt("nba-n", 600, "NBA tuples (paper: 22840)"));
  int cs_n = static_cast<int>(
      flags.GetInt("cs-n", 200, "CSRankings institutions (paper: 628)"));
  int k = static_cast<int>(flags.GetInt("k", 6, "given-ranking length"));
  double budget = flags.GetDouble("budget", 15, "per-solve cap (s)");
  uint64_t seed = flags.GetInt("seed", 1, "simulation seed");
  int serve_n = static_cast<int>(flags.GetInt(
      "serve-n", 200, "NBA tuples for the server-throughput section"));
  double serve_budget =
      flags.GetDouble("serve-budget", 5, "per-solve cap in the server "
                                         "section (s)");
  int idle_conns = static_cast<int>(flags.GetInt(
      "idle-conns", 1000,
      "parked connections in the connection-scaling section"));
  int frame_pings = static_cast<int>(flags.GetInt(
      "frame-pings", 50,
      "pipelined stats requests per client in the framing ladder"));
  if (!flags.Finish()) return 0;

  std::vector<ScriptRun> runs;

  // NBA at m=5 (the provable Fig-3b/c/d configuration): kAuto routes this
  // to the spatial strategy, so the NBA script measures the session's
  // warm-oracle + incumbent-pool + bound-seed reuse. CSRankings below
  // (m=27) routes to the indicator MILP and measures the model cache.
  std::printf("=== session re-solve vs cold: NBA (n=%d, m=5, k=%d) ===\n",
              nba_n, k);
  NbaData nba = GenerateNba({.num_tuples = nba_n, .seed = seed});
  Dataset nba5 = nba.table.SelectAttributes({0, 1, 2, 3, 4});
  runs.push_back(RunScript("nba", nba5, NbaPerRanking(nba, k), NbaEps(),
                           budget));

  std::printf("=== session re-solve vs cold: CSRankings (n=%d, m=%d, "
              "k=%d) ===\n",
              cs_n, kCsRankingsNumAreas, k);
  CsRankingsData cs =
      GenerateCsRankings({.num_institutions = cs_n, .seed = seed});
  runs.push_back(RunScript("csrankings", cs.table,
                           CsRankingsDefaultRanking(cs, k), CsRankingsEps(),
                           budget));

  bool all_ok = true;
  for (const ScriptRun& run : runs) all_ok = all_ok && run.ok;
  EmitJson(runs, all_ok);

  // Multi-client server throughput at 1/4/16 simulated clients over one
  // shared NBA snapshot (smaller n: the section measures serving overhead
  // and COW sharing, not solve depth).
  std::printf("=== session server throughput: NBA (n=%d, m=5, k=%d) ===\n",
              serve_n, k);
  NbaData serve_nba = GenerateNba({.num_tuples = serve_n, .seed = seed});
  Dataset serve_data = serve_nba.table.SelectAttributes({0, 1, 2, 3, 4});
  Ranking serve_given = NbaPerRanking(serve_nba, k);
  std::vector<ThroughputLevel> levels;
  bool serve_ok = true;
  for (int clients : {1, 4, 16}) {
    levels.push_back(RunThroughputLevel(serve_data, serve_given, NbaEps(),
                                        serve_budget, clients));
    serve_ok = serve_ok && levels.back().ok;
  }

  // Cross-client warm seeding: per-session pools (cold B) vs the
  // registry-level shared pool (B warm-starts from A's published winner).
  std::printf("=== cross-client warm seed: NBA (n=%d, m=5, k=%d) ===\n",
              serve_n, k);
  WarmSeedRun seed_cold = RunWarmSeedVariant(serve_data, serve_given,
                                             NbaEps(), serve_budget,
                                             /*shared=*/false);
  WarmSeedRun seed_warm = RunWarmSeedVariant(serve_data, serve_given,
                                             NbaEps(), serve_budget,
                                             /*shared=*/true);
  serve_ok = serve_ok && seed_cold.ok && seed_warm.ok;

  // Restart-warm seeding: the persistent warm cache across a simulated
  // process death, into its own scratch directory cleaned up afterwards.
  std::printf("=== restart-warm seed: NBA (n=%d, m=5, k=%d) ===\n", serve_n,
              k);
  RestartWarmRun restart;
  char wdir_template[] = "/tmp/rankhow_bench_warmcache_XXXXXX";
  char* wdir = mkdtemp(wdir_template);
  if (wdir == nullptr) {
    std::printf("  mkdtemp failed: skipping restart-warm section\n");
    serve_ok = false;
  } else {
    restart = RunRestartWarm(serve_data, serve_given, NbaEps(), serve_budget,
                             wdir);
    serve_ok = serve_ok && restart.ok;
    std::remove((std::string(wdir) + "/warm.cache").c_str());
    rmdir(wdir);
  }

  // Write-ahead journal overhead: the throughput workload with the journal
  // off, at the batched default, and fsyncing every record, into a scratch
  // directory cleaned up afterwards.
  std::printf("=== journal overhead: NBA (n=%d, m=5, k=%d) ===\n", serve_n,
              k);
  std::vector<JournalOverheadRun> jruns;
  char jdir_template[] = "/tmp/rankhow_bench_journal_XXXXXX";
  char* jdir = mkdtemp(jdir_template);
  if (jdir == nullptr) {
    std::printf("  mkdtemp failed: skipping journal-overhead section\n");
    serve_ok = false;
  } else {
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "off", -1, jdir));
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "batched", 32, jdir));
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "fsync_every_record",
                                       1, jdir));
    for (const JournalOverheadRun& jr : jruns) {
      serve_ok = serve_ok && jr.ok;
      std::remove((std::string(jdir) + "/" + jr.mode + ".journal").c_str());
    }
    rmdir(jdir);
    if (jruns[0].seconds > 0) {
      double batched_pct =
          (jruns[1].seconds - jruns[0].seconds) / jruns[0].seconds * 100.0;
      std::printf("  batched overhead vs off: %+.2f%%%s\n", batched_pct,
                  batched_pct < 10.0 ? "" : "  (over the 10%% target)");
    }
  }

  // Connection scaling over the epoll reactor: >= 1000 parked loopback
  // connections while one active client pings and solves, per-verb
  // latencies read back via the `metrics` verb.
  std::printf("=== connection scaling: %d idle conns, epoll reactor ===\n",
              idle_conns);
  ConnectionScalingRun scaling = RunConnectionScaling(
      serve_data, serve_given, NbaEps(), serve_budget, idle_conns);
  serve_ok = serve_ok && scaling.ok;

  // Framing throughput: text vs binary stats-ping bursts at 1/16/256
  // pipelined clients, on a fresh server per mode so gauges stay clean.
  std::printf("=== framing throughput: text vs binary ===\n");
  std::vector<FramingLevel> framing;
  for (const char* mode : {"text", "binary"}) {
    ReactorBenchServer stack;
    if (!stack.Start(serve_data, serve_given, NbaEps(), serve_budget,
                     /*max_clients=*/4)) {
      serve_ok = false;
      break;
    }
    for (int clients : {1, 16, 256}) {
      framing.push_back(
          RunFramingLevel(stack.port, mode, clients, frame_pings));
      serve_ok = serve_ok && framing.back().ok;
    }
  }

  EmitThroughputJson(levels, seed_cold, seed_warm, restart, jruns, scaling,
                     framing, serve_n, 5, k, serve_ok);
  all_ok = all_ok && serve_ok;

  if (!all_ok) {
    std::printf("ERROR: session and cold solves disagree (or a solve "
                "failed); see table above\n");
    return 1;
  }
  return 0;
}
