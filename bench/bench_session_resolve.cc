// bench_session_resolve — the SolveSession acceptance artifact: cold-solve
// vs. session re-solve latency over realistic constraint-edit scripts on the
// NBA and CSRankings simulators (the Sec. I RankHow what-if workflow: a user
// repeatedly edits weight constraints and re-solves).
//
// Per edit step the harness runs (a) a fresh RankHow::Solve over the
// accumulated problem — model rebuild + multi-start presolve + cold search —
// and (b) SolveSession::Solve after applying just the delta. Both must agree
// on the proven optimum (the randomized equivalence suite in
// tests/core/solve_session_test.cc proves this property exhaustively; here
// it doubles as a smoke check), and the per-step/total latencies land in
// BENCH_session_resolve.json.
//
// A second section measures the session *server* (PR 4): N scripted
// clients streaming the same edit script through a SessionRegistry over
// one copy-on-write dataset snapshot, at 1/4/16 simulated clients —
// queries/sec, wall seconds, and the resident-copy count (must stay 1: the
// script has no structural edits) land in BENCH_server_throughput.json.
//
// A third section measures cross-client warm seeding (PR 5): client A
// proves a region, then client B's first solve of the same base problem
// runs with per-session pools vs the registry-level shared incumbent pool
// (SharedIncumbentPool) — seconds, explored nodes, and draw counts land in
// BENCH_server_throughput.json's "cross_client_warm_seed" object, with an
// errors_match consistency bit (sharing must never move a proven optimum).
//
// A fourth section measures write-ahead journal overhead (the durability
// PR): the same scripted-client workload with the journal off, batched
// (the fsync_every=32 default), and fsync-every-record — wall seconds and
// the overhead percentages land in BENCH_server_throughput.json's
// "journal_overhead" object. The acceptance number: batched overhead
// under 10%.
//
// Flags: --nba-n, --cs-n, --k, --budget (per solve), --seed, --serve-n
// (server-section dataset size), --serve-budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "bench/harness_include.h"
#include "core/solve_session.h"
#include "server/journal.h"
#include "server/session_registry.h"
#include "server/wire.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

/// One scripted constraint edit: add a named bound or drop by name.
struct Edit {
  enum class Kind { kCold, kAdd, kDrop } kind = Edit::Kind::kCold;
  int attr = -1;
  bool is_min = true;
  double bound = 0;
  std::string name;
  std::string desc;
};

/// The shared edit-script shape: tighten, tighten further, tighten another
/// attribute, relax, tighten a third — covering every delta class the
/// session distinguishes except structural ones (those recompile either
/// way, so there is nothing interesting to measure).
std::vector<Edit> MakeScript(const Dataset& data) {
  auto name_of = [&](bool is_min, int attr) {
    return (is_min ? std::string("min_") : std::string("max_")) +
           data.attribute_name(attr);
  };
  std::vector<Edit> script;
  script.push_back({Edit::Kind::kCold, -1, true, 0, "", "cold solve"});
  script.push_back({Edit::Kind::kAdd, 0, true, 0.02, name_of(true, 0),
                    "min w0 0.02"});
  script.push_back({Edit::Kind::kAdd, 0, true, 0.05, name_of(true, 0),
                    "min w0 0.05"});
  script.push_back({Edit::Kind::kAdd, 1, false, 0.5, name_of(false, 1),
                    "max w1 0.5"});
  script.push_back({Edit::Kind::kDrop, 0, true, 0, name_of(true, 0),
                    "drop min w0"});
  script.push_back({Edit::Kind::kAdd, 2, true, 0.03, name_of(true, 2),
                    "min w2 0.03"});
  return script;
}

struct StepResult {
  std::string desc;
  double cold_seconds = 0;
  double session_seconds = 0;
  long cold_error = -1;
  long session_error = -1;
  bool cold_proven = false;
  bool session_proven = false;
  bool match = true;
};

struct ScriptRun {
  std::string dataset;
  int n = 0;
  int m = 0;
  int k = 0;
  std::vector<StepResult> steps;
  bool ok = true;
};

/// Runs the script against one dataset, cold and in-session, asserting the
/// proven optima agree at every step.
ScriptRun RunScript(const std::string& name, const Dataset& data,
                    const Ranking& given, EpsilonConfig eps, double budget) {
  ScriptRun run;
  run.dataset = name;
  run.n = data.num_tuples();
  run.m = data.num_attributes();
  run.k = given.k();

  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = budget;

  SolveSession session(data, given, options);
  WeightConstraintSet accumulated;  // what the cold solver rebuilds from

  for (const Edit& edit : MakeScript(data)) {
    StepResult step;
    step.desc = edit.desc;

    Status edit_status;
    if (edit.kind == Edit::Kind::kAdd) {
      WeightConstraint c;
      c.terms = {{edit.attr, 1.0}};
      c.op = edit.is_min ? RelOp::kGe : RelOp::kLe;
      c.rhs = edit.bound;
      c.name = edit.name;
      accumulated.Add(c);
      edit_status = session.AddWeightConstraint(std::move(c));
    } else if (edit.kind == Edit::Kind::kDrop) {
      accumulated.RemoveByName(edit.name);
      edit_status = session.RemoveWeightConstraint(edit.name);
    }
    if (!edit_status.ok()) {
      std::printf("  %s: edit failed: %s\n", edit.desc.c_str(),
                  edit_status.ToString().c_str());
      run.ok = false;
      break;
    }

    // Session re-solve (the delta path).
    auto sres = session.Solve();
    if (!sres.ok()) {
      std::printf("  %s: session solve failed: %s\n", edit.desc.c_str(),
                  sres.status().ToString().c_str());
      run.ok = false;
      break;
    }
    step.session_seconds = sres->seconds;
    step.session_error = sres->error;
    step.session_proven = sres->proven_optimal;

    // Cold solve: a fresh RankHow over the accumulated problem.
    {
      RankHow cold(data, given, options);
      cold.problem().constraints = accumulated;
      auto cres = cold.Solve();
      if (!cres.ok()) {
        std::printf("  %s: cold solve failed: %s\n", edit.desc.c_str(),
                    cres.status().ToString().c_str());
        run.ok = false;
        break;
      }
      step.cold_seconds = cres->seconds;
      step.cold_error = cres->error;
      step.cold_proven = cres->proven_optimal;
    }

    step.match = !(step.cold_proven && step.session_proven) ||
                 step.cold_error == step.session_error;
    if (!step.match) run.ok = false;
    std::printf("  %-14s cold %7.3fs (err %ld%s)   session %7.3fs "
                "(err %ld%s)   %5.1fx%s\n",
                step.desc.c_str(), step.cold_seconds, step.cold_error,
                step.cold_proven ? "*" : "", step.session_seconds,
                step.session_error, step.session_proven ? "*" : "",
                step.session_seconds > 0
                    ? step.cold_seconds / step.session_seconds
                    : 0.0,
                step.match ? "" : "  MISMATCH");
    run.steps.push_back(std::move(step));
  }
  const SolveSessionStats& st = session.stats();
  std::printf("  session stats: builds %lld, patches %lld, presolves %lld, "
              "pool hits %lld, bound seeds %lld\n",
              (long long)st.model_builds, (long long)st.model_patches,
              (long long)st.presolve_runs, (long long)st.pool_hits,
              (long long)st.bound_seeds);
  return run;
}

void EmitJson(const std::vector<ScriptRun>& runs, bool all_ok) {
  std::FILE* f = std::fopen("BENCH_session_resolve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_session_resolve.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"session_resolve\",\n");
  WriteBenchMetadataJson(f, /*threads_used=*/1, BenchTimestampUtc());
  std::fprintf(f, "  \"optima_match\": %s,\n  \"datasets\": [\n",
               all_ok ? "true" : "false");
  for (size_t d = 0; d < runs.size(); ++d) {
    const ScriptRun& run = runs[d];
    double cold_total = 0, session_total = 0;
    for (const StepResult& s : run.steps) {
      cold_total += s.cold_seconds;
      session_total += s.session_seconds;
    }
    // The acceptance number: the re-solve right after the first single
    // constraint edit (script step 2) vs. its cold solve.
    double single_edit_speedup = 0;
    if (run.steps.size() > 1 && run.steps[1].session_seconds > 0) {
      single_edit_speedup =
          run.steps[1].cold_seconds / run.steps[1].session_seconds;
    }
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %d, \"m\": %d, \"k\": %d,\n"
                 "     \"cold_total_seconds\": %.4f, "
                 "\"session_total_seconds\": %.4f,\n"
                 "     \"total_speedup\": %.3f, "
                 "\"single_edit_speedup\": %.3f,\n"
                 "     \"steps\": [\n",
                 run.dataset.c_str(), run.n, run.m, run.k, cold_total,
                 session_total,
                 session_total > 0 ? cold_total / session_total : 0.0,
                 single_edit_speedup);
    for (size_t i = 0; i < run.steps.size(); ++i) {
      const StepResult& s = run.steps[i];
      std::fprintf(
          f,
          "      {\"edit\": \"%s\", \"cold_seconds\": %.5f, "
          "\"session_seconds\": %.5f, \"cold_error\": %ld, "
          "\"session_error\": %ld, \"both_proven\": %s, \"match\": %s}%s\n",
          s.desc.c_str(), s.cold_seconds, s.session_seconds, s.cold_error,
          s.session_error,
          s.cold_proven && s.session_proven ? "true" : "false",
          s.match ? "true" : "false",
          i + 1 < run.steps.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", d + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(written to BENCH_session_resolve.json)\n");
}

// ---------------------------------------------------------------------------
// Multi-client server throughput.

struct ThroughputLevel {
  int clients = 0;
  int commands = 0;        // total across clients
  double seconds = 0;
  double queries_per_second = 0;
  int resident_copies = 0;
  bool optima_consistent = true;  // all clients proved identical optima
  bool ok = true;
};

SessionCommand MakeCommand(SessionCommand::Kind kind, std::string arg,
                           double value, int line) {
  SessionCommand cmd;
  cmd.kind = kind;
  cmd.arg = std::move(arg);
  cmd.value = value;
  cmd.line = line;
  return cmd;
}

/// The per-client wire script: one cold solve, then warm constraint edits
/// (no structural edits, so the COW snapshot must never fork).
std::vector<SessionCommand> ThroughputScript(const Dataset& data) {
  using K = SessionCommand::Kind;
  const std::string a0 = data.attribute_name(0);
  const std::string a1 = data.attribute_name(1);
  std::vector<SessionCommand> script;
  script.push_back(MakeCommand(K::kSolve, "", 0, 1));
  script.push_back(MakeCommand(K::kMinWeight, a0, 0.02, 2));
  script.push_back(MakeCommand(K::kMaxWeight, a1, 0.5, 3));
  script.push_back(MakeCommand(K::kDrop, "min_" + a0, 0, 4));
  script.push_back(MakeCommand(K::kMinWeight, a1, 0.03, 5));
  script.push_back(MakeCommand(K::kSolve, "", 0, 6));
  return script;
}

ThroughputLevel RunThroughputLevel(const Dataset& data, const Ranking& given,
                                   EpsilonConfig eps, double budget,
                                   int clients) {
  ThroughputLevel level;
  level.clients = clients;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 0;  // all hardware threads
  server_options.max_clients = clients;
  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);

  std::vector<std::vector<SessionCommand>> scripts = {
      ThroughputScript(data)};
  WallTimer timer;
  auto runs = RunScriptedClients(&registry, scripts, clients);
  level.seconds = timer.ElapsedSeconds();
  if (!runs.ok()) {
    std::printf("  %2d clients: FAILED: %s\n", clients,
                runs.status().ToString().c_str());
    level.ok = false;
    return level;
  }
  for (const ScriptedClientRun& run : *runs) {
    level.commands += static_cast<int>(run.outcomes.size());
    if (!run.status.ok()) level.ok = false;
    // Identical scripts over one immutable snapshot: per-step proven
    // optima must agree across clients (the throughput run doubles as a
    // consistency smoke check). Failed steps are absent from outcomes, so
    // compare only the common prefix.
    const size_t steps =
        std::min(run.outcomes.size(), (*runs)[0].outcomes.size());
    for (size_t s = 0; s < steps; ++s) {
      const RankHowResult& mine = run.outcomes[s].result;
      const RankHowResult& c0 = (*runs)[0].outcomes[s].result;
      if (mine.proven_optimal && c0.proven_optimal &&
          mine.error != c0.error) {
        level.optima_consistent = false;
        level.ok = false;
      }
    }
  }
  level.queries_per_second =
      level.seconds > 0 ? level.commands / level.seconds : 0;
  level.resident_copies = registry.Stats().resident_dataset_copies;
  if (level.resident_copies != 1) level.ok = false;  // COW regression
  std::printf("  %2d clients: %3d commands in %7.3fs = %7.2f q/s  "
              "(resident copies %d%s)\n",
              clients, level.commands, level.seconds,
              level.queries_per_second, level.resident_copies,
              level.optima_consistent ? "" : ", OPTIMA MISMATCH");
  return level;
}

// ---------------------------------------------------------------------------
// Cross-client warm seeding (registry-level incumbent sharing).

struct WarmSeedRun {
  bool shared = false;
  double a_seconds = 0;        // client A's cold first solve (the baseline)
  double b_seconds = 0;        // client B's first solve over the same region
  long b_nodes = 0;            // nodes/boxes B explored (0 = closed at root)
  long a_error = -1, b_error = -1;
  bool proven = false;
  int64_t shared_draws = 0;
  bool ok = true;
};

/// Client A proves the region (a cold solve, then a tightened re-solve);
/// client B then opens and issues its first solve of the same base
/// problem. With sharing on, B's revalidation draws A's published winner
/// and the search should close at or near the root instead of re-earning
/// the incumbent cold.
WarmSeedRun RunWarmSeedVariant(const Dataset& data, const Ranking& given,
                               EpsilonConfig eps, double budget,
                               bool shared) {
  WarmSeedRun run;
  run.shared = shared;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 1;  // sequential: B solves strictly after A
  server_options.share_incumbents = shared;
  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);

  struct Slot {
    Result<SessionStepOutcome> outcome = Status::Internal("unset");
  };
  auto submit = [&registry, &run](const std::string& client,
                                  SessionCommand cmd, Slot* slot) {
    Status submitted = registry.Submit(
        client, std::move(cmd),
        [slot](const std::string&, const Result<SessionStepOutcome>& out) {
          slot->outcome = out;
        });
    if (!submitted.ok()) run.ok = false;
  };

  if (!registry.Open("a").ok()) {
    run.ok = false;
    return run;
  }
  Slot a_cold, a_tight;
  submit("a", MakeCommand(SessionCommand::Kind::kSolve, "", 0, 1), &a_cold);
  submit("a",
         MakeCommand(SessionCommand::Kind::kMinWeight,
                     data.attribute_name(0), 0.02, 2),
         &a_tight);
  registry.Drain();
  if (!a_cold.outcome.ok() || !a_cold.outcome->result.proven_optimal ||
      !a_tight.outcome.ok()) {
    run.ok = false;
    return run;
  }
  run.a_seconds = a_cold.outcome->result.seconds;
  run.a_error = a_cold.outcome->result.error;

  if (!registry.Open("b").ok()) {
    run.ok = false;
    return run;
  }
  Slot b_first;
  submit("b", MakeCommand(SessionCommand::Kind::kSolve, "", 0, 1), &b_first);
  registry.Drain();
  if (!b_first.outcome.ok()) {
    run.ok = false;
    return run;
  }
  run.b_seconds = b_first.outcome->result.seconds;
  run.b_nodes = b_first.outcome->result.stats.nodes_explored;
  run.b_error = b_first.outcome->result.error;
  run.proven = b_first.outcome->result.proven_optimal;
  run.shared_draws = registry.Stats().shared_draws;
  // B solves the identical base problem: the optima must agree regardless
  // of sharing (candidates are revalidated, never trusted as bounds).
  if (run.proven && run.b_error != run.a_error) run.ok = false;

  std::printf("  %-10s A cold %7.3fs (err %ld)   B first %7.3fs "
              "(err %ld%s, %ld nodes, %lld draws)\n",
              shared ? "shared" : "per-session", run.a_seconds, run.a_error,
              run.b_seconds, run.b_error, run.proven ? "*" : "",
              run.b_nodes, (long long)run.shared_draws);
  return run;
}

// ---------------------------------------------------------------------------
// Write-ahead journal overhead.

struct JournalOverheadRun {
  std::string mode;      // "off" | "batched" | "fsync_every_record"
  int fsync_every = -1;  // -1 = journal off
  double seconds = 0;
  int commands = 0;
  double queries_per_second = 0;
  int64_t records = 0;
  int64_t fsyncs = 0;
  bool ok = true;
};

/// The throughput workload (4 clients, the standard edit script) with the
/// registry journaling into a scratch directory at one fsync policy.
/// Everything but the journal pointer matches RunThroughputLevel, so the
/// seconds are comparable run-to-run and the delta prices the journal.
JournalOverheadRun RunJournalOverhead(const Dataset& data,
                                      const Ranking& given, EpsilonConfig eps,
                                      double budget, const std::string& mode,
                                      int fsync_every,
                                      const std::string& dir) {
  constexpr int kClients = 4;
  JournalOverheadRun run;
  run.mode = mode;
  run.fsync_every = fsync_every;

  RankHowOptions solver;
  solver.eps = eps;
  solver.time_limit_seconds = budget;

  ServerOptions server_options;
  server_options.solver = solver;
  server_options.num_workers = 0;  // all hardware threads
  server_options.max_clients = kClients;

  std::unique_ptr<SessionJournal> journal;
  if (fsync_every >= 0) {
    JournalOptions jopts;
    jopts.fsync_every = fsync_every;
    auto opened =
        SessionJournal::Open(dir + "/" + mode + ".journal", "bench",
                             DatasetFingerprint(data, given), jopts);
    if (!opened.ok()) {
      std::printf("  %-18s journal open failed: %s\n", mode.c_str(),
                  opened.status().ToString().c_str());
      run.ok = false;
      return run;
    }
    journal = std::move(*opened);
    server_options.journal = journal.get();
  }

  SessionRegistry registry(SharedDataset(Dataset(data)), Ranking(given),
                           /*labels=*/{}, server_options);
  std::vector<std::vector<SessionCommand>> scripts = {
      ThroughputScript(data)};
  WallTimer timer;
  auto runs = RunScriptedClients(&registry, scripts, kClients);
  run.seconds = timer.ElapsedSeconds();
  if (!runs.ok()) {
    std::printf("  %-18s FAILED: %s\n", mode.c_str(),
                runs.status().ToString().c_str());
    run.ok = false;
    return run;
  }
  for (const ScriptedClientRun& client : *runs) {
    run.commands += static_cast<int>(client.outcomes.size());
    if (!client.status.ok()) run.ok = false;
  }
  run.queries_per_second =
      run.seconds > 0 ? run.commands / run.seconds : 0;
  if (journal != nullptr) {
    JournalStats js = journal->Stats();
    run.records = js.records_appended;
    run.fsyncs = js.fsyncs;
    if (js.degraded || js.records_appended == 0) run.ok = false;
  }
  std::printf("  %-18s %3d commands in %7.3fs = %7.2f q/s  "
              "(%lld records, %lld fsyncs)\n",
              mode.c_str(), run.commands, run.seconds,
              run.queries_per_second, (long long)run.records,
              (long long)run.fsyncs);
  return run;
}

void EmitThroughputJson(const std::vector<ThroughputLevel>& levels,
                        const WarmSeedRun& cold, const WarmSeedRun& warm,
                        const std::vector<JournalOverheadRun>& jruns,
                        int n, int m, int k, bool all_ok) {
  std::FILE* f = std::fopen("BENCH_server_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write BENCH_server_throughput.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"server_throughput\",\n");
  WriteBenchMetadataJson(f, /*threads_used=*/0, BenchTimestampUtc());
  std::fprintf(f,
               "  \"dataset\": {\"name\": \"nba\", \"n\": %d, \"m\": %d, "
               "\"k\": %d},\n  \"ok\": %s,\n  \"levels\": [\n",
               n, m, k, all_ok ? "true" : "false");
  for (size_t i = 0; i < levels.size(); ++i) {
    const ThroughputLevel& level = levels[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"commands\": %d, \"seconds\": "
                 "%.4f, \"queries_per_second\": %.3f, "
                 "\"resident_dataset_copies\": %d, \"optima_consistent\": "
                 "%s}%s\n",
                 level.clients, level.commands, level.seconds,
                 level.queries_per_second, level.resident_copies,
                 level.optima_consistent ? "true" : "false",
                 i + 1 < levels.size() ? "," : "");
  }
  // Cross-client warm seeding: client B's first solve after client A
  // proved the same region, with the registry pool off (cold) and on
  // (shared). first_solve_speedup is the acceptance number; b_nodes at or
  // near 0 under "shared" is the closing-at-the-root signature.
  std::fprintf(
      f,
      "  ],\n  \"cross_client_warm_seed\": {\n"
      "    \"cold\": {\"b_first_solve_seconds\": %.5f, \"b_nodes\": %ld, "
      "\"b_error\": %ld, \"proven\": %s},\n"
      "    \"shared\": {\"b_first_solve_seconds\": %.5f, \"b_nodes\": %ld, "
      "\"b_error\": %ld, \"proven\": %s, \"shared_draws\": %lld},\n"
      "    \"first_solve_speedup\": %.3f,\n"
      "    \"node_ratio\": %.3f,\n"
      "    \"errors_match\": %s\n  },\n",
      cold.b_seconds, cold.b_nodes, cold.b_error,
      cold.proven ? "true" : "false", warm.b_seconds, warm.b_nodes,
      warm.b_error, warm.proven ? "true" : "false",
      static_cast<long long>(warm.shared_draws),
      warm.b_seconds > 0 ? cold.b_seconds / warm.b_seconds : 0.0,
      cold.b_nodes > 0 ? static_cast<double>(warm.b_nodes) / cold.b_nodes
                       : 0.0,
      cold.b_error == warm.b_error ? "true" : "false");
  // Journal overhead: the same workload at each fsync policy, with
  // overhead_pct relative to the journal-off baseline. The acceptance
  // number is "batched" (the fsync_every=32 default) under 10%.
  std::fprintf(f, "  \"journal_overhead\": {\n    \"modes\": [\n");
  double off_seconds = 0;
  for (const JournalOverheadRun& jr : jruns) {
    if (jr.mode == "off") off_seconds = jr.seconds;
  }
  for (size_t i = 0; i < jruns.size(); ++i) {
    const JournalOverheadRun& jr = jruns[i];
    double overhead_pct =
        off_seconds > 0 ? (jr.seconds - off_seconds) / off_seconds * 100.0
                        : 0.0;
    std::fprintf(f,
                 "      {\"mode\": \"%s\", \"fsync_every\": %d, "
                 "\"seconds\": %.4f, \"queries_per_second\": %.3f, "
                 "\"records\": %lld, \"fsyncs\": %lld, "
                 "\"overhead_pct\": %.2f, \"ok\": %s}%s\n",
                 jr.mode.c_str(), jr.fsync_every, jr.seconds,
                 jr.queries_per_second, (long long)jr.records,
                 (long long)jr.fsyncs, overhead_pct,
                 jr.ok ? "true" : "false",
                 i + 1 < jruns.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("(written to BENCH_server_throughput.json)\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // Default sized so the exact solve *proves* within --budget on one core:
  // an unproven step has no bound to reuse and (correctly) shows no
  // speedup, which would make the artifact measure nothing.
  int nba_n = static_cast<int>(
      flags.GetInt("nba-n", 600, "NBA tuples (paper: 22840)"));
  int cs_n = static_cast<int>(
      flags.GetInt("cs-n", 200, "CSRankings institutions (paper: 628)"));
  int k = static_cast<int>(flags.GetInt("k", 6, "given-ranking length"));
  double budget = flags.GetDouble("budget", 15, "per-solve cap (s)");
  uint64_t seed = flags.GetInt("seed", 1, "simulation seed");
  int serve_n = static_cast<int>(flags.GetInt(
      "serve-n", 200, "NBA tuples for the server-throughput section"));
  double serve_budget =
      flags.GetDouble("serve-budget", 5, "per-solve cap in the server "
                                         "section (s)");
  if (!flags.Finish()) return 0;

  std::vector<ScriptRun> runs;

  // NBA at m=5 (the provable Fig-3b/c/d configuration): kAuto routes this
  // to the spatial strategy, so the NBA script measures the session's
  // warm-oracle + incumbent-pool + bound-seed reuse. CSRankings below
  // (m=27) routes to the indicator MILP and measures the model cache.
  std::printf("=== session re-solve vs cold: NBA (n=%d, m=5, k=%d) ===\n",
              nba_n, k);
  NbaData nba = GenerateNba({.num_tuples = nba_n, .seed = seed});
  Dataset nba5 = nba.table.SelectAttributes({0, 1, 2, 3, 4});
  runs.push_back(RunScript("nba", nba5, NbaPerRanking(nba, k), NbaEps(),
                           budget));

  std::printf("=== session re-solve vs cold: CSRankings (n=%d, m=%d, "
              "k=%d) ===\n",
              cs_n, kCsRankingsNumAreas, k);
  CsRankingsData cs =
      GenerateCsRankings({.num_institutions = cs_n, .seed = seed});
  runs.push_back(RunScript("csrankings", cs.table,
                           CsRankingsDefaultRanking(cs, k), CsRankingsEps(),
                           budget));

  bool all_ok = true;
  for (const ScriptRun& run : runs) all_ok = all_ok && run.ok;
  EmitJson(runs, all_ok);

  // Multi-client server throughput at 1/4/16 simulated clients over one
  // shared NBA snapshot (smaller n: the section measures serving overhead
  // and COW sharing, not solve depth).
  std::printf("=== session server throughput: NBA (n=%d, m=5, k=%d) ===\n",
              serve_n, k);
  NbaData serve_nba = GenerateNba({.num_tuples = serve_n, .seed = seed});
  Dataset serve_data = serve_nba.table.SelectAttributes({0, 1, 2, 3, 4});
  Ranking serve_given = NbaPerRanking(serve_nba, k);
  std::vector<ThroughputLevel> levels;
  bool serve_ok = true;
  for (int clients : {1, 4, 16}) {
    levels.push_back(RunThroughputLevel(serve_data, serve_given, NbaEps(),
                                        serve_budget, clients));
    serve_ok = serve_ok && levels.back().ok;
  }

  // Cross-client warm seeding: per-session pools (cold B) vs the
  // registry-level shared pool (B warm-starts from A's published winner).
  std::printf("=== cross-client warm seed: NBA (n=%d, m=5, k=%d) ===\n",
              serve_n, k);
  WarmSeedRun seed_cold = RunWarmSeedVariant(serve_data, serve_given,
                                             NbaEps(), serve_budget,
                                             /*shared=*/false);
  WarmSeedRun seed_warm = RunWarmSeedVariant(serve_data, serve_given,
                                             NbaEps(), serve_budget,
                                             /*shared=*/true);
  serve_ok = serve_ok && seed_cold.ok && seed_warm.ok;

  // Write-ahead journal overhead: the throughput workload with the journal
  // off, at the batched default, and fsyncing every record, into a scratch
  // directory cleaned up afterwards.
  std::printf("=== journal overhead: NBA (n=%d, m=5, k=%d) ===\n", serve_n,
              k);
  std::vector<JournalOverheadRun> jruns;
  char jdir_template[] = "/tmp/rankhow_bench_journal_XXXXXX";
  char* jdir = mkdtemp(jdir_template);
  if (jdir == nullptr) {
    std::printf("  mkdtemp failed: skipping journal-overhead section\n");
    serve_ok = false;
  } else {
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "off", -1, jdir));
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "batched", 32, jdir));
    jruns.push_back(RunJournalOverhead(serve_data, serve_given, NbaEps(),
                                       serve_budget, "fsync_every_record",
                                       1, jdir));
    for (const JournalOverheadRun& jr : jruns) {
      serve_ok = serve_ok && jr.ok;
      std::remove((std::string(jdir) + "/" + jr.mode + ".journal").c_str());
    }
    rmdir(jdir);
    if (jruns[0].seconds > 0) {
      double batched_pct =
          (jruns[1].seconds - jruns[0].seconds) / jruns[0].seconds * 100.0;
      std::printf("  batched overhead vs off: %+.2f%%%s\n", batched_pct,
                  batched_pct < 10.0 ? "" : "  (over the 10%% target)");
    }
  }

  EmitThroughputJson(levels, seed_cold, seed_warm, jruns, serve_n, 5, k,
                     serve_ok);
  all_ok = all_ok && serve_ok;

  if (!all_ok) {
    std::printf("ERROR: session and cold solves disagree (or a solve "
                "failed); see table above\n");
    return 1;
  }
  return 0;
}
