#ifndef RANKHOW_BENCH_HARNESS_H_
#define RANKHOW_BENCH_HARNESS_H_

/// Shared plumbing for the paper-experiment harnesses: standard epsilon
/// settings per dataset family (Sec. VI-A), one-call competitor runners,
/// and uniform result rows. Every harness prints a table whose rows mirror
/// the series of the corresponding paper figure/table and writes the same
/// rows as CSV next to the binary.

#include <cstdio>
#include <ctime>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/adarank.h"
#include "baselines/linear_regression.h"
#include "baselines/ordinal_regression.h"
#include "baselines/sampling.h"
#include "core/opt_problem.h"
#include "core/rankhow.h"
#include "core/seeding.h"
#include "core/sym_gd.h"
#include "data/dataset.h"
#include "ranking/ranking.h"
#include "ranking/score_ranking.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace rankhow {
namespace bench {

/// The paper's per-dataset numerical settings (Sec. VI-A).
inline EpsilonConfig NbaEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-5;
  eps.eps1 = 1e-4;
  eps.eps2 = 0.0;
  return eps;
}
inline EpsilonConfig CsRankingsEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-3;
  eps.eps1 = 1e-2;
  eps.eps2 = 0.0;
  return eps;
}
inline EpsilonConfig SyntheticEps() {
  EpsilonConfig eps;
  eps.tie_eps = 5e-6;
  eps.eps1 = 1e-5;
  eps.eps2 = 0.0;
  return eps;
}

/// One method's outcome on one configuration.
struct MethodRow {
  std::string method;
  double error = -1;       ///< total position error (-1 = failed)
  double seconds = 0;
  bool optimal = false;    ///< proven optimal (exact solver only)
  std::string note;
};

inline MethodRow Failed(std::string method, const Status& status) {
  MethodRow row;
  row.method = std::move(method);
  row.note = status.ToString();
  return row;
}

/// Exact solver with a budget. Reports the verified error of the incumbent
/// (unproven results carry a note).
inline MethodRow RunRankHow(const Dataset& data, const Ranking& given,
                            EpsilonConfig eps, double time_limit) {
  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = time_limit;
  RankHow solver(data, given, options);
  auto result = solver.Solve();
  if (!result.ok()) return Failed("RankHow", result.status());
  MethodRow row{"RankHow", static_cast<double>(result->error),
                result->seconds, result->proven_optimal, ""};
  if (!result->proven_optimal) {
    row.note = StrFormat("bound=%ld", result->bound);
  }
  if (result->verification && !result->verification->consistent) {
    row.note += " UNVERIFIED";
  }
  return row;
}

inline MethodRow RunOrdinalRegression(const Dataset& data,
                                      const Ranking& given,
                                      EpsilonConfig eps) {
  OrdinalRegressionOptions options;
  options.margin = eps.eps1;
  auto fit = FitOrdinalRegression(data, given, options);
  if (!fit.ok()) return Failed("OrdinalRegression", fit.status());
  long error = PositionError(data, given, fit->weights, eps.tie_eps);
  return MethodRow{"OrdinalRegression", static_cast<double>(error),
                   fit->seconds, false, fit->exact_lp ? "" : "subgradient"};
}

inline MethodRow RunLinearRegression(const Dataset& data,
                                     const Ranking& given,
                                     EpsilonConfig eps) {
  auto fit = FitLinearRegression(data, given);
  if (!fit.ok()) return Failed("LinearRegression", fit.status());
  long error = PositionError(data, given, fit->weights, eps.tie_eps);
  return MethodRow{"LinearRegression", static_cast<double>(error),
                   fit->seconds, false, ""};
}

inline MethodRow RunAdaRank(const Dataset& data, const Ranking& given,
                            EpsilonConfig eps) {
  AdaRankOptions options;
  options.tie_eps = eps.tie_eps;
  auto fit = FitAdaRank(data, given, options);
  if (!fit.ok()) return Failed("AdaRank", fit.status());
  long error = PositionError(data, given, fit->weights, eps.tie_eps);
  return MethodRow{"AdaRank", static_cast<double>(error), fit->seconds,
                   false, ""};
}

inline MethodRow RunSamplingBaseline(const Dataset& data,
                                     const Ranking& given, EpsilonConfig eps,
                                     double budget_seconds, uint64_t seed) {
  SamplingOptions options;
  options.time_budget_seconds = std::max(budget_seconds, 0.01);
  options.tie_eps = eps.tie_eps;
  options.seed = seed;
  auto fit = RunSampling(data, given, options);
  if (!fit.ok()) return Failed("Sampling", fit.status());
  return MethodRow{"Sampling", static_cast<double>(fit->error), fit->seconds,
                   false, StrFormat("%ld samples", fit->samples_drawn)};
}

inline MethodRow RunSymGd(const Dataset& data, const Ranking& given,
                          EpsilonConfig eps, double cell_size,
                          double time_budget, bool adaptive,
                          const std::string& label = "Sym-GD",
                          bool warm_lp = true,
                          SymGdResult* raw_out = nullptr) {
  auto seed = OrdinalRegressionSeed(data, given, eps.eps1);
  if (!seed.ok()) return Failed(label, seed.status());
  SymGdOptions options;
  options.cell_size = cell_size;
  options.adaptive = adaptive;
  options.time_budget_seconds = time_budget;
  options.solver.eps = eps;
  options.solver.use_warm_start = warm_lp;
  options.solver.time_limit_seconds =
      time_budget > 0 ? time_budget : 0;
  SymGd symgd(data, given, options);
  WallTimer timer;
  auto result = symgd.Run(*seed);
  if (!result.ok()) return Failed(label, result.status());
  MethodRow row{label, static_cast<double>(result->error),
                timer.ElapsedSeconds(), false,
                StrFormat("%d cells", result->iterations)};
  if (raw_out != nullptr) *raw_out = *result;
  return row;
}

/// Formats error as per-tuple error (the paper's y axis).
inline std::string PerTuple(double error, int k) {
  if (error < 0) return "fail";
  return FormatDouble(error / std::max(1, k), 4);
}

/// ISO-8601 UTC "now" — the conventional value harnesses pass to
/// WriteBenchMetadataJson's timestamp field.
inline std::string BenchTimestampUtc() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

/// The shared self-description block every BENCH_*.json artifact carries:
/// the hardware the numbers were measured on, the worker-thread count the
/// harness ran with, and a timestamp the harness passes in (usually
/// BenchTimestampUtc()). Emitted as a `"metadata": {...},` member — call it
/// right after the opening brace so single-core runs (like the PR 2 scaling
/// numbers recorded on a 1-core container) are self-describing.
inline void WriteBenchMetadataJson(std::FILE* f, int threads_used,
                                   const std::string& timestamp) {
  std::fprintf(f,
               "  \"metadata\": {\"hardware_concurrency\": %u, "
               "\"threads\": %d, \"timestamp\": \"%s\"},\n",
               std::thread::hardware_concurrency(), threads_used,
               timestamp.c_str());
}

/// Prints and saves a table. The csv lands next to the binary.
inline void Emit(const std::string& name, const TablePrinter& table) {
  std::cout << table.ToText() << "\n";
  std::string path = name + ".csv";
  Status st = table.WriteCsv(path);
  if (st.ok()) {
    std::cout << "(rows written to " << path << ")\n";
  } else {
    std::cerr << st.ToString() << "\n";
  }
}

}  // namespace bench
}  // namespace rankhow

#endif  // RANKHOW_BENCH_HARNESS_H_
