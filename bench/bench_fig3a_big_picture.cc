// Figure 3a: the big picture on the NBA data (m = 5, k = 6, full dataset,
// ranking by MP*PER). Error-per-tuple vs execution time for RankHow,
// OrdinalRegression, LinearRegression, AdaRank, Sampling (same budget as
// RankHow), and SYM-GD at three increasing budgets.
//
// Paper shape: the regression/boosting heuristics are fast but far from the
// minimum; Sampling improves with time but stays away; SYM-GD reaches
// (near-)optimal error in a fraction of RankHow's time. (AdaRank's error is
// off the chart — the paper reports 30 and literally parks the point in the
// figure's corner.)
//
// Flags: --n (default 4000; paper 22840), --k, --m, --budget (RankHow cap).

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 2000, "tuples (paper: 22840)"));
  int k = static_cast<int>(flags.GetInt("k", 6, "ranking length"));
  int m = static_cast<int>(flags.GetInt("m", 5, "ranking attributes"));
  double budget = flags.GetDouble("budget", 20, "RankHow time cap (s)");
  uint64_t seed = flags.GetInt("seed", 1, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3a: NBA big picture (n=" << n << ", m=" << m
            << ", k=" << k << ") ===\n";
  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  std::vector<int> attrs;
  for (int a = 0; a < m && a < nba.table.num_attributes(); ++a) {
    attrs.push_back(a);
  }
  Dataset data = nba.table.SelectAttributes(attrs);
  data.NormalizeMinMax();
  Ranking given = NbaPerRanking(nba, k);
  EpsilonConfig eps = NbaEps();

  TablePrinter table(
      {"method", "error_per_tuple", "seconds", "optimal", "note"});
  auto add = [&](const MethodRow& row) {
    table.AddRow({row.method, PerTuple(row.error, given.k()),
                  FormatDouble(row.seconds, 3), row.optimal ? "yes" : "no",
                  row.note});
  };

  MethodRow rankhow = RunRankHow(data, given, eps, budget);
  add(rankhow);
  add(RunOrdinalRegression(data, given, eps));
  add(RunLinearRegression(data, given, eps));
  add(RunAdaRank(data, given, eps));
  add(RunSamplingBaseline(data, given, eps,
                          rankhow.seconds > 0 ? rankhow.seconds : budget,
                          seed));
  // SYM-GD at three budgets (the paper's 5 / 11 / 15 second points, scaled
  // to the RankHow budget actually spent here).
  double base = std::max(0.5, rankhow.seconds);
  add(RunSymGd(data, given, eps, 1e-2, base / 8, true, "Sym-GD (short)"));
  add(RunSymGd(data, given, eps, 1e-2, base / 4, true, "Sym-GD (medium)"));
  add(RunSymGd(data, given, eps, 1e-2, base / 2, true, "Sym-GD (long)"));

  Emit("fig3a_big_picture", table);
  std::cout << "Paper shape: heuristics fast but inaccurate; Sampling "
               "improves slowly; Sym-GD near-optimal at a fraction of "
               "RankHow's time; RankHow optimal.\n";
  return 0;
}
