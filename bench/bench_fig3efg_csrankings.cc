// Figures 3e/3f/3g: exact OPT on the CSRankings data, varying
//   3e: k in {5,10,15,20,25}            (n = 628, m = full)
//   3f: n in {100,200,...,628}          (k = 10, m = full)
//   3g: m in {5,10,15,20,25,27}         (n = 628, k = 10)
// for RankHow, OrdinalRegression, Sampling, LinearRegression, and AdaRank
// (which the paper keeps in the CSRankings plots).
//
// Flags: --areas (default 27), --budget, --seed, --k_default.

#include "bench/harness_include.h"

using namespace rankhow;
using namespace rankhow::bench;

namespace {

struct Config {
  std::string axis;
  int value;
  Dataset data;
  Ranking given;
};

void RunConfigs(const std::vector<Config>& configs, EpsilonConfig eps,
                double budget, uint64_t seed, TablePrinter* table) {
  for (const Config& c : configs) {
    MethodRow rankhow = RunRankHow(c.data, c.given, eps, budget);
    MethodRow ordinal = RunOrdinalRegression(c.data, c.given, eps);
    MethodRow sampling = RunSamplingBaseline(
        c.data, c.given, eps, rankhow.seconds > 0 ? rankhow.seconds : budget,
        seed);
    MethodRow linear = RunLinearRegression(c.data, c.given, eps);
    MethodRow adarank = RunAdaRank(c.data, c.given, eps);
    for (const MethodRow* row :
         {&rankhow, &ordinal, &sampling, &linear, &adarank}) {
      table->AddRow({c.axis, std::to_string(c.value), row->method,
                     PerTuple(row->error, c.given.k()),
                     FormatDouble(row->seconds, 3), row->note});
    }
    std::cout << "  " << c.axis << "=" << c.value << " done (RankHow "
              << PerTuple(rankhow.error, c.given.k()) << "/tuple)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int areas = static_cast<int>(flags.GetInt("areas", 27, "CS areas"));
  int k_default = static_cast<int>(flags.GetInt("k_default", 10,
                                                "k for 3f/3g"));
  double budget = flags.GetDouble("budget", 8, "RankHow cap per config (s)");
  uint64_t seed = flags.GetInt("seed", 3, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "=== Fig 3e/3f/3g: CSRankings exact OPT ===\n";
  CsRankingsData cs = GenerateCsRankings({.num_areas = areas, .seed = seed});
  EpsilonConfig eps = CsRankingsEps();

  Dataset full = cs.table;
  full.NormalizeMinMax();

  TablePrinter table({"axis", "value", "method", "error_per_tuple",
                      "seconds", "note"});

  // Fig 3e: vary k.
  {
    std::vector<Config> configs;
    for (int k : {5, 10, 15, 20, 25}) {
      configs.push_back(
          {"k", k, full, Ranking::FromScores(cs.default_scores, k)});
    }
    std::cout << "[3e] varying k\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  // Fig 3f: vary n (prefix subsets keep the same score definitions).
  {
    std::vector<Config> configs;
    for (int n : {100, 200, 300, 400, 500, 628}) {
      if (n > cs.table.num_tuples()) continue;
      std::vector<int> rows(n);
      for (int i = 0; i < n; ++i) rows[i] = i;
      Dataset data = cs.table.SelectTuples(rows);
      data.NormalizeMinMax();
      std::vector<double> scores(cs.default_scores.begin(),
                                 cs.default_scores.begin() + n);
      configs.push_back(
          {"n", n, std::move(data),
           Ranking::FromScores(scores, std::min(k_default, n))});
    }
    std::cout << "[3f] varying n\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  // Fig 3g: vary m (area prefixes; the given ranking still uses ALL areas —
  // the scoring function must approximate it from fewer).
  {
    std::vector<Config> configs;
    for (int m : {5, 10, 15, 20, 25, 27}) {
      if (m > cs.table.num_attributes()) continue;
      std::vector<int> attrs;
      for (int a = 0; a < m; ++a) attrs.push_back(a);
      Dataset data = cs.table.SelectAttributes(attrs);
      data.NormalizeMinMax();
      configs.push_back(
          {"m", m, std::move(data),
           Ranking::FromScores(cs.default_scores, k_default)});
    }
    std::cout << "[3g] varying m\n";
    RunConfigs(configs, eps, budget, seed, &table);
  }

  Emit("fig3efg_csrankings", table);
  std::cout << "Paper shapes: error grows with k; stable in n; decreases "
               "with m for RankHow; AdaRank trails everything.\n";
  return 0;
}
