#ifndef RANKHOW_BENCH_HARNESS_INCLUDE_H_
#define RANKHOW_BENCH_HARNESS_INCLUDE_H_

/// Umbrella include for the benchmark harness binaries.

#include "baselines/tree.h"
#include "bench/harness.h"
#include "data/csrankings.h"
#include "data/derived.h"
#include "data/nba.h"
#include "data/synthetic.h"
#include "ranking/error_measures.h"
#include "ranking/verifier.h"

#endif  // RANKHOW_BENCH_HARNESS_INCLUDE_H_
