#ifndef RANKHOW_MATH_BIGINT_H_
#define RANKHOW_MATH_BIGINT_H_

/// \file bigint.h
/// Arbitrary-precision signed integers. This is the foundation of the exact
/// arithmetic used to *verify* solver output (Sec. V-A of the paper): IEEE
/// doubles convert losslessly into BigInt-backed dyadic rationals, so the
/// re-computed ranking is exact, not merely higher-precision.

#include <cstdint>
#include <string>
#include <vector>

namespace rankhow {

/// Sign-magnitude big integer with 32-bit limbs (little-endian).
///
/// Supports the operations the verification pipeline needs: +, -, *,
/// comparisons, bit shifts, divmod, gcd, and decimal conversion. Zero is
/// canonically represented by an empty limb vector and positive sign.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(int64_t value);

  /// Parses an optionally signed decimal string ("-123"). Aborts on garbage
  /// (use in tests / literals only).
  static BigInt FromString(const std::string& s);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// In-place compound arithmetic. += and -= mutate the limb vector
  /// directly (no allocation when the accumulator's capacity suffices —
  /// the exact verifier's accumulation loops hit this path every term);
  /// *= computes into one scratch vector and swaps.
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);

  /// Truncated division (quotient rounds toward zero, like C++ int division).
  /// Requires a non-zero divisor. remainder has the dividend's sign.
  struct DivModResult;
  DivModResult DivMod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& divisor) const;
  BigInt operator%(const BigInt& divisor) const;

  /// Three-way comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Logical shift of the magnitude; sign is preserved.
  BigInt ShiftLeft(int bits) const;
  BigInt ShiftRight(int bits) const;

  /// Number of bits in the magnitude (0 for zero).
  int BitLength() const;
  /// Number of trailing zero bits in the magnitude (0 for zero).
  int CountTrailingZeros() const;
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  BigInt Abs() const;

  /// Greatest common divisor of magnitudes (binary GCD; gcd(0,x) = |x|).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Decimal rendering, e.g. "-123456789012345678901234567890".
  std::string ToString() const;

  /// Approximate conversion (round-to-nearest on the top bits; may overflow
  /// to +/-inf for huge values).
  double ToDouble() const;

  /// Exact conversion when the value fits in int64; ok()=false otherwise.
  bool FitsInt64(int64_t* out) const;

 private:
  // Magnitude, little-endian, no trailing zero limbs.
  std::vector<uint32_t> limbs_;
  bool negative_ = false;

  void Trim();
  /// Signed in-place accumulation: *this += (other with the given sign).
  /// The core of operator+=/-=; alias-safe (x += x works).
  BigInt& AccumulateSigned(const BigInt& other, bool other_negative);
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  // In-place magnitude arithmetic: a += b / a -= b (requires |a| >= |b|) /
  // a = b - a (requires |b| >= |a|).
  static void AddMagnitudeInPlace(std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b);
  static void SubMagnitudeInPlace(std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b);
  static void SubFromMagnitudeInPlace(std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
};

struct BigInt::DivModResult {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace rankhow

#endif  // RANKHOW_MATH_BIGINT_H_
