#ifndef RANKHOW_MATH_DYADIC_H_
#define RANKHOW_MATH_DYADIC_H_

/// \file dyadic.h
/// Exact dyadic rationals: values of the form mantissa * 2^exponent with an
/// arbitrary-precision mantissa. Every finite IEEE-754 double converts
/// losslessly, and the set is closed under +, -, *, which is exactly the
/// operation set needed to recompute scores f_W(r) = sum_i w_i * A_i and
/// score differences precisely. This plays the role of Java's BigDecimal in
/// the paper's verification step (Sec. V-A), but in base 2 so conversions
/// are exact rather than merely high-precision.

#include <cstdint>
#include <string>

#include "math/bigint.h"

namespace rankhow {

/// An exact dyadic rational mantissa * 2^exponent.
///
/// Normalized so the mantissa is odd (or zero): each value has a unique
/// representation, keeping operands small across long computations.
class Dyadic {
 public:
  Dyadic() : mantissa_(0), exponent_(0) {}
  explicit Dyadic(int64_t value) : mantissa_(value), exponent_(0) {
    Normalize();
  }
  Dyadic(BigInt mantissa, int32_t exponent)
      : mantissa_(std::move(mantissa)), exponent_(exponent) {
    Normalize();
  }

  /// Exact conversion of a finite double. Aborts on NaN/inf.
  static Dyadic FromDouble(double value);

  bool is_zero() const { return mantissa_.is_zero(); }
  /// -1, 0, +1.
  int sign() const { return mantissa_.sign(); }

  Dyadic operator-() const;
  Dyadic operator+(const Dyadic& other) const;
  Dyadic operator-(const Dyadic& other) const;
  Dyadic operator*(const Dyadic& other) const;
  Dyadic& operator+=(const Dyadic& o) { return *this = *this + o; }
  Dyadic& operator-=(const Dyadic& o) { return *this = *this - o; }
  Dyadic& operator*=(const Dyadic& o) { return *this = *this * o; }

  /// Three-way comparison.
  int Compare(const Dyadic& other) const;
  bool operator==(const Dyadic& o) const { return Compare(o) == 0; }
  bool operator!=(const Dyadic& o) const { return Compare(o) != 0; }
  bool operator<(const Dyadic& o) const { return Compare(o) < 0; }
  bool operator<=(const Dyadic& o) const { return Compare(o) <= 0; }
  bool operator>(const Dyadic& o) const { return Compare(o) > 0; }
  bool operator>=(const Dyadic& o) const { return Compare(o) >= 0; }

  Dyadic Abs() const;

  /// Nearest double (exact when the value fits a double, which holds for
  /// all inputs produced by FromDouble and small sums/products thereof).
  double ToDouble() const;

  /// Debug rendering "mantissa*2^exponent".
  std::string ToString() const;

  const BigInt& mantissa() const { return mantissa_; }
  int32_t exponent() const { return exponent_; }

 private:
  void Normalize();

  BigInt mantissa_;
  int32_t exponent_;
};

}  // namespace rankhow

#endif  // RANKHOW_MATH_DYADIC_H_
