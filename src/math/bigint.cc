#include "math/bigint.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rankhow {

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag & 0xFFFFFFFFu));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromString(const std::string& s) {
  RH_CHECK(!s.empty()) << "BigInt::FromString on empty string";
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  RH_CHECK(i < s.size()) << "BigInt::FromString: no digits";
  BigInt result;
  BigInt ten(10);
  for (; i < s.size(); ++i) {
    RH_CHECK(s[i] >= '0' && s[i] <= '9')
        << "BigInt::FromString: bad digit '" << s[i] << "'";
    result = result * ten + BigInt(s[i] - '0');
  }
  if (neg && !result.is_zero()) result.negative_ = true;
  return result;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddMagnitudeInPlace(std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  const size_t n = std::max(a.size(), b.size());
  // &a == &b (x += x) needs no resize; otherwise growing first keeps the
  // loop branch-free on the write side.
  if (a.size() < n) a.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + a[i] + (i < b.size() ? b[i] : 0);
    a[i] = static_cast<uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  if (carry != 0) a.push_back(static_cast<uint32_t>(carry));
}

void BigInt::SubMagnitudeInPlace(std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  RH_DCHECK(CompareMagnitude(a, b) >= 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (borrow == 0 && i >= b.size()) break;  // nothing left to subtract
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(diff);
  }
  RH_DCHECK(borrow == 0);
}

void BigInt::SubFromMagnitudeInPlace(std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  RH_DCHECK(CompareMagnitude(b, a) >= 0);
  a.resize(b.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    int64_t diff = static_cast<int64_t>(b[i]) - borrow -
                   static_cast<int64_t>(a[i]);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(diff);
  }
  RH_DCHECK(borrow == 0);
}

BigInt& BigInt::AccumulateSigned(const BigInt& other, bool other_negative) {
  if (other.limbs_.empty()) return *this;
  if (limbs_.empty()) {
    limbs_ = other.limbs_;
    negative_ = other_negative;
    return *this;
  }
  if (negative_ == other_negative) {
    AddMagnitudeInPlace(limbs_, other.limbs_);
  } else {
    const int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
      return *this;
    }
    if (cmp > 0) {
      SubMagnitudeInPlace(limbs_, other.limbs_);
    } else {
      SubFromMagnitudeInPlace(limbs_, other.limbs_);
      negative_ = other_negative;
    }
  }
  Trim();
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  return AccumulateSigned(other, other.negative_);
}

BigInt& BigInt::operator-=(const BigInt& other) {
  return AccumulateSigned(other, !other.negative_);
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  // Schoolbook multiplication cannot reuse the accumulator limb-for-limb
  // (each output limb mixes many input limbs), so compute the product
  // magnitude into one scratch vector and swap it in.
  std::vector<uint32_t> out(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out[i + j] +
                     static_cast<uint64_t>(limbs_[i]) * other.limbs_[j] +
                     carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    size_t pos = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out[pos] + carry;
      out[pos] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++pos;
    }
  }
  negative_ = negative_ != other.negative_;
  limbs_.swap(out);
  Trim();
  return *this;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out = *this;
  out += other;
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  BigInt out = *this;
  out -= other;
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out = *this;
  out *= other;
  return out;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::ShiftLeft(int bits) const {
  RH_DCHECK(bits >= 0);
  if (is_zero() || bits == 0) return *this;
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v & 0xFFFFFFFFu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(int bits) const {
  RH_DCHECK(bits >= 0);
  if (is_zero() || bits == 0) return *this;
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  if (limb_shift >= static_cast<int>(limbs_.size())) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v & 0xFFFFFFFFu);
  }
  out.Trim();
  return out;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigInt::CountTrailingZeros() const {
  if (limbs_.empty()) return 0;
  int zeros = 0;
  for (uint32_t limb : limbs_) {
    if (limb == 0) {
      zeros += 32;
    } else {
      zeros += __builtin_ctz(limb);
      break;
    }
  }
  return zeros;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt::DivModResult BigInt::DivMod(const BigInt& divisor) const {
  RH_CHECK(!divisor.is_zero()) << "BigInt division by zero";
  // Shift-subtract long division on magnitudes; O(bits^2) but only used on
  // verification-sized operands.
  BigInt dividend_mag = Abs();
  BigInt divisor_mag = divisor.Abs();
  DivModResult result;
  if (CompareMagnitude(dividend_mag.limbs_, divisor_mag.limbs_) < 0) {
    result.quotient = BigInt();
    result.remainder = *this;
    return result;
  }
  int shift = dividend_mag.BitLength() - divisor_mag.BitLength();
  BigInt shifted = divisor_mag.ShiftLeft(shift);
  BigInt quotient;
  BigInt remainder = dividend_mag;
  for (int b = shift; b >= 0; --b) {
    if (remainder.Compare(shifted) >= 0) {
      remainder -= shifted;
      // Set bit b of quotient.
      quotient += BigInt(1).ShiftLeft(b);
    }
    shifted = shifted.ShiftRight(1);
  }
  quotient.negative_ = !quotient.is_zero() && (negative_ != divisor.negative_);
  remainder.negative_ = !remainder.is_zero() && negative_;
  result.quotient = std::move(quotient);
  result.remainder = std::move(remainder);
  return result;
}

BigInt BigInt::operator/(const BigInt& divisor) const {
  return DivMod(divisor).quotient;
}
BigInt BigInt::operator%(const BigInt& divisor) const {
  return DivMod(divisor).remainder;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  if (x.is_zero()) return y;
  if (y.is_zero()) return x;
  int shift = std::min(x.CountTrailingZeros(), y.CountTrailingZeros());
  x = x.ShiftRight(x.CountTrailingZeros());
  while (!y.is_zero()) {
    y = y.ShiftRight(y.CountTrailingZeros());
    if (x.Compare(y) > 0) std::swap(x, y);
    y -= x;
  }
  return x.ShiftLeft(shift);
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeated divmod by 10^9 on a limb copy.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits += static_cast<char>('0' + rem % 10);
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::ToDouble() const {
  if (is_zero()) return 0.0;
  double value = 0;
  // Top three limbs give > 64 bits of precision; scale by remaining limbs.
  size_t n = limbs_.size();
  size_t take = std::min<size_t>(3, n);
  for (size_t i = 0; i < take; ++i) {
    value = value * 4294967296.0 + limbs_[n - 1 - i];
  }
  value = std::ldexp(value, static_cast<int>(n - take) * 32);
  return negative_ ? -value : value;
}

bool BigInt::FitsInt64(int64_t* out) const {
  if (limbs_.size() > 2) return false;
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > 0x8000000000000000ULL) return false;
    *out = static_cast<int64_t>(~mag + 1);
  } else {
    if (mag > 0x7FFFFFFFFFFFFFFFULL) return false;
    *out = static_cast<int64_t>(mag);
  }
  return true;
}

}  // namespace rankhow
