#include "math/rational.h"

#include <cmath>

#include "util/logging.h"

namespace rankhow {

void Rational::Normalize() {
  RH_CHECK(!den_.is_zero()) << "Rational with zero denominator";
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::FromDouble(double value) {
  RH_CHECK(std::isfinite(value));
  if (value == 0.0) return Rational();
  int exp = 0;
  double frac = std::frexp(value, &exp);
  int64_t mant = static_cast<int64_t>(std::ldexp(frac, 53));
  exp -= 53;
  if (exp >= 0) return Rational(BigInt(mant).ShiftLeft(exp), BigInt(1));
  return Rational(BigInt(mant), BigInt(1).ShiftLeft(-exp));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  RH_CHECK(!other.is_zero()) << "Rational division by zero";
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  return (num_ * other.den_ - other.num_ * den_).sign();
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.num_ = out.num_.Abs();
  return out;
}

double Rational::ToDouble() const {
  // Scale num and den to comparable magnitude to avoid double overflow.
  int shift = num_.BitLength() - den_.BitLength();
  // Bring the quotient near 2^0 .. 2^64.
  BigInt n = num_;
  BigInt d = den_;
  int applied = 0;
  if (shift > 512) {
    d = d.ShiftLeft(shift - 512);
    applied = shift - 512;
  } else if (shift < -512) {
    n = n.ShiftLeft(-shift - 512);
    applied = -(-shift - 512);
  }
  return std::ldexp(n.ToDouble() / d.ToDouble(), applied);
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

}  // namespace rankhow
