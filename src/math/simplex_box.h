#ifndef RANKHOW_MATH_SIMPLEX_BOX_H_
#define RANKHOW_MATH_SIMPLEX_BOX_H_

/// \file simplex_box.h
/// The weight-space geometry primitive shared by three parts of the paper:
///  * dominance pruning (Sec. V-B) = indicator fixing over the whole simplex,
///  * SYM-GD cell reduction (Sec. IV-A) = indicator fixing over a small box,
///  * tight big-M values for the MILP's indicator constraints.
///
/// All three need the exact range of a linear score difference w·d over
/// W = { w : sum w = 1, lo <= w <= hi }, which this file computes with a
/// greedy fractional-knapsack argument in O(m log m).

#include <vector>

#include "util/status.h"

namespace rankhow {

/// An axis-aligned box in weight space, interpreted as box ∩ simplex.
struct WeightBox {
  std::vector<double> lo;
  std::vector<double> hi;

  /// The whole feasible region [0,1]^m (∩ simplex).
  static WeightBox FullSimplex(int m);

  /// The SYM-GD cell of size `c` around `center` (Sec. IV-A):
  /// max(wᵢ−c/2, 0) ≤ wᵢ ≤ min(wᵢ+c/2, 1).
  static WeightBox CellAround(const std::vector<double>& center, double c);

  int dim() const { return static_cast<int>(lo.size()); }

  /// True iff box ∩ simplex is non-empty: lo ≤ hi, Σlo ≤ 1 ≤ Σhi.
  bool IntersectsSimplex() const;

  /// True iff w lies in the box (no simplex check).
  bool Contains(const std::vector<double>& w, double tol = 1e-12) const;

  /// Componentwise intersection with another box (same dim).
  WeightBox Intersect(const WeightBox& other) const;

  /// Clamps a point into the box; does not re-normalize onto the simplex.
  std::vector<double> Clamp(const std::vector<double>& w) const;
};

/// Exact minimum and maximum of d·w over box ∩ simplex.
struct DotRange {
  double min;
  double max;
};

/// Computes the exact range of Σᵢ dᵢwᵢ subject to Σw = 1, lo ≤ w ≤ hi.
/// Fails with kInfeasible when box ∩ simplex is empty.
Result<DotRange> DotRangeOnSimplexBox(const std::vector<double>& d,
                                      const WeightBox& box);

/// Fast path for the whole simplex: range is [min dᵢ, max dᵢ].
DotRange DotRangeOnFullSimplex(const std::vector<double>& d);

/// Returns a point of box ∩ simplex (the "most interior" greedy point), or
/// kInfeasible. Used to seed evaluations inside SYM-GD cells.
Result<std::vector<double>> AnyPointOnSimplexBox(const WeightBox& box);

}  // namespace rankhow

#endif  // RANKHOW_MATH_SIMPLEX_BOX_H_
