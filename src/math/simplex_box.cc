#include "math/simplex_box.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace rankhow {

WeightBox WeightBox::FullSimplex(int m) {
  WeightBox box;
  box.lo.assign(m, 0.0);
  box.hi.assign(m, 1.0);
  return box;
}

WeightBox WeightBox::CellAround(const std::vector<double>& center, double c) {
  WeightBox box;
  box.lo.reserve(center.size());
  box.hi.reserve(center.size());
  for (double w : center) {
    box.lo.push_back(std::max(w - c / 2, 0.0));
    box.hi.push_back(std::min(w + c / 2, 1.0));
  }
  return box;
}

bool WeightBox::IntersectsSimplex() const {
  double sum_lo = 0;
  double sum_hi = 0;
  for (int i = 0; i < dim(); ++i) {
    if (lo[i] > hi[i]) return false;
    sum_lo += lo[i];
    sum_hi += hi[i];
  }
  // Small slack: boxes are built from floating-point centers.
  return sum_lo <= 1.0 + 1e-12 && sum_hi >= 1.0 - 1e-12;
}

bool WeightBox::Contains(const std::vector<double>& w, double tol) const {
  if (static_cast<int>(w.size()) != dim()) return false;
  for (int i = 0; i < dim(); ++i) {
    if (w[i] < lo[i] - tol || w[i] > hi[i] + tol) return false;
  }
  return true;
}

WeightBox WeightBox::Intersect(const WeightBox& other) const {
  RH_DCHECK(dim() == other.dim());
  WeightBox out;
  out.lo.resize(dim());
  out.hi.resize(dim());
  for (int i = 0; i < dim(); ++i) {
    out.lo[i] = std::max(lo[i], other.lo[i]);
    out.hi[i] = std::min(hi[i], other.hi[i]);
  }
  return out;
}

std::vector<double> WeightBox::Clamp(const std::vector<double>& w) const {
  RH_DCHECK(static_cast<int>(w.size()) == dim());
  std::vector<double> out(w.size());
  for (int i = 0; i < dim(); ++i) {
    out[i] = std::min(std::max(w[i], lo[i]), hi[i]);
  }
  return out;
}

namespace {

/// Exact min of d·w over {Σw=1, lo≤w≤hi} by greedy filling: start at lo and
/// distribute the remaining mass 1−Σlo to coordinates in ascending d order.
Result<double> MinDot(const std::vector<double>& d, const WeightBox& box) {
  const int m = static_cast<int>(d.size());
  double sum_lo = 0;
  for (int i = 0; i < m; ++i) {
    if (box.lo[i] > box.hi[i] + 1e-15) {
      return Status::Infeasible("empty box");
    }
    sum_lo += box.lo[i];
  }
  double remaining = 1.0 - sum_lo;
  if (remaining < -1e-12) return Status::Infeasible("sum lo > 1");

  double value = 0;
  for (int i = 0; i < m; ++i) value += d[i] * box.lo[i];

  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return d[a] < d[b]; });
  for (int idx : order) {
    if (remaining <= 0) break;
    double slack = box.hi[idx] - box.lo[idx];
    double take = std::min(slack, remaining);
    value += d[idx] * take;
    remaining -= take;
  }
  if (remaining > 1e-9) return Status::Infeasible("sum hi < 1");
  return value;
}

}  // namespace

Result<DotRange> DotRangeOnSimplexBox(const std::vector<double>& d,
                                      const WeightBox& box) {
  RH_DCHECK(static_cast<int>(d.size()) == box.dim());
  RH_ASSIGN_OR_RETURN(double mn, MinDot(d, box));
  std::vector<double> neg(d.size());
  for (size_t i = 0; i < d.size(); ++i) neg[i] = -d[i];
  RH_ASSIGN_OR_RETURN(double neg_min, MinDot(neg, box));
  return DotRange{mn, -neg_min};
}

DotRange DotRangeOnFullSimplex(const std::vector<double>& d) {
  RH_DCHECK(!d.empty());
  double mn = d[0];
  double mx = d[0];
  for (double v : d) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  return DotRange{mn, mx};
}

Result<std::vector<double>> AnyPointOnSimplexBox(const WeightBox& box) {
  const int m = box.dim();
  double sum_lo = 0;
  for (int i = 0; i < m; ++i) {
    if (box.lo[i] > box.hi[i] + 1e-15) {
      return Status::Infeasible("empty box");
    }
    sum_lo += box.lo[i];
  }
  double remaining = 1.0 - sum_lo;
  if (remaining < -1e-12) return Status::Infeasible("sum lo > 1");
  std::vector<double> w = box.lo;
  // Distribute the remaining mass proportionally to the available slack,
  // yielding a point away from the box boundary when possible.
  double total_slack = 0;
  for (int i = 0; i < m; ++i) total_slack += box.hi[i] - box.lo[i];
  if (remaining > total_slack + 1e-9) {
    return Status::Infeasible("sum hi < 1");
  }
  if (total_slack > 0) {
    double frac = std::min(1.0, remaining / total_slack);
    for (int i = 0; i < m; ++i) w[i] += frac * (box.hi[i] - box.lo[i]);
  }
  // Fix residual rounding by a final greedy pass.
  double sum = std::accumulate(w.begin(), w.end(), 0.0);
  double residual = 1.0 - sum;
  for (int i = 0; i < m && std::abs(residual) > 1e-15; ++i) {
    double nw = std::min(std::max(w[i] + residual, box.lo[i]), box.hi[i]);
    residual -= nw - w[i];
    w[i] = nw;
  }
  return w;
}

}  // namespace rankhow
