#ifndef RANKHOW_MATH_RATIONAL_H_
#define RANKHOW_MATH_RATIONAL_H_

/// \file rational.h
/// Exact rationals on BigInt. Used by property tests to cross-check the
/// floating-point simplex on small instances and by utilities that need
/// exact division (Dyadic covers the verifier's +,-,* needs more cheaply).

#include <string>

#include "math/bigint.h"

namespace rankhow {

/// num/den with den > 0, always in lowest terms; 0 is 0/1.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  explicit Rational(int64_t value) : num_(value), den_(1) {}
  Rational(int64_t num, int64_t den) : num_(num), den_(den) { Normalize(); }
  Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
    Normalize();
  }

  /// Exact conversion of a finite double (doubles are dyadic rationals).
  static Rational FromDouble(double value);

  bool is_zero() const { return num_.is_zero(); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Requires a non-zero divisor.
  Rational operator/(const Rational& other) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  int Compare(const Rational& other) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  Rational Abs() const;

  double ToDouble() const;
  /// "num/den" (or just "num" when den == 1).
  std::string ToString() const;

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace rankhow

#endif  // RANKHOW_MATH_RATIONAL_H_
