#ifndef RANKHOW_MATH_LINALG_H_
#define RANKHOW_MATH_LINALG_H_

/// \file linalg.h
/// Small dense linear algebra for the regression baselines: dot products,
/// Gaussian elimination, ordinary least squares via normal equations (with a
/// ridge fallback for singular systems) and non-negative least squares
/// (Lawson–Hanson active set).

#include <vector>

#include "util/status.h"

namespace rankhow {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Aᵀ · A (cols×cols).
  Matrix Gram() const;
  /// Aᵀ · y (length cols). y must have length rows.
  std::vector<double> TransposeTimes(const std::vector<double>& y) const;
  /// A · x (length rows). x must have length cols.
  std::vector<double> Times(const std::vector<double>& x) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Solves A x = b by Gaussian elimination with partial pivoting. A is square
/// (n×n) and consumed by value. Fails with kNumerical if singular.
Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

/// Ordinary least squares: argmin ||X β − y||². Falls back to ridge
/// (λ = `ridge`) when the normal equations are singular.
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge = 1e-8);

/// Non-negative least squares: argmin ||X β − y||² s.t. β ≥ 0
/// (Lawson–Hanson active-set method).
Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& x, const std::vector<double>& y, int max_iter = 1000);

}  // namespace rankhow

#endif  // RANKHOW_MATH_LINALG_H_
