#include "math/linalg.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rankhow {

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (int i = 0; i < cols_; ++i) {
    for (int j = i; j < cols_; ++j) {
      double sum = 0;
      for (int r = 0; r < rows_; ++r) sum += at(r, i) * at(r, j);
      g.at(i, j) = sum;
      g.at(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& y) const {
  RH_DCHECK(static_cast<int>(y.size()) == rows_);
  std::vector<double> out(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out[c] += at(r, c) * y[r];
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& x) const {
  RH_DCHECK(static_cast<int>(x.size()) == cols_);
  std::vector<double> out(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0;
    for (int c = 0; c < cols_; ++c) sum += at(r, c) * x[c];
    out[r] = sum;
  }
  return out;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  RH_DCHECK(a.size() == b.size());
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b) {
  const int n = a.rows();
  RH_CHECK(a.cols() == n && static_cast<int>(b.size()) == n);
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-13) {
      return Status::Numerical("singular linear system");
    }
    if (pivot != col) {
      for (int c = col; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    double inv = 1.0 / a.at(col, col);
    for (int r = col + 1; r < n; ++r) {
      double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[r];
    for (int c = r + 1; c < n; ++c) sum -= a.at(r, c) * x[c];
    x[r] = sum / a.at(r, r);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge) {
  RH_CHECK(x.rows() == static_cast<int>(y.size()));
  Matrix gram = x.Gram();
  std::vector<double> rhs = x.TransposeTimes(y);
  auto direct = SolveLinearSystem(gram, rhs);
  if (direct.ok()) return direct;
  // Ridge fallback for singular / ill-conditioned systems.
  for (int i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge;
  return SolveLinearSystem(gram, rhs);
}

Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& x, const std::vector<double>& y, int max_iter) {
  const int n = x.cols();
  RH_CHECK(x.rows() == static_cast<int>(y.size()));
  std::vector<bool> passive(n, false);
  std::vector<double> beta(n, 0.0);

  auto solve_passive = [&]() -> Result<std::vector<double>> {
    // Least squares restricted to the passive set.
    std::vector<int> idx;
    for (int i = 0; i < n; ++i) {
      if (passive[i]) idx.push_back(i);
    }
    Matrix sub(x.rows(), static_cast<int>(idx.size()));
    for (int r = 0; r < x.rows(); ++r) {
      for (size_t j = 0; j < idx.size(); ++j) sub.at(r, j) = x.at(r, idx[j]);
    }
    RH_ASSIGN_OR_RETURN(std::vector<double> z_sub, LeastSquares(sub, y));
    std::vector<double> z(n, 0.0);
    for (size_t j = 0; j < idx.size(); ++j) z[idx[j]] = z_sub[j];
    return z;
  };

  const double tol = 1e-10;
  for (int iter = 0; iter < max_iter; ++iter) {
    // Gradient of 0.5||Xb - y||^2 is Xᵀ(Xb − y); w = −gradient.
    std::vector<double> resid = x.Times(beta);
    for (size_t i = 0; i < resid.size(); ++i) resid[i] = y[i] - resid[i];
    std::vector<double> w = x.TransposeTimes(resid);

    int best = -1;
    double best_w = tol;
    for (int i = 0; i < n; ++i) {
      if (!passive[i] && w[i] > best_w) {
        best_w = w[i];
        best = i;
      }
    }
    if (best < 0) return beta;  // KKT satisfied
    passive[best] = true;

    for (int inner = 0; inner < max_iter; ++inner) {
      RH_ASSIGN_OR_RETURN(std::vector<double> z, solve_passive());
      bool all_positive = true;
      for (int i = 0; i < n; ++i) {
        if (passive[i] && z[i] <= tol) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        beta = z;
        break;
      }
      // Step as far as possible toward z while staying feasible.
      double alpha = 1.0;
      for (int i = 0; i < n; ++i) {
        if (passive[i] && z[i] <= tol && beta[i] - z[i] > 0) {
          alpha = std::min(alpha, beta[i] / (beta[i] - z[i]));
        }
      }
      for (int i = 0; i < n; ++i) {
        beta[i] += alpha * (z[i] - beta[i]);
        if (passive[i] && beta[i] <= tol) {
          beta[i] = 0.0;
          passive[i] = false;
        }
      }
    }
  }
  return beta;
}

}  // namespace rankhow
