#include "math/dyadic.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

void Dyadic::Normalize() {
  if (mantissa_.is_zero()) {
    exponent_ = 0;
    return;
  }
  int tz = mantissa_.CountTrailingZeros();
  if (tz > 0) {
    mantissa_ = mantissa_.ShiftRight(tz);
    exponent_ += tz;
  }
}

Dyadic Dyadic::FromDouble(double value) {
  RH_CHECK(std::isfinite(value)) << "Dyadic::FromDouble on non-finite value";
  if (value == 0.0) return Dyadic();
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, |frac|<1
  // 53 bits of mantissa: frac * 2^53 is an exact integer.
  int64_t mant = static_cast<int64_t>(std::ldexp(frac, 53));
  return Dyadic(BigInt(mant), exp - 53);
}

Dyadic Dyadic::operator-() const {
  Dyadic out = *this;
  out.mantissa_ = -out.mantissa_;
  return out;
}

Dyadic Dyadic::operator+(const Dyadic& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;
  // Align to the smaller exponent.
  int32_t e = std::min(exponent_, other.exponent_);
  BigInt a = mantissa_.ShiftLeft(exponent_ - e);
  BigInt b = other.mantissa_.ShiftLeft(other.exponent_ - e);
  return Dyadic(a + b, e);
}

Dyadic Dyadic::operator-(const Dyadic& other) const {
  return *this + (-other);
}

Dyadic Dyadic::operator*(const Dyadic& other) const {
  return Dyadic(mantissa_ * other.mantissa_, exponent_ + other.exponent_);
}

int Dyadic::Compare(const Dyadic& other) const {
  return (*this - other).sign();
}

Dyadic Dyadic::Abs() const {
  Dyadic out = *this;
  out.mantissa_ = out.mantissa_.Abs();
  return out;
}

double Dyadic::ToDouble() const {
  return std::ldexp(mantissa_.ToDouble(), exponent_);
}

std::string Dyadic::ToString() const {
  return StrFormat("%s*2^%d", mantissa_.ToString().c_str(),
                   static_cast<int>(exponent_));
}

}  // namespace rankhow
