#include "net/reactor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/histogram.h"

namespace rankhow {

namespace {

/// The loop currently running on this thread, for Send()'s inline-flush
/// fast path (a loop-thread Send skips the eventfd round trip).
thread_local void* t_current_loop = nullptr;

}  // namespace

const char* CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kEof: return "eof";
    case CloseReason::kProtocolError: return "protocol_error";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kBackpressure: return "backpressure";
    case CloseReason::kLocalClose: return "local_close";
    case CloseReason::kServerStop: return "server_stop";
  }
  return "?";
}

struct ReactorServer::Loop {
  int index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  std::mutex ops_mu;
  std::deque<std::function<void()>> ops;

  // -------- loop-thread-only --------
  std::unordered_map<int, ConnPtr> conns;  // fd -> connection
  /// Connections closed during the current event batch, kept alive so
  /// stale epoll events in the same batch can still dereference their
  /// data.ptr (they see closed_ and bail). Cleared per iteration.
  std::vector<ConnPtr> graveyard;
  bool stop = false;
  int64_t now_tick = 0;  ///< coarse seconds since server start
  int64_t last_sweep_tick = -1;
};

// ---------------------------------------------------------------------------
// ReactorConn
// ---------------------------------------------------------------------------

bool ReactorConn::Send(const std::string& payload) {
  ServerMetrics* metrics = server_->options_.metrics;
  bool kick = false;
  bool trip = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ || drain_requested_) return false;
    EncodeFrame(send_mode_, payload, &outbox_);
    const size_t queued = outbox_.size() - outbox_off_;
    if (metrics != nullptr) {
      ServerMetrics::RaisePeak(metrics->writes_queued_peak,
                               static_cast<int64_t>(queued));
    }
    if (queued > server_->options_.max_conn_buffer) {
      // The peer stopped reading. Reject further sends right here (under
      // the same lock that accepted this one) so the queue stops growing,
      // and let the owning loop do the accounting and the fd close.
      closing_ = true;
      trip = true;
    } else if (!kick_pending_) {
      kick_pending_ = true;
      kick = true;
    }
  }
  ReactorServer::Loop* loop = server_->loops_[loop_index_].get();
  if (trip) {
    auto self = shared_from_this();
    server_->PostToLoop(*loop, [this, self, loop] {
      if (!closed_) {
        server_->CloseConn(*loop, self, CloseReason::kBackpressure);
      }
    });
    return false;
  }
  if (kick) {
    if (t_current_loop == loop) {
      // Already on the owning loop thread (a cheap verb answered inline):
      // flush now, no wake round trip.
      {
        std::lock_guard<std::mutex> lock(mu_);
        kick_pending_ = false;
      }
      server_->FlushConn(*loop, shared_from_this());
    } else {
      auto self = shared_from_this();
      server_->PostToLoop(*loop, [this, self, loop] {
        {
          std::lock_guard<std::mutex> lock(mu_);
          kick_pending_ = false;
        }
        if (!closed_) server_->FlushConn(*loop, self);
      });
    }
  }
  return true;
}

void ReactorConn::SwitchMode(FrameMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    send_mode_ = mode;
  }
  decoder_.set_mode(mode);
}

FrameMode ReactorConn::mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_mode_;
}

void ReactorConn::Defer(std::function<void()> fn) {
  // on_message runs on the owning loop thread, so the loop-thread fields
  // are ours to touch here.
  ReactorServer::Loop* loop = server_->loops_[loop_index_].get();
  paused_ = true;
  server_->UpdateEpoll(*loop, *this);
  auto self = shared_from_this();
  server_->PostToOps([this, self, loop, fn = std::move(fn)] {
    fn();
    server_->PostToLoop(*loop, [this, self, loop] {
      if (closed_) return;
      bool draining;
      {
        std::lock_guard<std::mutex> lock(mu_);
        draining = drain_requested_ || closing_;
      }
      if (draining) return;  // a Close() raced in; input stays off
      paused_ = false;
      server_->UpdateEpoll(*loop, *this);
      server_->DrainMessages(*loop, self);
    });
  });
}

void ReactorConn::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ || drain_requested_) return;
    drain_requested_ = true;
  }
  ReactorServer::Loop* loop = server_->loops_[loop_index_].get();
  auto self = shared_from_this();
  server_->PostToLoop(*loop, [this, self, loop] {
    if (!closed_) server_->BeginDrain(*loop, self);
  });
}

// ---------------------------------------------------------------------------
// ReactorServer
// ---------------------------------------------------------------------------

ReactorServer::ReactorServer(ReactorCallbacks callbacks,
                             ReactorOptions options)
    : callbacks_(std::move(callbacks)), options_(std::move(options)) {}

ReactorServer::~ReactorServer() { Stop(); }

Status ReactorServer::Start(const ListenAddress& address) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::Invalid("server already started");
  }
  auto fd = OpenListenSocket(address, &bound_, &unlink_path_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;

  int num_loops = options_.num_loops;
  if (num_loops <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_loops = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(0);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      Status status = Status::IoError("epoll/eventfd: " +
                                      std::string(std::strerror(errno)));
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      for (auto& l : loops_) {
        ::close(l->epoll_fd);
        ::close(l->wake_fd);
      }
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wake eventfd
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->thread = std::thread([this, l] { RunLoop(*l); });
  }
  ops_thread_ = std::thread([this] { OpsLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  return Status();
}

int ReactorServer::connections_accepted() const {
  return next_conn_id_.load(std::memory_order_relaxed);
}

void ReactorServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return !started_ || stopped_; });
}

void ReactorServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // 1. Stop accepting: shutdown unblocks the parked accept; the fd stays
  //    open until the thread joined so the descriptor can't be recycled
  //    under an in-flight accept call.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Each loop closes its connections (teardowns land on the ops queue)
  //    and exits.
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    PostToLoop(*l, [this, l] {
      std::vector<ConnPtr> live;
      live.reserve(l->conns.size());
      for (const auto& [fd, conn] : l->conns) live.push_back(conn);
      for (const ConnPtr& conn : live) {
        CloseConn(*l, conn, CloseReason::kServerStop);
      }
      l->stop = true;
    });
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // 3. The ops thread drains the remaining teardowns, then exits.
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops_stop_ = true;
  }
  ops_cv_.notify_all();
  if (ops_thread_.joinable()) ops_thread_.join();
  for (auto& loop : loops_) {
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

void ReactorServer::WakeLoop(Loop& loop) {
  uint64_t one = 1;
  ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
  (void)n;  // EAGAIN means a wake is already pending — good enough
}

void ReactorServer::PostToLoop(Loop& loop, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(loop.ops_mu);
    loop.ops.push_back(std::move(fn));
  }
  WakeLoop(loop);
}

void ReactorServer::PostToOps(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops_queue_.push_back(std::move(fn));
  }
  ops_cv_.notify_one();
}

void ReactorServer::OpsLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(ops_mu_);
      ops_cv_.wait(lock, [this] { return ops_stop_ || !ops_queue_.empty(); });
      if (ops_queue_.empty()) return;  // stopping and drained
      fn = std::move(ops_queue_.front());
      ops_queue_.pop_front();
    }
    fn();
  }
}

void ReactorServer::AcceptLoop() {
  for (;;) {
    int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd >= 0) {
      ::fcntl(conn_fd, F_SETFL,
              ::fcntl(conn_fd, F_GETFL, 0) | O_NONBLOCK);
    }
    if (conn_fd < 0) {
      const int err = errno;  // the lock below may clobber errno
      bool stopping;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping = stopping_;
      }
      if (stopping) return;
      // Transient accept failures (peer aborted the handshake, fd
      // pressure from many live connections) must not kill the server —
      // a listener that exits on EMFILE drops every live client. Back
      // off briefly on resource exhaustion and keep accepting; only an
      // unexpected fatal errno ends the loop.
      if (err == EINTR || err == ECONNABORTED || err == EPROTO ||
          err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // listener closed / fatal accept error
    }
    if (bound_.kind == ListenAddress::Kind::kTcp) {
      int one = 1;
      ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(conn_fd);
        return;
      }
    }
    const int id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    const int loop_index =
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<int>(loops_.size());
    ConnPtr conn(new ReactorConn());
    conn->server_ = this;
    conn->loop_index_ = loop_index;
    conn->id_ = id;
    conn->fd_ = conn_fd;
    if (options_.metrics != nullptr) {
      ServerMetrics* m = options_.metrics;
      m->connections_total.fetch_add(1, std::memory_order_relaxed);
      int64_t cur =
          m->connections_current.fetch_add(1, std::memory_order_relaxed) + 1;
      ServerMetrics::RaisePeak(m->connections_peak, cur);
    }
    Loop* loop = loops_[loop_index].get();
    PostToLoop(*loop, [this, loop, conn] { AddConn(*loop, conn); });
  }
}

void ReactorServer::AddConn(Loop& loop, const ConnPtr& conn) {
  if (loop.stop) {
    // Raced with shutdown; never opened, so no on_close either.
    ::close(conn->fd_);
    if (options_.metrics != nullptr) {
      options_.metrics->connections_current.fetch_sub(
          1, std::memory_order_relaxed);
    }
    return;
  }
  conn->last_active_tick_ = loop.now_tick;
  loop.conns[conn->fd_] = conn;
  if (callbacks_.on_open) conn->user_ = callbacks_.on_open(*conn);
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, conn->fd_, &ev);
}

void ReactorServer::UpdateEpoll(Loop& loop, ReactorConn& conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn.paused_ ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn.want_write_armed_ ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.ptr = &conn;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd_, &ev);
}

void ReactorServer::HandleReadable(Loop& loop, const ConnPtr& conn) {
  // Bounded read burst: level-triggered epoll re-delivers whatever a
  // fast pipelining client still has queued, so capping the burst keeps
  // one chatty connection from starving its loop siblings.
  char buf[16384];
  bool eof = false;
  for (int burst = 0; burst < 4; ++burst) {
    ssize_t n = ::read(conn->fd_, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder_.Feed(buf, static_cast<size_t>(n));
      conn->last_active_tick_ = loop.now_tick;
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard transport error reads like a vanished peer
    break;
  }
  DrainMessages(loop, conn);
  if (conn->closed_) return;
  if (eof) CloseConn(loop, conn, CloseReason::kEof);
}

void ReactorServer::DrainMessages(Loop& loop, const ConnPtr& conn) {
  while (!conn->closed_ && !conn->paused_) {
    std::string payload;
    FrameDecoder::Next next = conn->decoder_.Pop(&payload);
    if (next == FrameDecoder::Next::kNeedMore) return;
    if (next == FrameDecoder::Next::kError) {
      if (options_.metrics != nullptr) {
        options_.metrics->protocol_errors.fetch_add(
            1, std::memory_order_relaxed);
      }
      if (callbacks_.on_protocol_error) {
        callbacks_.on_protocol_error(*conn, conn->decoder_.error());
      }
      CloseConn(loop, conn, CloseReason::kProtocolError);
      return;
    }
    if (options_.metrics != nullptr &&
        conn->decoder_.mode() == FrameMode::kBinary) {
      options_.metrics->frames_binary.fetch_add(1, std::memory_order_relaxed);
    }
    callbacks_.on_message(*conn, payload);
  }
}

void ReactorServer::FlushConn(Loop& loop, const ConnPtr& conn) {
  if (conn->closed_) return;
  bool want_write = false;
  bool drain_done = false;
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    while (conn->outbox_off_ < conn->outbox_.size()) {
      const size_t pending = conn->outbox_.size() - conn->outbox_off_;
      ssize_t n = ::send(conn->fd_, conn->outbox_.data() + conn->outbox_off_,
                         pending, MSG_NOSIGNAL);
      if (n > 0) {
        if (static_cast<size_t>(n) < pending &&
            options_.metrics != nullptr) {
          options_.metrics->writes_retried.fetch_add(
              1, std::memory_order_relaxed);
        }
        conn->outbox_off_ += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) {
        if (options_.metrics != nullptr) {
          options_.metrics->writes_retried.fetch_add(
              1, std::memory_order_relaxed);
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      dead = true;  // EPIPE/ECONNRESET: peer gone
      break;
    }
    if (conn->outbox_off_ == conn->outbox_.size()) {
      conn->outbox_.clear();
      conn->outbox_off_ = 0;
      drain_done = conn->drain_requested_;
    } else if (conn->outbox_off_ > (256u << 10)) {
      // Compact occasionally so a long-lived slow-ish connection doesn't
      // pin the already-sent prefix forever.
      conn->outbox_.erase(0, conn->outbox_off_);
      conn->outbox_off_ = 0;
    }
  }
  if (dead) {
    CloseConn(loop, conn, CloseReason::kEof);
    return;
  }
  if (drain_done) {
    CloseConn(loop, conn, CloseReason::kLocalClose);
    return;
  }
  if (want_write != conn->want_write_armed_) {
    conn->want_write_armed_ = want_write;
    UpdateEpoll(loop, *conn);
  }
}

void ReactorServer::BeginDrain(Loop& loop, const ConnPtr& conn) {
  conn->paused_ = true;  // a gracefully-closing peer gets no more input
  conn->drain_deadline_tick_ =
      loop.now_tick + std::max(1, options_.drain_deadline_seconds);
  UpdateEpoll(loop, *conn);
  FlushConn(loop, conn);  // closes immediately if nothing is pending
}

void ReactorServer::CountClose(CloseReason reason) {
  ServerMetrics* m = options_.metrics;
  if (m == nullptr) return;
  m->connections_current.fetch_sub(1, std::memory_order_relaxed);
  switch (reason) {
    case CloseReason::kEof:
    case CloseReason::kProtocolError:
      m->eof_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kIdleTimeout:
      m->idle_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kBackpressure:
      m->backpressure_closes.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kLocalClose:
    case CloseReason::kServerStop:
      break;  // graceful; not an abort cause
  }
}

void ReactorServer::CloseConn(Loop& loop, const ConnPtr& conn,
                              CloseReason reason) {
  if (conn->closed_) return;
  conn->closed_ = true;
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->closing_ = true;
    if (reason != CloseReason::kBackpressure &&
        conn->outbox_off_ < conn->outbox_.size()) {
      // Best-effort farewell (e.g. the framing-error diagnostic): one
      // non-blocking send of whatever is queued. Backpressure closes
      // skip it — their queue is exactly what the peer won't read.
      ssize_t n = ::send(conn->fd_, conn->outbox_.data() + conn->outbox_off_,
                         conn->outbox_.size() - conn->outbox_off_,
                         MSG_NOSIGNAL | MSG_DONTWAIT);
      (void)n;
    }
    conn->outbox_.clear();
    conn->outbox_off_ = 0;
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd_, nullptr);
  ::close(conn->fd_);
  loop.conns.erase(conn->fd_);
  loop.graveyard.push_back(conn);
  CountClose(reason);
  ConnPtr hold = conn;
  PostToOps([this, hold, reason] {
    if (callbacks_.on_close) callbacks_.on_close(*hold, reason);
  });
}

void ReactorServer::SweepDeadlines(Loop& loop) {
  std::vector<std::pair<ConnPtr, CloseReason>> doomed;
  for (const auto& [fd, conn] : loop.conns) {
    (void)fd;
    if (conn->drain_deadline_tick_ > 0) {
      if (loop.now_tick >= conn->drain_deadline_tick_) {
        doomed.emplace_back(conn, CloseReason::kLocalClose);
      }
      continue;
    }
    if (options_.idle_timeout_seconds > 0 && !conn->paused_ &&
        loop.now_tick - conn->last_active_tick_ >=
            options_.idle_timeout_seconds) {
      doomed.emplace_back(conn, CloseReason::kIdleTimeout);
    }
  }
  for (const auto& [conn, reason] : doomed) CloseConn(loop, conn, reason);
}

void ReactorServer::RunLoop(Loop& loop) {
  t_current_loop = &loop;
  const auto start = std::chrono::steady_clock::now();
  std::vector<epoll_event> events(256);
  while (!loop.stop) {
    int n = ::epoll_wait(loop.epoll_fd, events.data(),
                         static_cast<int>(events.size()), 500);
    loop.now_tick = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens at teardown
    }
    // Cross-thread ops first (new connections, write kicks, resumes,
    // stop). The wake eventfd is drained where its event shows up below.
    for (;;) {
      std::function<void()> fn;
      {
        std::lock_guard<std::mutex> lock(loop.ops_mu);
        if (loop.ops.empty()) break;
        fn = std::move(loop.ops.front());
        loop.ops.pop_front();
      }
      fn();
    }
    for (int i = 0; i < n && !loop.stop; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drained;
        while (::read(loop.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto* raw = static_cast<ReactorConn*>(events[i].data.ptr);
      if (raw->closed_) continue;  // closed earlier in this batch
      auto it = loop.conns.find(raw->fd_);
      if (it == loop.conns.end() || it->second.get() != raw) continue;
      ConnPtr conn = it->second;
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        CloseConn(loop, conn, CloseReason::kEof);
        continue;
      }
      if (ev & EPOLLOUT) {
        FlushConn(loop, conn);
        if (conn->closed_) continue;
      }
      if (ev & EPOLLIN) HandleReadable(loop, conn);
    }
    if (loop.now_tick != loop.last_sweep_tick) {
      loop.last_sweep_tick = loop.now_tick;
      SweepDeadlines(loop);
    }
    loop.graveyard.clear();
  }
  t_current_loop = nullptr;
}

}  // namespace rankhow
