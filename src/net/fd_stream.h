#ifndef RANKHOW_NET_FD_STREAM_H_
#define RANKHOW_NET_FD_STREAM_H_

/// \file fd_stream.h
/// istream/ostream halves over a connected socket file descriptor, so the
/// transport-agnostic wire layer (server/wire.h takes istream&/ostream&)
/// runs over real connections without knowing it.
///
/// The two halves are deliberately *separate stream objects over separate
/// buffers*: the connection's reader thread blocks in `in()` while strand
/// completions write response lines to `out()` (serialized by the wire
/// layer's per-stream mutex), and a shared std::iostream would race the
/// two threads on its state flags. recv and send on one socket from two
/// threads are independent.
///
/// I/O model: buffered both ways (4 KiB each). Reads block in ::recv until
/// bytes, EOF, or an error; a `shutdown(fd, SHUT_RDWR)` from another
/// thread (net/socket_server.h's Stop) unblocks a parked reader with EOF.
/// Writes flush on sync()/std::flush — the wire layer flushes per response
/// line — and use MSG_NOSIGNAL so a peer that vanished surfaces as a
/// stream error instead of SIGPIPE killing the server.
///
/// The connection does NOT own the descriptor (the accept loop owns the
/// connection record and closes it after the handler returns).

#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>

namespace rankhow {

/// One direction of socket buffering. Instantiated twice per connection;
/// each instance is only ever used for its direction.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

  /// Process-wide count of writes that were retried or resumed instead of
  /// failed (EINTR, EAGAIN park-and-retry, short send() continuations).
  /// The stats verb folds this into its writes_retried field.
  static uint64_t TotalWritesRetried();

 protected:
  int_type underflow() override;           // read side
  int_type overflow(int_type ch) override;  // write side
  int sync() override;

 private:
  /// Writes the pending output buffer to the fd; false on error.
  bool FlushOut();

  int fd_;
  char in_[4096];
  char out_[4096];
};

/// The stream pair for one accepted connection.
class FdConnection {
 public:
  explicit FdConnection(int fd)
      : read_buf_(fd), write_buf_(fd), in_(&read_buf_), out_(&write_buf_),
        fd_(fd) {}

  std::istream& in() { return in_; }
  std::ostream& out() { return out_; }
  int fd() const { return fd_; }

 private:
  FdStreamBuf read_buf_;
  FdStreamBuf write_buf_;
  std::istream in_;
  std::ostream out_;
  int fd_;
};

}  // namespace rankhow

#endif  // RANKHOW_NET_FD_STREAM_H_
