#include "net/dial.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rankhow {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// connect(2) with a poll()-bounded timeout: the socket goes non-blocking
/// for the connect, then back to blocking for the caller's reads.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                          int timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, addr, len) != 0) return Errno("connect");
    return Status::OK();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  Status status = Status::OK();
  if (::connect(fd, addr, len) != 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) {
        status = Status::IoError("connect: timed out");
      } else if (ready < 0) {
        status = Errno("poll");
      } else {
        int err = 0;
        socklen_t err_len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
          status = Errno("getsockopt");
        } else if (err != 0) {
          status = Status::IoError(std::string("connect: ") +
                                       std::strerror(err));
        }
      }
    } else {
      status = Errno("connect");
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);  // restore blocking mode
  return status;
}

}  // namespace

Result<int> DialSocket(const ListenAddress& address,
                       const DialOptions& options) {
  int fd = -1;
  if (address.kind == ListenAddress::Kind::kTcp) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (options.rcvbuf > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf,
                         sizeof(options.rcvbuf));
    }
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(address.port));
    std::string host = address.host;
    if (host.empty() || host == "*" || host == "localhost") {
      host = "127.0.0.1";
    }
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      ::close(fd);
      return Status::Invalid("bad host: " + address.host);
    }
    Status connected = ConnectWithTimeout(
        fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin),
        options.timeout_ms);
    if (!connected.ok()) {
      ::close(fd);
      return connected;
    }
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(sun.sun_path)) {
      ::close(fd);
      return Status::Invalid("unix path too long: " + address.path);
    }
    std::memcpy(sun.sun_path, address.path.c_str(),
                address.path.size() + 1);
    Status connected = ConnectWithTimeout(
        fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun),
        options.timeout_ms);
    if (!connected.ok()) {
      ::close(fd);
      return connected;
    }
  }
  if (options.recv_timeout_s > 0) {
    timeval tv;
    tv.tv_sec = options.recv_timeout_s;
    tv.tv_usec = 0;
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
      Status status = Errno("setsockopt SO_RCVTIMEO");
      ::close(fd);
      return status;
    }
  }
  return fd;
}

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept {
  *this = std::move(other);
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
    other.buffer_.clear();
  }
  return *this;
}

Status LineClient::Connect(const ListenAddress& address,
                           const DialOptions& options) {
  Close();
  auto fd = DialSocket(address, options);
  RH_RETURN_NOT_OK(fd.status());
  fd_ = *fd;
  buffer_.clear();
  return Status::OK();
}

bool LineClient::ConnectTcp(const std::string& host, int port, int rcvbuf) {
  ListenAddress address;
  address.kind = ListenAddress::Kind::kTcp;
  address.host = host;
  address.port = port;
  DialOptions options;
  options.rcvbuf = rcvbuf;
  return Connect(address, options).ok();
}

bool LineClient::ConnectUnix(const std::string& path) {
  ListenAddress address;
  address.kind = ListenAddress::Kind::kUnix;
  address.path = path;
  return Connect(address).ok();
}

bool LineClient::Send(const std::string& bytes) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n <= 0) return false;
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

bool LineClient::SendLine(const std::string& payload) {
  return Send(payload + "\n");
}

bool LineClient::SendFrame(const std::string& payload) {
  std::string framed;
  EncodeFrame(FrameMode::kBinary, payload, &framed);
  return Send(framed);
}

std::optional<std::string> LineClient::ReadLine() {
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (!Fill()) return std::nullopt;
  }
}

std::optional<std::string> LineClient::ReadFrame() {
  while (buffer_.size() < 4) {
    if (!Fill()) return std::nullopt;
  }
  const auto* b = reinterpret_cast<const unsigned char*>(buffer_.data());
  const size_t len = (static_cast<size_t>(b[0]) << 24) |
                     (static_cast<size_t>(b[1]) << 16) |
                     (static_cast<size_t>(b[2]) << 8) |
                     static_cast<size_t>(b[3]);
  if (len > kMaxFrameBytes) return std::nullopt;
  while (buffer_.size() < 4 + len) {
    if (!Fill()) return std::nullopt;
  }
  std::string payload = buffer_.substr(4, len);
  buffer_.erase(0, 4 + len);
  return payload;
}

void LineClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineClient::Fill() {
  char chunk[4096];
  ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n <= 0) return false;
  buffer_.append(chunk, static_cast<size_t>(n));
  return true;
}

}  // namespace rankhow
