#ifndef RANKHOW_NET_SOCKET_SERVER_H_
#define RANKHOW_NET_SOCKET_SERVER_H_

/// \file socket_server.h
/// Listener addressing for the network transport (`rankhow_cli
/// --listen=PATH|HOST:PORT`): the `--listen` spec grammar and the
/// bind/listen plumbing shared by the serving reactor (net/reactor.h) and
/// any test that wants a raw listening socket.
///
/// The connection-serving machinery itself lives in net/reactor.h — an
/// epoll event loop replaced the original thread-per-connection
/// SocketServer once thousands of mostly-idle connections became a target
/// (see DESIGN.md "Network transport & routing"). This header keeps only
/// what is transport-policy-free: parsing, rendering, and opening the
/// listening descriptor.
///
/// Availability: Unix-domain sockets need a filesystem path shorter than
/// sockaddr_un::sun_path and a platform that supports AF_UNIX; callers
/// (and the test suite) should treat a kUnimplemented/kIoError from
/// OpenListenSocket as "skip", not "fail". IPv4 only; HOST accepts a
/// dotted quad, "localhost", or "" / "*" / "0.0.0.0" for INADDR_ANY, and
/// PORT 0 binds an ephemeral port reported via *bound.

#include <string>

#include "util/status.h"

namespace rankhow {

struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kTcp;
  std::string path;  // kUnix
  std::string host;  // kTcp
  int port = 0;      // kTcp; 0 = ephemeral
};

/// Parses a `--listen` spec: `unix:PATH` and `tcp:HOST:PORT` explicitly;
/// without a prefix, anything containing '/' is a Unix path and
/// `HOST:PORT` is TCP. kInvalidArgument otherwise (including non-numeric
/// or out-of-range ports).
Result<ListenAddress> ParseListenSpec(const std::string& spec);

/// Renders an address back to spec form ("127.0.0.1:8731", "unix:/run/x").
std::string ListenSpecString(const ListenAddress& address);

/// Binds and listens on `address`, returning the listening descriptor.
/// Also ignores SIGPIPE process-wide (nothing in a server wants SIGPIPE
/// semantics). On success `*bound` holds the address actually bound
/// (ephemeral TCP port resolved via getsockname) and `*unlink_path` the
/// Unix socket path the caller must unlink after closing, or "" for TCP.
/// A stale Unix path is unlinked before binding (the standard daemon idiom
/// — a bound AF_UNIX path persists after exit).
Result<int> OpenListenSocket(const ListenAddress& address,
                             ListenAddress* bound,
                             std::string* unlink_path);

}  // namespace rankhow

#endif  // RANKHOW_NET_SOCKET_SERVER_H_
