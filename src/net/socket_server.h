#ifndef RANKHOW_NET_SOCKET_SERVER_H_
#define RANKHOW_NET_SOCKET_SERVER_H_

/// \file socket_server.h
/// The network transport (`rankhow_cli --listen=PATH|HOST:PORT`; see
/// DESIGN.md "Network transport & routing"): a Unix-domain or TCP listener
/// that accepts connections and runs one reader thread per connection,
/// handing each a stream pair (net/fd_stream.h) for the transport-agnostic
/// wire layer. The listener knows nothing about the protocol — the handler
/// (typically a lambda around ServeStream with connection-scoped client
/// semantics) owns all of that — so the scheduling and session layers are
/// untouched by the transport, exactly as ROADMAP promised.
///
/// Threading: one accept thread plus one thread per live connection.
/// Connection threads end on their own when the peer disconnects or the
/// handler returns; Stop() shuts every socket down (unblocking parked
/// recv/accept calls), then joins all threads. The per-connection thread
/// model matches the serving shape: connections are long-lived interactive
/// sessions (the expensive work runs on the registry's strand pool, not
/// the reader), so a thread parked in recv per client is the simple and
/// sufficient choice at the targeted scale; an epoll reactor slots in
/// behind the same handler signature if thousands of mostly-idle
/// connections ever matter.
///
/// Availability: Unix-domain sockets need a filesystem path shorter than
/// sockaddr_un::sun_path and a platform that supports AF_UNIX; callers
/// (and the test suite) should treat a kUnimplemented/kIoError from
/// Start() as "skip", not "fail". IPv4 only; HOST accepts a dotted quad,
/// "localhost", or "" / "*" / "0.0.0.0" for INADDR_ANY, and PORT 0 binds
/// an ephemeral port reported by bound_spec().

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace rankhow {

struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kTcp;
  std::string path;  // kUnix
  std::string host;  // kTcp
  int port = 0;      // kTcp; 0 = ephemeral
};

/// Parses a `--listen` spec: `unix:PATH` and `tcp:HOST:PORT` explicitly;
/// without a prefix, anything containing '/' is a Unix path and
/// `HOST:PORT` is TCP. kInvalidArgument otherwise (including non-numeric
/// or out-of-range ports).
Result<ListenAddress> ParseListenSpec(const std::string& spec);

/// Renders an address back to spec form ("127.0.0.1:8731", "unix:/run/x").
std::string ListenSpecString(const ListenAddress& address);

class SocketServer {
 public:
  /// Runs on the connection's reader thread. `conn_id` is unique per
  /// accepted connection (1-based). Returning ends the connection.
  using ConnectionHandler =
      std::function<void(int conn_id, std::istream& in, std::ostream& out)>;

  /// `idle_timeout_seconds > 0` arms a per-connection idle deadline
  /// (SO_RCVTIMEO): a connection that sends nothing for that long reads as
  /// EOF on its reader thread, which abort-closes its sessions exactly
  /// like a vanished peer — a crashed client can't pin its sessions (and
  /// their snapshot refcounts) forever. 0 = never time out.
  explicit SocketServer(ConnectionHandler handler,
                        int idle_timeout_seconds = 0);
  /// Stop()s if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread. For TCP with port 0 the
  /// kernel-chosen port is available from bound()/bound_spec() when this
  /// returns. A stale Unix socket path is unlinked before binding (the
  /// standard daemon idiom — a bound AF_UNIX path persists after exit).
  Status Start(const ListenAddress& address);

  /// The address actually bound (ephemeral TCP port resolved).
  const ListenAddress& bound() const { return bound_; }
  std::string bound_spec() const { return ListenSpecString(bound_); }

  /// Total connections accepted so far.
  int connections_accepted() const;

  /// Blocks until the accept loop exits (i.e. until Stop()).
  void Wait();

  /// Shuts down the listener and every live connection (parked reads see
  /// EOF), then joins all threads. Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  /// Moves the threads whose connections announced completion into *out
  /// for joining off the lock (the accept loop's per-iteration reaper —
  /// keeps a long-lived server from hoarding dead joinable threads).
  void ReapFinishedLocked(std::vector<std::thread>* out);

  ConnectionHandler handler_;
  int idle_timeout_seconds_ = 0;
  int listen_fd_ = -1;
  ListenAddress bound_;
  std::string unlink_path_;  // bound Unix path to remove on Stop
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  int next_conn_id_ = 0;
  std::map<int, int> live_fds_;        // conn_id -> fd (closed under mu_)
  std::map<int, std::thread> conn_threads_;  // conn_id -> reader thread
  std::vector<int> finished_;          // conn ids ready for reaping
};

}  // namespace rankhow

#endif  // RANKHOW_NET_SOCKET_SERVER_H_
