#ifndef RANKHOW_NET_FRAME_H_
#define RANKHOW_NET_FRAME_H_

/// \file frame.h
/// Message framing for the wire protocol (docs/PROTOCOL.md "Binary
/// framing"). Two modes over one connection:
///
///   * kText (the default, and the debug/compat mode): one message per
///     newline-terminated line, exactly the PR 4 protocol. A bare '\r'
///     before the newline is stripped so telnet-style clients work.
///   * kBinary (negotiated with the `frame binary` verb): each message is
///     a 4-byte big-endian payload length followed by that many payload
///     bytes. The payload is the same request/response text a line would
///     carry, without the newline — framing changes the envelope, never
///     the grammar, which is what keeps text and binary sessions
///     byte-identical in the equivalence suites.
///
/// The decoder is incremental (feed bytes as they arrive, pull complete
/// messages) and strict: a length above kMaxFrameBytes or an overlong text
/// line is a fatal framing error — there is no way to resynchronize a
/// length-prefixed stream after a corrupt prefix, so the connection must
/// abort-close (siblings are untouched; the fuzz suite in tests/net/
/// proves it). A frame truncated by EOF is reported by the caller (the
/// decoder just never completes it).

#include <cstddef>
#include <cstdint>
#include <string>

namespace rankhow {

enum class FrameMode { kText, kBinary };

/// Hard per-message cap, both modes (a request is a one-line command and a
/// response is a one-line result; 1 MiB is three orders of magnitude of
/// headroom). Doubles as the input-buffer bound: a peer cannot make the
/// server buffer unbounded garbage by never sending a terminator.
constexpr size_t kMaxFrameBytes = 1u << 20;

/// Appends `payload` framed for `mode` to `*out` (newline-terminated line,
/// or 4-byte big-endian length + payload).
void EncodeFrame(FrameMode mode, const std::string& payload,
                 std::string* out);

/// Incremental decoder for one connection's input byte stream.
class FrameDecoder {
 public:
  enum class Next {
    kMessage,   ///< *payload holds one complete message
    kNeedMore,  ///< no complete message buffered; Feed() more bytes
    kError,     ///< fatal framing error; abort-close the connection
  };

  /// Appends received bytes to the internal buffer.
  void Feed(const char* data, size_t len);

  /// Extracts the next complete message, if any. After kError the decoder
  /// stays in the error state (the stream is unrecoverable).
  Next Pop(std::string* payload);

  /// Switches decoding of all not-yet-popped and future bytes. Call
  /// exactly when the protocol layer acks the negotiation, before popping
  /// further messages — buffered bytes after the `frame binary` request
  /// are already binary frames.
  void set_mode(FrameMode mode) { mode_ = mode; }
  FrameMode mode() const { return mode_; }

  /// Human-readable cause after kError.
  const std::string& error() const { return error_; }

  /// True when a partial message sits in the buffer (EOF now = truncated
  /// frame / line-without-newline).
  bool MidMessage() const { return !buffer_.empty(); }

 private:
  Next Fail(std::string cause);

  FrameMode mode_ = FrameMode::kText;
  std::string buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace rankhow

#endif  // RANKHOW_NET_FRAME_H_
