#include "net/frame.h"

#include <cstring>

namespace rankhow {

void EncodeFrame(FrameMode mode, const std::string& payload,
                 std::string* out) {
  if (mode == FrameMode::kText) {
    out->append(payload);
    out->push_back('\n');
    return;
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((n >> 24) & 0xff),
                    static_cast<char>((n >> 16) & 0xff),
                    static_cast<char>((n >> 8) & 0xff),
                    static_cast<char>(n & 0xff)};
  out->append(prefix, 4);
  out->append(payload);
}

void FrameDecoder::Feed(const char* data, size_t len) {
  if (failed_) return;
  buffer_.append(data, len);
}

FrameDecoder::Next FrameDecoder::Fail(std::string cause) {
  failed_ = true;
  error_ = std::move(cause);
  buffer_.clear();
  return Next::kError;
}

FrameDecoder::Next FrameDecoder::Pop(std::string* payload) {
  if (failed_) return Next::kError;
  if (mode_ == FrameMode::kText) {
    size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      // A "line" that never terminates is indistinguishable from garbage;
      // bound it like a frame so a newline-free flood cannot grow the
      // buffer forever.
      if (buffer_.size() > kMaxFrameBytes) {
        return Fail("text line exceeds " +
                    std::to_string(kMaxFrameBytes) + " bytes");
      }
      return Next::kNeedMore;
    }
    size_t end = nl;
    if (end > 0 && buffer_[end - 1] == '\r') --end;  // telnet-style CRLF
    payload->assign(buffer_, 0, end);
    buffer_.erase(0, nl + 1);
    return Next::kMessage;
  }
  // Binary: 4-byte big-endian length prefix.
  if (buffer_.size() < 4) return Next::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n > kMaxFrameBytes) {
    // A corrupt/hostile prefix; the stream cannot be resynchronized. The
    // classic accident this catches is a *text* client that forgot to
    // negotiate — "open ..." reads as the length 0x6f70656e ≈ 1.8 GB.
    return Fail("binary frame length " + std::to_string(n) + " exceeds " +
                std::to_string(kMaxFrameBytes) +
                " bytes (text bytes on a binary connection?)");
  }
  if (buffer_.size() < 4 + static_cast<size_t>(n)) return Next::kNeedMore;
  payload->assign(buffer_, 4, n);
  buffer_.erase(0, 4 + static_cast<size_t>(n));
  return Next::kMessage;
}

}  // namespace rankhow
