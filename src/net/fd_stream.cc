#include "net/fd_stream.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/fault.h"

namespace rankhow {

namespace {

/// Process-wide count of send() calls that had to be retried or resumed
/// (EINTR, EAGAIN waits, short writes). The serving stats verb folds this
/// into its writes_retried gauge at read time.
std::atomic<uint64_t> g_writes_retried{0};

}  // namespace

uint64_t FdStreamBuf::TotalWritesRetried() {
  return g_writes_retried.load(std::memory_order_relaxed);
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);                      // empty get area
  setp(out_, out_ + sizeof(out_) - 1);      // room for the overflow char
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::recv(fd_, in_, sizeof(in_), 0);
  } while (n < 0 && errno == EINTR);
  // n < 0 covers a recv timeout (EAGAIN under SO_RCVTIMEO — the socket
  // server's idle-connection deadline) as well as hard errors: either way
  // the stream ends and the wire layer abort-closes, which is exactly the
  // vanished-peer semantics the deadline wants.
  if (n <= 0) return traits_type::eof();  // peer closed / shutdown / error
  setg(in_, in_, in_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::FlushOut() {
  const char* p = pbase();
  while (p < pptr()) {
    // MSG_NOSIGNAL: a vanished peer is a stream error, not SIGPIPE.
    ssize_t n =
        ::send(fd_, p, static_cast<size_t>(pptr() - p), MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      g_writes_retried.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A full socket buffer on a non-blocking fd (or a send timeout
      // tick) is a deferred write, not an error — dropping the rest of
      // the buffer here would corrupt the message stream. Park until
      // writable and resume.
      g_writes_retried.fetch_add(1, std::memory_order_relaxed);
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (::poll(&pfd, 1, 60000) <= 0) return false;
      continue;
    }
    if (n <= 0) return false;
    // Chaos hook: an armed drop-connection-after-N-bytes budget severs the
    // transport mid-response, exactly as a dying peer or half-written
    // segment would.
    if (FaultInjector::Global().ConsumeBudget(faults::kConnDropAfterBytes,
                                              n)) {
      ::shutdown(fd_, SHUT_RDWR);
      return false;
    }
    if (p + n < pptr()) {
      // Short write: the kernel took part of the buffer; the loop resumes
      // the rest.
      g_writes_retried.fetch_add(1, std::memory_order_relaxed);
    }
    p += n;
  }
  setp(out_, out_ + sizeof(out_) - 1);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);  // the reserved overflow slot
    pbump(1);
  }
  return FlushOut() ? traits_type::not_eof(ch) : traits_type::eof();
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

}  // namespace rankhow
