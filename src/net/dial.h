#ifndef RANKHOW_NET_DIAL_H_
#define RANKHOW_NET_DIAL_H_

/// \file dial.h
/// Client-side connection plumbing for the wire protocol: dialing a
/// `--listen` address with a bounded connect timeout, and a blocking
/// line/frame client over the dialed descriptor.
///
/// This is the productized form of the WireClient helper the socket and
/// chaos test suites grew independently (PR 5/8): the protocol-conformance
/// fixture (tests/support/), the chaos harness, and the shard coordinator
/// (src/coord/) all speak to workers through it now, so client-side
/// framing and timeout behavior cannot drift between them.
///
/// LineClient is deliberately blocking: a coordinator upstream or a test
/// drives exactly one connection per thread and wants the simplest
/// possible read loop. The serving side stays on the epoll reactor
/// (net/reactor.h); nothing here is used to serve.

#include <optional>
#include <string>

#include "net/frame.h"
#include "net/socket_server.h"
#include "util/status.h"

namespace rankhow {

struct DialOptions {
  /// Connect timeout. A refused or unreachable worker must fail `open`
  /// with a clean Status, never hang a coordinator thread; <= 0 falls back
  /// to the OS default blocking connect.
  int timeout_ms = 5000;
  /// SO_RCVTIMEO for subsequent reads; 0 = block forever (a coordinator's
  /// session upstream, where a legitimate solve may be silent for
  /// minutes). Tests keep the generous default so a dead server can never
  /// hang a suite.
  int recv_timeout_s = 60;
  /// > 0 pins SO_RCVBUF before connect (disables kernel autotuning — the
  /// backpressure test needs a client that genuinely cannot absorb data).
  int rcvbuf = 0;
};

/// Dials `address` (TCP or Unix) with DialOptions::timeout_ms. Returns a
/// connected blocking descriptor; kIoError with the connect errno text
/// on refusal/timeout, kUnimplemented where the family is unsupported.
Result<int> DialSocket(const ListenAddress& address,
                       const DialOptions& options = DialOptions());

/// A blocking client over one dialed socket, speaking both framings
/// (docs/PROTOCOL.md): newline-terminated text lines and 4-byte
/// big-endian length-prefixed binary frames. Move-only; closes on
/// destruction.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Dials and adopts the descriptor. Any previous connection is closed.
  Status Connect(const ListenAddress& address,
                 const DialOptions& options = DialOptions());

  /// Test-style conveniences (the historical WireClient signatures).
  bool ConnectTcp(const std::string& host, int port, int rcvbuf = 0);
  bool ConnectUnix(const std::string& path);

  /// Sends raw bytes until done; false on any send error.
  bool Send(const std::string& bytes);
  /// One text-framed request (payload + '\n').
  bool SendLine(const std::string& payload);
  /// One binary frame (4-byte big-endian length + payload).
  bool SendFrame(const std::string& payload);

  /// One response line without the newline; nullopt on EOF/timeout.
  std::optional<std::string> ReadLine();
  /// One binary frame's payload; nullopt on EOF/timeout/oversized length.
  std::optional<std::string> ReadFrame();

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  bool Fill();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace rankhow

#endif  // RANKHOW_NET_DIAL_H_
