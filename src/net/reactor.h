#ifndef RANKHOW_NET_REACTOR_H_
#define RANKHOW_NET_REACTOR_H_

/// \file reactor.h
/// The serving transport: an epoll reactor that owns every connection
/// descriptor and multiplexes thousands of mostly-idle connections over a
/// small fixed thread set (DESIGN.md "Network transport & routing"). It
/// replaced the thread-per-connection SocketServer: connections here are
/// long-lived interactive sessions whose expensive work runs on the
/// registry's strand pool, so parking one OS thread per client bought
/// nothing but stacks once connection counts grew past the low hundreds.
///
/// Threads and ownership:
///
///   * one **accept thread**, blocking in accept(), handing each new fd
///     round-robin to an event loop;
///   * N **event loops** (ReactorOptions::num_loops, default
///     min(4, hw_concurrency)), each an epoll_wait cycle plus an eventfd
///     for cross-thread wakes. A connection's fd belongs to exactly one
///     loop for its whole life; every epoll_ctl and the final close(fd)
///     happen on that loop's thread (the single-writer socket rule — no
///     fd-recycling races by construction);
///   * one **ops thread** shared by all loops, running deferred work:
///     protocol verbs that may block (Defer below) and connection
///     teardown (on_close), which drains session strands. Event loops
///     never block on anything but epoll_wait.
///
/// The reactor is protocol-free. It decodes *messages* (net/frame.h: text
/// lines or length-prefixed binary frames, per-connection mode) and hands
/// them to ReactorCallbacks::on_message on the loop thread; everything
/// about verbs, sessions, and response grammar lives in the handler
/// (server/wire.h's MakeWireReactorCallbacks).
///
/// Handler contract, per connection:
///
///   * on_open (loop thread) runs right after accept; its return value is
///     stored as the connection's user state.
///   * on_message (loop thread) must not block. A verb that can block
///     (session open loads CSVs; close drains a strand) must be wrapped in
///     conn.Defer(fn): the reactor pauses the connection's input, runs fn
///     on the ops thread, and resumes input afterwards — one deferred op
///     per connection at a time, so per-connection ordering holds.
///   * Send() is callable from any thread (loop, ops, strand completions)
///     and never blocks: it encodes into the connection's bounded write
///     queue and wakes the owning loop. A peer that stops reading fills
///     the queue to ReactorOptions::max_conn_buffer and is abort-closed
///     (backpressure) — a slow reader costs one connection, never an
///     event loop or a strand.
///   * on_close (ops thread) runs exactly once, after the fd is closed,
///     with the reason; it must release the user state. After it returns
///     the reactor may free the connection object.
///
/// Idle and drain deadlines ride a coarse once-per-second sweep on each
/// loop (replacing the old SO_RCVTIMEO): a connection silent past
/// idle_timeout_seconds abort-closes as kIdleTimeout; a gracefully-closing
/// connection whose final bytes cannot be flushed within
/// drain_deadline_seconds is cut off.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket_server.h"
#include "util/status.h"

namespace rankhow {

struct ServerMetrics;

/// Why a connection ended; handed to on_close and bucketed into the
/// metrics gauges (eof/idle/backpressure are the `closed_aborted` causes
/// the stats verb distinguishes).
enum class CloseReason {
  kEof,            ///< peer closed or transport error (abort)
  kProtocolError,  ///< unrecoverable framing error (abort)
  kIdleTimeout,    ///< silent past --idle-timeout (abort)
  kBackpressure,   ///< write queue overflow — stalled reader (abort)
  kLocalClose,     ///< handler-requested graceful close (after quit)
  kServerStop,     ///< reactor shutting down
};

const char* CloseReasonName(CloseReason reason);

struct ReactorOptions {
  /// Event loop threads; 0 = min(4, hardware_concurrency).
  int num_loops = 0;
  /// Abort-close a connection silent for this long; 0 = never.
  int idle_timeout_seconds = 0;
  /// Queued-write-bytes bound per connection before a backpressure
  /// abort-close.
  size_t max_conn_buffer = 4u << 20;
  /// Cap on a graceful close flushing its final bytes.
  int drain_deadline_seconds = 10;
  /// Test hook: SO_SNDBUF for accepted sockets (tiny values make a
  /// stalled reader hit max_conn_buffer quickly). 0 = kernel default.
  int sndbuf_bytes = 0;
  /// Transport gauge sink (connections, frames, closes, write peaks);
  /// may be null.
  ServerMetrics* metrics = nullptr;
};

class ReactorServer;

/// One live connection, as seen by the handler. Created and destroyed by
/// the reactor; handler code only ever borrows it (valid from on_open
/// until on_close returns).
class ReactorConn : public std::enable_shared_from_this<ReactorConn> {
 public:
  int id() const { return id_; }
  void* user() const { return user_; }

  /// Queues one protocol message, encoded per the connection's current
  /// frame mode, and wakes the owning loop. Any thread; never blocks.
  /// False (message dropped) once the connection is closing — callers are
  /// late strand completions and must treat that as "peer already gone".
  bool Send(const std::string& payload);

  /// Switches framing for input and all subsequently queued output. Call
  /// only from on_message (loop thread), after Send()ing the negotiation
  /// ack in the old mode — queue order is encode order, so the ack stays
  /// readable and everything after it is framed in the new mode.
  void SwitchMode(FrameMode mode);
  FrameMode mode() const;

  /// Defers blocking work from on_message: pauses this connection's input
  /// (EPOLLIN disarmed, buffered messages held), runs `fn` on the ops
  /// thread, then resumes input. Only from on_message, at most once per
  /// delivered message.
  void Defer(std::function<void()> fn);

  /// Requests a graceful local close: pending writes flush (bounded by
  /// drain_deadline_seconds), then the fd closes and on_close runs with
  /// kLocalClose. Any thread.
  void Close();

 private:
  friend class ReactorServer;
  ReactorConn() = default;

  // -------- immutable after accept --------
  ReactorServer* server_ = nullptr;
  int loop_index_ = 0;
  int id_ = 0;
  int fd_ = -1;

  // -------- loop-thread-only --------
  void* user_ = nullptr;
  FrameDecoder decoder_;
  bool want_write_armed_ = false;  ///< EPOLLOUT currently in the mask
  bool paused_ = false;            ///< Defer in flight; EPOLLIN disarmed
  bool closed_ = false;            ///< fd closed; ignore stale events
  int64_t last_active_tick_ = 0;   ///< idle sweep clock (seconds)
  int64_t drain_deadline_tick_ = 0;

  // -------- cross-thread (guarded by mu_) --------
  mutable std::mutex mu_;
  std::string outbox_;          ///< encoded bytes not yet written
  size_t outbox_off_ = 0;       ///< bytes of outbox_ already sent
  FrameMode send_mode_ = FrameMode::kText;
  bool closing_ = false;        ///< Send() rejects; set before fd close
  bool drain_requested_ = false;
  bool kick_pending_ = false;   ///< a flush op is already queued
};

struct ReactorCallbacks {
  /// Loop thread, after accept. Return value becomes conn.user().
  std::function<void*(ReactorConn&)> on_open;
  /// Loop thread, one complete decoded message. Must not block (Defer).
  std::function<void(ReactorConn&, const std::string& payload)> on_message;
  /// Loop thread, on a fatal framing error, before the abort-close: a
  /// last chance to Send a diagnostic (best-effort — the reactor flushes
  /// what it can). Optional.
  std::function<void(ReactorConn&, const std::string& error)>
      on_protocol_error;
  /// Ops thread, exactly once, after the fd closed. Must release user().
  std::function<void(ReactorConn&, CloseReason)> on_close;
};

class ReactorServer {
 public:
  ReactorServer(ReactorCallbacks callbacks, ReactorOptions options);
  /// Stop()s if still running.
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Binds, listens, and starts the accept + loop + ops threads. For TCP
  /// port 0 the kernel-chosen port is in bound()/bound_spec() on return.
  Status Start(const ListenAddress& address);

  const ListenAddress& bound() const { return bound_; }
  std::string bound_spec() const { return ListenSpecString(bound_); }

  /// Total connections accepted so far.
  int connections_accepted() const;
  /// Event loop threads actually running.
  int num_loops() const { return static_cast<int>(loops_.size()); }

  /// Blocks until Stop().
  void Wait();

  /// Stops accepting, abort-closes every live connection (kServerStop,
  /// on_close runs for each), joins all threads. Idempotent.
  void Stop();

 private:
  struct Loop;
  using ConnPtr = std::shared_ptr<ReactorConn>;

  void AcceptLoop();
  void RunLoop(Loop& loop);
  void OpsLoop();
  void WakeLoop(Loop& loop);
  void PostToLoop(Loop& loop, std::function<void()> fn);
  void PostToOps(std::function<void()> fn);

  // -------- loop-thread helpers (run on conn's owning loop) --------
  void AddConn(Loop& loop, const ConnPtr& conn);
  void HandleReadable(Loop& loop, const ConnPtr& conn);
  void DrainMessages(Loop& loop, const ConnPtr& conn);
  /// Writes as much of the outbox as the socket accepts; arms/disarms
  /// EPOLLOUT; finishes a drain-close when the outbox empties.
  void FlushConn(Loop& loop, const ConnPtr& conn);
  void UpdateEpoll(Loop& loop, ReactorConn& conn);
  /// Closes the fd now and hands teardown to the ops thread.
  void CloseConn(Loop& loop, const ConnPtr& conn, CloseReason reason);
  void BeginDrain(Loop& loop, const ConnPtr& conn);
  void SweepDeadlines(Loop& loop);

  void CountClose(CloseReason reason);

  ReactorCallbacks callbacks_;
  ReactorOptions options_;

  int listen_fd_ = -1;
  ListenAddress bound_;
  std::string unlink_path_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::thread accept_thread_;
  std::thread ops_thread_;

  // Ops queue: deferred verbs + teardowns, FIFO across all loops.
  std::mutex ops_mu_;
  std::condition_variable ops_cv_;
  std::deque<std::function<void()>> ops_queue_;
  bool ops_stop_ = false;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  std::atomic<int> next_conn_id_{0};
  std::atomic<int> round_robin_{0};

  friend class ReactorConn;
};

}  // namespace rankhow

#endif  // RANKHOW_NET_REACTOR_H_
