#include "net/socket_server.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/string_util.h"

namespace rankhow {

Result<ListenAddress> ParseListenSpec(const std::string& raw) {
  std::string spec(Trim(raw));
  ListenAddress address;
  if (StartsWith(spec, "unix:")) {
    address.kind = ListenAddress::Kind::kUnix;
    address.path = spec.substr(5);
    if (address.path.empty()) {
      return Status::Invalid("--listen=unix: needs a socket path");
    }
    return address;
  }
  std::string rest = spec;
  if (StartsWith(rest, "tcp:")) {
    rest = rest.substr(4);
  } else if (spec.find('/') != std::string::npos) {
    // A bare filesystem path serves over a Unix-domain socket.
    address.kind = ListenAddress::Kind::kUnix;
    address.path = spec;
    return address;
  }
  const size_t colon = rest.rfind(':');
  if (rest.empty() || colon == std::string::npos) {
    return Status::Invalid(
        "bad --listen spec '" + raw +
        "' (want unix:PATH, a path containing '/', or HOST:PORT)");
  }
  auto port = ParseInt(rest.substr(colon + 1));
  if (!port.ok() || *port < 0 || *port > 65535) {
    return Status::Invalid("bad --listen port in '" + raw +
                           "' (0..65535; 0 = ephemeral)");
  }
  address.kind = ListenAddress::Kind::kTcp;
  address.host = rest.substr(0, colon);
  address.port = static_cast<int>(*port);
  return address;
}

std::string ListenSpecString(const ListenAddress& address) {
  if (address.kind == ListenAddress::Kind::kUnix) {
    return "unix:" + address.path;
  }
  return address.host + ":" + std::to_string(address.port);
}

Result<int> OpenListenSocket(const ListenAddress& address,
                             ListenAddress* bound,
                             std::string* unlink_path) {
  // Belt next to MSG_NOSIGNAL's suspenders: nothing in this process wants
  // SIGPIPE semantics.
  std::signal(SIGPIPE, SIG_IGN);

  int fd = -1;
  *bound = address;
  unlink_path->clear();
  if (address.kind == ListenAddress::Kind::kUnix) {
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(sun.sun_path)) {
      return Status::Invalid(StrFormat(
          "unix socket path longer than %d bytes: %s",
          static_cast<int>(sizeof(sun.sun_path) - 1), address.path.c_str()));
    }
    std::memcpy(sun.sun_path, address.path.c_str(), address.path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unimplemented("unix sockets unavailable: " +
                                   std::string(std::strerror(errno)));
    }
    ::unlink(address.path.c_str());  // stale path from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      Status status = Status::IoError("bind(" + address.path +
                                      "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    *unlink_path = address.path;
  } else {
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(address.port));
    const std::string& host = address.host;
    if (host.empty() || host == "*" || host == "0.0.0.0") {
      sin.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (host == "localhost") {
      sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      return Status::Invalid("bad --listen host '" + host +
                             "' (IPv4 dotted quad, localhost, or empty)");
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError("socket(AF_INET): " +
                             std::string(std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      Status status = Status::IoError("bind(" + ListenSpecString(address) +
                                      "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    // Report the kernel's choices (ephemeral port, concrete ANY address).
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      char text[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &actual.sin_addr, text, sizeof(text));
      bound->host = text;
      bound->port = ntohs(actual.sin_port);
    }
  }
  // Backlog sized for connection-storm benches (a thousand clients dialing
  // at once must not see ECONNREFUSED); the kernel clamps to somaxconn.
  if (::listen(fd, 1024) != 0) {
    Status status =
        Status::IoError("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    if (!unlink_path->empty()) {
      ::unlink(unlink_path->c_str());
      unlink_path->clear();
    }
    return status;
  }
  return fd;
}

}  // namespace rankhow
