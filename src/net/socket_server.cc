#include "net/socket_server.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/fd_stream.h"
#include "util/string_util.h"

namespace rankhow {

Result<ListenAddress> ParseListenSpec(const std::string& raw) {
  std::string spec(Trim(raw));
  ListenAddress address;
  if (StartsWith(spec, "unix:")) {
    address.kind = ListenAddress::Kind::kUnix;
    address.path = spec.substr(5);
    if (address.path.empty()) {
      return Status::Invalid("--listen=unix: needs a socket path");
    }
    return address;
  }
  std::string rest = spec;
  if (StartsWith(rest, "tcp:")) {
    rest = rest.substr(4);
  } else if (spec.find('/') != std::string::npos) {
    // A bare filesystem path serves over a Unix-domain socket.
    address.kind = ListenAddress::Kind::kUnix;
    address.path = spec;
    return address;
  }
  const size_t colon = rest.rfind(':');
  if (rest.empty() || colon == std::string::npos) {
    return Status::Invalid(
        "bad --listen spec '" + raw +
        "' (want unix:PATH, a path containing '/', or HOST:PORT)");
  }
  auto port = ParseInt(rest.substr(colon + 1));
  if (!port.ok() || *port < 0 || *port > 65535) {
    return Status::Invalid("bad --listen port in '" + raw +
                           "' (0..65535; 0 = ephemeral)");
  }
  address.kind = ListenAddress::Kind::kTcp;
  address.host = rest.substr(0, colon);
  address.port = static_cast<int>(*port);
  return address;
}

std::string ListenSpecString(const ListenAddress& address) {
  if (address.kind == ListenAddress::Kind::kUnix) {
    return "unix:" + address.path;
  }
  return address.host + ":" + std::to_string(address.port);
}

SocketServer::SocketServer(ConnectionHandler handler,
                           int idle_timeout_seconds)
    : handler_(std::move(handler)),
      idle_timeout_seconds_(idle_timeout_seconds) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const ListenAddress& address) {
  if (listen_fd_ >= 0) return Status::Invalid("server already started");
  // Belt next to MSG_NOSIGNAL's suspenders: nothing in this process wants
  // SIGPIPE semantics.
  std::signal(SIGPIPE, SIG_IGN);

  int fd = -1;
  bound_ = address;
  if (address.kind == ListenAddress::Kind::kUnix) {
    sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(sun.sun_path)) {
      return Status::Invalid(StrFormat(
          "unix socket path longer than %d bytes: %s",
          static_cast<int>(sizeof(sun.sun_path) - 1), address.path.c_str()));
    }
    std::memcpy(sun.sun_path, address.path.c_str(), address.path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unimplemented("unix sockets unavailable: " +
                                   std::string(std::strerror(errno)));
    }
    ::unlink(address.path.c_str());  // stale path from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      Status status = Status::IoError("bind(" + address.path +
                                      "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    unlink_path_ = address.path;
  } else {
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(address.port));
    const std::string& host = address.host;
    if (host.empty() || host == "*" || host == "0.0.0.0") {
      sin.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (host == "localhost") {
      sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      return Status::Invalid("bad --listen host '" + host +
                             "' (IPv4 dotted quad, localhost, or empty)");
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError("socket(AF_INET): " +
                             std::string(std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      Status status = Status::IoError("bind(" + ListenSpecString(address) +
                                      "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    // Report the kernel's choices (ephemeral port, concrete ANY address).
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      char text[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &actual.sin_addr, text, sizeof(text));
      bound_.host = text;
      bound_.port = ntohs(actual.sin_port);
    }
  }
  if (::listen(fd, 64) != 0) {
    Status status =
        Status::IoError("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status();
}

void SocketServer::ReapFinishedLocked(std::vector<std::thread>* out) {
  for (int id : finished_) {
    auto it = conn_threads_.find(id);
    if (it != conn_threads_.end()) {
      out->push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
  }
  finished_.clear();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    // Join connection threads that announced completion — without this a
    // long-lived server would hoard one dead joinable thread per served
    // connection. The ids land in finished_ as the threads' last locked
    // action, so these joins return (near-)immediately.
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ReapFinishedLocked(&done);
    }
    for (std::thread& t : done) t.join();

    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      const int err = errno;  // the lock below may clobber errno
      bool stopping;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping = stopping_;
      }
      if (stopping) return;
      // Transient accept failures (the peer aborted the handshake, fd
      // pressure from many live connections) must not kill the server —
      // a listener that exits 0 on EMFILE drops every live client. Back
      // off briefly on resource exhaustion and keep accepting; only an
      // unexpected fatal errno ends the loop.
      if (err == EINTR || err == ECONNABORTED || err == EPROTO ||
          err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // listener closed / fatal accept error
    }
    if (idle_timeout_seconds_ > 0) {
      // Idle-connection deadline: a peer that goes silent past the budget
      // surfaces as recv timing out (EAGAIN), which FdStreamBuf reads as
      // EOF — the reader thread then winds the connection down through the
      // normal abort path. Best-effort: a socket without SO_RCVTIMEO just
      // keeps the old never-time-out behavior.
      timeval tv;
      tv.tv_sec = idle_timeout_seconds_;
      tv.tv_usec = 0;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(conn);
      return;
    }
    const int id = ++next_conn_id_;
    live_fds_.emplace(id, conn);
    conn_threads_.emplace(id, std::thread([this, id, conn] {
      {
        FdConnection stream(conn);
        handler_(id, stream.in(), stream.out());
      }
      // The connection record owns the fd: close it under the same lock
      // Stop() uses for shutdown, so the descriptor can never be recycled
      // between Stop's map read and its shutdown call. Announcing the id
      // in finished_ (last, under the same lock) hands the thread object
      // to the accept loop's reaper.
      std::lock_guard<std::mutex> lock(mu_);
      ::close(conn);
      live_fds_.erase(id);
      finished_.push_back(id);
    }));
  }
}

int SocketServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_conn_id_;
}

void SocketServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && listen_fd_ < 0) return;
    stopping_ = true;
  }
  if (listen_fd_ >= 0) {
    // shutdown unblocks the parked accept; the fd itself stays open until
    // the accept thread joined, so the descriptor cannot be recycled under
    // an in-flight accept call.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  Wait();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, fd] : live_fds_) {
      (void)id;
      ::shutdown(fd, SHUT_RDWR);  // reader threads see EOF and wind down
    }
  }
  // Joining outside mu_: the threads' own cleanup takes it.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, t] : conn_threads_) {
      (void)id;
      threads.push_back(std::move(t));
    }
    conn_threads_.clear();
    finished_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

}  // namespace rankhow
