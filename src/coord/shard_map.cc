#include "coord/shard_map.h"

#include <utility>

#include "util/string_util.h"

namespace rankhow {
namespace {

/// Finds `spec` in `workers` (by spec string), appending it if new.
Result<int> InternWorker(const std::string& spec,
                         std::vector<WorkerSpec>* workers) {
  for (size_t i = 0; i < workers->size(); ++i) {
    if ((*workers)[i].spec == spec) return static_cast<int>(i);
  }
  RH_ASSIGN_OR_RETURN(ListenAddress address, ParseListenSpec(spec));
  WorkerSpec worker;
  worker.spec = spec;
  worker.address = address;
  workers->push_back(std::move(worker));
  return static_cast<int>(workers->size() - 1);
}

}  // namespace

Result<ShardMap> ShardMap::Parse(const std::string& workers_spec,
                                 const std::string& shard_map_spec) {
  ShardMap map;
  if (!workers_spec.empty()) {
    for (const std::string& raw : Split(workers_spec, ',')) {
      const std::string spec(Trim(raw));
      if (spec.empty()) {
        return Status::Invalid("--workers has an empty entry: " +
                               workers_spec);
      }
      RH_RETURN_NOT_OK(InternWorker(spec, &map.workers_).status());
    }
  }
  if (!shard_map_spec.empty()) {
    for (const std::string& raw : Split(shard_map_spec, ',')) {
      const std::string entry(Trim(raw));
      if (entry.empty()) {
        return Status::Invalid("--shard-map has an empty entry: " +
                               shard_map_spec);
      }
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
        return Status::Invalid(
            "--shard-map entries are dataset=host:port, got: " + entry);
      }
      const std::string dataset(Trim(entry.substr(0, eq)));
      const std::string spec(Trim(entry.substr(eq + 1)));
      if (map.fixed_.count(dataset) != 0) {
        return Status::Invalid("--shard-map maps '" + dataset + "' twice");
      }
      RH_ASSIGN_OR_RETURN(int index, InternWorker(spec, &map.workers_));
      map.fixed_[dataset] = index;
    }
  }
  if (map.workers_.empty()) {
    return Status::Invalid(
        "no workers configured (need --workers and/or --shard-map)");
  }
  return map;
}

int ShardMap::PrimaryFor(const std::string& dataset) const {
  if (dataset.empty()) return 0;
  auto fixed = fixed_.find(dataset);
  if (fixed != fixed_.end()) return fixed->second;
  std::lock_guard<std::mutex> lock(mu_);
  auto sticky = sticky_.find(dataset);
  return sticky != sticky_.end() ? sticky->second : -1;
}

Result<int> ShardMap::Route(const std::string& dataset,
                            const std::function<bool(int)>& alive) {
  const int n = static_cast<int>(workers_.size());
  int primary = -1;
  if (dataset.empty()) {
    primary = 0;  // the default dataset lives on the first worker
  } else if (auto fixed = fixed_.find(dataset); fixed != fixed_.end()) {
    primary = fixed->second;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    auto sticky = sticky_.find(dataset);
    if (sticky != sticky_.end()) {
      primary = sticky->second;
    } else {
      // Fresh assignment: the next alive worker in round-robin order, so
      // a down worker never becomes a new dataset's sticky primary.
      for (int step = 0; step < n; ++step) {
        const int candidate = (round_robin_ + step) % n;
        if (alive(candidate)) {
          primary = candidate;
          round_robin_ = (candidate + 1) % n;
          sticky_[dataset] = candidate;
          break;
        }
      }
      if (primary < 0) {
        return Status::IoError("no alive worker for dataset '" +
                                   dataset + "' (" + std::to_string(n) +
                                   " configured, all down)");
      }
    }
  }
  if (alive(primary)) return primary;
  // The mapped worker is down: fall over in list order, keeping the
  // fixed/sticky assignment so the primary resumes on recovery.
  for (int step = 1; step < n; ++step) {
    const int candidate = (primary + step) % n;
    if (alive(candidate)) return candidate;
  }
  return Status::IoError(
      "no alive worker for dataset '" + (dataset.empty() ? "<default>"
                                                         : dataset) +
      "' (primary " + workers_[primary].spec + " down, no replacement)");
}

}  // namespace rankhow
