#ifndef RANKHOW_COORD_SHARD_MAP_H_
#define RANKHOW_COORD_SHARD_MAP_H_

/// \file shard_map.h
/// The coordinator's catalog shard map: which worker serves which dataset
/// (docs/OPERATIONS.md "Distributed serving").
///
/// Two configuration styles, composable:
///
///   --shard-map=nba=host:9001,csrankings=host:9002   explicit pinning
///   --workers=host:9001,host:9002                    auto round-robin
///
/// Explicitly mapped datasets always route to their pinned worker (its
/// journals and warm cache live there). Datasets outside the map are
/// assigned round-robin over the worker list on FIRST open and the
/// assignment is sticky for the coordinator's lifetime — warmth
/// (registry incumbent pools, the persistent warm cache) and journals are
/// per-worker state, so a dataset must not wander between workers while
/// its primary is healthy.
///
/// Routing consults an aliveness predicate (fed by the health checker in
/// coord/health.h): a down primary falls over to the next alive worker in
/// list order WITHOUT rebinding the sticky assignment, so the primary
/// resumes service when it comes back. No alive worker at all is
/// kIoError — the caller turns that into a clean `err` to the client,
/// never a hang.

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket_server.h"
#include "util/status.h"

namespace rankhow {

/// One worker endpoint: the parsed address plus the spec string it was
/// configured with (stable key for logs, stats breakdowns, and pooling).
struct WorkerSpec {
  std::string spec;
  ListenAddress address;
};

class ShardMap {
 public:
  ShardMap() = default;
  // Movable despite the mutex guarding sticky state: moves happen during
  // configuration, strictly before concurrent routing starts.
  ShardMap(ShardMap&& other) noexcept
      : workers_(std::move(other.workers_)),
        fixed_(std::move(other.fixed_)),
        sticky_(std::move(other.sticky_)),
        round_robin_(other.round_robin_) {}
  ShardMap& operator=(ShardMap&& other) noexcept {
    workers_ = std::move(other.workers_);
    fixed_ = std::move(other.fixed_);
    sticky_ = std::move(other.sticky_);
    round_robin_ = other.round_robin_;
    return *this;
  }

  /// Parses `--workers` (comma-separated listen specs) and `--shard-map`
  /// (comma-separated `dataset=spec` entries). Workers named only in the
  /// shard map are appended to the worker list; at least one worker must
  /// result. kInvalidArgument on grammar errors or duplicate dataset
  /// entries.
  static Result<ShardMap> Parse(const std::string& workers_spec,
                                const std::string& shard_map_spec);

  const std::vector<WorkerSpec>& workers() const { return workers_; }
  int num_fixed_shards() const { return static_cast<int>(fixed_.size()); }

  /// The worker index `dataset` routes to while every worker is alive
  /// ("" = the default dataset → worker 0), or -1 when the dataset has
  /// neither a fixed nor a sticky assignment yet.
  int PrimaryFor(const std::string& dataset) const;

  /// Routes `dataset` to a worker index: fixed entry, else sticky
  /// assignment, else a fresh round-robin assignment over alive workers
  /// (made sticky). A down choice falls over to the next alive worker in
  /// list order without rebinding. kIoError when nothing is alive.
  /// Thread-safe.
  Result<int> Route(const std::string& dataset,
                    const std::function<bool(int)>& alive);

 private:
  std::vector<WorkerSpec> workers_;
  std::map<std::string, int> fixed_;

  mutable std::mutex mu_;
  std::map<std::string, int> sticky_;
  int round_robin_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_COORD_SHARD_MAP_H_
