#ifndef RANKHOW_COORD_COORDINATOR_H_
#define RANKHOW_COORD_COORDINATOR_H_

/// \file coordinator.h
/// CoordServer: the shard coordinator behind `rankhow_coord`. Accepts
/// wire-protocol connections (docs/PROTOCOL.md — clients see the exact
/// worker protocol, including framing negotiation), routes each `open` to
/// a worker by the catalog shard map, proxies session traffic verbatim
/// over per-worker upstream connections, health-checks the fleet, and
/// fails sessions over by replaying their acked edit scripts onto a
/// replacement worker.
///
/// Architecture (DESIGN.md "Shard coordinator"): one accept thread, one
/// session thread per downstream connection (a coordinator fronts tens of
/// analysts, not the reactor's ten thousand idle sockets), one detached
/// reader thread per upstream connection (coord/upstream.h), and the
/// supervisor's probe thread (coord/health.h). All are tracked by a
/// ThreadGate so Stop() waits for quiescence.
///
/// Transparency contract, in brief:
///   * parse errors, unknown-client, duplicate-open, `deadline`, and
///     `frame` are answered locally with byte-identical worker texts —
///     line numbers and deadlines are per-downstream-connection state the
///     workers must not see doubled;
///   * `open`/`close`/commands forward verbatim; command responses get
///     their `line=` rewritten from worker numbering to downstream
///     numbering (the only byte the coordinator changes);
///   * `stats`/`metrics` scatter-gather across up workers into one
///     aggregated line (counters sum, gauges max) plus `coord_*` fields
///     and a per-worker up/down breakdown;
///   * worker death: each affected session's acked edits (captured
///     coordinator-side, mirroring the journal's acked ⊆ journaled
///     invariant) replay onto a replacement; a subsequent `open` of that
///     client answers `ok open C DATASET recovered`, the same adoption
///     suffix a journal-recovered worker uses.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coord/health.h"
#include "coord/shard_map.h"
#include "coord/upstream.h"
#include "net/socket_server.h"
#include "util/status.h"

namespace rankhow {

struct CoordOptions {
  HealthOptions health;
  /// How long a command waits for failover to rebind its session before
  /// giving up with a clean error (covers one dial plus probe slack).
  int forward_retry_ms = 8000;
  /// Bound on the graceful quit drain (mirrors the reactor's
  /// drain_deadline_seconds).
  int quit_drain_ms = 30000;
};

/// Monotonic counters, exposed on the aggregated `stats` line as
/// `coord_*` fields and to tests via CoordServer::counters().
struct CoordCounters {
  long long connections = 0;        ///< downstream connections accepted
  long long sessions_opened = 0;    ///< opens routed to a worker
  long long commands_proxied = 0;   ///< command lines forwarded
  long long local_errors = 0;       ///< requests answered err locally
  long long failovers = 0;          ///< worker deaths with live sessions
  long long failover_sessions = 0;  ///< sessions moved to a replacement
  long long failover_failures = 0;  ///< sessions dropped (no replacement)
  long long replayed_edits = 0;     ///< acked edits replayed on failover
  long long replay_errors = 0;      ///< replayed lines a replacement erred
};

class CoordServer {
 public:
  CoordServer(ShardMap shard_map, CoordOptions options);
  ~CoordServer();

  CoordServer(const CoordServer&) = delete;
  CoordServer& operator=(const CoordServer&) = delete;

  /// Binds `listen`, starts the supervisor and the accept thread.
  Status Start(const ListenAddress& listen);
  /// Stops accepting, aborts live downstreams (workers abort-close their
  /// clients, exactly as if those connections died), waits for threads.
  void Stop();

  const ListenAddress& bound() const { return bound_; }
  std::string bound_spec() const { return ListenSpecString(bound_); }

  ShardMap& shard_map() { return shard_map_; }
  WorkerSupervisor& supervisor() { return *supervisor_; }
  CoordCounters counters() const;

 private:
  class Downstream;

  void AcceptLoop();
  void RemoveDownstream(Downstream* key);

  ShardMap shard_map_;
  CoordOptions options_;
  std::unique_ptr<WorkerSupervisor> supervisor_;
  ThreadGate gate_;

  ListenAddress bound_;
  std::string unlink_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex downstreams_mu_;
  std::map<Downstream*, std::shared_ptr<Downstream>> downstreams_;

  std::atomic<long long> c_connections_{0};
  std::atomic<long long> c_sessions_opened_{0};
  std::atomic<long long> c_commands_proxied_{0};
  std::atomic<long long> c_local_errors_{0};
  std::atomic<long long> c_failovers_{0};
  std::atomic<long long> c_failover_sessions_{0};
  std::atomic<long long> c_failover_failures_{0};
  std::atomic<long long> c_replayed_edits_{0};
  std::atomic<long long> c_replay_errors_{0};
};

/// Merges worker `stats`/`metrics` field lines into one: field order from
/// the first line (so a single-worker aggregate is the identity), values
/// summed, except max-merged gauges — names ending `_us`, containing
/// `peak`, or in {journal_degraded, cache_degraded}. Non-numeric values
/// keep the first worker's copy. Exposed for unit tests.
std::string AggregateFieldLines(const std::vector<std::string>& lines);

}  // namespace rankhow

#endif  // RANKHOW_COORD_COORDINATOR_H_
