#include "coord/coordinator.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "server/wire.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// Fields merged by max instead of sum: high-water marks, latency
/// quantiles, and the sticky degraded flags (any worker degraded means
/// the fleet is degraded).
bool IsMaxMerged(const std::string& name) {
  if (name == "journal_degraded" || name == "cache_degraded") return true;
  if (name.size() > 3 && name.compare(name.size() - 3, 3, "_us") == 0) {
    return true;
  }
  return name.find("peak") != std::string::npos;
}

}  // namespace

std::string AggregateFieldLines(const std::vector<std::string>& lines) {
  std::vector<std::string> order;
  std::map<std::string, std::string> first_value;
  std::map<std::string, long long> numeric;
  std::map<std::string, bool> is_numeric;
  for (const std::string& line : lines) {
    for (const std::string& token : Split(line, ' ')) {
      if (token.empty()) continue;
      const size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) continue;
      const std::string name = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      Result<int64_t> parsed = ParseInt(value);
      auto seen = first_value.find(name);
      if (seen == first_value.end()) {
        order.push_back(name);
        first_value[name] = value;
        is_numeric[name] = parsed.ok();
        numeric[name] = parsed.ok() ? static_cast<long long>(*parsed) : 0;
      } else if (is_numeric[name] && parsed.ok()) {
        const long long v = static_cast<long long>(*parsed);
        numeric[name] =
            IsMaxMerged(name) ? std::max(numeric[name], v) : numeric[name] + v;
      }
    }
  }
  std::string out;
  for (const std::string& name : order) {
    if (!out.empty()) out += ' ';
    out += name + "=";
    out += is_numeric[name] ? std::to_string(numeric[name])
                            : first_value[name];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Downstream: one accepted client connection
// ---------------------------------------------------------------------------

class CoordServer::Downstream
    : public std::enable_shared_from_this<CoordServer::Downstream> {
 public:
  Downstream(CoordServer* server, int fd) : server_(server), fd_(fd) {}
  ~Downstream() {
    if (fd_ >= 0) ::close(fd_);
  }
  Downstream(const Downstream&) = delete;
  Downstream& operator=(const Downstream&) = delete;

  /// The session thread: read, decode, dispatch — until EOF, a framing
  /// error, or an acked quit.
  void Run();
  /// Any thread: wakes Run() out of recv so it tears the session down.
  void Abort() { ::shutdown(fd_, SHUT_RDWR); }

 private:
  struct Session {
    std::string requested_dataset;  ///< what `open` asked for (routing key)
    std::string bound_dataset;      ///< what the worker's ack echoed
    std::string open_payload;       ///< canonical open line, for replay
    int worker = -1;
    bool open_acked = false;
    bool recovered_pending = false;  ///< failed over; next open adopts
    std::vector<std::string> acked_edits;  ///< ok-acked edit lines, in order
  };

  void HandleLine(const std::string& payload);
  void HandleOpen(int64_t line_no, const WireRequest& request);
  void HandleSessionVerb(int64_t line_no, const WireRequest& request,
                         const std::string& payload);
  void HandleDeadline(int64_t ms);
  void HandleFrame(bool binary);
  void HandleScatter(bool metrics);
  void HandleQuit();
  void Cleanup();

  void OnUpstreamResponse(int worker, const ProxyEntry& entry,
                          const std::string& response);
  void OnUpstreamBroken(int worker, UpstreamConn* conn,
                        std::vector<ProxyEntry> unacked);

  /// Existing healthy connection to `worker`, or a fresh dial. nullptr
  /// with *error set when the dial fails. Called under mu_ (the dial
  /// blocks responses for up to dial_timeout_ms — a coordinator fronts
  /// few downstreams, and correctness of the swap wants atomicity).
  std::shared_ptr<UpstreamConn> GetOrCreateUpstreamLocked(
      int worker, std::string* error);

  /// Forwards a close/command entry to its session's current worker,
  /// waiting out an in-progress failover rebind. Consumes `lock`-held
  /// mu_; returns with mu_ held.
  void ForwardSessionEntry(std::unique_lock<std::mutex>& lock,
                           const std::string& client, ProxyEntry entry);

  void Emit(const std::string& payload);
  void SendAllLocked(const std::string& bytes);

  CoordServer* server_;
  int fd_;

  // Session-thread-only state.
  FrameDecoder decoder_;
  int64_t line_no_ = 0;
  bool finished_ = false;  ///< quit acked; stop reading

  // Downstream write side: whole-message writes under one lock, encoded
  // in the mode current at send time (reader threads race the session
  // thread here, exactly like reactor conns).
  std::mutex write_mu_;
  FrameMode send_mode_ = FrameMode::kText;

  // Proxy state shared with upstream reader threads.
  std::mutex mu_;
  std::condition_variable drain_cv_;
  std::map<std::string, Session> sessions_;
  std::map<int, std::shared_ptr<UpstreamConn>> upstreams_;
  int64_t inflight_ = 0;  ///< forwarded entries awaiting a response
  int64_t deadline_ms_ = 0;
  bool deadline_set_ = false;
  bool ended_ = false;  ///< quit or teardown: drop, don't fail over
};

void CoordServer::Downstream::Run() {
  char buf[4096];
  bool fatal = false;
  while (!fatal && !finished_) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder_.Feed(buf, static_cast<size_t>(n));
    std::string payload;
    for (;;) {
      const FrameDecoder::Next next = decoder_.Pop(&payload);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kError) {
        // Same last word the reactor gives before an abort-close: a
        // length-prefixed stream cannot resync.
        Emit("err - " + decoder_.error());
        fatal = true;
        break;
      }
      HandleLine(payload);
      if (finished_) break;
    }
  }
  Cleanup();
}

void CoordServer::Downstream::Cleanup() {
  std::vector<std::shared_ptr<UpstreamConn>> ups;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ended_ = true;
    for (auto& [worker, conn] : upstreams_) ups.push_back(conn);
    upstreams_.clear();
    sessions_.clear();
  }
  // Closing the upstream connections makes each worker abort-close the
  // clients they carried — identical to those clients' own connections
  // dying, which is the transparency we owe the protocol.
  for (auto& conn : ups) conn->Shutdown();
}

void CoordServer::Downstream::Emit(const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  std::string out;
  EncodeFrame(send_mode_, payload, &out);
  SendAllLocked(out);
}

void CoordServer::Downstream::SendAllLocked(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; Run() sees the EOF shortly
    off += static_cast<size_t>(n);
  }
}

void CoordServer::Downstream::HandleLine(const std::string& payload) {
  const int64_t line_no = ++line_no_;
  Result<WireRequest> request = ParseWireLine(payload);
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kNotFound) return;  // blank
    server_->c_local_errors_.fetch_add(1);
    Emit(StrFormat("err - wire line %d: %s", static_cast<int>(line_no),
                   request.status().message().c_str()));
    return;
  }
  switch (request->kind) {
    case WireRequest::Kind::kQuit:
      HandleQuit();
      break;
    case WireRequest::Kind::kStats:
      HandleScatter(/*metrics=*/false);
      break;
    case WireRequest::Kind::kMetrics:
      HandleScatter(/*metrics=*/true);
      break;
    case WireRequest::Kind::kDeadline:
      HandleDeadline(request->deadline_ms);
      break;
    case WireRequest::Kind::kFrame:
      HandleFrame(request->frame_binary);
      break;
    case WireRequest::Kind::kOpen:
      HandleOpen(line_no, *request);
      break;
    case WireRequest::Kind::kClose:
    case WireRequest::Kind::kCommand:
      HandleSessionVerb(line_no, *request, payload);
      break;
  }
}

void CoordServer::Downstream::HandleDeadline(int64_t ms) {
  const std::string canonical =
      StrFormat("deadline %lld", static_cast<long long>(ms));
  {
    std::lock_guard<std::mutex> lock(mu_);
    deadline_ms_ = ms;
    deadline_set_ = true;
    // Deadlines are per-connection worker state: push to every live
    // upstream now, and GetOrCreateUpstreamLocked seeds future ones.
    for (auto& [worker, conn] : upstreams_) {
      ProxyEntry entry;
      entry.kind = ProxyEntry::Kind::kDeadline;
      entry.payload = canonical;
      entry.swallow = true;
      if (conn->Forward(std::move(entry))) ++inflight_;
    }
  }
  Emit(StrFormat("ok deadline %lld", static_cast<long long>(ms)));
}

void CoordServer::Downstream::HandleFrame(bool binary) {
  {
    // Ack in the OLD mode, switch everything queued after — the same
    // contract the reactor documents for SwitchMode.
    std::lock_guard<std::mutex> lock(write_mu_);
    std::string out;
    EncodeFrame(send_mode_, StrFormat("ok frame %s", binary ? "binary" : "text"),
                &out);
    SendAllLocked(out);
    send_mode_ = binary ? FrameMode::kBinary : FrameMode::kText;
  }
  decoder_.set_mode(binary ? FrameMode::kBinary : FrameMode::kText);
}

void CoordServer::Downstream::HandleOpen(int64_t line_no,
                                         const WireRequest& request) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(request.client);
  if (it != sessions_.end()) {
    if (it->second.recovered_pending) {
      // The session failed over to a replacement worker; this open
      // adopts it, carrying the same suffix a journal-recovering worker
      // uses (docs/PROTOCOL.md "Recovery").
      it->second.recovered_pending = false;
      const std::string ack = "ok open " + request.client + " " +
                              it->second.bound_dataset + " recovered";
      lock.unlock();
      Emit(ack);
      return;
    }
    server_->c_local_errors_.fetch_add(1);
    lock.unlock();
    Emit("err " + request.client + " client already open: " +
         request.client);
    return;
  }

  const int num_workers =
      static_cast<int>(server_->shard_map_.workers().size());
  std::string last_error = "no alive worker";
  for (int attempt = 0; attempt <= num_workers; ++attempt) {
    Result<int> route = server_->shard_map_.Route(
        request.dataset,
        [this](int i) { return server_->supervisor_->IsAlive(i); });
    if (!route.ok()) {
      last_error = route.status().message();
      break;
    }
    std::string dial_error;
    std::shared_ptr<UpstreamConn> up =
        GetOrCreateUpstreamLocked(*route, &dial_error);
    if (up == nullptr) {
      // The route said alive but the dial says dead: fast-probe (marks
      // the worker down on confirmation) and re-route.
      last_error = dial_error;
      const int dead = *route;
      lock.unlock();
      server_->supervisor_->ReportFailure(dead);
      lock.lock();
      continue;
    }
    Session session;
    session.requested_dataset = request.dataset;
    session.open_payload =
        "open " + request.client +
        (request.dataset.empty() ? "" : " " + request.dataset);
    session.worker = *route;
    sessions_[request.client] = std::move(session);
    ProxyEntry entry;
    entry.kind = ProxyEntry::Kind::kOpen;
    entry.payload = sessions_[request.client].open_payload;
    entry.client = request.client;
    entry.downstream_line = line_no;
    if (!up->Forward(std::move(entry))) {
      sessions_.erase(request.client);  // raced the conn's death; retry
      continue;
    }
    ++inflight_;
    server_->c_sessions_opened_.fetch_add(1);
    return;  // the worker's ack flows back through OnUpstreamResponse
  }
  server_->c_local_errors_.fetch_add(1);
  lock.unlock();
  Emit("err " + request.client + " " + last_error);
}

void CoordServer::Downstream::HandleSessionVerb(int64_t line_no,
                                                const WireRequest& request,
                                                const std::string& payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (sessions_.find(request.client) == sessions_.end()) {
    server_->c_local_errors_.fetch_add(1);
    lock.unlock();
    Emit(StrFormat("err %s no client named %s on this connection",
                   request.client.c_str(), request.client.c_str()));
    return;
  }
  ProxyEntry entry;
  entry.client = request.client;
  entry.downstream_line = line_no;
  if (request.kind == WireRequest::Kind::kClose) {
    entry.kind = ProxyEntry::Kind::kClose;
    entry.payload = "close " + request.client;
  } else {
    entry.kind = ProxyEntry::Kind::kCommand;
    entry.payload = payload;
    entry.is_edit = request.command.kind != SessionCommand::Kind::kSolve;
    server_->c_commands_proxied_.fetch_add(1);
  }
  ForwardSessionEntry(lock, request.client, std::move(entry));
}

void CoordServer::Downstream::ForwardSessionEntry(
    std::unique_lock<std::mutex>& lock, const std::string& client,
    ProxyEntry entry) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(server_->options_.forward_retry_ms);
  for (;;) {
    auto it = sessions_.find(client);
    if (it == sessions_.end()) {
      // The session died mid-retry (failover found no replacement).
      server_->c_local_errors_.fetch_add(1);
      lock.unlock();
      Emit(StrFormat("err %s no client named %s on this connection",
                     client.c_str(), client.c_str()));
      lock.lock();
      return;
    }
    auto up = upstreams_.find(it->second.worker);
    if (up != upstreams_.end() && !up->second->failed() &&
        up->second->Forward(entry)) {
      ++inflight_;
      return;
    }
    // The bound worker's connection is dead or dying: failover (on the
    // broken reader's thread) will rebind the session; wait it out.
    if (std::chrono::steady_clock::now() >= deadline) break;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    lock.lock();
  }
  server_->c_local_errors_.fetch_add(1);
  std::string err;
  if (entry.kind == ProxyEntry::Kind::kCommand) {
    err = StrFormat("err %s line=%d worker unavailable: failover did not "
                    "complete",
                    client.c_str(),
                    static_cast<int>(entry.downstream_line));
  } else {
    err = StrFormat("err %s worker unavailable: failover did not complete",
                    client.c_str());
  }
  lock.unlock();
  Emit(err);
  lock.lock();
}

std::shared_ptr<UpstreamConn>
CoordServer::Downstream::GetOrCreateUpstreamLocked(int worker,
                                                   std::string* error) {
  auto it = upstreams_.find(worker);
  if (it != upstreams_.end() && !it->second->failed()) return it->second;
  auto self = shared_from_this();
  UpstreamConn::Callbacks callbacks;
  callbacks.on_response = [self, worker](const ProxyEntry& entry,
                                         const std::string& response) {
    self->OnUpstreamResponse(worker, entry, response);
  };
  callbacks.on_broken = [self, worker](UpstreamConn* conn,
                                       std::vector<ProxyEntry> unacked) {
    self->OnUpstreamBroken(worker, conn, std::move(unacked));
  };
  Result<std::shared_ptr<UpstreamConn>> dialed = UpstreamConn::Dial(
      server_->shard_map_.workers()[static_cast<size_t>(worker)],
      server_->options_.health.dial_timeout_ms, std::move(callbacks),
      &server_->gate_);
  if (!dialed.ok()) {
    *error = dialed.status().message();
    return nullptr;
  }
  // A failed predecessor may still sit in the map: its on_broken erases
  // by pointer identity, so overwriting here cannot orphan anything.
  upstreams_[worker] = *dialed;
  if (deadline_set_) {
    ProxyEntry entry;
    entry.kind = ProxyEntry::Kind::kDeadline;
    entry.payload =
        StrFormat("deadline %lld", static_cast<long long>(deadline_ms_));
    entry.swallow = true;
    if ((*dialed)->Forward(std::move(entry))) ++inflight_;
  }
  return *dialed;
}

void CoordServer::Downstream::OnUpstreamResponse(int worker,
                                                 const ProxyEntry& entry,
                                                 const std::string& response) {
  (void)worker;
  const bool ok = StartsWith(response, "ok ");
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    drain_cv_.notify_all();
    if (entry.swallow) {
      if (!ok && entry.kind != ProxyEntry::Kind::kClose) {
        server_->c_replay_errors_.fetch_add(1);
        std::fprintf(stderr,
                     "rankhow_coord: swallowed %s failed: %s\n",
                     entry.payload.c_str(), response.c_str());
      }
      if (ok && entry.kind == ProxyEntry::Kind::kOpen) {
        // Replayed open: refresh the bound dataset from the new ack.
        auto it = sessions_.find(entry.client);
        std::vector<std::string> tokens = Split(response, ' ');
        if (it != sessions_.end() && tokens.size() >= 4) {
          it->second.bound_dataset = tokens[3];
        }
      }
      return;
    }
    switch (entry.kind) {
      case ProxyEntry::Kind::kCommand: {
        if (ok && entry.is_edit) {
          auto it = sessions_.find(entry.client);
          if (it != sessions_.end()) {
            it->second.acked_edits.push_back(entry.payload);
          }
        }
        out = RewriteWireResponseLine(response, entry.downstream_line);
        break;
      }
      case ProxyEntry::Kind::kOpen: {
        auto it = sessions_.find(entry.client);
        if (ok && it != sessions_.end()) {
          std::vector<std::string> tokens = Split(response, ' ');
          it->second.bound_dataset = tokens.size() >= 4 ? tokens[3] : "";
          it->second.open_acked = true;
        } else if (!ok) {
          sessions_.erase(entry.client);
        }
        out = response;
        break;
      }
      case ProxyEntry::Kind::kClose: {
        if (ok) sessions_.erase(entry.client);
        out = response;
        break;
      }
      case ProxyEntry::Kind::kDeadline:
        out = response;  // unreachable: deadlines are always swallowed
        break;
    }
  }
  Emit(out);
}

void CoordServer::Downstream::OnUpstreamBroken(
    int worker, UpstreamConn* conn, std::vector<ProxyEntry> unacked) {
  // Probe before locking: confirms the death (marks the worker down so
  // routing skips it) without stalling response forwarding.
  server_->supervisor_->ReportFailure(worker);
  std::vector<std::string> emits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto uit = upstreams_.find(worker);
    if (uit != upstreams_.end() && uit->second.get() == conn) {
      upstreams_.erase(uit);
    }
    if (ended_) {
      inflight_ -= static_cast<int64_t>(unacked.size());
      drain_cv_.notify_all();
      return;
    }
    // Swallowed entries don't replay from here: deadlines are re-seeded
    // per new connection, and replayed opens/edits are regenerated from
    // the session's acked_edits below.
    std::map<std::string, std::vector<ProxyEntry>> pending_by_client;
    int64_t dropped = 0;
    for (ProxyEntry& entry : unacked) {
      if (entry.swallow || entry.kind == ProxyEntry::Kind::kDeadline) {
        ++dropped;
        continue;
      }
      pending_by_client[entry.client].push_back(std::move(entry));
    }
    inflight_ -= dropped;

    std::vector<std::string> affected;
    for (auto& [client, session] : sessions_) {
      if (session.worker == worker) affected.push_back(client);
    }
    if (!affected.empty()) server_->c_failovers_.fetch_add(1);

    const std::string dead_spec =
        server_->shard_map_.workers()[static_cast<size_t>(worker)].spec;
    for (const std::string& client : affected) {
      Session& session = sessions_[client];
      std::shared_ptr<UpstreamConn> replacement;
      int replacement_index = -1;
      std::string why = "no replacement available";
      const int num_workers =
          static_cast<int>(server_->shard_map_.workers().size());
      for (int attempt = 0; attempt < num_workers; ++attempt) {
        Result<int> route = server_->shard_map_.Route(
            session.requested_dataset, [this, worker](int i) {
              return i != worker && server_->supervisor_->IsAlive(i);
            });
        if (!route.ok()) {
          why = route.status().message();
          break;
        }
        std::string dial_error;
        replacement = GetOrCreateUpstreamLocked(*route, &dial_error);
        if (replacement != nullptr) {
          replacement_index = *route;
          break;
        }
        why = dial_error;
        server_->supervisor_->ReportUnreachable(*route, dial_error);
      }

      std::vector<ProxyEntry>& pending = pending_by_client[client];
      if (replacement == nullptr) {
        server_->c_failover_failures_.fetch_add(1);
        for (ProxyEntry& entry : pending) {
          --inflight_;
          if (entry.kind == ProxyEntry::Kind::kCommand) {
            emits.push_back(StrFormat(
                "err %s line=%d worker %s died: %s", client.c_str(),
                static_cast<int>(entry.downstream_line), dead_spec.c_str(),
                why.c_str()));
          } else {
            emits.push_back("err " + client + " worker " + dead_spec +
                            " died: " + why);
          }
        }
        pending.clear();
        sessions_.erase(client);
        continue;
      }

      // Rebuild the session on the replacement: a swallowed open, the
      // acked edit script in ack order (this is exactly the state the
      // journal guarantees — acked ⊆ journaled ⊆ replayable), then the
      // unacked tail verbatim. The worker serializes per client, so no
      // waiting between lines is needed.
      bool open_in_tail = false;
      for (const ProxyEntry& entry : pending) {
        if (entry.kind == ProxyEntry::Kind::kOpen) open_in_tail = true;
      }
      if (!open_in_tail) {
        ProxyEntry open_entry;
        open_entry.kind = ProxyEntry::Kind::kOpen;
        open_entry.payload = session.open_payload;
        open_entry.client = client;
        open_entry.swallow = true;
        if (replacement->Forward(std::move(open_entry))) ++inflight_;
        for (const std::string& edit : session.acked_edits) {
          ProxyEntry replay;
          replay.kind = ProxyEntry::Kind::kCommand;
          replay.payload = edit;
          replay.client = client;
          replay.is_edit = true;
          replay.swallow = true;
          if (replacement->Forward(std::move(replay))) {
            ++inflight_;
            server_->c_replayed_edits_.fetch_add(1);
          }
        }
      }
      for (ProxyEntry& entry : pending) {
        if (!replacement->Forward(std::move(entry))) {
          // The replacement died inside the same failover; its own
          // on_broken cannot know this entry, so fail it here.
          --inflight_;
          emits.push_back(StrFormat(
              "err %s line=%d worker unavailable: replacement died",
              client.c_str(), static_cast<int>(entry.downstream_line)));
        }
      }
      pending.clear();
      session.worker = replacement_index;
      if (session.open_acked) session.recovered_pending = true;
      server_->c_failover_sessions_.fetch_add(1);
    }

    // Entries whose client has no session (closed concurrently or open
    // already rejected): nothing to rebind, answer cleanly.
    for (auto& [client, pending] : pending_by_client) {
      for (ProxyEntry& entry : pending) {
        --inflight_;
        if (entry.kind == ProxyEntry::Kind::kCommand) {
          emits.push_back(StrFormat("err %s line=%d worker %s died",
                                    client.c_str(),
                                    static_cast<int>(entry.downstream_line),
                                    dead_spec.c_str()));
        } else {
          emits.push_back("err " + client + " worker " + dead_spec +
                          " died");
        }
      }
    }
    drain_cv_.notify_all();
  }
  for (const std::string& message : emits) Emit(message);
}

void CoordServer::Downstream::HandleScatter(bool metrics) {
  const char* verb = metrics ? "metrics" : "stats";
  const std::string prefix = std::string("ok ") + verb + " ";
  std::vector<std::string> field_lines;
  std::string breakdown;
  int up_count = 0;
  const int num_workers = server_->supervisor_->num_workers();
  for (int w = 0; w < num_workers; ++w) {
    bool got = false;
    if (server_->supervisor_->IsAlive(w)) {
      Result<std::string> response =
          server_->supervisor_->ControlRoundTrip(w, verb);
      if (response.ok() && StartsWith(*response, prefix)) {
        field_lines.push_back(response->substr(prefix.size()));
        got = true;
      }
    }
    if (got) ++up_count;
    breakdown += StrFormat(
        " w%d=%s:%s", w,
        server_->shard_map_.workers()[static_cast<size_t>(w)].spec.c_str(),
        got ? "up" : "down");
  }
  if (field_lines.empty()) {
    server_->c_local_errors_.fetch_add(1);
    Emit(StrFormat("err - %s unavailable: no worker reachable", verb));
    return;
  }
  const CoordCounters counters = server_->counters();
  std::string line = prefix + AggregateFieldLines(field_lines);
  line += StrFormat(
      " coord_workers=%d coord_up=%d coord_sessions=%lld "
      "coord_commands=%lld coord_failovers=%lld "
      "coord_failover_sessions=%lld coord_failover_failures=%lld "
      "coord_replayed=%lld coord_replay_errors=%lld",
      num_workers, up_count, counters.sessions_opened,
      counters.commands_proxied, counters.failovers,
      counters.failover_sessions, counters.failover_failures,
      counters.replayed_edits, counters.replay_errors);
  line += breakdown;
  Emit(line);
}

void CoordServer::Downstream::HandleQuit() {
  std::unique_lock<std::mutex> lock(mu_);
  // Graceful drain: ask each worker to close its clients (their queued
  // commands finish and answer first — the worker's own close semantics)
  // and hold `ok quit` until every in-flight response came back.
  for (auto& [client, session] : sessions_) {
    auto up = upstreams_.find(session.worker);
    if (up == upstreams_.end() || up->second->failed()) continue;
    ProxyEntry entry;
    entry.kind = ProxyEntry::Kind::kClose;
    entry.payload = "close " + client;
    entry.client = client;
    entry.swallow = true;
    if (up->second->Forward(std::move(entry))) ++inflight_;
  }
  ended_ = true;
  drain_cv_.wait_for(
      lock, std::chrono::milliseconds(server_->options_.quit_drain_ms),
      [this] { return inflight_ == 0; });
  sessions_.clear();
  lock.unlock();
  Emit("ok quit");
  finished_ = true;
}

// ---------------------------------------------------------------------------
// CoordServer
// ---------------------------------------------------------------------------

CoordServer::CoordServer(ShardMap shard_map, CoordOptions options)
    : shard_map_(std::move(shard_map)), options_(options) {
  supervisor_ = std::make_unique<WorkerSupervisor>(shard_map_.workers(),
                                                   options_.health);
}

CoordServer::~CoordServer() { Stop(); }

Status CoordServer::Start(const ListenAddress& listen) {
  if (started_) return Status::Invalid("coordinator already started");
  RH_ASSIGN_OR_RETURN(listen_fd_,
                      OpenListenSocket(listen, &bound_, &unlink_path_));
  stopping_.store(false);
  started_ = true;
  supervisor_->Start();
  gate_.Enter();
  std::thread([this] {
    AcceptLoop();
    gate_.Exit();
  }).detach();
  return Status();
}

void CoordServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  // SHUT_RDWR wakes the accept loop; the close waits until every thread
  // is provably out of the fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::vector<std::shared_ptr<Downstream>> snapshot;
  {
    std::lock_guard<std::mutex> lock(downstreams_mu_);
    for (auto& [key, downstream] : downstreams_) {
      snapshot.push_back(downstream);
    }
  }
  for (auto& downstream : snapshot) downstream->Abort();
  if (!gate_.WaitIdle(15000)) {
    std::fprintf(stderr,
                 "rankhow_coord: threads did not quiesce within 15s\n");
  }
  supervisor_->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(downstreams_mu_);
    downstreams_.clear();
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
  started_ = false;
}

void CoordServer::AcceptLoop() {
  const int listen_fd = listen_fd_;
  for (;;) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      break;  // stopping, or the listener is gone
    }
    if (stopping_.load()) {
      ::close(client_fd);
      break;
    }
    c_connections_.fetch_add(1);
    auto downstream = std::make_shared<Downstream>(this, client_fd);
    {
      std::lock_guard<std::mutex> lock(downstreams_mu_);
      downstreams_[downstream.get()] = downstream;
    }
    gate_.Enter();
    std::thread([this, downstream] {
      downstream->Run();
      RemoveDownstream(downstream.get());
      gate_.Exit();
    }).detach();
  }
}

void CoordServer::RemoveDownstream(Downstream* key) {
  std::lock_guard<std::mutex> lock(downstreams_mu_);
  downstreams_.erase(key);
}

CoordCounters CoordServer::counters() const {
  CoordCounters counters;
  counters.connections = c_connections_.load();
  counters.sessions_opened = c_sessions_opened_.load();
  counters.commands_proxied = c_commands_proxied_.load();
  counters.local_errors = c_local_errors_.load();
  counters.failovers = c_failovers_.load();
  counters.failover_sessions = c_failover_sessions_.load();
  counters.failover_failures = c_failover_failures_.load();
  counters.replayed_edits = c_replayed_edits_.load();
  counters.replay_errors = c_replay_errors_.load();
  return counters;
}

}  // namespace rankhow
