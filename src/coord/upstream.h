#ifndef RANKHOW_COORD_UPSTREAM_H_
#define RANKHOW_COORD_UPSTREAM_H_

/// \file upstream.h
/// The coordinator's half of a proxied worker connection: forward wire
/// lines verbatim, track every in-flight request, and hand the unacked
/// tail to the failover machinery when the worker dies.
///
/// Response matching leans on two worker invariants (src/server/wire.cc):
///
///   * command responses carry `line=N` where N is the WORKER-side line
///     number of the request — and the coordinator sends exactly one line
///     per ProxyEntry, so its per-connection send counter IS the worker's
///     line counter; `line=N` keys `pending_` directly;
///   * non-command acks (open/close/deadline) are emitted in request
///     order: deadline acks are synchronous in on_message, open/close
///     acks run deferred with the connection's INPUT PAUSED until the
///     deferred work finishes (ReactorConn::Defer), so no later request
///     is even read before the earlier verb's ack is queued. A FIFO of
///     outstanding verb entries therefore matches by shape in order.
///
/// The one ambiguous shape is a bare `err CLIENT msg` (no line=): either
/// a verb failure or a synchronous submit rejection (overload shedding).
/// The verb FIFO gets first claim; otherwise the oldest pending command
/// for that client is charged. Either way the payload is forwarded to
/// the downstream verbatim, so a misattribution under shedding costs
/// bookkeeping accuracy, never protocol bytes.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coord/shard_map.h"
#include "net/dial.h"
#include "util/status.h"

namespace rankhow {

/// Tracks detached helper threads so CoordServer::Stop can wait for
/// quiescence instead of racing reader teardown at shutdown.
class ThreadGate {
 public:
  void Enter();
  void Exit();
  /// True when all entered threads exited within timeout_ms.
  bool WaitIdle(int timeout_ms);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
};

/// One proxied request: the exact line sent upstream plus the routing
/// metadata needed to deliver (or replay) its response.
struct ProxyEntry {
  enum class Kind { kOpen, kClose, kCommand, kDeadline };

  Kind kind = Kind::kCommand;
  std::string payload;          ///< exact wire line sent to the worker
  std::string client;           ///< owning client ("" for deadline)
  bool is_edit = false;         ///< state-mutating command (not solve)
  bool swallow = false;         ///< coordinator consumes the response
  int64_t downstream_line = 0;  ///< downstream request line (rewritten in)
};

/// A session-traffic connection to one worker. Forward() records the
/// entry and writes its payload; a detached reader thread matches each
/// worker response back to its entry and runs on_response (line numbers
/// already rewritten to downstream numbering). When the connection dies
/// with requests still unacked, on_broken receives them in send order —
/// the coordinator replays them onto a replacement worker.
class UpstreamConn : public std::enable_shared_from_this<UpstreamConn> {
 public:
  struct Callbacks {
    /// One matched response. Runs on the reader thread with no
    /// UpstreamConn lock held (it may take downstream locks).
    std::function<void(const ProxyEntry&, const std::string& response)>
        on_response;
    /// Connection death with the unacked entries in send order. Not
    /// fired after Shutdown(). Runs on the reader thread, no lock held.
    /// `conn` identifies the dead connection (the coordinator may have
    /// already replaced it in its per-worker table).
    std::function<void(UpstreamConn* conn, std::vector<ProxyEntry> unacked)>
        on_broken;
  };

  /// Connects and starts the reader. The reader keeps a shared_ptr to
  /// the connection, so dropping the returned pointer never races it.
  static Result<std::shared_ptr<UpstreamConn>> Dial(const WorkerSpec& worker,
                                                    int dial_timeout_ms,
                                                    Callbacks callbacks,
                                                    ThreadGate* gate);

  ~UpstreamConn() = default;
  UpstreamConn(const UpstreamConn&) = delete;
  UpstreamConn& operator=(const UpstreamConn&) = delete;

  /// Sends `entry.payload` as the connection's next line. False when the
  /// connection has already failed — the entry was NOT accepted and the
  /// caller must re-route it. True means the entry is owned here: it
  /// either gets a response or rides the on_broken replay (a send that
  /// breaks the connection mid-call still returns true for exactly this
  /// reason — no entry may be owned twice).
  bool Forward(ProxyEntry entry);

  int64_t Pending() const;
  bool failed() const;
  const std::string& spec() const { return worker_.spec; }
  const WorkerSpec& worker() const { return worker_; }

  /// Closes the connection without firing on_broken (downstream quit or
  /// abort: the worker's connection-scoped close semantics take over).
  void Shutdown();

 private:
  explicit UpstreamConn(WorkerSpec worker) : worker_(std::move(worker)) {}

  void ReaderLoop();
  /// Pops the entry a response belongs to. False = unmatchable (logged
  /// and dropped). Called under mu_.
  bool MatchLocked(const std::string& response, ProxyEntry* entry);
  /// Marks the connection failed and returns the unacked tail in send
  /// order. Empty on second call — on_broken fires at most once.
  std::vector<ProxyEntry> CollectBroken();

  const WorkerSpec worker_;
  Callbacks callbacks_;
  ThreadGate* gate_ = nullptr;

  mutable std::mutex mu_;
  LineClient client_;
  int64_t seq_ = 0;  ///< lines sent == worker-side line numbers
  std::map<int64_t, ProxyEntry> pending_;
  std::deque<int64_t> verb_order_;  ///< outstanding non-command seqs
  bool failed_ = false;
  bool shutdown_ = false;
};

}  // namespace rankhow

#endif  // RANKHOW_COORD_UPSTREAM_H_
