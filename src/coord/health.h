#ifndef RANKHOW_COORD_HEALTH_H_
#define RANKHOW_COORD_HEALTH_H_

/// \file health.h
/// Worker supervision for the shard coordinator: liveness state, the
/// periodic `stats`-ping health checker, and the pooled control
/// connections the scatter-gather verbs ride.
///
/// Each worker has two failure detectors:
///
///   * the periodic probe (every HealthOptions::interval_ms): a `stats`
///     round-trip on a pooled control connection with a hard timeout;
///     `failure_threshold` CONSECUTIVE failures mark the worker down
///     (transient hiccups under load must not trigger failover), one
///     success marks it up again and resets the count;
///   * the fast path (ReportFailure): when a session upstream breaks or a
///     dial is refused, the supervisor probes immediately — a SIGKILLed
///     worker refuses connections within one RTT, so routing and failover
///     see the death in milliseconds instead of waiting out the
///     threshold.
///
/// Down/up transitions are logged to stderr (operators grep for
/// "rankhow_coord: worker"). Aliveness is advisory routing state: a
/// worker marked down serves no NEW opens and triggers failover of its
/// live sessions, but an up-marking never moves sessions back — they
/// stay where failover put them (see docs/OPERATIONS.md).

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coord/shard_map.h"
#include "net/dial.h"
#include "util/status.h"

namespace rankhow {

struct HealthOptions {
  int interval_ms = 1000;      ///< probe period per worker
  int timeout_ms = 2000;       ///< per-probe response timeout
  int dial_timeout_ms = 2000;  ///< control/upstream connect timeout
  int failure_threshold = 3;   ///< consecutive failures -> down
};

class WorkerSupervisor {
 public:
  WorkerSupervisor(std::vector<WorkerSpec> workers, HealthOptions options);
  ~WorkerSupervisor();

  /// Spawns the probe thread. Workers start optimistically up; the first
  /// probe round corrects that within interval_ms.
  void Start();
  void Stop();

  int num_workers() const { return static_cast<int>(states_.size()); }
  const WorkerSpec& worker(int index) const;
  const HealthOptions& options() const { return options_; }

  bool IsAlive(int index) const;
  int num_up() const;

  /// The fast failure path: probe `index` NOW. Unreachable marks it down
  /// immediately; reachable resets the failure count (the caller's error
  /// was connection-local, not a worker death).
  void ReportFailure(int index);

  /// Marks `index` down without probing — for callers who just proved
  /// unreachability themselves (a failed dial) and cannot afford the
  /// probe's network round-trip (e.g. under the failover lock).
  void ReportUnreachable(int index, const std::string& why);

  /// One request/response round-trip on a pooled control connection, with
  /// the health timeout. The connection returns to the pool on success
  /// and is discarded on any error. Used by probes and by the
  /// stats/metrics scatter-gather.
  Result<std::string> ControlRoundTrip(int index,
                                       const std::string& request);

  struct Counters {
    long long probes = 0;
    long long probe_failures = 0;
    long long down_transitions = 0;
    long long up_transitions = 0;
  };
  Counters counters() const;

 private:
  struct WorkerState {
    WorkerSpec spec;
    std::atomic<bool> up{true};
    std::mutex mu;  // failures + pool
    int consecutive_failures = 0;
    std::vector<std::unique_ptr<LineClient>> control_pool;
  };

  void ProbeLoop();
  void Probe(int index);
  void MarkResult(int index, bool success, const std::string& why);
  std::unique_ptr<LineClient> AcquireControl(int index, Status* error);
  void ReleaseControl(int index, std::unique_ptr<LineClient> client);

  HealthOptions options_;
  std::vector<std::unique_ptr<WorkerState>> states_;

  mutable std::mutex counters_mu_;
  Counters counters_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread probe_thread_;
};

}  // namespace rankhow

#endif  // RANKHOW_COORD_HEALTH_H_
