#include "coord/upstream.h"

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "server/wire.h"

namespace rankhow {

void ThreadGate::Enter() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_;
}

void ThreadGate::Exit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  cv_.notify_all();
}

bool ThreadGate::WaitIdle(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [this] { return active_ == 0; });
}

Result<std::shared_ptr<UpstreamConn>> UpstreamConn::Dial(
    const WorkerSpec& worker, int dial_timeout_ms, Callbacks callbacks,
    ThreadGate* gate) {
  // No receive timeout: a proxied solve may legitimately be silent for
  // minutes. Death is detected by EOF/RST on the reader, plus the
  // supervisor's out-of-band probes.
  DialOptions options;
  options.timeout_ms = dial_timeout_ms;
  options.recv_timeout_s = 0;
  std::shared_ptr<UpstreamConn> conn(new UpstreamConn(worker));
  RH_RETURN_NOT_OK(conn->client_.Connect(worker.address, options));
  conn->callbacks_ = std::move(callbacks);
  conn->gate_ = gate;
  if (gate != nullptr) gate->Enter();
  std::thread([conn] { conn->ReaderLoop(); }).detach();
  return conn;
}

bool UpstreamConn::Forward(ProxyEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return false;
  const int64_t seq = ++seq_;
  if (entry.kind != ProxyEntry::Kind::kCommand) verb_order_.push_back(seq);
  // Record before sending: if the send itself breaks the connection the
  // entry must already be in the unacked tail that on_broken replays.
  pending_.emplace(seq, std::move(entry));
  if (!client_.SendLine(pending_[seq].payload)) {
    failed_ = true;  // reader sees the same death and fires on_broken
  }
  return true;
}

int64_t UpstreamConn::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

bool UpstreamConn::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void UpstreamConn::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  failed_ = true;
  // SHUT_RDWR (not close) wakes the reader blocked in recv without
  // freeing the descriptor under it; the reader owns the actual close.
  if (client_.connected()) ::shutdown(client_.fd(), SHUT_RDWR);
}

std::vector<ProxyEntry> UpstreamConn::CollectBroken() {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ = true;
  std::vector<ProxyEntry> unacked;
  unacked.reserve(pending_.size());
  for (auto& [seq, entry] : pending_) unacked.push_back(std::move(entry));
  pending_.clear();
  verb_order_.clear();
  return unacked;
}

bool UpstreamConn::MatchLocked(const std::string& response,
                               ProxyEntry* entry) {
  Result<WireResponseTag> tag = ParseWireResponseTag(response);
  if (!tag.ok()) return false;
  if (tag->has_line) {
    auto it = pending_.find(tag->line);
    if (it == pending_.end()) return false;
    *entry = std::move(it->second);
    pending_.erase(it);
    return true;
  }
  // Verb acks arrive in send order (see file comment): take the oldest
  // outstanding verb whose shape this response can answer.
  for (auto it = verb_order_.begin(); it != verb_order_.end();) {
    auto pending = pending_.find(*it);
    if (pending == pending_.end()) {  // stale: already matched by line=
      it = verb_order_.erase(it);
      continue;
    }
    const ProxyEntry& candidate = pending->second;
    bool matches = false;
    if (tag->ok) {
      matches = (tag->client == "open" &&
                 candidate.kind == ProxyEntry::Kind::kOpen) ||
                (tag->client == "close" &&
                 candidate.kind == ProxyEntry::Kind::kClose) ||
                (tag->client == "deadline" &&
                 candidate.kind == ProxyEntry::Kind::kDeadline);
    } else {
      matches = candidate.kind != ProxyEntry::Kind::kCommand &&
                tag->client == candidate.client;
    }
    if (matches) {
      *entry = std::move(pending->second);
      pending_.erase(pending);
      verb_order_.erase(it);
      return true;
    }
    ++it;
  }
  // No verb wants it: a line-less `err CLIENT msg` is a synchronous
  // submit rejection — charge the oldest pending command of that client.
  if (!tag->ok) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second.kind == ProxyEntry::Kind::kCommand &&
          it->second.client == tag->client) {
        *entry = std::move(it->second);
        pending_.erase(it);
        return true;
      }
    }
  }
  return false;
}

void UpstreamConn::ReaderLoop() {
  std::shared_ptr<UpstreamConn> self = shared_from_this();
  for (;;) {
    std::optional<std::string> response = client_.ReadLine();
    if (!response.has_value()) break;
    ProxyEntry entry;
    bool matched;
    {
      std::lock_guard<std::mutex> lock(mu_);
      matched = MatchLocked(*response, &entry);
    }
    if (matched) {
      if (callbacks_.on_response) callbacks_.on_response(entry, *response);
    } else {
      std::fprintf(stderr,
                   "rankhow_coord: dropping unmatched response from %s: "
                   "%s\n",
                   worker_.spec.c_str(), response->c_str());
    }
  }
  bool notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    notify = !shutdown_;
    client_.Close();
  }
  if (notify) {
    std::vector<ProxyEntry> unacked = CollectBroken();
    if (callbacks_.on_broken) {
      callbacks_.on_broken(this, std::move(unacked));
    }
  }
  if (gate_ != nullptr) gate_->Exit();
}

}  // namespace rankhow
