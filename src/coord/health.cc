#include "coord/health.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/string_util.h"

namespace rankhow {
namespace {

constexpr size_t kControlPoolCap = 2;

/// Control sockets use SO_RCVTIMEO at second granularity; round the
/// millisecond health timeout up so a 500ms config still gets a bound.
int TimeoutSeconds(int timeout_ms) {
  const int seconds = (timeout_ms + 999) / 1000;
  return seconds < 1 ? 1 : seconds;
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(std::vector<WorkerSpec> workers,
                                   HealthOptions options)
    : options_(options) {
  states_.reserve(workers.size());
  for (WorkerSpec& spec : workers) {
    auto state = std::make_unique<WorkerState>();
    state->spec = std::move(spec);
    states_.push_back(std::move(state));
  }
}

WorkerSupervisor::~WorkerSupervisor() { Stop(); }

void WorkerSupervisor::Start() {
  if (probe_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  probe_thread_ = std::thread([this] { ProbeLoop(); });
}

void WorkerSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopping_ && !probe_thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->control_pool.clear();
  }
}

const WorkerSpec& WorkerSupervisor::worker(int index) const {
  return states_[static_cast<size_t>(index)]->spec;
}

bool WorkerSupervisor::IsAlive(int index) const {
  if (index < 0 || index >= num_workers()) return false;
  return states_[static_cast<size_t>(index)]->up.load(
      std::memory_order_acquire);
}

int WorkerSupervisor::num_up() const {
  int up = 0;
  for (const auto& state : states_) {
    if (state->up.load(std::memory_order_acquire)) ++up;
  }
  return up;
}

WorkerSupervisor::Counters WorkerSupervisor::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void WorkerSupervisor::ProbeLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    lock.unlock();
    for (int i = 0; i < num_workers(); ++i) {
      {
        std::lock_guard<std::mutex> check(stop_mu_);
        if (stopping_) return;
      }
      Probe(i);
    }
    lock.lock();
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stopping_; });
  }
}

void WorkerSupervisor::Probe(int index) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.probes;
  }
  Result<std::string> response = ControlRoundTrip(index, "stats");
  if (response.ok() && StartsWith((*response), "ok stats ")) {
    MarkResult(index, true, "");
    return;
  }
  MarkResult(index, false,
             response.ok() ? "unexpected response: " + (*response)
                           : response.status().ToString());
}

void WorkerSupervisor::MarkResult(int index, bool success,
                                  const std::string& why) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  bool transitioned_up = false;
  bool transitioned_down = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (success) {
      state.consecutive_failures = 0;
      if (!state.up.load(std::memory_order_relaxed)) {
        state.up.store(true, std::memory_order_release);
        transitioned_up = true;
      }
    } else {
      ++state.consecutive_failures;
      if (state.consecutive_failures >= options_.failure_threshold &&
          state.up.load(std::memory_order_relaxed)) {
        state.up.store(false, std::memory_order_release);
        transitioned_down = true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  if (!success) ++counters_.probe_failures;
  if (transitioned_down) {
    ++counters_.down_transitions;
    std::fprintf(stderr, "rankhow_coord: worker %s down (%s)\n",
                 state.spec.spec.c_str(), why.c_str());
  }
  if (transitioned_up) {
    ++counters_.up_transitions;
    std::fprintf(stderr, "rankhow_coord: worker %s up\n",
                 state.spec.spec.c_str());
  }
}

void WorkerSupervisor::ReportFailure(int index) {
  if (index < 0 || index >= num_workers()) return;
  // Probe with fresh state: a broken session connection often means the
  // worker is gone, and waiting out `failure_threshold` periodic rounds
  // would stall failover. An immediate failed round-trip jumps straight
  // to down; a successful one proves the failure was connection-local.
  Result<std::string> response = ControlRoundTrip(index, "stats");
  const bool alive =
      response.ok() && StartsWith((*response), "ok stats ");
  if (alive) {
    MarkResult(index, true, "");
    return;
  }
  WorkerState& state = *states_[static_cast<size_t>(index)];
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.consecutive_failures = options_.failure_threshold;
  }
  MarkResult(index, false,
             response.ok() ? "unexpected response: " + (*response)
                           : response.status().ToString());
}

void WorkerSupervisor::ReportUnreachable(int index, const std::string& why) {
  if (index < 0 || index >= num_workers()) return;
  WorkerState& state = *states_[static_cast<size_t>(index)];
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.consecutive_failures = options_.failure_threshold;
  }
  MarkResult(index, false, why);
}

std::unique_ptr<LineClient> WorkerSupervisor::AcquireControl(
    int index, Status* error) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.control_pool.empty()) {
      std::unique_ptr<LineClient> client =
          std::move(state.control_pool.back());
      state.control_pool.pop_back();
      return client;
    }
  }
  DialOptions dial;
  dial.timeout_ms = options_.dial_timeout_ms;
  dial.recv_timeout_s = TimeoutSeconds(options_.timeout_ms);
  auto client = std::make_unique<LineClient>();
  Status status = client->Connect(state.spec.address, dial);
  if (!status.ok()) {
    if (error != nullptr) *error = status;
    return nullptr;
  }
  return client;
}

void WorkerSupervisor::ReleaseControl(int index,
                                      std::unique_ptr<LineClient> client) {
  if (client == nullptr || !client->connected()) return;
  WorkerState& state = *states_[static_cast<size_t>(index)];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.control_pool.size() < kControlPoolCap) {
    state.control_pool.push_back(std::move(client));
  }
}

Result<std::string> WorkerSupervisor::ControlRoundTrip(
    int index, const std::string& request) {
  if (index < 0 || index >= num_workers()) {
    return Status::Invalid("worker index out of range: " +
                           std::to_string(index));
  }
  Status dial_error = Status::OK();
  std::unique_ptr<LineClient> client = AcquireControl(index, &dial_error);
  if (client == nullptr) {
    return Status::IoError("dial " + worker(index).spec + ": " +
                               dial_error.message());
  }
  // A pooled connection can have gone stale since its last use; retry
  // once on a fresh dial before declaring the worker unreachable.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (client == nullptr) {
      client = AcquireControl(index, &dial_error);
      if (client == nullptr) {
        return Status::IoError("dial " + worker(index).spec + ": " +
                                   dial_error.message());
      }
    }
    if (client->SendLine(request)) {
      std::optional<std::string> response = client->ReadLine();
      if (response.has_value()) {
        ReleaseControl(index, std::move(client));
        return *response;
      }
    }
    client.reset();  // broken: discard, maybe retry fresh
  }
  return Status::IoError("worker " + worker(index).spec +
                             " closed the control connection");
}

}  // namespace rankhow
