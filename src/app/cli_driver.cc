#include "app/cli_driver.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace rankhow {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool IsUnrankedCell(std::string_view raw) {
  std::string v = ToLower(Trim(raw));
  return v.empty() || v == "-" || v == "0" || v == "na" || v == "null" ||
         v == "unranked" || v == "bot" || v == "\xe2\x8a\xa5" /* ⊥ */;
}

int FindColumn(const CsvTable& csv, const std::string& name) {
  for (size_t c = 0; c < csv.header.size(); ++c) {
    if (csv.header[c] == name) return static_cast<int>(c);
  }
  return -1;
}

}  // namespace

Result<CliProblem> AssembleCliProblem(const CsvTable& csv,
                                      const CliDataSpec& spec) {
  if (csv.rows.empty()) {
    return Status::Invalid("CSV has no data rows");
  }
  const int n = static_cast<int>(csv.rows.size());

  int id_col = -1;
  if (!spec.id_column.empty()) {
    id_col = FindColumn(csv, spec.id_column);
    if (id_col < 0) {
      return Status::Invalid("id column not in CSV: " + spec.id_column);
    }
  }
  int rank_col = -1;
  if (!spec.rank_column.empty()) {
    rank_col = FindColumn(csv, spec.rank_column);
    if (rank_col < 0) {
      return Status::Invalid("rank column not in CSV: " + spec.rank_column);
    }
  }

  // Resolve the ranking attributes.
  std::vector<int> attr_cols;
  std::vector<std::string> attr_names;
  if (!spec.attributes.empty()) {
    for (const std::string& name : spec.attributes) {
      int c = FindColumn(csv, name);
      if (c < 0) return Status::Invalid("attribute not in CSV: " + name);
      if (c == id_col || c == rank_col) {
        return Status::Invalid("attribute overlaps id/rank column: " + name);
      }
      attr_cols.push_back(c);
      attr_names.push_back(name);
    }
  } else {
    for (size_t c = 0; c < csv.header.size(); ++c) {
      if (static_cast<int>(c) == id_col || static_cast<int>(c) == rank_col) {
        continue;
      }
      attr_cols.push_back(static_cast<int>(c));
      attr_names.push_back(csv.header[c]);
    }
  }
  if (attr_cols.empty()) {
    return Status::Invalid("no ranking attributes selected");
  }

  CliProblem out;
  out.data = Dataset(attr_names, n);
  for (int t = 0; t < n; ++t) {
    for (size_t a = 0; a < attr_cols.size(); ++a) {
      const std::string& cell = csv.rows[t][attr_cols[a]];
      auto v = ParseDouble(cell);
      if (!v.ok()) {
        return Status::Invalid(StrFormat(
            "row %d, column '%s': non-numeric cell '%s'", t + 1,
            attr_names[a].c_str(), cell.c_str()));
      }
      out.data.set_value(t, static_cast<int>(a), *v);
    }
  }

  out.labels.reserve(n);
  for (int t = 0; t < n; ++t) {
    out.labels.push_back(id_col >= 0 ? csv.rows[t][id_col]
                                     : "row" + std::to_string(t + 1));
  }

  for (const std::string& name : spec.negate) {
    RH_ASSIGN_OR_RETURN(int attr, out.data.AttributeIndex(name));
    out.data.NegateColumn(attr);
  }

  // The given ranking: explicit column, or row order + k.
  std::vector<int> positions(n, kUnranked);
  if (rank_col >= 0) {
    for (int t = 0; t < n; ++t) {
      const std::string& cell = csv.rows[t][rank_col];
      if (IsUnrankedCell(cell)) continue;
      auto p = ParseInt(Trim(cell));
      if (!p.ok() || *p < 1) {
        return Status::Invalid(StrFormat(
            "row %d: bad rank value '%s' (positive integer or blank/-/na)",
            t + 1, cell.c_str()));
      }
      positions[t] = static_cast<int>(*p);
    }
  } else {
    if (spec.k < 1 || spec.k > n) {
      return Status::Invalid(StrFormat(
          "k=%d out of range for %d rows (no rank column given)", spec.k,
          n));
    }
    for (int t = 0; t < spec.k; ++t) positions[t] = t + 1;
  }

  if (spec.drop_duplicates) {
    std::vector<int> kept = out.data.DropDuplicateTuples();
    if (static_cast<int>(kept.size()) < n) {
      std::vector<int> kept_positions;
      std::vector<std::string> kept_labels;
      kept_positions.reserve(kept.size());
      kept_labels.reserve(kept.size());
      for (int t : kept) {
        kept_positions.push_back(positions[t]);
        kept_labels.push_back(std::move(out.labels[t]));
      }
      positions = std::move(kept_positions);
      out.labels = std::move(kept_labels);
    }
  }

  if (spec.normalize) out.data.NormalizeMinMax();

  RH_ASSIGN_OR_RETURN(
      out.given,
      Ranking::Create(std::move(positions), spec.offset_ranking
                                                ? RankingValidation::kOffset
                                                : RankingValidation::kStrict));
  return out;
}

Status ApplyWeightBounds(const Dataset& data, const std::string& spec,
                         bool is_min, WeightConstraintSet* constraints) {
  if (Trim(spec).empty()) return Status();
  for (const std::string& entry : Split(spec, ',')) {
    std::vector<std::string> parts = Split(entry, ':');
    if (parts.size() != 2) {
      return Status::Invalid("weight bound must be ATTR:VALUE, got: " +
                             entry);
    }
    std::string name(Trim(parts[0]));
    RH_ASSIGN_OR_RETURN(int attr, data.AttributeIndex(name));
    RH_ASSIGN_OR_RETURN(double bound, ParseDouble(Trim(parts[1])));
    // !( >= && <= ) rather than ( < || > ): NaN must fail the range check.
    if (!(bound >= 0 && bound <= 1)) {
      return Status::Invalid(StrFormat(
          "weight bound for %s must lie in [0,1], got %g", name.c_str(),
          bound));
    }
    if (is_min) {
      constraints->AddMinWeight(attr, bound, "min_" + name);
    } else {
      constraints->AddMaxWeight(attr, bound, "max_" + name);
    }
  }
  return Status();
}

Status ApplyOrderConstraints(const std::vector<std::string>& labels,
                             const std::string& spec,
                             std::vector<PairwiseOrderConstraint>* out) {
  if (Trim(spec).empty()) return Status();
  auto find_label = [&labels](std::string_view name) -> int {
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (const std::string& entry : Split(spec, ',')) {
    std::vector<std::string> parts = Split(entry, '>');
    if (parts.size() != 2) {
      return Status::Invalid("order constraint must be LABEL_A>LABEL_B: " +
                             entry);
    }
    std::string above(Trim(parts[0]));
    std::string below(Trim(parts[1]));
    int a = find_label(above);
    int b = find_label(below);
    if (a < 0) return Status::Invalid("unknown label: " + above);
    if (b < 0) return Status::Invalid("unknown label: " + below);
    if (a == b) {
      return Status::Invalid("order constraint needs two distinct tuples: " +
                             entry);
    }
    out->push_back({a, b});
  }
  return Status();
}

Result<SolveStrategy> ParseStrategy(const std::string& name) {
  std::string v = ToLower(Trim(name));
  if (v == "auto") return SolveStrategy::kAuto;
  if (v == "milp" || v == "indicator-milp") {
    return SolveStrategy::kIndicatorMilp;
  }
  if (v == "spatial") return SolveStrategy::kSpatial;
  if (v == "sat" || v == "sat-binary-search") {
    return SolveStrategy::kSatBinarySearch;
  }
  return Status::Invalid("unknown strategy '" + name +
                         "' (auto|milp|spatial|sat)");
}

Result<int> ParseThreadCount(const std::string& value) {
  std::string v = ToLower(Trim(value));
  if (v == "all" || v == "auto") return 0;
  bool numeric = !v.empty() && v.size() <= 5;  // bounds std::stoi too
  for (char c : v) numeric = numeric && c >= '0' && c <= '9';
  if (!numeric) {
    return Status::Invalid("bad --threads value '" + value +
                           "' (a non-negative integer, or 'all')");
  }
  return std::stoi(v);
}

Result<RankingObjectiveSpec> ParseObjectiveSpec(const std::string& name,
                                                int k) {
  std::string v = ToLower(Trim(name));
  if (v == "position") return RankingObjectiveSpec{};
  if (v == "topheavy") return RankingObjectiveSpec::TopHeavy(k);
  if (v == "inversions") return RankingObjectiveSpec::Inversions();
  return Status::Invalid("unknown objective '" + name +
                         "' (position|topheavy|inversions)");
}

Result<int> ParsePositiveCount(const std::string& flag,
                               const std::string& value) {
  auto parsed = ParseInt(Trim(value));
  if (!parsed.ok() || *parsed < 1 ||
      *parsed > std::numeric_limits<int>::max()) {
    return Status::Invalid("bad --" + flag + " value '" + value +
                           "' (a positive integer)");
  }
  return static_cast<int>(*parsed);
}

Result<double> ParseTimeLimit(const std::string& value) {
  auto parsed = ParseDouble(Trim(value));
  if (!parsed.ok() || !std::isfinite(*parsed) || *parsed < 0) {
    return Status::Invalid("bad --time-limit value '" + value +
                           "' (seconds >= 0; 0 = unlimited)");
  }
  return *parsed;
}

Result<std::vector<SessionCommand>> ParseSessionScript(
    const std::string& text) {
  std::vector<SessionCommand> script;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line = std::string(Trim(line.substr(0, hash)));
    }
    if (line.empty()) continue;

    // Tokenize on whitespace (the order argument carries no spaces).
    for (char& ch : line) {
      if (ch == '\t') ch = ' ';
    }
    std::vector<std::string> tokens;
    for (const std::string& t : Split(line, ' ')) {
      if (!Trim(t).empty()) tokens.emplace_back(Trim(t));
    }
    SessionCommand cmd;
    cmd.line = line_no;
    const std::string op = ToLower(tokens[0]);
    auto need_args = [&](size_t n) -> Status {
      if (tokens.size() != n + 1) {
        return Status::Invalid(StrFormat(
            "session script line %d: '%s' takes %d argument(s)", line_no,
            op.c_str(), static_cast<int>(n)));
      }
      return Status();
    };
    if (op == "solve") {
      RH_RETURN_NOT_OK(need_args(0));
      cmd.kind = SessionCommand::Kind::kSolve;
    } else if (op == "min-weight" || op == "max-weight") {
      RH_RETURN_NOT_OK(need_args(2));
      cmd.kind = op == "min-weight" ? SessionCommand::Kind::kMinWeight
                                    : SessionCommand::Kind::kMaxWeight;
      cmd.arg = tokens[1];
      auto v = ParseDouble(tokens[2]);
      // !( >= && <= ) rather than ( < || > ): NaN must fail the range check.
      if (!v.ok() || !(*v >= 0 && *v <= 1)) {
        return Status::Invalid(StrFormat(
            "session script line %d: weight bound must lie in [0,1], got "
            "'%s'",
            line_no, tokens[2].c_str()));
      }
      cmd.value = *v;
    } else if (op == "drop") {
      RH_RETURN_NOT_OK(need_args(1));
      cmd.kind = SessionCommand::Kind::kDrop;
      cmd.arg = tokens[1];
    } else if (op == "order") {
      RH_RETURN_NOT_OK(need_args(1));
      cmd.kind = SessionCommand::Kind::kOrder;
      cmd.arg = tokens[1];
      if (Split(cmd.arg, '>').size() != 2) {
        return Status::Invalid(StrFormat(
            "session script line %d: order needs LABEL_A>LABEL_B", line_no));
      }
    } else if (op == "eps" || op == "eps1" || op == "eps2") {
      RH_RETURN_NOT_OK(need_args(1));
      cmd.kind = op == "eps" ? SessionCommand::Kind::kEps
                 : op == "eps1" ? SessionCommand::Kind::kEps1
                                : SessionCommand::Kind::kEps2;
      auto v = ParseDouble(tokens[1]);
      if (!v.ok()) {
        return Status::Invalid(StrFormat(
            "session script line %d: bad %s value '%s'", line_no, op.c_str(),
            tokens[1].c_str()));
      }
      cmd.value = *v;
    } else if (op == "objective") {
      RH_RETURN_NOT_OK(need_args(1));
      cmd.kind = SessionCommand::Kind::kObjective;
      cmd.arg = tokens[1];
    } else if (op == "append") {
      if (tokens.size() < 2) {
        return Status::Invalid(StrFormat(
            "session script line %d: 'append' needs one value per ranking "
            "attribute",
            line_no));
      }
      cmd.kind = SessionCommand::Kind::kAppend;
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (!ParseDouble(tokens[i]).ok()) {
          return Status::Invalid(StrFormat(
              "session script line %d: bad append value '%s'", line_no,
              tokens[i].c_str()));
        }
        if (i > 1) cmd.arg += ' ';
        cmd.arg += tokens[i];
      }
    } else {
      return Status::Invalid(StrFormat(
          "session script line %d: unknown command '%s'", line_no,
          op.c_str()));
    }
    script.push_back(std::move(cmd));
  }
  return script;
}

std::string FormatSessionCommand(const SessionCommand& cmd) {
  // %.17g renders doubles losslessly, so Parse(Format(cmd)) reproduces the
  // command bit-for-bit — the journal round-trip tests assert this.
  switch (cmd.kind) {
    case SessionCommand::Kind::kSolve:
      return "solve";
    case SessionCommand::Kind::kMinWeight:
      return StrFormat("min-weight %s %.17g", cmd.arg.c_str(), cmd.value);
    case SessionCommand::Kind::kMaxWeight:
      return StrFormat("max-weight %s %.17g", cmd.arg.c_str(), cmd.value);
    case SessionCommand::Kind::kDrop:
      return "drop " + cmd.arg;
    case SessionCommand::Kind::kOrder:
      return "order " + cmd.arg;
    case SessionCommand::Kind::kEps:
      return StrFormat("eps %.17g", cmd.value);
    case SessionCommand::Kind::kEps1:
      return StrFormat("eps1 %.17g", cmd.value);
    case SessionCommand::Kind::kEps2:
      return StrFormat("eps2 %.17g", cmd.value);
    case SessionCommand::Kind::kObjective:
      return "objective " + cmd.arg;
    case SessionCommand::Kind::kAppend:
      return "append " + cmd.arg;
  }
  return "solve";  // unreachable
}

Status ApplySessionCommand(SolveSession* session, const SessionCommand& cmd,
                           const std::vector<std::string>& labels) {
  auto fail = [&cmd](const Status& status) {
    return Status(status.code(),
                  StrFormat("session script line %d: %s", cmd.line,
                            status.message().c_str()));
  };
  Status edit;
  switch (cmd.kind) {
    case SessionCommand::Kind::kSolve:
      break;
    case SessionCommand::Kind::kMinWeight:
    case SessionCommand::Kind::kMaxWeight: {
      auto attr = session->data().AttributeIndex(cmd.arg);
      if (!attr.ok()) return fail(attr.status());
      const bool is_min = cmd.kind == SessionCommand::Kind::kMinWeight;
      WeightConstraint c;
      c.terms = {{*attr, 1.0}};
      c.op = is_min ? RelOp::kGe : RelOp::kLe;
      c.rhs = cmd.value;
      c.name = (is_min ? "min_" : "max_") + cmd.arg;
      // Script/wire traffic must drop before re-adding a name: silently
      // stacking constraints under one name would make the later `drop`
      // remove *both*, which no interactive client ever means.
      if (session->problem().constraints.ContainsName(c.name)) {
        edit = Status::AlreadyExists("constraint " + c.name +
                                     " already exists (drop it first)");
      } else {
        edit = session->AddWeightConstraint(std::move(c));
      }
      break;
    }
    case SessionCommand::Kind::kDrop:
      edit = session->RemoveWeightConstraint(cmd.arg);
      break;
    case SessionCommand::Kind::kOrder: {
      std::vector<PairwiseOrderConstraint> parsed;
      edit = ApplyOrderConstraints(labels, cmd.arg, &parsed);
      if (edit.ok()) {
        for (const PairwiseOrderConstraint& oc : parsed) {
          edit = session->AddOrderConstraint(oc.above, oc.below);
          if (!edit.ok()) break;
        }
      }
      break;
    }
    case SessionCommand::Kind::kEps:
    case SessionCommand::Kind::kEps1:
    case SessionCommand::Kind::kEps2: {
      EpsilonConfig eps = session->problem().eps;
      if (cmd.kind == SessionCommand::Kind::kEps) {
        eps.tie_eps = cmd.value;
      } else if (cmd.kind == SessionCommand::Kind::kEps1) {
        eps.eps1 = cmd.value;
      } else {
        eps.eps2 = cmd.value;
      }
      edit = session->SetEpsilon(eps);
      break;
    }
    case SessionCommand::Kind::kObjective: {
      auto spec = ParseObjectiveSpec(cmd.arg, session->given().k());
      if (!spec.ok()) return fail(spec.status());
      edit = session->SetObjective(*spec);
      break;
    }
    case SessionCommand::Kind::kAppend: {
      std::vector<double> values;
      for (const std::string& tok : Split(cmd.arg, ' ')) {
        auto v = ParseDouble(tok);
        if (!v.ok()) return fail(v.status());
        values.push_back(*v);
      }
      edit = session->AppendTuple(values);
      break;
    }
  }
  return edit.ok() ? edit : fail(edit);
}

namespace {

/// Restores the session's configured time limit when a per-request
/// deadline temporarily narrowed it (exception/early-return safe).
class ScopedTimeLimit {
 public:
  ScopedTimeLimit(SolveSession* session, int64_t deadline_ms)
      : session_(session),
        configured_(session->time_limit_seconds()),
        active_(deadline_ms > 0) {
    if (!active_) return;
    double effective = static_cast<double>(deadline_ms) / 1000.0;
    // 0 = unlimited, so only a configured limit can tighten the deadline.
    if (configured_ > 0) effective = std::min(configured_, effective);
    session_->set_time_limit_seconds(effective);
  }
  ~ScopedTimeLimit() {
    if (active_) session_->set_time_limit_seconds(configured_);
  }

 private:
  SolveSession* session_;
  double configured_;
  bool active_;
};

}  // namespace

Result<SessionStepOutcome> ExecuteSessionCommand(
    SolveSession* session, const SessionCommand& cmd,
    const std::vector<std::string>& labels, bool* edit_applied) {
  if (edit_applied != nullptr) *edit_applied = false;
  RH_RETURN_NOT_OK(ApplySessionCommand(session, cmd, labels));
  // A bare solve edits nothing — recovery rebuilds constraint state, not
  // solve history, so the journal records only state-changing commands.
  if (edit_applied != nullptr) {
    *edit_applied = cmd.kind != SessionCommand::Kind::kSolve;
  }
  ScopedTimeLimit deadline(session, cmd.deadline_ms);
  auto result = session->Solve();
  if (!result.ok()) {
    // Edit failures above leave the session untouched; a *solve* failure
    // arrives after the edit stuck. Say so — a wire client must be able to
    // tell applied-but-unsolved from rejected (it reverses the former with
    // an explicit drop/eps/objective edit).
    return Status(result.status().code(),
                  StrFormat("session script line %d: solve failed after "
                            "edit applied: %s",
                            cmd.line, result.status().message().c_str()));
  }
  return SessionStepOutcome{cmd, *std::move(result)};
}

Result<std::vector<SessionStepOutcome>> RunSessionScript(
    SolveSession* session, const std::vector<SessionCommand>& script,
    const std::vector<std::string>& labels) {
  std::vector<SessionStepOutcome> outcomes;
  outcomes.reserve(script.size());
  for (const SessionCommand& cmd : script) {
    RH_ASSIGN_OR_RETURN(SessionStepOutcome outcome,
                        ExecuteSessionCommand(session, cmd, labels));
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace rankhow
