#ifndef RANKHOW_APP_CLI_DRIVER_H_
#define RANKHOW_APP_CLI_DRIVER_H_

/// \file cli_driver.h
/// The assembly layer behind the `rankhow_cli` tool: turn a CSV table plus
/// textual options into a solvable OPT instance. Kept out of the binary so
/// the parsing/assembly rules are unit-testable and reusable by downstream
/// embedders who have their own flag handling.

#include <cstdint>
#include <string>
#include <vector>

#include "core/rankhow.h"
#include "core/solve_session.h"
#include "data/dataset.h"
#include "ranking/objective.h"
#include "ranking/ranking.h"
#include "util/csv.h"
#include "util/status.h"

namespace rankhow {

/// How to interpret a CSV table as an OPT instance.
struct CliDataSpec {
  /// Ranking attributes (CSV column names). Empty = every column except the
  /// id and rank columns.
  std::vector<std::string> attributes;
  /// Optional label column (player name, institution, ...). Not used for
  /// scoring.
  std::string id_column;
  /// Optional column holding the given positions. Accepted cell values:
  /// positive integers for ranked tuples; "", "-", "0", "na", "null" or
  /// "unranked" (case-insensitive) for ⊥. When empty, the file's row order
  /// IS the ranking and the first `k` rows get positions 1..k.
  std::string rank_column;
  /// Ranking length when `rank_column` is empty.
  int k = 10;
  /// Attributes where lower is better (turnovers); negated per Sec. I.
  std::vector<std::string> negate;
  /// Min-max rescale all attributes to [0,1] (recommended: the ε settings
  /// assume comparable column scales).
  bool normalize = true;
  /// Accept rankings that do not start at position 1 (mid-ranking windows,
  /// RankingValidation::kOffset).
  bool offset_ranking = false;
  /// Drop tuples that duplicate an earlier row on all ranking attributes
  /// (the paper keeps one of identically-statted players).
  bool drop_duplicates = false;
};

/// A ready-to-solve instance assembled from a CSV.
struct CliProblem {
  Dataset data;
  Ranking given;
  /// One label per tuple: the id column's value, or "row<i>" (1-based).
  std::vector<std::string> labels;
};

/// Validates the spec against the table, selects/parses columns, negates,
/// normalizes, and builds the given ranking.
///
/// Errors: kInvalidArgument (unknown column, non-numeric cell, bad rank
/// value, invalid ranking under Definition 1).
Result<CliProblem> AssembleCliProblem(const CsvTable& csv,
                                      const CliDataSpec& spec);

/// Parses a bound list "PTS:0.1,AST:0.05" and adds one min- (or max-)
/// weight constraint per entry, resolving attribute names against `data`.
/// An empty spec string is a no-op.
Status ApplyWeightBounds(const Dataset& data, const std::string& spec,
                         bool is_min, WeightConstraintSet* constraints);

/// Parses "LABEL_A>LABEL_B[,LABEL_C>LABEL_D...]" into pairwise order
/// constraints ("A must outscore B"), resolving labels against `labels`.
Status ApplyOrderConstraints(const std::vector<std::string>& labels,
                             const std::string& spec,
                             std::vector<PairwiseOrderConstraint>* out);

/// "auto" | "milp" | "spatial" | "sat".
Result<SolveStrategy> ParseStrategy(const std::string& name);

/// "--threads" values: a non-negative integer, or "all" for every hardware
/// thread (the RankHowOptions::num_threads convention: 0 = all, 1 =
/// serial, n = exactly n).
Result<int> ParseThreadCount(const std::string& value);

/// "position" | "topheavy" | "inversions"; `k` sizes the top-heavy penalty
/// ladder.
Result<RankingObjectiveSpec> ParseObjectiveSpec(const std::string& name,
                                                int k);

/// Strict validation for count-like flags ("--seeds"): a positive integer,
/// rejected (not clamped) on anything else. `flag` names the flag in the
/// error message.
Result<int> ParsePositiveCount(const std::string& flag,
                               const std::string& value);

/// "--time-limit": a finite number of seconds >= 0 (0 = unlimited).
Result<double> ParseTimeLimit(const std::string& value);

// ---------------------------------------------------------------------------
// Scripted session mode (`--session edits.txt`): one edit+solve per line.
//
// Script grammar (one command per line; '#' starts a comment):
//   solve                     re-solve with no edit (the cold baseline line)
//   min-weight ATTR VALUE     add the weight floor w_ATTR >= VALUE
//   max-weight ATTR VALUE     add the weight ceiling w_ATTR <= VALUE
//   drop NAME                 remove the constraint named NAME (the names
//                             min-weight/max-weight assign are min_ATTR /
//                             max_ATTR)
//   order LABEL_A>LABEL_B     add "A must outscore B"
//   eps VALUE                 set the tie tolerance ε
//   eps1 VALUE | eps2 VALUE   set the Equation-(2) thresholds
//   objective NAME            position | topheavy | inversions
//   append V1 V2 ... Vm       append an unranked tuple (one value per
//                             ranking attribute; the session server's
//                             structural edit — forks a COW snapshot when
//                             the dataset is shared)
// Every line (including the edit ones) triggers one SolveSession::Solve.
// Re-adding a constraint name that is still present (min-weight PTS twice
// without a drop between) is rejected with kAlreadyExists — scripts and
// wire clients must drop first, so a typo cannot silently stack
// constraints under one name.

/// One parsed script line.
struct SessionCommand {
  enum class Kind {
    kSolve,
    kMinWeight,
    kMaxWeight,
    kDrop,
    kOrder,
    kEps,
    kEps1,
    kEps2,
    kObjective,
    kAppend,
  };
  Kind kind = Kind::kSolve;
  /// Attribute name (min/max-weight), constraint name (drop), "A>B" label
  /// pair (order), objective name, or the space-joined tuple values
  /// (append — validated against the dataset width at execution time).
  std::string arg;
  double value = 0;  // min/max-weight bound or ε value
  int line = 0;      // 1-based source line for error messages
  /// Per-request wall-clock deadline in milliseconds (0 = none). Not part
  /// of the script grammar: the wire layer's stream-scoped `deadline MS`
  /// verb stamps it onto subsequent commands, and ExecuteSessionCommand
  /// caps the solve's time limit at min(configured, deadline). Not
  /// journaled either — replay applies edits only, never solves.
  int64_t deadline_ms = 0;
};

/// Parses a session script. Errors: kInvalidArgument with the line number.
Result<std::vector<SessionCommand>> ParseSessionScript(
    const std::string& text);

/// The inverse of ParseSessionScript for one command: renders the exact
/// script-grammar line that parses back to `cmd` (doubles round-trip via
/// %.17g). The session journal persists commands in this form, so the
/// on-disk format and the wire/script grammar can never drift apart.
std::string FormatSessionCommand(const SessionCommand& cmd);

/// One executed script line: the command and what its solve proved.
struct SessionStepOutcome {
  SessionCommand command;
  RankHowResult result;
};

/// Applies one command's *edit* to the session (no solve). Labels resolve
/// `order` commands. Failed edits leave the session untouched (every edit
/// validates before mutating): kInvalidArgument for malformed arguments,
/// kAlreadyExists for a duplicate min/max-weight name, kNotFound for an
/// unknown drop name — all tagged with the command's line number.
Status ApplySessionCommand(SolveSession* session, const SessionCommand& cmd,
                           const std::vector<std::string>& labels);

/// One script step, exactly as the session server executes it: apply the
/// edit, then solve. A failed edit returns its status (session intact, no
/// solve); a failed solve propagates. The multi-client equivalence harness
/// replays scripts through this same function, so server strands and serial
/// replays execute identical code.
///
/// `edit_applied` (optional) reports whether the edit mutated the session —
/// true even when the subsequent solve failed ("solve failed after edit
/// applied"), which is exactly the bit the write-ahead journal needs: a
/// command whose edit stuck must be journaled whether or not its solve
/// finished. A non-zero cmd.deadline_ms caps the solve's wall clock at
/// min(session time limit, deadline); the configured limit is restored
/// afterwards.
Result<SessionStepOutcome> ExecuteSessionCommand(
    SolveSession* session, const SessionCommand& cmd,
    const std::vector<std::string>& labels, bool* edit_applied = nullptr);

/// Applies the script to a session, one edit+solve per line. Labels resolve
/// `order` commands (pass the CliProblem's labels). Stops at the first
/// failing edit or solve, with the line number in the error.
Result<std::vector<SessionStepOutcome>> RunSessionScript(
    SolveSession* session, const std::vector<SessionCommand>& script,
    const std::vector<std::string>& labels);

}  // namespace rankhow

#endif  // RANKHOW_APP_CLI_DRIVER_H_
