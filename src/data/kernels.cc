#include "data/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace rankhow {
namespace kernels {

namespace {

/// Runs fn(begin, end) over [0, n): serially when no pool is given (or the
/// range is below `min_parallel`), otherwise as one contiguous chunk per
/// pool worker, chunk sizes rounded up to `align`. Chunks are disjoint, so
/// workers never write the same output element, and per-tuple results do
/// not depend on the chunking.
template <typename Fn>
void ParallelChunks(ThreadPool* pool, int n, int min_parallel, int align,
                    Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n < min_parallel) {
    if (n > 0) fn(0, n);
    return;
  }
  int chunk = (n + pool->size() - 1) / pool->size();
  chunk = (chunk + align - 1) / align * align;
  TaskGroup group(pool);
  for (int begin = 0; begin < n; begin += chunk) {
    const int end = std::min(n, begin + chunk);
    group.Spawn([&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

int CeilLog2(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

void BatchScores(const Dataset& data, const std::vector<double>& weights,
                 double* out, ThreadPool* pool) {
  RH_DCHECK(static_cast<int>(weights.size()) == data.num_attributes());
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  ParallelChunks(pool, n, kParallelMinTuples, kBlockTuples,
                 [&](int begin, int end) {
    std::fill(out + begin, out + end, 0.0);
    for (int b = begin; b < end; b += kBlockTuples) {
      const int e = std::min(end, b + kBlockTuples);
      for (int a = 0; a < m; ++a) {
        const double wa = weights[a];
        if (wa == 0.0) continue;
        const double* col = data.column_data(a);
        for (int t = b; t < e; ++t) out[t] += wa * col[t];
      }
    }
  });
}

void BatchScoresWithErrorBound(const Dataset& data,
                               const std::vector<double>& weights,
                               double* scores, double* err,
                               ThreadPool* pool) {
  RH_DCHECK(static_cast<int>(weights.size()) == data.num_attributes());
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  const double scale = (m + 3) * std::ldexp(1.0, -53);
  ParallelChunks(pool, n, kParallelMinTuples, kBlockTuples,
                 [&](int begin, int end) {
    std::fill(scores + begin, scores + end, 0.0);
    std::fill(err + begin, err + end, 0.0);
    for (int b = begin; b < end; b += kBlockTuples) {
      const int e = std::min(end, b + kBlockTuples);
      for (int a = 0; a < m; ++a) {
        const double wa = weights[a];
        if (wa == 0.0) continue;
        const double* col = data.column_data(a);
        for (int t = b; t < e; ++t) {
          const double term = wa * col[t];
          scores[t] += term;
          err[t] += std::abs(term);
        }
      }
      for (int t = b; t < e; ++t) err[t] *= scale;
    }
  });
}

void BatchDiffAgainst(const Dataset& data, int pivot, double* out,
                      ThreadPool* pool) {
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  RH_DCHECK(pivot >= 0 && pivot < n);
  ParallelChunks(pool, n, kParallelMinTuples, kBlockTuples,
                 [&](int begin, int end) {
    for (int a = 0; a < m; ++a) {
      const double* col = data.column_data(a);
      const double pv = col[pivot];
      for (int t = begin; t < end; ++t) {
        out[static_cast<size_t>(t) * m + a] = col[t] - pv;
      }
    }
  });
}

void DiffRangeAgainst(const Dataset& data, int pivot, double* lo, double* hi,
                      ThreadPool* pool) {
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  RH_DCHECK(pivot >= 0 && pivot < n);
  if (m == 0) return;
  ParallelChunks(pool, n, kParallelMinTuples, kBlockTuples,
                 [&](int begin, int end) {
    for (int b = begin; b < end; b += kBlockTuples) {
      const int e = std::min(end, b + kBlockTuples);
      {
        const double* col = data.column_data(0);
        const double pv = col[pivot];
        for (int t = b; t < e; ++t) {
          const double d = col[t] - pv;
          lo[t] = d;
          hi[t] = d;
        }
      }
      for (int a = 1; a < m; ++a) {
        const double* col = data.column_data(a);
        const double pv = col[pivot];
        for (int t = b; t < e; ++t) {
          const double d = col[t] - pv;
          lo[t] = std::min(lo[t], d);
          hi[t] = std::max(hi[t], d);
        }
      }
    }
  });
}

void DominanceScan(const Dataset& data, int pivot, unsigned char* out,
                   ThreadPool* pool) {
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  RH_DCHECK(pivot >= 0 && pivot < n);
  ParallelChunks(pool, n, kParallelMinTuples, kBlockTuples,
                 [&](int begin, int end) {
    unsigned char ge[kBlockTuples];
    unsigned char strict[kBlockTuples];
    for (int b = begin; b < end; b += kBlockTuples) {
      const int e = std::min(end, b + kBlockTuples);
      const int len = e - b;
      std::fill(ge, ge + len, static_cast<unsigned char>(1));
      std::fill(strict, strict + len, static_cast<unsigned char>(0));
      for (int a = 0; a < m; ++a) {
        const double* col = data.column_data(a);
        const double pv = col[pivot];
        for (int i = 0; i < len; ++i) {
          const double v = col[b + i];
          ge[i] = static_cast<unsigned char>(ge[i] & (v >= pv));
          strict[i] = static_cast<unsigned char>(strict[i] | (v > pv));
        }
      }
      for (int i = 0; i < len; ++i) {
        out[b + i] = static_cast<unsigned char>(ge[i] & strict[i]);
      }
    }
  });
}

void FusedExactRankPositions(const Dataset& data,
                             const std::vector<double>& weights,
                             const std::vector<int>& tuples, double tie_eps,
                             const ExactSignFn& exact_sign,
                             ExactRankScratch* scratch,
                             std::vector<int>* positions_out,
                             long* exact_comparisons, long* total_comparisons,
                             ThreadPool* pool) {
  const int n = data.num_tuples();
  const int k = static_cast<int>(tuples.size());
  positions_out->resize(k);
  scratch->scores.resize(n);
  scratch->err.resize(n);
  double* scores = scratch->scores.data();
  double* err = scratch->err.data();
  BatchScoresWithErrorBound(data, weights, scores, err, pool);

  std::atomic<long> exact_used{0};

  // One pivot: the branch-free blocked scan. Per pair (t, pivot) this is
  // literally the scalar verifier's decision — x = f(t) − f(r) − ε against
  // the certified band err[t] + err[r]; blocks that contain uncertain pairs
  // are rescanned to resolve them exactly.
  auto linear_pivot = [&](int r) {
    // x must be the scalar verifier's exact expression
    // fl(fl(f(t) − f(r)) − ε): the two subtractions round differently from
    // fl(f(t) − (f(r)+ε)), and the equivalence tests assert bit-identical
    // exact-fallback counts against the scalar loop.
    const double score_r = scores[r];
    const double err_r = err[r];
    int beats = 0;
    long exact = 0;
    for (int b = 0; b < n; b += kBlockTuples) {
      const int e = std::min(n, b + kBlockTuples);
      int block_beats = 0;
      int block_uncertain = 0;
      for (int t = b; t < e; ++t) {
        const double x = (scores[t] - score_r) - tie_eps;
        const double band = err[t] + err_r;
        block_beats += static_cast<int>(x > band);
        block_uncertain +=
            static_cast<int>(x <= band) & static_cast<int>(x >= -band);
      }
      beats += block_beats;
      if (block_uncertain > 0) {
        for (int t = b; t < e; ++t) {
          if (t == r) continue;
          const double x = (scores[t] - score_r) - tie_eps;
          const double band = err[t] + err_r;
          if (x <= band && x >= -band) {
            ++exact;
            if (exact_sign(t, r) > 0) ++beats;
          }
        }
      }
    }
    // The pivot itself never lands in the branch-free beats count
    // (x = −ε <= band), so only its possible uncertain hit was excluded
    // above; nothing to subtract.
    exact_used.fetch_add(exact, std::memory_order_relaxed);
    return beats;
  };

  // Many pivots: sort tuples by score once, then each pivot's certain
  // regions collapse to two binary searches and only the conservative
  // uncertainty window — entries whose decision value x lands within
  // ±(err_r + emax) — is scanned with the per-pair scalar decision.
  // x = fl(fl(score − f(r)) − ε) is monotone in score (round-to-nearest is
  // monotone), so partition_point applies directly to the decision value;
  // outside the window |x| > err_r + emax >= band, meaning the scalar test
  // was already certain there and the exact-fallback set is unchanged.
  const bool use_sorted = n > 0 && k >= 4 * std::max(1, CeilLog2(n));
  std::vector<ExactRankEntry>& sorted = scratch->sorted;
  double emax = 0;
  if (use_sorted) {
    sorted.resize(n);
    for (int t = 0; t < n; ++t) {
      sorted[t] = ExactRankEntry{scores[t], err[t], t};
      emax = std::max(emax, err[t]);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const ExactRankEntry& a, const ExactRankEntry& b) {
                return a.score < b.score;
              });
  }
  auto sorted_pivot = [&](int r) {
    const double score_r = scores[r];
    const double err_r = err[r];
    const double pad = err_r + emax;
    const auto decide = [score_r, tie_eps](double score) {
      return (score - score_r) - tie_eps;
    };
    auto lo = std::partition_point(
        sorted.begin(), sorted.end(),
        [&](const ExactRankEntry& entry) { return decide(entry.score) < -pad; });
    auto hi = std::partition_point(lo, sorted.end(), [&](const ExactRankEntry& entry) {
      return !(decide(entry.score) > pad);
    });
    int beats = static_cast<int>(sorted.end() - hi);
    long exact = 0;
    for (auto it = lo; it != hi; ++it) {
      if (it->id == r) continue;
      const double x = decide(it->score);
      const double band = it->err + err_r;
      if (x > band) {
        ++beats;
      } else if (x < -band) {
        // certainly does not beat
      } else {
        ++exact;
        if (exact_sign(it->id, r) > 0) ++beats;
      }
    }
    exact_used.fetch_add(exact, std::memory_order_relaxed);
    return beats;
  };

  int* positions = positions_out->data();
  const long pair_work = static_cast<long>(n) * std::max(k, 1);
  ParallelChunks(pool, k, pair_work >= kParallelMinTuples ? 1 : k + 1,
                 /*align=*/1, [&](int begin, int end) {
                   for (int i = begin; i < end; ++i) {
                     const int r = tuples[i];
                     const int beats =
                         use_sorted ? sorted_pivot(r) : linear_pivot(r);
                     positions[i] = beats + 1;
                   }
                 });

  if (exact_comparisons != nullptr) {
    *exact_comparisons = exact_used.load(std::memory_order_relaxed);
  }
  if (total_comparisons != nullptr) {
    *total_comparisons = static_cast<long>(k) * std::max(0, n - 1);
  }
}

}  // namespace kernels
}  // namespace rankhow
