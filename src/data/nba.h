#ifndef RANKHOW_DATA_NBA_H_
#define RANKHOW_DATA_NBA_H_

/// \file nba.h
/// NBA dataset *simulator*. The paper evaluates on real basketball-reference
/// data (22 840 player-season tuples, seasons 1979/80–2022/23) ranked by
/// (a) MVP-panel votes and (b) MP·PER, a complex non-linear efficiency
/// formula over attributes partially hidden from the ranking-attribute set.
///
/// We cannot ship that data, so this module generates a statistically
/// faithful substitute (see DESIGN.md "Substitutions"): an archetype-mixture
/// model over per-game stats with realistic correlations, a simplified PER
/// formula that — like the real one — involves hidden attributes (minutes,
/// turnovers, games) and rate/volume interactions, and an MVP vote simulator
/// reproducing the 10/7/5/3/1 ballot protocol of Example 1.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"

namespace rankhow {

/// The eight default ranking attributes used throughout Sec. VI
/// (per-game averages / percentages).
inline constexpr int kNbaNumRankingAttributes = 8;

struct NbaData {
  /// Columns: PTS, REB, AST, STL, BLK, FG%, 3P%, FT% (the paper's default
  /// ranking attributes, in this order).
  Dataset table;
  /// Synthetic player-season labels ("P01234-S05"), parallel to the rows.
  std::vector<std::string> labels;
  /// Hidden attributes (not ranking attributes): minutes played per game,
  /// turnovers per game, games played.
  std::vector<double> minutes;
  std::vector<double> turnovers;
  std::vector<double> games;
  /// Player Efficiency Rating (simplified formula; see ComputePer).
  std::vector<double> per;
  /// Season-total production proxy MP·PER — the paper's non-linear given-
  /// ranking function for the NBA experiments.
  std::vector<double> mp_times_per;
};

struct NbaSpec {
  int num_tuples = 22840;  // paper's dataset size
  uint64_t seed = 0;
};

/// Generates the simulated dataset. Exact duplicates are dropped (the paper
/// keeps one of identically-statted players), so the result may have very
/// slightly fewer rows than requested.
NbaData GenerateNba(const NbaSpec& spec);

/// The simplified PER formula: a per-minute efficiency rate
///   uPER = PTS·(1+0.25·FG%) + 0.8·REB + 1.1·AST + 1.7·(STL+BLK)
///          − 1.4·TOV + 0.3·FT%·PTS
/// normalized by minutes: PER = uPER / (MP/36) … all per-game inputs.
/// Non-linear in the ranking attributes and dependent on hidden ones, like
/// the real PER.
double ComputePer(double pts, double reb, double ast, double stl, double blk,
                  double fg_pct, double ft_pct, double tov, double mp);

/// Given ranking for the "MP*PER" experiments: top-k tuples by MP·PER.
Ranking NbaPerRanking(const NbaData& data, int k);

struct MvpVoteResult {
  /// Tuple ids (rows of data.table) that received at least one vote,
  /// ordered by total points (the "13 players" of Sec. VI-B).
  std::vector<int> vote_receivers;
  /// Their point totals, parallel to vote_receivers.
  std::vector<int> points;
  /// The given ranking over ONLY the vote receivers (positions share ranks
  /// on point ties, as in the paper where the last two players tie).
  Ranking ranking;
  /// Row selection of the voted players as a dataset (same attribute order).
  Dataset voted_table;
};

/// Simulates the MVP panel of Example 1: `num_panelists` voters each rank
/// their top-5 by a noisy view of season production (MP·PER + Gumbel noise);
/// places earn 10/7/5/3/1 points; the final ranking is by point totals.
MvpVoteResult SimulateMvpVote(const NbaData& data, int num_panelists,
                              uint64_t seed);

}  // namespace rankhow

#endif  // RANKHOW_DATA_NBA_H_
