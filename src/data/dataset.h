#ifndef RANKHOW_DATA_DATASET_H_
#define RANKHOW_DATA_DATASET_H_

/// \file dataset.h
/// Column-major numeric relation R(A1..Am). Columns are the ranking
/// attributes; higher values are assumed desirable (use NegateColumn for
/// undesirable properties like turnovers, per Sec. I of the paper).
///
/// Storage invariants (see DESIGN.md "Dataset layout & kernel contracts"):
///  * Structure-of-arrays: each attribute is one contiguous double array of
///    length num_tuples(); there is no row object anywhere.
///  * Column buffers are refcounted and copy-on-write at COLUMN granularity:
///    copying a Dataset shares every buffer (O(m) pointer copies), and each
///    mutating operation unshares only the columns it touches. Value
///    semantics are preserved — a copy never observes a sibling's mutation.
///  * Scan-heavy callers (scoring, ranking verification, indicator fixing)
///    must go through data/kernels.h, which runs blocked, allocation-free
///    loops over column_data(); `value()` is for incidental element access.

#include <memory>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/status.h"

namespace rankhow {

/// A dense numeric table with named attributes, stored column-major for the
/// scan-heavy access patterns (scoring, indicator fixing).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> attribute_names, int num_tuples);

  int num_tuples() const { return num_tuples_; }
  int num_attributes() const { return static_cast<int>(columns_.size()); }

  const std::string& attribute_name(int attr) const { return names_[attr]; }
  const std::vector<std::string>& attribute_names() const { return names_; }
  /// Index of a named attribute.
  Result<int> AttributeIndex(const std::string& name) const;

  double value(int tuple, int attr) const { return (*columns_[attr])[tuple]; }
  void set_value(int tuple, int attr, double v) {
    MutableColumn(attr)[tuple] = v;
  }
  const std::vector<double>& column(int attr) const { return *columns_[attr]; }
  /// Contiguous storage of one attribute — the kernel entry point. Valid
  /// until the next mutating call on this Dataset.
  const double* column_data(int attr) const { return columns_[attr]->data(); }
  /// Physical identity of a column buffer. Two Datasets returning the same
  /// id for an attribute share that buffer (per-column COW accounting).
  const void* column_id(int attr) const { return columns_[attr].get(); }
  /// The refcounted buffer itself — for tests holding a weak_ptr to assert
  /// a column is freed, and for zero-copy readers that must outlive *this.
  std::shared_ptr<const std::vector<double>> column_handle(int attr) const {
    return columns_[attr];
  }

  /// Appends a column; must match num_tuples. Returns its index.
  int AddColumn(std::string name, std::vector<double> values);

  /// Appends a tuple (one value per attribute, in column order) and returns
  /// its id. The SolveSession append-tuples delta; cheap because the storage
  /// is column-major (one push_back per column; shared columns unshare).
  int AppendTuple(const std::vector<double>& values);

  /// f_W(r) = Σ wᵢ·Aᵢ(r) for one tuple.
  double ScoreOf(int tuple, const std::vector<double>& weights) const;
  /// Scores for all tuples. Batched column-at-a-time; for allocation-free
  /// repeated evaluation use kernels::BatchScores with a reused buffer.
  std::vector<double> Scores(const std::vector<double>& weights) const;

  /// Attribute difference vector d(s,r) with dᵢ = s.Aᵢ − r.Aᵢ. The score
  /// difference f_W(s) − f_W(r) equals w·d (the indicator hyperplanes of
  /// Eq. (2)).
  std::vector<double> DiffVector(int s, int r) const;
  /// Allocation-free variant: writes d(s,r) into out[0..m). The hot-path
  /// form — every per-pair caller (arrangement, indicator fixing, tree
  /// baseline) uses this with a reused buffer.
  void DiffVectorInto(int s, int r, double* out) const;

  /// True iff s dominates r: s.Aᵢ >= r.Aᵢ on all attributes with at least one
  /// strict (Sec. V-B).
  bool Dominates(int s, int r) const;

  /// Flips the sign of a column (for undesirable attributes). Unshares only
  /// this column.
  void NegateColumn(int attr);

  /// Rescales every column to [0,1] (min-max). Constant columns map to 0.
  /// Returns per-column (min, max) used, for interpreting weights later.
  std::vector<std::pair<double, double>> NormalizeMinMax();

  /// New dataset with the given tuple rows (in the given order).
  Dataset SelectTuples(const std::vector<int>& tuples) const;
  /// New dataset with the given attribute columns (in the given order).
  /// O(1) per column: the result shares the column buffers.
  Dataset SelectAttributes(const std::vector<int>& attrs) const;

  /// Removes tuples that are exact duplicates of an earlier tuple across all
  /// attributes (the paper keeps one of identically-statted players).
  /// Returns the kept tuple ids (in original order).
  std::vector<int> DropDuplicateTuples();

  /// Loads numeric columns from a parsed CSV (all columns by default).
  static Result<Dataset> FromCsv(const CsvTable& csv);

 private:
  /// The column with *this as its sole owner, unsharing (one buffer copy)
  /// if the buffer is shared with sibling Datasets. Same single-owner race
  /// argument as SharedDataset::Mutable: both sharers copy before writing,
  /// so nobody mutates a buffer another Dataset can still read.
  std::vector<double>& MutableColumn(int attr) {
    if (columns_[attr].use_count() > 1) {
      columns_[attr] = std::make_shared<std::vector<double>>(*columns_[attr]);
    }
    return *columns_[attr];
  }

  std::vector<std::string> names_;
  std::vector<std::shared_ptr<std::vector<double>>> columns_;
  int num_tuples_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_DATA_DATASET_H_
