#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "data/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

Dataset::Dataset(std::vector<std::string> attribute_names, int num_tuples)
    : names_(std::move(attribute_names)), num_tuples_(num_tuples) {
  columns_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    columns_.push_back(
        std::make_shared<std::vector<double>>(num_tuples, 0.0));
  }
}

Result<int> Dataset::AttributeIndex(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

int Dataset::AddColumn(std::string name, std::vector<double> values) {
  RH_CHECK(static_cast<int>(values.size()) == num_tuples_ ||
           num_attributes() == 0)
      << "column size mismatch";
  if (num_attributes() == 0) num_tuples_ = static_cast<int>(values.size());
  names_.push_back(std::move(name));
  columns_.push_back(std::make_shared<std::vector<double>>(std::move(values)));
  return num_attributes() - 1;
}

int Dataset::AppendTuple(const std::vector<double>& values) {
  RH_CHECK(static_cast<int>(values.size()) == num_attributes())
      << "tuple size mismatch";
  for (int a = 0; a < num_attributes(); ++a) {
    MutableColumn(a).push_back(values[a]);
  }
  return num_tuples_++;
}

double Dataset::ScoreOf(int tuple, const std::vector<double>& weights) const {
  RH_DCHECK(static_cast<int>(weights.size()) == num_attributes());
  double score = 0;
  for (int a = 0; a < num_attributes(); ++a) {
    score += weights[a] * (*columns_[a])[tuple];
  }
  return score;
}

std::vector<double> Dataset::Scores(const std::vector<double>& weights) const {
  RH_DCHECK(static_cast<int>(weights.size()) == num_attributes());
  std::vector<double> scores(num_tuples_, 0.0);
  kernels::BatchScores(*this, weights, scores.data());
  return scores;
}

std::vector<double> Dataset::DiffVector(int s, int r) const {
  std::vector<double> d(num_attributes());
  DiffVectorInto(s, r, d.data());
  return d;
}

void Dataset::DiffVectorInto(int s, int r, double* out) const {
  for (int a = 0; a < num_attributes(); ++a) {
    const std::vector<double>& col = *columns_[a];
    out[a] = col[s] - col[r];
  }
}

bool Dataset::Dominates(int s, int r) const {
  bool strict = false;
  for (int a = 0; a < num_attributes(); ++a) {
    double vs = (*columns_[a])[s];
    double vr = (*columns_[a])[r];
    if (vs < vr) return false;
    if (vs > vr) strict = true;
  }
  return strict;
}

void Dataset::NegateColumn(int attr) {
  for (double& v : MutableColumn(attr)) v = -v;
}

std::vector<std::pair<double, double>> Dataset::NormalizeMinMax() {
  std::vector<std::pair<double, double>> ranges;
  ranges.reserve(num_attributes());
  for (int a = 0; a < num_attributes(); ++a) {
    std::vector<double>& col = MutableColumn(a);
    double lo = col.empty() ? 0 : col[0];
    double hi = lo;
    for (double v : col) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    ranges.emplace_back(lo, hi);
    double span = hi - lo;
    for (double& v : col) v = span > 0 ? (v - lo) / span : 0.0;
  }
  return ranges;
}

Dataset Dataset::SelectTuples(const std::vector<int>& tuples) const {
  Dataset out(names_, static_cast<int>(tuples.size()));
  for (int a = 0; a < num_attributes(); ++a) {
    const std::vector<double>& src = *columns_[a];
    std::vector<double>& dst = out.MutableColumn(a);
    for (size_t i = 0; i < tuples.size(); ++i) {
      dst[i] = src[tuples[i]];
    }
  }
  return out;
}

Dataset Dataset::SelectAttributes(const std::vector<int>& attrs) const {
  Dataset out;
  out.num_tuples_ = num_tuples_;
  for (int a : attrs) {
    RH_CHECK(a >= 0 && a < num_attributes());
    out.names_.push_back(names_[a]);
    out.columns_.push_back(columns_[a]);  // shared buffer, COW on mutation
  }
  return out;
}

std::vector<int> Dataset::DropDuplicateTuples() {
  // Hash rows; compare exact values on collision.
  std::unordered_map<size_t, std::vector<int>> buckets;
  std::vector<int> keep;
  keep.reserve(num_tuples_);
  auto row_equal = [&](int a, int b) {
    for (int c = 0; c < num_attributes(); ++c) {
      if ((*columns_[c])[a] != (*columns_[c])[b]) return false;
    }
    return true;
  };
  for (int t = 0; t < num_tuples_; ++t) {
    size_t h = 0xcbf29ce484222325ULL;
    for (int c = 0; c < num_attributes(); ++c) {
      uint64_t bits;
      double v = (*columns_[c])[t];
      std::memcpy(&bits, &v, sizeof(bits));
      h = (h ^ bits) * 0x100000001b3ULL;
    }
    auto& bucket = buckets[h];
    bool duplicate = false;
    for (int other : bucket) {
      if (row_equal(other, t)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(t);
      keep.push_back(t);
    }
  }
  if (static_cast<int>(keep.size()) != num_tuples_) {
    *this = SelectTuples(keep);
  }
  return keep;
}

Result<Dataset> Dataset::FromCsv(const CsvTable& csv) {
  Dataset out(csv.header, static_cast<int>(csv.rows.size()));
  for (size_t c = 0; c < csv.header.size(); ++c) {
    std::vector<double>& col = out.MutableColumn(static_cast<int>(c));
    for (size_t r = 0; r < csv.rows.size(); ++r) {
      auto v = ParseDouble(csv.rows[r][c]);
      if (!v.ok()) {
        return Status::Invalid(StrFormat(
            "non-numeric cell at row %zu column '%s'", r,
            csv.header[c].c_str()));
      }
      col[r] = *v;
    }
  }
  return out;
}

}  // namespace rankhow
