#ifndef RANKHOW_DATA_SYNTHETIC_H_
#define RANKHOW_DATA_SYNTHETIC_H_

/// \file synthetic.h
/// The three classic synthetic distributions of Börzsönyi et al. (skyline
/// paper [51]), as used in the paper's scalability and generalizability
/// experiments (Sec. VI-F): uniform, correlated, and anti-correlated, with
/// attribute values in [0, 1].

#include <cstdint>

#include "data/dataset.h"
#include "ranking/ranking.h"

namespace rankhow {

enum class SyntheticDistribution { kUniform, kCorrelated, kAntiCorrelated };

const char* SyntheticDistributionName(SyntheticDistribution dist);

struct SyntheticSpec {
  int num_tuples = 1000;
  int num_attributes = 5;
  SyntheticDistribution distribution = SyntheticDistribution::kUniform;
  uint64_t seed = 0;
  /// Strength of the (anti-)correlation structure in (0, 1]; higher = noisier.
  double noise = 0.15;
};

/// Generates a dataset with attributes "A1".."Am".
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// The paper's non-linear given-ranking functions: score(r) = Σᵢ Aᵢ(r)^e
/// for exponent e ∈ {2,3,4,5} (Table II). Returns the per-tuple scores.
std::vector<double> PowerSumScores(const Dataset& data, int exponent);

/// Convenience: the given ranking obtained by ranking the top `k` tuples of
/// the power-sum score.
Ranking PowerSumRanking(const Dataset& data, int exponent, int k);

}  // namespace rankhow

#endif  // RANKHOW_DATA_SYNTHETIC_H_
