#ifndef RANKHOW_DATA_DERIVED_H_
#define RANKHOW_DATA_DERIVED_H_

/// \file derived.h
/// Derived-attribute augmentation (Sec. I "How to use RankHow" and the
/// generalizability experiments of Sec. VI-F): RankHow synthesizes linear
/// functions, but over an augmented attribute space (squares, pairwise
/// products, logs) the function becomes non-linear in the original
/// attributes — the same trick as polynomial/RBF kernels for SVMs.

#include <vector>

#include "data/dataset.h"

namespace rankhow {

struct DerivedSpec {
  /// Add Aᵢ² columns (the paper's Sec. VI-F augmentation).
  bool squares = false;
  /// Add Aᵢ·Aⱼ columns for i < j.
  bool pairwise_products = false;
  /// Add log(1 + max(Aᵢ, 0)) columns.
  bool logs = false;
};

/// Returns a new dataset with the original columns followed by the derived
/// ones (named e.g. "PTS^2", "PTS*REB", "log1p(PTS)").
Dataset WithDerivedAttributes(const Dataset& data, const DerivedSpec& spec);

}  // namespace rankhow

#endif  // RANKHOW_DATA_DERIVED_H_
