#ifndef RANKHOW_DATA_SHARED_DATASET_H_
#define RANKHOW_DATA_SHARED_DATASET_H_

/// \file shared_dataset.h
/// Copy-on-write dataset sharing for the session server (see DESIGN.md
/// "Server architecture"). The serving shape is many clients over few
/// datasets: N concurrent SolveSessions reading one relation should hold
/// one immutable snapshot, not N private copies — the per-session dataset
/// copy was the first thing ROADMAP named to shed.
///
/// A `SharedDataset` is a cheap handle onto a refcounted, immutable
/// `Dataset` snapshot. Handles copy in O(1) (one atomic refcount bump).
/// Read access goes through `get()`; the mutations the session layer
/// performs on a live dataset — `AppendTuple`, `NegateColumn` — are
/// copy-on-write: a handle that is the snapshot's sole owner mutates in
/// place, a handle sharing the snapshot with siblings first forks a private
/// copy, leaving every sibling untouched (bit-identical results before and
/// after the fork — asserted by tests/data/shared_dataset_test.cc). When
/// the last handle drops, the snapshot is freed (shared_ptr refcounting;
/// the asan suite would flag a leak or a use-after-free).
///
/// COW is two-level since Dataset went per-column refcounted: a snapshot
/// fork copies only the Dataset shell (names + column *pointers*, O(m)),
/// and the column buffers themselves unshare lazily — the mutation then
/// deep-copies just the columns it touches (all of them for AppendTuple,
/// exactly one for NegateColumn). Forked siblings keep sharing every
/// untouched column buffer (asserted via Dataset::column_id in the tests).
///
/// Thread-safety contract: concurrent *reads* of one snapshot from many
/// handles/threads are safe (the snapshot is immutable); refcount
/// operations are atomic. A single handle, however, is not itself
/// thread-safe — mutating or copying one specific handle concurrently from
/// two threads is a race, exactly like a shared_ptr. The session server
/// keeps one handle per client session and serializes each client's edits,
/// which satisfies the contract by construction.

#include <memory>
#include <vector>

#include "data/dataset.h"

namespace rankhow {

class SharedDataset {
 public:
  /// An empty handle (no snapshot). get() is invalid until assigned.
  SharedDataset() = default;
  /// Wraps a dataset into a fresh snapshot this handle solely owns.
  explicit SharedDataset(Dataset data)
      : snapshot_(std::make_shared<Dataset>(std::move(data))) {}

  // Handles copy/move freely: copying shares the snapshot (O(1)).

  /// The current snapshot, read-only. The reference (and address) is stable
  /// until the next mutating call on *this handle* — a fork re-points the
  /// handle, so callers caching `&get()` must refresh after AppendTuple.
  const Dataset& get() const { return *snapshot_; }
  bool valid() const { return snapshot_ != nullptr; }

  /// Copy-on-write append: appends a tuple (one value per attribute) and
  /// returns its id. Forks a private copy first iff the snapshot is shared
  /// with other handles; sole owners append in place.
  int AppendTuple(const std::vector<double>& values);

  /// Copy-on-write column negation (flipping an undesirable attribute, per
  /// Sec. I of the paper). The fork is O(m); only the negated column's
  /// buffer is deep-copied.
  void NegateColumn(int attr);

  /// True iff a mutation through this handle right now would fork (i.e. the
  /// snapshot has other owners).
  bool shared() const { return snapshot_ != nullptr && snapshot_.use_count() > 1; }

  /// Snapshot identity, for counting resident dataset copies across a set
  /// of handles (SessionRegistry::ResidentDatasetCopies). Two handles with
  /// equal ids hold the same physical snapshot.
  const void* snapshot_id() const { return snapshot_.get(); }
  bool SharesSnapshotWith(const SharedDataset& other) const {
    return snapshot_ != nullptr && snapshot_ == other.snapshot_;
  }

  /// The underlying refcounted snapshot — exposed so tests can hold a
  /// std::weak_ptr and assert the snapshot is freed when the last handle
  /// drops.
  std::shared_ptr<const Dataset> snapshot() const { return snapshot_; }

  /// Cumulative forks this handle performed (a fork is one full dataset
  /// copy — the quantity COW exists to minimize).
  int64_t forks() const { return forks_; }

 private:
  /// The snapshot with this handle as its sole owner, forking if needed.
  Dataset* Mutable();

  std::shared_ptr<Dataset> snapshot_;
  int64_t forks_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_DATA_SHARED_DATASET_H_
