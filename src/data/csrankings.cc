#include "data/csrankings.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

const char* kAreaNames[kCsRankingsNumAreas] = {
    "AI",      "Vision",  "ML",       "NLP",     "Web",     "Arch",
    "Networks", "Security", "DB",      "HPC",     "Mobile",  "Metrics",
    "OS",      "PL",      "SE",       "Theory",  "Crypto",  "Logic",
    "Graphics", "HCI",     "Robotics", "Bio",     "EDA",     "Embedded",
    "Visualization", "ECom", "CSEd"};

}  // namespace

CsRankingsData GenerateCsRankings(const CsRankingsSpec& spec) {
  RH_CHECK(spec.num_institutions > 0 && spec.num_areas > 0);
  Rng rng(spec.seed ^ 0x43535241ULL);

  std::vector<std::string> names;
  names.reserve(spec.num_areas);
  for (int a = 0; a < spec.num_areas; ++a) {
    names.push_back(a < kCsRankingsNumAreas
                        ? kAreaNames[a]
                        : StrFormat("Area%d", a + 1));
  }
  CsRankingsData out;
  out.table = Dataset(names, spec.num_institutions);
  out.default_scores.resize(spec.num_institutions);

  // Per-area field size multiplier (some areas publish much more).
  std::vector<double> area_scale(spec.num_areas);
  for (int a = 0; a < spec.num_areas; ++a) {
    area_scale[a] = std::exp(rng.NextGaussian(0.0, 0.5));
  }

  for (int t = 0; t < spec.num_institutions; ++t) {
    // Latent quality: heavy-tailed so a handful of institutions dominate.
    double quality = std::exp(rng.NextGaussian(0.0, 1.0));
    // Specialization: each institution is strong in a few areas.
    for (int a = 0; a < spec.num_areas; ++a) {
      double specialization = std::exp(rng.NextGaussian(0.0, 0.9));
      double mean = 2.5 * quality * area_scale[a] * specialization;
      // Adjusted counts in CSRankings are fractional (author shares);
      // keep one decimal.
      double count = std::round(
          std::max(0.0, mean * std::exp(rng.NextGaussian(0.0, 0.4)) - 0.4) *
          10.0) / 10.0;
      out.table.set_value(t, a, count);
    }
    // Geometric mean of (count + 1): the CSRankings aggregation.
    double log_sum = 0;
    for (int a = 0; a < spec.num_areas; ++a) {
      log_sum += std::log(out.table.value(t, a) + 1.0);
    }
    out.default_scores[t] = std::exp(log_sum / spec.num_areas);
  }
  return out;
}

Ranking CsRankingsDefaultRanking(const CsRankingsData& data, int k) {
  return Ranking::FromScores(data.default_scores, k);
}

}  // namespace rankhow
