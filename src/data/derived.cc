#include "data/derived.h"

#include <cmath>

#include "util/string_util.h"

namespace rankhow {

Dataset WithDerivedAttributes(const Dataset& data, const DerivedSpec& spec) {
  Dataset out = data;
  const int m = data.num_attributes();
  const int n = data.num_tuples();
  if (spec.squares) {
    for (int a = 0; a < m; ++a) {
      std::vector<double> col(n);
      for (int t = 0; t < n; ++t) {
        double v = data.value(t, a);
        col[t] = v * v;
      }
      out.AddColumn(data.attribute_name(a) + "^2", std::move(col));
    }
  }
  if (spec.pairwise_products) {
    for (int a = 0; a < m; ++a) {
      for (int b = a + 1; b < m; ++b) {
        std::vector<double> col(n);
        for (int t = 0; t < n; ++t) {
          col[t] = data.value(t, a) * data.value(t, b);
        }
        out.AddColumn(data.attribute_name(a) + "*" + data.attribute_name(b),
                      std::move(col));
      }
    }
  }
  if (spec.logs) {
    for (int a = 0; a < m; ++a) {
      std::vector<double> col(n);
      for (int t = 0; t < n; ++t) {
        col[t] = std::log1p(std::max(data.value(t, a), 0.0));
      }
      out.AddColumn("log1p(" + data.attribute_name(a) + ")", std::move(col));
    }
  }
  return out;
}

}  // namespace rankhow
