#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rankhow {

const char* SyntheticDistributionName(SyntheticDistribution dist) {
  switch (dist) {
    case SyntheticDistribution::kUniform:
      return "uniform";
    case SyntheticDistribution::kCorrelated:
      return "correlated";
    case SyntheticDistribution::kAntiCorrelated:
      return "anti-correlated";
  }
  return "?";
}

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  RH_CHECK(spec.num_tuples > 0 && spec.num_attributes > 0);
  std::vector<std::string> names;
  names.reserve(spec.num_attributes);
  for (int a = 0; a < spec.num_attributes; ++a) {
    names.push_back(StrFormat("A%d", a + 1));
  }
  Dataset data(names, spec.num_tuples);
  Rng rng(spec.seed ^ 0x53594E5448ULL);

  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };

  for (int t = 0; t < spec.num_tuples; ++t) {
    switch (spec.distribution) {
      case SyntheticDistribution::kUniform:
        for (int a = 0; a < spec.num_attributes; ++a) {
          data.set_value(t, a, rng.NextDouble());
        }
        break;
      case SyntheticDistribution::kCorrelated: {
        // A latent "quality" drives all attributes; high in one ⇒ likely
        // high in all.
        double base = rng.NextDouble();
        for (int a = 0; a < spec.num_attributes; ++a) {
          data.set_value(t, a,
                         clamp01(base + rng.NextGaussian(0, spec.noise)));
        }
        break;
      }
      case SyntheticDistribution::kAntiCorrelated: {
        // High in one attribute ⇒ high in half of the others, low in the
        // rest (the paper's description of the pattern from [51]).
        double base = rng.NextDouble();
        for (int a = 0; a < spec.num_attributes; ++a) {
          double mean = (a % 2 == 0) ? base : 1.0 - base;
          data.set_value(t, a,
                         clamp01(mean + rng.NextGaussian(0, spec.noise)));
        }
        break;
      }
    }
  }
  return data;
}

std::vector<double> PowerSumScores(const Dataset& data, int exponent) {
  RH_CHECK(exponent >= 1);
  std::vector<double> scores(data.num_tuples(), 0.0);
  for (int a = 0; a < data.num_attributes(); ++a) {
    const std::vector<double>& col = data.column(a);
    for (int t = 0; t < data.num_tuples(); ++t) {
      scores[t] += std::pow(col[t], exponent);
    }
  }
  return scores;
}

Ranking PowerSumRanking(const Dataset& data, int exponent, int k) {
  return Ranking::FromScores(PowerSumScores(data, exponent), k);
}

}  // namespace rankhow
