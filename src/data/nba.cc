#include "data/nba.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// An archetype describes the stat profile of a class of players.
/// Stats are per-game means at a reference 32 minutes; actual stats scale
/// with minutes played.
struct Archetype {
  double share;  // mixture weight
  double pts, reb, ast, stl, blk, tov;
  double fg_pct, tp_pct, ft_pct;  // shooting percentages
};

// Loosely modeled on modern-era positional splits.
constexpr Archetype kArchetypes[] = {
    // share  pts   reb  ast  stl  blk  tov  fg%   3p%   ft%
    {0.08, 26.0, 6.0, 6.5, 1.3, 0.7, 3.2, 0.50, 0.37, 0.85},  // star perimeter
    {0.06, 24.0, 11.0, 3.5, 0.9, 1.8, 2.8, 0.55, 0.25, 0.75}, // star big
    {0.18, 15.0, 4.0, 5.0, 1.1, 0.3, 2.2, 0.44, 0.36, 0.82},  // guard
    {0.22, 13.0, 5.5, 2.2, 0.9, 0.5, 1.6, 0.46, 0.35, 0.78},  // wing
    {0.16, 11.0, 8.5, 1.6, 0.7, 1.3, 1.7, 0.52, 0.20, 0.68},  // big
    {0.30, 6.0, 3.0, 1.3, 0.5, 0.3, 1.0, 0.43, 0.30, 0.72},   // bench
};

int SampleArchetype(Rng& rng) {
  double u = rng.NextDouble();
  double acc = 0;
  for (size_t i = 0; i < std::size(kArchetypes); ++i) {
    acc += kArchetypes[i].share;
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(std::size(kArchetypes)) - 1;
}

double ClampPositive(double v) { return v < 0 ? 0.0 : v; }

double ClampPct(double v) {
  return std::min(0.95, std::max(0.05, v));
}

}  // namespace

double ComputePer(double pts, double reb, double ast, double stl, double blk,
                  double fg_pct, double ft_pct, double tov, double mp) {
  double u_per = pts * (1.0 + 0.25 * fg_pct) + 0.8 * reb + 1.1 * ast +
                 1.7 * (stl + blk) - 1.4 * tov + 0.3 * ft_pct * pts;
  double minutes = std::max(mp, 4.0);  // avoid tiny-denominator blowups
  return u_per / (minutes / 36.0);
}

NbaData GenerateNba(const NbaSpec& spec) {
  RH_CHECK(spec.num_tuples > 0);
  Rng rng(spec.seed ^ 0x4E424153494DULL);

  NbaData out;
  out.table = Dataset({"PTS", "REB", "AST", "STL", "BLK", "FG%", "3P%",
                       "FT%"},
                      spec.num_tuples);
  out.labels.reserve(spec.num_tuples);
  out.minutes.resize(spec.num_tuples);
  out.turnovers.resize(spec.num_tuples);
  out.games.resize(spec.num_tuples);
  out.per.resize(spec.num_tuples);
  out.mp_times_per.resize(spec.num_tuples);

  for (int t = 0; t < spec.num_tuples; ++t) {
    const Archetype& arch = kArchetypes[SampleArchetype(rng)];
    // Player-season quality multiplier and minutes.
    double quality = std::exp(rng.NextGaussian(0.0, 0.22));
    double minutes = std::min(40.0, std::max(
        6.0, rng.NextGaussian(24.0 + 8.0 * (quality - 1.0), 6.0)));
    double usage = minutes / 32.0;  // stats scale with playing time

    double pts = ClampPositive(arch.pts * quality * usage *
                               std::exp(rng.NextGaussian(0, 0.18)));
    // Compress the extreme tail: season scoring averages above ~35 PPG are
    // historically rare, so squeeze the excess rather than truncating.
    if (pts > 35.0) pts = 35.0 + (pts - 35.0) * 0.35;
    double reb = ClampPositive(arch.reb * quality * usage *
                               std::exp(rng.NextGaussian(0, 0.20)));
    double ast = ClampPositive(arch.ast * quality * usage *
                               std::exp(rng.NextGaussian(0, 0.22)));
    double stl = ClampPositive(arch.stl * quality * usage *
                               std::exp(rng.NextGaussian(0, 0.30)));
    double blk = ClampPositive(arch.blk * quality * usage *
                               std::exp(rng.NextGaussian(0, 0.35)));
    double tov = ClampPositive(arch.tov * usage * (0.6 + 0.4 * quality) *
                               std::exp(rng.NextGaussian(0, 0.20)));
    double fg = ClampPct(arch.fg_pct + rng.NextGaussian(0, 0.04) +
                         0.02 * (quality - 1.0));
    double tp = ClampPct(arch.tp_pct + rng.NextGaussian(0, 0.06));
    double ft = ClampPct(arch.ft_pct + rng.NextGaussian(0, 0.05));
    double games = std::min(82.0, std::max(10.0, rng.NextGaussian(62, 14)));

    // Round like published per-game stats (1 decimal; percentages 3).
    auto round1 = [](double v) { return std::round(v * 10.0) / 10.0; };
    auto round3 = [](double v) { return std::round(v * 1000.0) / 1000.0; };
    pts = round1(pts);
    reb = round1(reb);
    ast = round1(ast);
    stl = round1(stl);
    blk = round1(blk);
    tov = round1(tov);
    fg = round3(fg);
    tp = round3(tp);
    ft = round3(ft);
    minutes = round1(minutes);

    out.table.set_value(t, 0, pts);
    out.table.set_value(t, 1, reb);
    out.table.set_value(t, 2, ast);
    out.table.set_value(t, 3, stl);
    out.table.set_value(t, 4, blk);
    out.table.set_value(t, 5, fg);
    out.table.set_value(t, 6, tp);
    out.table.set_value(t, 7, ft);
    out.minutes[t] = minutes;
    out.turnovers[t] = tov;
    out.games[t] = std::round(games);
    out.per[t] = ComputePer(pts, reb, ast, stl, blk, fg, ft, tov, minutes);
    // Season total minutes × efficiency — the paper's MP*PER ranking proxy.
    out.mp_times_per[t] = minutes * out.games[t] * out.per[t];
    out.labels.push_back(StrFormat("P%05d-S%02d", t,
                                   static_cast<int>(rng.NextBelow(44))));
  }

  // Drop identically-statted duplicates, keeping side arrays aligned.
  std::vector<int> keep = out.table.DropDuplicateTuples();
  if (static_cast<int>(keep.size()) != spec.num_tuples) {
    auto select = [&keep](auto& v) {
      auto old = v;
      v.clear();
      v.reserve(keep.size());
      for (int idx : keep) v.push_back(old[idx]);
    };
    select(out.labels);
    select(out.minutes);
    select(out.turnovers);
    select(out.games);
    select(out.per);
    select(out.mp_times_per);
  }
  return out;
}

Ranking NbaPerRanking(const NbaData& data, int k) {
  return Ranking::FromScores(data.mp_times_per, k);
}

MvpVoteResult SimulateMvpVote(const NbaData& data, int num_panelists,
                              uint64_t seed) {
  RH_CHECK(num_panelists > 0);
  const int n = data.table.num_tuples();
  Rng rng(seed ^ 0x4D565021ULL);

  // Panelists see season production with personal narrative noise. Only the
  // plausible candidates (top slice by true production) draw attention.
  std::vector<int> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return data.mp_times_per[a] > data.mp_times_per[b];
  });
  // A small plausible-candidate pool and moderate perception noise yield
  // roughly the paper's vote spread (13 players received votes in 2022-23).
  const int pool = std::min(n, 25);
  candidates.resize(pool);

  double scale = std::max(1.0, data.mp_times_per[candidates[0]] * 0.02);
  constexpr int kPoints[5] = {10, 7, 5, 3, 1};
  std::vector<int> total_points(n, 0);
  for (int p = 0; p < num_panelists; ++p) {
    std::vector<std::pair<double, int>> view;
    view.reserve(pool);
    for (int c : candidates) {
      // Gumbel noise: panel-member-specific perception.
      double gumbel = -std::log(-std::log(
          std::min(1.0 - 1e-12, std::max(1e-12, rng.NextDouble()))));
      view.emplace_back(data.mp_times_per[c] + scale * gumbel, c);
    }
    std::sort(view.begin(), view.end(), std::greater<>());
    for (int place = 0; place < 5; ++place) {
      total_points[view[place].second] += kPoints[place];
    }
  }

  MvpVoteResult result;
  for (int t = 0; t < n; ++t) {
    if (total_points[t] > 0) result.vote_receivers.push_back(t);
  }
  std::sort(result.vote_receivers.begin(), result.vote_receivers.end(),
            [&](int a, int b) { return total_points[a] > total_points[b]; });
  for (int t : result.vote_receivers) {
    result.points.push_back(total_points[t]);
  }

  // Competition ranking over the vote receivers (ties share a position).
  const int v = static_cast<int>(result.vote_receivers.size());
  std::vector<int> positions(v, kUnranked);
  for (int i = 0; i < v; ++i) {
    int above = 0;
    for (int j = 0; j < v; ++j) {
      if (result.points[j] > result.points[i]) ++above;
    }
    positions[i] = above + 1;
  }
  auto ranking = Ranking::Create(std::move(positions));
  RH_CHECK(ranking.ok()) << ranking.status().ToString();
  result.ranking = *std::move(ranking);
  result.voted_table = data.table.SelectTuples(result.vote_receivers);
  return result;
}

}  // namespace rankhow
