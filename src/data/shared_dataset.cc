#include "data/shared_dataset.h"

namespace rankhow {

Dataset* SharedDataset::Mutable() {
  // use_count > 1: siblings read this snapshot, so appending in place would
  // mutate shared-immutable state under them. Fork a private copy and
  // re-point this handle; siblings keep the old snapshot (freed when the
  // last of them drops). use_count == 1: this handle is the sole owner and
  // may mutate in place — no observer exists to see intermediate state.
  // (weak_ptr observers do not count: they must lock() into a strong ref to
  // read, and a lock() racing a sole-owner mutation would violate the
  // one-thread-per-handle contract in the header anyway.)
  if (snapshot_.use_count() > 1) {
    // Shallow since Dataset columns are themselves refcounted: this copies
    // names + column pointers (O(m)); the actual buffers unshare one by one
    // as the subsequent mutation touches them.
    snapshot_ = std::make_shared<Dataset>(*snapshot_);
    ++forks_;
  }
  return snapshot_.get();
}

int SharedDataset::AppendTuple(const std::vector<double>& values) {
  return Mutable()->AppendTuple(values);
}

void SharedDataset::NegateColumn(int attr) { Mutable()->NegateColumn(attr); }

}  // namespace rankhow
