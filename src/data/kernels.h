#ifndef RANKHOW_DATA_KERNELS_H_
#define RANKHOW_DATA_KERNELS_H_

/// \file kernels.h
/// Batched scoring kernels over the contiguous per-attribute columns of a
/// Dataset — the allocation-free hot-path layer under ranking verification,
/// error-measure evaluation, indicator fixing, presolve revalidation and the
/// SYM-GD cell sweeps (see DESIGN.md "Dataset layout & kernel contracts").
///
/// Design rules, shared by every kernel here:
///  * Caller-owned output buffers; no kernel allocates on the steady path
///    (scratch structs reuse their capacity across calls).
///  * Column-at-a-time blocked loops over Dataset::column_data(): each block
///    of kBlockTuples output elements stays in L1 while the m columns stream
///    through, and the inner loops are branch-free so the compiler can
///    auto-vectorize them (the xgboost flat-array + parallel-for idiom).
///  * Bit-identical to the scalar per-tuple loops: within one tuple the
///    floating-point accumulation order over attributes is exactly that of
///    Dataset::ScoreOf, independent of blocking and thread count (asserted
///    by tests/data/kernels_test.cc).
///  * Optional ThreadPool parallel-for over blocks: pass a pool and tuples
///    above kParallelMinTuples split into disjoint contiguous chunks (one
///    per worker); below the threshold the pool is ignored.

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"

namespace rankhow {

class ThreadPool;

namespace kernels {

/// Output elements per block: 3 doubles of per-tuple state (scores + error
/// bounds + a diff bound) stay well inside L1 at this size.
inline constexpr int kBlockTuples = 2048;

/// Below this many tuples a ThreadPool argument is ignored — fork/join
/// overhead beats the scan.
inline constexpr int kParallelMinTuples = 1 << 15;

/// out[t] = Σ_a w[a]·A_a(t) for every tuple. Zero-weight columns are
/// skipped (never changes the result on finite data: partial sums are never
/// -0.0, so adding ±0.0 terms is the identity).
void BatchScores(const Dataset& data, const std::vector<double>& weights,
                 double* out, ThreadPool* pool = nullptr);

/// Fused scores + certified forward error bound, the verifier's input:
/// err[t] = (m+3)·u·Σ_a |w[a]·A_a(t)| with unit roundoff u = 2^-53 (a score
/// difference then carries at most err[s] + err[r] of rounding error).
void BatchScoresWithErrorBound(const Dataset& data,
                               const std::vector<double>& weights,
                               double* scores, double* err,
                               ThreadPool* pool = nullptr);

/// Pairwise difference vectors against a pivot tuple, tuple-major:
/// out[s*m + a] = A_a(s) − A_a(pivot) for every s. The batched form of
/// Dataset::DiffVectorInto when all of d(·, pivot) is needed.
void BatchDiffAgainst(const Dataset& data, int pivot, double* out,
                      ThreadPool* pool = nullptr);

/// Per-tuple range of the difference vector against a pivot:
/// lo[s] = min_a d_a(s,pivot), hi[s] = max_a d_a(s,pivot). Over the whole
/// weight simplex the range of w·d(s,pivot) is exactly [lo[s], hi[s]] — the
/// full-box indicator-fixing hot loop.
void DiffRangeAgainst(const Dataset& data, int pivot, double* lo, double* hi,
                      ThreadPool* pool = nullptr);

/// Dominance verdicts against a pivot: out[s] = 1 iff s dominates pivot
/// (s.A_a >= pivot.A_a on all attributes, one strict — Sec. V-B), else 0.
/// out[pivot] is 0 by definition.
void DominanceScan(const Dataset& data, int pivot, unsigned char* out,
                   ThreadPool* pool = nullptr);

/// Exact sign decision for a pair inside the floating-point uncertainty
/// band: must return the sign of f(s) − f(r) − tie_eps computed exactly
/// (the verifier injects its dyadic-rational comparator).
using ExactSignFn = std::function<int(int s, int r)>;

/// One tuple of the score-sorted view used by the windowed verification
/// path (many pivots amortize one sort into per-pivot binary searches).
struct ExactRankEntry {
  double score;
  double err;
  int id;
};

/// Reusable buffers for FusedExactRankPositions; capacity persists across
/// calls so the steady state allocates nothing.
struct ExactRankScratch {
  std::vector<double> scores;
  std::vector<double> err;
  std::vector<ExactRankEntry> sorted;
};

/// Fused score + exact rank-position kernel for verification: computes
/// ρ(r) = 1 + #{s : f(s) − f(r) > ε decided exactly} for each pivot in
/// `tuples`, writing into `positions_out` (resized to tuples.size()).
///
/// Per pivot the scan over s is a branch-free certified double pass —
/// beats / does-not-beat decided against the per-tuple error bounds — and
/// only pairs inside the uncertainty band fall back to `exact_sign`. The
/// decision per pair is literally the scalar verifier's, so positions and
/// the exact/total comparison counters match it exactly.
void FusedExactRankPositions(const Dataset& data,
                             const std::vector<double>& weights,
                             const std::vector<int>& tuples, double tie_eps,
                             const ExactSignFn& exact_sign,
                             ExactRankScratch* scratch,
                             std::vector<int>* positions_out,
                             long* exact_comparisons = nullptr,
                             long* total_comparisons = nullptr,
                             ThreadPool* pool = nullptr);

}  // namespace kernels
}  // namespace rankhow

#endif  // RANKHOW_DATA_KERNELS_H_
