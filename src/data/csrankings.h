#ifndef RANKHOW_DATA_CSRANKINGS_H_
#define RANKHOW_DATA_CSRANKINGS_H_

/// \file csrankings.h
/// CSRankings dataset *simulator*: 628 institutions × 27 CS-area publication
/// counts, with the default given ranking produced by a CSRankings-style
/// geometric-mean score (non-linear in the counts). See DESIGN.md
/// "Substitutions" — the real data cannot be shipped; this reproduces its
/// shape: few tuples, many attributes, heavy-tailed counts correlated with a
/// latent institution quality, and area-specialization noise.

#include <cstdint>

#include "data/dataset.h"
#include "ranking/ranking.h"

namespace rankhow {

inline constexpr int kCsRankingsNumInstitutions = 628;
inline constexpr int kCsRankingsNumAreas = 27;

struct CsRankingsSpec {
  int num_institutions = kCsRankingsNumInstitutions;
  int num_areas = kCsRankingsNumAreas;
  uint64_t seed = 0;
};

struct CsRankingsData {
  /// Columns: per-area adjusted publication counts ("AI", "Vision", ...).
  Dataset table;
  /// CSRankings-style score: geometric mean of (count + 1) across areas.
  std::vector<double> default_scores;
};

CsRankingsData GenerateCsRankings(const CsRankingsSpec& spec);

/// The default given ranking (top-k by geometric-mean score).
Ranking CsRankingsDefaultRanking(const CsRankingsData& data, int k);

}  // namespace rankhow

#endif  // RANKHOW_DATA_CSRANKINGS_H_
