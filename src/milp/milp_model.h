#ifndef RANKHOW_MILP_MILP_MODEL_H_
#define RANKHOW_MILP_MILP_MODEL_H_

/// \file milp_model.h
/// Mixed-integer linear programs: an LpModel plus binary variables and
/// first-class *indicator constraints* (`δ = v ⇒ expr ◻ rhs`) — the exact
/// constraint form of Equation (2) in the paper. Indicators are compiled to
/// big-M rows for the LP relaxation; the caller can (and RankHow does)
/// provide per-constraint tight M values from the weight-simplex geometry,
/// which is what keeps the relaxation strong.

#include <string>
#include <vector>

#include "lp/model.h"
#include "util/status.h"

namespace rankhow {

/// `binary_var = active_value  ⇒  expr (op) rhs`, with op ∈ {kLe, kGe}.
struct IndicatorConstraint {
  int binary_var = -1;
  bool active_value = true;
  LinearExpr expr;
  RelOp op = RelOp::kGe;
  double rhs = 0.0;
  /// Tightest valid big-M known to the builder. Must satisfy:
  ///  op == kGe: M >= rhs − min expr over the feasible region,
  ///  op == kLe: M >= max expr over the feasible region − rhs.
  /// Non-positive requests automatic derivation from variable bounds.
  double big_m = -1.0;
};

/// A MILP: continuous LP part + binaries + indicator constraints.
class MilpModel {
 public:
  /// Continuous variables/constraints/objective live in the base LP.
  LpModel& lp() { return lp_; }
  const LpModel& lp() const { return lp_; }

  /// Adds a binary decision variable (bounds [0,1], integral).
  int AddBinaryVariable(std::string name = "");

  /// Declares an existing [0,1] variable integral.
  void MarkBinary(int var);

  void AddIndicator(IndicatorConstraint indicator);

  const std::vector<int>& binary_vars() const { return binary_vars_; }
  const std::vector<IndicatorConstraint>& indicators() const {
    return indicators_;
  }
  /// In-place access for rhs/big-M patching (the ε-edit fast path).
  /// CompileIndicator reads the stored constraint at call time, so a patch
  /// propagates to every row compiled afterwards.
  IndicatorConstraint& mutable_indicator(size_t i) { return indicators_[i]; }

  /// Produces the LP relaxation: binaries become continuous [0,1] variables
  /// and each indicator becomes one big-M row. Fails if an automatic big-M
  /// cannot be derived (unbounded supporting variables).
  Result<LpModel> BuildRelaxation() const;

  /// One indicator constraint compiled to its big-M surrogate row.
  struct CompiledRow {
    LinearExpr expr;
    RelOp op = RelOp::kGe;
    double rhs = 0.0;
  };

  /// Compiles indicator `i` to its big-M row (same construction as
  /// BuildRelaxation, one row at a time). Lazy row generation in the
  /// branch-and-bound uses this to add only the rows an LP iterate actually
  /// violates — node LPs carry hundreds instead of tens of thousands of
  /// rows on the paper's NBA-scale instances.
  Result<CompiledRow> CompileIndicator(size_t i) const;

  /// Signed violation of indicator `i`'s compiled row at point x
  /// (positive = violated by that much).
  Result<double> IndicatorRowViolation(size_t i,
                                       const std::vector<double>& x) const;

  /// A row that is valid for every integral solution but may be omitted
  /// from node LPs until an LP iterate violates it (strengthening cuts:
  /// mutual exclusion, transitivity). Solvers that do not separate lazily
  /// (BuildRelaxation) include them unconditionally.
  void AddLazyCut(LinearExpr expr, RelOp op, double rhs);
  const std::vector<CompiledRow>& lazy_cuts() const { return lazy_cuts_; }

  /// True position-space feasibility of a candidate assignment: bounds,
  /// linear rows, binary integrality, and *logical* indicator semantics
  /// (not the big-M surrogate).
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  LpModel lp_;
  std::vector<int> binary_vars_;
  std::vector<IndicatorConstraint> indicators_;
  std::vector<CompiledRow> lazy_cuts_;
};

}  // namespace rankhow

#endif  // RANKHOW_MILP_MILP_MODEL_H_
